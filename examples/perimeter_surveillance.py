#!/usr/bin/env python3
"""Perimeter-surveillance scenario: from raw audit features to a deployed
IDS configuration, end to end.

A sensor-tank platoon (N = 40) surveys a hostile perimeter. Unlike the
other examples, nothing here starts from given ``(p1, p2)`` numbers —
the whole chain is derived:

1. **host IDS**: calibrate an anomaly detector over route/traffic audit
   features for a 1% per-window false-alarm budget; its exact
   false-negative rate follows from the noncentral-χ² detection
   statistics (``repro.detection.audit``);
2. **timeliness**: the plume-tracking payload needs <= 60 ms mean
   packet delay; the M/M/1 channel model converts that into a maximum
   admissible traffic level (``repro.costs.delay``);
3. **design**: maximise MTTSF over the TIDS grid subject to that
   derived traffic ceiling, with the derived (p1, p2);
4. report the chosen configuration with the exact failure-time
   variance and a distribution-free mission-survival bound.

The design sweep in step 3 is submitted through the batch engine:
``--jobs`` fans it out over workers, ``--cache-dir`` persists it.

Run:  python examples/perimeter_surveillance.py [--jobs N|auto] [--cache-dir DIR]
"""

import argparse

from repro import GCSParameters, Scenario, select_optimum
from repro.constants import HOUR, PAPER_TIDS_GRID_S
from repro.costs import DelayModel, MessageSizes
from repro.detection.audit import AnomalyDetector
from repro.engine import EvalRequest, make_runner, run_tids_sweep

MISSION_S = 48 * HOUR
DELAY_BUDGET_S = 0.060  # 60 ms mean end-to-end packet delay


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs", default=None, help="engine workers: N, 'auto', 'thread[:N]' or 'vector'"
    )
    parser.add_argument(
        "--cache-dir", default=None, help="persistent result cache directory"
    )
    args = parser.parse_args()
    runner = make_runner(args.jobs, args.cache_dir)

    # -- 1. derive (p1, p2) from the audit-feature detector ---------------
    detector = AnomalyDetector.calibrated(target_false_positive=0.01)
    host_ids = detector.to_host_ids()
    print("host IDS derived from audit features:")
    print(f"  {host_ids.describe()}")
    print(f"  (threshold {detector.threshold:.2f} on the Mahalanobis score, "
          f"population separation λ = {detector.model.noncentrality:.1f})\n")

    params = GCSParameters.paper_defaults(
        num_nodes=40,
        host_false_negative=host_ids.false_negative,
        host_false_positive=host_ids.false_positive,
    )
    scenario = Scenario(params)

    # -- 2. translate the delay budget into a traffic ceiling -------------
    delay = DelayModel(network=scenario.network, sizes=MessageSizes())
    ceiling = delay.max_traffic_for_delay(DELAY_BUDGET_S)
    print(
        f"timeliness: {DELAY_BUDGET_S*1e3:.0f} ms delay budget -> "
        f"Ctotal <= {ceiling:.3g} hop-bits/s "
        f"(utilisation <= {delay.utilization(ceiling):.0%})\n"
    )

    # -- 3. optimise TIDS under the derived constraint ---------------------
    curve = run_tids_sweep(
        runner, params, PAPER_TIDS_GRID_S, network=scenario.network
    )
    plan = select_optimum(
        curve, objective="max-mttsf", cost_ceiling_hop_bits_s=ceiling
    )
    print(plan.summary(), "\n")
    if not plan.feasible:
        raise SystemExit("no feasible configuration under the delay budget")

    # -- 4. report with exact variance and survival bound ------------------
    chosen = runner.evaluate(
        EvalRequest(
            params=params.replacing(detection_interval_s=plan.optimal_tids_s),
            network=scenario.network,
            include_variance=True,
        )
    )
    print("selected configuration:")
    print(chosen.summary())
    print(
        f"  TTSF std  = {chosen.mttsf_std_s:.3g} s "
        f"(CV {chosen.mttsf_cv:.2f})"
    )
    bound = chosen.survival_probability_lower_bound(MISSION_S)
    print(
        f"  P(survive the {MISSION_S/3600:.0f} h mission) >= {bound:.1%} "
        "(Cantelli, distribution-free)"
    )
    delay_at_chosen = delay.mean_packet_delay_s(chosen.ctotal_hop_bits_s)
    print(f"  mean packet delay at this load: {delay_at_chosen*1e3:.1f} ms")


if __name__ == "__main__":
    main()
