#!/usr/bin/env python3
"""Quickstart: evaluate a GCS scenario and find its optimal TIDS.

Reproduces the paper's headline workflow in four steps:

1. build the Section 5 default scenario (shrunk to N=40 so this example
   finishes in seconds — pass --full for the paper's N=100);
2. evaluate MTTSF and Ĉtotal at the default detection interval;
3. sweep the paper's TIDS grid to expose the security/performance
   tradeoff;
4. pick the MTTSF-optimal interval subject to a communication budget.

Every evaluation is submitted through the batch engine, so ``--jobs``
fans the sweep out over workers and ``--cache-dir`` makes re-runs
(and the overlapping optimisation step) free.

Run:  python examples/quickstart.py [--full] [--jobs N|auto] [--cache-dir DIR]
"""

import argparse

from repro import GCSParameters, Scenario, select_optimum
from repro.constants import PAPER_TIDS_GRID_S
from repro.engine import EvalRequest, make_runner, run_tids_sweep


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full", action="store_true", help="paper-scale N=100 (slower)"
    )
    parser.add_argument(
        "--jobs", default=None, help="engine workers: N, 'auto', 'thread[:N]' or 'vector'"
    )
    parser.add_argument(
        "--cache-dir", default=None, help="persistent result cache directory"
    )
    args = parser.parse_args()

    n = 100 if args.full else 40
    params = GCSParameters.paper_defaults(num_nodes=n)
    scenario = Scenario(params)
    runner = make_runner(args.jobs, args.cache_dir)
    print(scenario.describe(), "\n")

    # -- single evaluation with a cost breakdown -------------------------
    result = runner.evaluate(
        EvalRequest(
            params=params, network=scenario.network, include_breakdown=True
        )
    )
    print("Default operating point (TIDS = 60 s):")
    print(result.summary(), "\n")

    # -- the tradeoff curve ------------------------------------------------
    print(f"TIDS sweep ({len(PAPER_TIDS_GRID_S)} points):")
    print(f"{'TIDS(s)':>8}  {'MTTSF(s)':>12}  {'Ctotal(hop-bits/s)':>20}")
    curve = run_tids_sweep(
        runner, params, PAPER_TIDS_GRID_S, network=scenario.network
    )
    for point in curve:
        print(
            f"{point.tids_s:8g}  {point.mttsf_s:12.4g}  "
            f"{point.ctotal_hop_bits_s:20.4g}"
        )
    print()

    # -- constrained optimisation ------------------------------------------
    # The curve is already evaluated (and cached), so the optimisation
    # step is pure selection — no re-evaluation.
    budget = 5e5  # hop-bits/s the mission can afford
    best = select_optimum(
        curve, objective="max-mttsf", cost_ceiling_hop_bits_s=budget
    )
    print(f"Maximise MTTSF subject to Ctotal <= {budget:g} hop-bits/s:")
    print(best.summary())
    print(f"\n{runner.cache.describe()}")


if __name__ == "__main__":
    main()
