#!/usr/bin/env python3
"""Cross-validate the analytic SPN/CTMC pipeline against Monte Carlo.

Two independent implementations of the same system meet here:

* the **analytic** path — Figure 1 SPN -> CTMC -> exact mean time to
  absorption (this is what the paper evaluates numerically with SPNP);
* the **simulated** path — a discrete-event sampler. In ``rates`` mode
  it fires the SPN's exact rates (so its replication mean must converge
  to the analytic MTTSF); in ``protocol`` mode the IDS actually runs
  majority votes with sampled voters and colluders, validating that
  Equation 1 summarises the protocol faithfully.

The example also regenerates the paper's Figure 1 as GraphViz DOT.

The analytic grid points are submitted through the batch engine as one
deduplicated batch, and the per-``TIDS`` replication batches fan out
over the same execution backend — ``--jobs 4`` runs both sides on four
workers; ``--cache-dir`` persists the analytic half across runs.

Run:  python examples/validation_sim_vs_model.py [--jobs N|auto] [--cache-dir DIR]
"""

import argparse

from pathlib import Path

from repro import GCSParameters
from repro.core import build_gcs_spn, evaluate
from repro.core.metrics import resolve_network
from repro.engine import EvalRequest, make_runner
from repro.sim import run_replications
from repro.spn import net_to_dot

TIDS_POINTS = (15.0, 60.0, 240.0, 960.0)
REPLICATIONS = 200


def _replication_batch(task):
    """One TIDS point's replication batch (module level so process
    pools can pickle it)."""
    params, network = task
    summary = run_replications(
        params, replications=REPLICATIONS, mode="rates", network=network, seed=17
    )
    lo, hi = summary.ttsf.interval
    return summary.ttsf.mean, lo, hi


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs", default=None, help="engine workers: N, 'auto', 'thread[:N]' or 'vector'"
    )
    parser.add_argument(
        "--cache-dir", default=None, help="persistent result cache directory"
    )
    args = parser.parse_args()
    runner = make_runner(args.jobs, args.cache_dir)

    params = GCSParameters.small_test()  # N=12 so 200 replications fly
    network = resolve_network(params)
    grid_params = [
        params.replacing(detection_interval_s=tids) for tids in TIDS_POINTS
    ]

    # Analytic side: one batch through cache + backend.
    batch = runner.run(
        [EvalRequest(params=p, network=network) for p in grid_params]
    )
    batch.report.raise_on_error()
    analytic_values = [result.mttsf_s for result in batch.results]

    # Simulated side: replication batches over the same backend (never
    # cached — they are stochastic).
    outcomes = runner.backend.run(
        _replication_batch, [(p, network) for p in grid_params]
    )

    print(f"{'TIDS(s)':>8} {'analytic':>12} {'sim mean':>12} "
          f"{'95% CI':>26}  inside?")
    inside = 0
    for tids, analytic, outcome in zip(TIDS_POINTS, analytic_values, outcomes):
        if not outcome.ok:
            raise SystemExit(f"replication batch failed: {outcome.error}")
        mean, lo, hi = outcome.value
        ok = lo <= analytic <= hi
        inside += ok
        print(
            f"{tids:>8g} {analytic:>12.4g} {mean:>12.4g} "
            f"[{lo:>11.4g}, {hi:>11.4g}]  {'yes' if ok else 'NO'}"
        )
    print(f"\nanalytic value inside the CI at {inside}/{len(TIDS_POINTS)} points")

    # Operational-protocol fidelity (slower; fewer replications).
    summary = run_replications(params, replications=25, mode="protocol", seed=23)
    analytic = evaluate(params).mttsf_s
    print(
        f"\nprotocol-mode sim (real majority votes): "
        f"TTSF {summary.ttsf.describe()}\n"
        f"analytic {analytic:.4g}s -> ratio {summary.ttsf.mean/analytic:.2f} "
        "(batch sweeps vs per-node races; same order is the expectation)"
    )
    print(f"failure modes: {summary.failure_mode_fractions}")

    # Figure 1, regenerated from code.
    dot = net_to_dot(build_gcs_spn(params, network))
    out = Path(__file__).resolve().parent / "figure1_spn.dot"
    out.write_text(dot)
    print(f"\nFigure 1 SPN written to {out} (render with: dot -Tpng)")


if __name__ == "__main__":
    main()
