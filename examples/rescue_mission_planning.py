#!/usr/bin/env python3
"""Rescue-team mission planning: pick (m, TIDS) for a disaster deployment.

A rescue coordination centre is deploying a 40-device mobile group into
a collapsed-infrastructure area. Mission requirements:

* **survivability** — the group must (in expectation) survive insider
  compromise for the full 72-hour mission;
* **timeliness** — total protocol traffic must stay under 40% of the
  shared 1 Mbps channel (hop-bit budget 4e5/s), or medical telemetry
  starts missing its delay bound.

The planner sweeps the number of vote-participants ``m`` and the
detection interval ``TIDS``, prints the feasible region, and picks the
cheapest configuration that satisfies both requirements — exactly the
design procedure the paper's Section 5 sketches for system designers.
The whole (m × TIDS) grid is submitted through the batch engine, so
``--jobs`` parallelises it and ``--cache-dir`` persists the points.

Run:  python examples/rescue_mission_planning.py [--jobs N|auto] [--cache-dir DIR]
"""

import argparse

from repro import GCSParameters, Scenario
from repro.constants import HOUR
from repro.engine import make_runner, run_tids_sweep

MISSION_S = 72 * HOUR
COST_BUDGET = 4.0e5  # hop-bits/s
TIDS_GRID = (15.0, 30.0, 60.0, 120.0, 240.0, 480.0, 960.0)
M_GRID = (3, 5, 7, 9)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs", default=None, help="engine workers: N, 'auto', 'thread[:N]' or 'vector'"
    )
    parser.add_argument(
        "--cache-dir", default=None, help="persistent result cache directory"
    )
    args = parser.parse_args()

    base = GCSParameters.paper_defaults(num_nodes=40)
    scenario = Scenario(base)
    runner = make_runner(args.jobs, args.cache_dir)
    print(scenario.describe())
    print(
        f"requirements: MTTSF >= {MISSION_S:g}s (72 h), "
        f"Ctotal <= {COST_BUDGET:g} hop-bits/s\n"
    )

    feasible = []
    print(f"{'m':>3} {'TIDS(s)':>8} {'MTTSF(h)':>10} {'Ctotal':>10}  verdict")
    for m in M_GRID:
        points = run_tids_sweep(
            runner,
            base,
            TIDS_GRID,
            network=scenario.network,
            overrides={"num_voters": m},
        )
        for point in points:
            result = point.result
            ok_surv = result.mttsf_s >= MISSION_S
            ok_cost = result.ctotal_hop_bits_s <= COST_BUDGET
            verdict = "OK" if (ok_surv and ok_cost) else (
                "too risky" if not ok_surv else "too chatty"
            )
            print(
                f"{m:>3} {point.tids_s:>8g} {result.mttsf_s/3600:>10.1f} "
                f"{result.ctotal_hop_bits_s:>10.3g}  {verdict}"
            )
            if ok_surv and ok_cost:
                feasible.append((m, point))
        print()

    if not feasible:
        raise SystemExit("no feasible configuration — relax a requirement")

    # Cheapest feasible plan; survivability margin as tie-breaker.
    m_best, best = min(
        feasible, key=lambda mp: (mp[1].ctotal_hop_bits_s, -mp[1].mttsf_s)
    )
    margin = best.mttsf_s / MISSION_S
    print("=== selected plan ===")
    print(
        f"m = {m_best}, TIDS = {best.tids_s:g}s: "
        f"MTTSF {best.mttsf_s/3600:.1f} h ({margin:.1f}x the mission), "
        f"Ctotal {best.ctotal_hop_bits_s:.3g} hop-bits/s "
        f"({best.result.channel_utilization:.0%} of channel)"
    )
    print(f"dominant residual risk: {best.result.dominant_failure_mode}")
    print(f"\n{runner.cache.describe()}")


if __name__ == "__main__":
    main()
