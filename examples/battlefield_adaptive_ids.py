#!/usr/bin/env python3
"""Battlefield scenario: adapt the IDS to the attacker observed at runtime.

The paper's closing recommendation: "the system could adjust the IDS
detection strength in response to the attacker strength detected at
runtime". This example plays that loop end to end for a combat unit
whose adversary mounts an *accelerating* (polynomial) insider campaign
while the deployed IDS was configured for a logarithmic one:

1. simulate the early mission and record when compromises are detected;
2. identify the attacker function from those observations by profile
   maximum likelihood (:func:`repro.attackers.estimate_attacker_function`);
3. let the :class:`~repro.detection.AdaptiveIDSController` switch the
   detection function and re-optimise TIDS against the *model-predicted*
   MTTSF;
4. compare the model-predicted survivability before vs after adaptation.

Model evaluations (before/after and every candidate the controller
tries) are submitted through the batch engine: ``--jobs`` parallelises,
``--cache-dir`` makes repeated candidates free.

Run:  python examples/battlefield_adaptive_ids.py [--jobs N|auto] [--cache-dir DIR]
"""

import argparse

import numpy as np

from repro import GCSParameters, Scenario
from repro.attackers import AttackerFunction
from repro.detection import AdaptiveIDSController
from repro.engine import EvalRequest, make_runner

TIDS_GRID = (15.0, 30.0, 60.0, 120.0, 240.0, 480.0)
N = 40


def simulate_compromise_history(
    params: GCSParameters, seed: int = 7, events: int = 12
) -> list[float]:
    """Draw compromise instants from the *true* (polynomial) attacker."""
    attacker = AttackerFunction.from_params(params.attack)
    rng = np.random.default_rng(seed)
    t, times = 0.0, []
    for k in range(events):
        rate = attacker.rate(params.num_nodes - k, k)
        t += rng.exponential(1.0 / rate)
        times.append(t)
    return times


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--jobs", default=None, help="engine workers: N, 'auto', 'thread[:N]' or 'vector'"
    )
    parser.add_argument(
        "--cache-dir", default=None, help="persistent result cache directory"
    )
    args = parser.parse_args()
    runner = make_runner(args.jobs, args.cache_dir)

    # Ground truth: polynomial attacker. Deployed config: logarithmic IDS.
    truth = GCSParameters.paper_defaults(
        num_nodes=N,
        attacker_function="polynomial",
        detection_function="logarithmic",
        detection_interval_s=240.0,
    )
    scenario = Scenario(truth)
    before = runner.evaluate(
        EvalRequest(params=truth, network=scenario.network)
    )
    print("Deployed (mismatched) configuration:")
    print(before.summary(), "\n")

    # --- observe the enemy -------------------------------------------------
    history = simulate_compromise_history(truth)
    print(
        f"Observed {len(history)} compromises over {history[-1]/3600:.1f} h; "
        "feeding them to the adaptive controller..."
    )
    controller = AdaptiveIDSController(detection=truth.detection, num_nodes=N)
    for t in history:
        controller.observe_compromise(t)

    # --- adapt: identify, match, re-optimise TIDS ---------------------------
    def model_mttsf(detection_params) -> float:
        candidate = truth.replacing(detection=detection_params)
        return runner.evaluate(
            EvalRequest(params=candidate, network=scenario.network)
        ).mttsf_s

    adapted_detection = controller.adapt(
        evaluator=model_mttsf, tids_grid_s=TIDS_GRID
    )
    print(f"identified attacker function : {controller.last_estimate}")
    print(f"matched detection function   : {adapted_detection.detection_function}")
    print(f"re-optimised TIDS            : {adapted_detection.detection_interval_s:g} s\n")

    # --- after ----------------------------------------------------------------
    adapted = truth.replacing(detection=adapted_detection)
    after = runner.evaluate(
        EvalRequest(params=adapted, network=scenario.network)
    )
    print("Adapted configuration:")
    print(after.summary(), "\n")

    gain = after.mttsf_s / before.mttsf_s
    print(
        f"Adaptation multiplied the model-predicted MTTSF by {gain:.2f}x "
        f"({before.mttsf_s:.3g}s -> {after.mttsf_s:.3g}s)"
    )
    if gain <= 1.0:
        raise SystemExit("adaptation did not help — investigate!")


if __name__ == "__main__":
    main()
