"""Structure-sharing batched lattice solver: bit-identity + routing.

The batched path must be *bit-identical* to the per-point fast path —
not approximately equal — across the paper's figure grids, including
the variance sweep and the cost breakdown. These tests pin that
contract at a reduced ``N`` (the arithmetic is size-independent; the
full-scale campaign equality is asserted by
``benchmarks/bench_batch_solver.py``), and cover the engine routing:
``VectorBackend`` / ``--jobs vector``, cache hit/miss parity with the
process-pool path, ``tradeoff_curve(workers="vector")`` and
``model_grid_sweep``.
"""

import numpy as np
import pytest

from repro import constants as C
from repro.analysis.sweep import model_grid_sweep
from repro.core.fastpath import (
    build_lattice_chain,
    clear_structure_cache,
    fill_transition_rates,
    lattice_structure,
)
from repro.core.metrics import (
    evaluate,
    evaluate_batch,
    evaluate_batch_outcomes,
    resolve_network,
)
from repro.core.optimizer import optimize_tids, tradeoff_curve
from repro.core.rates import GCSRates
from repro.ctmc.acyclic import (
    batch_dag_structure,
    fused_gather_enabled,
    solve_dag,
    solve_dag_batch,
    topological_levels,
)
from repro.ctmc.chain import CTMC
from repro.engine import (
    BatchRunner,
    EvalRequest,
    ResultCache,
    SerialBackend,
    VectorBackend,
    make_backend,
)
from repro.engine.batch import evaluate_request
from repro.errors import ParameterError, SolverError
from repro.params import GCSParameters

N_TEST = 16  # full paper grids at a lattice size that solves in ms


def _fig2_scenarios() -> list[GCSParameters]:
    base = GCSParameters.paper_defaults(num_nodes=N_TEST)
    return [
        base.replacing(num_voters=m, detection_interval_s=float(tids))
        for m in C.PAPER_M_VALUES
        for tids in C.PAPER_TIDS_GRID_S
    ]


def _fig4_scenarios() -> list[GCSParameters]:
    base = GCSParameters.paper_defaults(num_nodes=N_TEST)
    return [
        base.replacing(detection_function=fn, detection_interval_s=float(tids))
        for fn in ("logarithmic", "linear", "polynomial")
        for tids in C.PAPER_TIDS_GRID_S
    ]


def _assert_identical(batch_result, point_result, *, variance=False):
    assert batch_result.mttsf_s == point_result.mttsf_s
    assert batch_result.ctotal_hop_bits_s == point_result.ctotal_hop_bits_s
    assert batch_result.channel_utilization == point_result.channel_utilization
    assert dict(batch_result.failure_probabilities) == dict(
        point_result.failure_probabilities
    )
    assert batch_result.num_states == point_result.num_states
    if variance:
        assert batch_result.mttsf_std_s == point_result.mttsf_std_s


# ---------------------------------------------------------------------------
# solve_dag_batch unit level
# ---------------------------------------------------------------------------

def _random_dag_chain(rng, n=40, density=0.2):
    """Strictly lower-triangular random rate matrix (guaranteed DAG)."""
    transitions = []
    for src in range(1, n):
        for dst in range(src):
            if rng.random() < density:
                transitions.append((src, dst, float(rng.uniform(0.1, 5.0))))
    return CTMC.from_transitions(n, transitions)


class TestSolveDagBatch:
    def test_matches_solve_dag_per_point(self):
        rng = np.random.default_rng(7)
        chain = _random_dag_chain(rng)
        R = chain.rates
        shared = batch_dag_structure(R.indptr, R.indices)
        n, k, P = chain.num_states, 3, 5

        scales = rng.uniform(0.5, 2.0, size=P)
        values = np.stack([R.data * s for s in scales])
        numer = rng.uniform(0.0, 1.0, size=(P, n, k))
        boundary = np.zeros((n, k))
        boundary[chain.absorbing_states, 0] = 1.0

        x = solve_dag_batch(shared, values, numer, boundary)
        for p in range(P):
            import scipy.sparse as sp

            chain_p = CTMC(
                sp.csr_matrix(
                    (values[p], R.indices.copy(), R.indptr.copy()),
                    shape=R.shape,
                )
            )
            structure_p = topological_levels(chain_p)
            x_p = solve_dag(chain_p, structure_p, numer[p], boundary)
            assert np.array_equal(x[p], x_p), f"point {p} diverged"

    def test_explicit_zeros_match_pruned_chain(self):
        rng = np.random.default_rng(11)
        chain = _random_dag_chain(rng, n=30, density=0.3)
        R = chain.rates
        shared = batch_dag_structure(R.indptr, R.indices)
        n = chain.num_states

        values = R.data.copy()
        values[rng.random(values.size) < 0.3] = 0.0  # rate-disabled edges
        numer = np.ones((1, n, 1))
        boundary = np.zeros((n, 1))

        x = solve_dag_batch(shared, values[None, :], numer, boundary)[0]
        import scipy.sparse as sp

        pruned = CTMC(
            sp.csr_matrix(
                (values, R.indices.copy(), R.indptr.copy()), shape=R.shape
            )
        )  # CTMC prunes the explicit zeros
        x_p = solve_dag(
            pruned, topological_levels(pruned), numer[0], boundary
        )
        assert np.array_equal(x[:, 0], x_p[:, 0])

    def test_cyclic_pattern_rejected(self):
        cyclic = CTMC.from_transitions(2, [(0, 1, 1.0), (1, 0, 1.0)])
        R = cyclic.rates
        with pytest.raises(SolverError, match="cyclic"):
            batch_dag_structure(R.indptr, R.indices)

    def test_shape_validation(self):
        chain = _random_dag_chain(np.random.default_rng(3), n=10)
        R = chain.rates
        shared = batch_dag_structure(R.indptr, R.indices)
        good_vals = R.data[None, :]
        with pytest.raises(SolverError, match="values"):
            solve_dag_batch(shared, R.data[None, :-1], np.ones((1, 10, 1)), np.zeros((10, 1)))
        with pytest.raises(SolverError, match="numerators"):
            solve_dag_batch(shared, good_vals, np.ones((1, 9, 1)), np.zeros((10, 1)))
        with pytest.raises(SolverError, match="boundary"):
            solve_dag_batch(shared, good_vals, np.ones((1, 10, 1)), np.zeros((9, 1)))


# ---------------------------------------------------------------------------
# Fused-gather kernel: differential tests against the legacy kernel
# ---------------------------------------------------------------------------

class TestFusedGatherKernel:
    """``REPRO_FUSED_GATHER`` on/off must be indistinguishable bit-for-bit."""

    def _lattice_fills(self, scenarios):
        from repro.core.rates import GCSRates

        structure = lattice_structure(scenarios[0].num_nodes)
        values = np.stack(
            [
                fill_transition_rates(
                    structure,
                    GCSRates.from_scenario(p, resolve_network(p, None)),
                ).values
                for p in scenarios
            ]
        )
        return structure, values

    @pytest.mark.parametrize("grid", ["fig2", "fig4"])
    def test_fused_bit_identical_on_paper_grids(self, grid):
        scenarios = _fig2_scenarios() if grid == "fig2" else _fig4_scenarios()
        structure, values = self._lattice_fills(scenarios)
        n = structure.num_states
        numer = np.ones((len(scenarios), n, 1))
        boundary = np.zeros((n, 1))
        boundary[structure.c1_state, 0] = 1.0
        x_legacy = solve_dag_batch(
            structure.dag, values, numer, boundary, fused=False
        )
        x_fused = solve_dag_batch(
            structure.dag, values, numer, boundary, fused=True
        )
        assert np.array_equal(x_legacy, x_fused)

    @pytest.mark.parametrize("fused", [True, False])
    def test_both_kernels_match_per_point_solve_dag(self, fused):
        rng = np.random.default_rng(23)
        chain = _random_dag_chain(rng, n=35, density=0.25)
        R = chain.rates
        shared = batch_dag_structure(R.indptr, R.indices)
        n, k, P = chain.num_states, 2, 4
        values = np.stack([R.data * s for s in rng.uniform(0.5, 2.0, size=P)])
        values[0, rng.random(values.shape[1]) < 0.2] = 0.0  # zero-pruned point
        numer = rng.uniform(0.0, 1.0, size=(P, n, k))
        boundary = np.zeros((n, k))
        boundary[chain.absorbing_states, 0] = 1.0

        x = solve_dag_batch(shared, values, numer, boundary, fused=fused)
        import scipy.sparse as sp

        for p in range(P):
            chain_p = CTMC(
                sp.csr_matrix(
                    (values[p], R.indices.copy(), R.indptr.copy()),
                    shape=R.shape,
                )
            )
            x_p = solve_dag(
                chain_p, topological_levels(chain_p), numer[p], boundary
            )
            assert np.array_equal(x[p], x_p), f"point {p} (fused={fused})"

    def test_env_toggle_and_explicit_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUSED_GATHER", "0")
        assert not fused_gather_enabled()
        monkeypatch.setenv("REPRO_FUSED_GATHER", "off")
        assert not fused_gather_enabled()
        monkeypatch.setenv("REPRO_FUSED_GATHER", "1")
        assert fused_gather_enabled()
        monkeypatch.delenv("REPRO_FUSED_GATHER")
        assert fused_gather_enabled()

    def test_evaluate_batch_identical_under_both_kernels(self, monkeypatch):
        scenarios = _fig2_scenarios()[:6]
        monkeypatch.setenv("REPRO_FUSED_GATHER", "0")
        legacy = evaluate_batch(scenarios, include_variance=True)
        monkeypatch.setenv("REPRO_FUSED_GATHER", "1")
        fused = evaluate_batch(scenarios, include_variance=True)
        for a, b in zip(legacy, fused):
            _assert_identical(b, a, variance=True)


# ---------------------------------------------------------------------------
# evaluate_batch bit-identity on the paper grids
# ---------------------------------------------------------------------------

class TestEvaluateBatchBitIdentical:
    def test_fig2_grid(self):
        scenarios = _fig2_scenarios()
        batch = evaluate_batch(scenarios)
        for scenario, result in zip(scenarios, batch):
            _assert_identical(result, evaluate(scenario))

    def test_fig4_grid_with_variance(self):
        scenarios = _fig4_scenarios()
        batch = evaluate_batch(scenarios, include_variance=True)
        for scenario, result in zip(scenarios, batch):
            _assert_identical(
                result, evaluate(scenario, include_variance=True), variance=True
            )

    def test_breakdown_parity(self):
        scenarios = _fig2_scenarios()[:4]
        batch = evaluate_batch(scenarios, include_breakdown=True)
        for scenario, result in zip(scenarios, batch):
            point = evaluate(scenario, include_breakdown=True)
            _assert_identical(result, point)
            assert dict(result.cost_breakdown) == dict(point.cost_breakdown)

    def test_zero_rate_edges(self):
        # Non-shifted logarithmic detection disables edges at md == 1,
        # exercising the pruned-row-sum path of the batched solver.
        base = GCSParameters.paper_defaults(
            num_nodes=N_TEST, detection_function="logarithmic", shifted_log=False
        )
        scenarios = [
            base.replacing(detection_interval_s=float(tids))
            for tids in (15.0, 60.0, 240.0)
        ]
        for scenario, result in zip(scenarios, evaluate_batch(scenarios)):
            _assert_identical(result, evaluate(scenario))

    def test_degenerate_single_point_batch(self):
        scenario = GCSParameters.small_test()
        (result,) = evaluate_batch([scenario], include_variance=True)
        _assert_identical(
            result, evaluate(scenario, include_variance=True), variance=True
        )

    def test_empty_batch(self):
        assert evaluate_batch([]) == []

    def test_mixed_group_sizes_keep_input_order(self):
        small = GCSParameters.small_test()
        bigger = GCSParameters.paper_defaults(num_nodes=N_TEST)
        scenarios = [bigger, small, bigger.replacing(num_voters=3), small]
        batch = evaluate_batch(scenarios)
        for scenario, result in zip(scenarios, batch):
            assert result.params == scenario
            _assert_identical(result, evaluate(scenario))

    def test_network_tuple_scenarios(self):
        params = GCSParameters.small_test()
        network = resolve_network(params, None)
        (explicit,) = evaluate_batch([(params, network)])
        (implicit,) = evaluate_batch([params])
        _assert_identical(explicit, implicit)

    def test_spn_method_falls_back_per_point(self):
        params = GCSParameters.small_test()
        (batch,) = evaluate_batch([params], method="spn")
        point = evaluate(params, method="spn")
        _assert_identical(batch, point)
        assert batch.solver.startswith("spn/")

    def test_per_point_error_capture(self):
        good = GCSParameters.small_test()
        outcomes = evaluate_batch_outcomes([good, "not-a-scenario"])
        assert outcomes[0][1] is None
        _assert_identical(outcomes[0][0], evaluate(good))
        assert outcomes[1][0] is None
        assert isinstance(outcomes[1][1], ParameterError)
        with pytest.raises(ParameterError, match="batch scenario"):
            evaluate_batch([good, "not-a-scenario"])

    def test_solver_tag(self):
        (result,) = evaluate_batch([GCSParameters.small_test()])
        assert result.solver == "acyclic-batch"


# ---------------------------------------------------------------------------
# Structure cache
# ---------------------------------------------------------------------------

class TestLatticeStructureCache:
    def test_cached_and_clearable(self):
        clear_structure_cache()
        first = lattice_structure(10)
        assert lattice_structure(10) is first
        clear_structure_cache()
        assert lattice_structure(10) is not first

    def test_structure_backed_chain_matches_historical_fields(self):
        params = GCSParameters.small_test()
        network = resolve_network(params, None)
        lattice = build_lattice_chain(params, network)
        structure = lattice_structure(params.num_nodes)
        assert lattice.num_states == structure.num_states
        assert lattice.initial_state == structure.initial_state
        assert np.array_equal(lattice.t, structure.t)
        # The chain's canonical CSR pattern is exactly the structural
        # pattern minus rate-zero slots.
        fill = fill_transition_rates(
            structure, GCSRates.from_scenario(params, network)
        )
        keep = fill.values > 0.0
        assert np.array_equal(
            lattice.chain.rates.indices, structure.indices[keep]
        )
        assert np.array_equal(lattice.chain.rates.data, fill.values[keep])


# ---------------------------------------------------------------------------
# VectorBackend + engine routing
# ---------------------------------------------------------------------------

def _square(x):  # module level: picklable for pool backends
    return x * x


def _explode_on_two(x):
    if x == 2:
        raise ValueError("boom")
    return x


class TestVectorBackend:
    def test_make_backend_spec(self):
        assert isinstance(make_backend("vector"), VectorBackend)
        assert make_backend("vector").describe() == "vector"
        with pytest.raises(ParameterError, match="vector"):
            make_backend("warp")

    def test_model_batch_matches_serial_backend(self):
        requests = [
            EvalRequest(params=p) for p in _fig2_scenarios()[:6]
        ] + [EvalRequest(params=GCSParameters.small_test(), include_variance=True)]
        serial = SerialBackend().run(evaluate_request, requests)
        vector = VectorBackend().run(evaluate_request, requests)
        assert [o.index for o in vector] == [o.index for o in serial]
        for vec, ser in zip(vector, serial):
            assert vec.ok and ser.ok
            _assert_identical(vec.value, ser.value, variance=True)

    def test_generic_callable_falls_back(self):
        outcomes = VectorBackend().run(_square, [1, 2, 3])
        assert [o.value for o in outcomes] == [1, 4, 9]
        failing = VectorBackend().run(_explode_on_two, [1, 2, 3])
        assert [o.ok for o in failing] == [True, False, True]
        assert failing[1].error_type == "ValueError"

    def test_empty_batch(self):
        assert VectorBackend().run(evaluate_request, []) == []

    def test_error_capture_in_model_batch(self):
        good = EvalRequest(params=GCSParameters.small_test())
        bad = EvalRequest(
            params=GCSParameters.small_test(), method="no-such-method"
        )
        outcomes = VectorBackend().run(evaluate_request, [good, bad])
        assert outcomes[0].ok
        _assert_identical(
            outcomes[0].value, evaluate(GCSParameters.small_test())
        )
        assert not outcomes[1].ok
        assert outcomes[1].error_type == "ParameterError"
        # Parity: the serial backend captures the same failure.
        serial = SerialBackend().run(evaluate_request, [good, bad])
        assert not serial[1].ok
        assert serial[1].error_type == outcomes[1].error_type

    def test_batch_runner_composition(self):
        runner = BatchRunner(backend=VectorBackend())
        requests = [EvalRequest(params=p) for p in _fig2_scenarios()[:4]]
        batch = runner.run(requests + requests)  # duplicates dedup
        batch.report.raise_on_error()
        assert batch.report.n_unique == 4
        assert batch.report.n_evaluated == 4
        for request, result in zip(requests, batch.results[:4]):
            _assert_identical(result, evaluate(request.params))


class TestCacheParityVectorVsWorkers:
    """--jobs vector and --jobs N must be cache-indistinguishable."""

    GRID = [
        EvalRequest(
            params=GCSParameters.small_test(
                num_voters=m, detection_interval_s=float(tids)
            )
        )
        for m in (3, 5)
        for tids in (15.0, 60.0, 240.0)
    ]

    def _cold_then_warm(self, tmp_path, cold_jobs, warm_jobs):
        cache_dir = tmp_path / f"{cold_jobs}-then-{warm_jobs}"
        stats = []
        results = []
        for jobs in (cold_jobs, warm_jobs):
            runner = BatchRunner(
                cache=ResultCache(cache_dir=cache_dir),
                backend=make_backend(jobs),
            )
            batch = runner.run(self.GRID)
            batch.report.raise_on_error()
            stats.append((batch.report.n_cache_hits, batch.report.n_evaluated))
            results.append([r.mttsf_s for r in batch.results])
        return stats, results

    def test_hit_miss_parity_both_orders(self, tmp_path):
        stats_v, results_v = self._cold_then_warm(tmp_path, "vector", 2)
        stats_p, results_p = self._cold_then_warm(tmp_path, 2, "vector")
        # Same hit/miss profile regardless of which backend ran first:
        # cold run all misses, warm run served entirely by the other
        # backend's records (same content-addressed keys).
        assert stats_v == stats_p == [(0, len(self.GRID)), (len(self.GRID), 0)]
        # And every combination produced identical numbers.
        assert results_v[0] == results_v[1] == results_p[0] == results_p[1]


# ---------------------------------------------------------------------------
# tradeoff_curve / optimize_tids / model_grid_sweep routing
# ---------------------------------------------------------------------------

class TestSweepRouting:
    GRID = (15.0, 60.0, 240.0, 960.0)

    def test_tradeoff_curve_vector_parity(self):
        params = GCSParameters.small_test()
        serial = tradeoff_curve(params, self.GRID)
        seen = []
        vector = tradeoff_curve(
            params, self.GRID, workers="vector", progress=seen.append
        )
        assert [p.tids_s for p in vector] == list(self.GRID)
        assert len(seen) == len(self.GRID)
        for s, v in zip(serial, vector):
            _assert_identical(v.result, s.result)

    def test_tradeoff_curve_rejects_unknown_spec(self):
        with pytest.raises(ParameterError, match="vector"):
            tradeoff_curve(
                GCSParameters.small_test(), self.GRID, workers="warp"
            )

    def test_optimize_tids_vector_parity(self):
        params = GCSParameters.small_test()
        serial = optimize_tids(params, self.GRID)
        vector = optimize_tids(params, self.GRID, workers="vector")
        assert vector.optimal_tids_s == serial.optimal_tids_s
        assert [p.mttsf_s for p in vector.curve] == [
            p.mttsf_s for p in serial.curve
        ]

    def test_model_grid_sweep_vector_parity(self):
        grid = {"num_voters": (3, 5), "detection_interval_s": (15.0, 60.0)}
        serial = model_grid_sweep(grid, params=GCSParameters.small_test())
        vector = model_grid_sweep(
            grid, params=GCSParameters.small_test(), backend="vector"
        )
        assert [p.assignment for p in serial] == [p.assignment for p in vector]
        for s, v in zip(serial, vector):
            _assert_identical(v.value, s.value)

    def test_model_grid_sweep_rejects_params_and_base(self):
        with pytest.raises(ParameterError, match="params or base"):
            model_grid_sweep(
                {"num_voters": (3,)},
                params=GCSParameters.small_test(),
                base={"num_nodes": 12},
            )
