"""Communication-cost model: component equations, aggregation, ledger parity."""

import pytest

from repro.costs import ComponentRates, CostContext, GCSCostModel, MessageSizes
from repro.detection import DetectionFunction
from repro.errors import ParameterError
from repro.groupkey import RekeyCostModel
from repro.manet import NetworkModel
from repro.params import GCSParameters, NetworkParameters
from repro.voting import VotingErrorModel


@pytest.fixture
def params() -> GCSParameters:
    return GCSParameters.paper_defaults()


@pytest.fixture
def network(params) -> NetworkModel:
    return NetworkModel.analytic(params.network)


@pytest.fixture
def context(params, network) -> CostContext:
    return CostContext(params, network)


@pytest.fixture
def detection(params) -> DetectionFunction:
    return DetectionFunction.from_params(params.detection)


@pytest.fixture
def voting(params) -> VotingErrorModel:
    return VotingErrorModel(5, 0.01, 0.01)


class TestCostContext:
    def test_rekey_formulas_match_ledger_model(self, context, network):
        """At integer group sizes the closed forms equal the ledger costs."""
        ledger_model = RekeyCostModel(network, element_bits=1024)
        for n in (2, 5, 20, 100):
            assert context.rekey_join_hop_bits(float(n)) == pytest.approx(
                ledger_model.hop_bits("join", n)
            )
            assert context.rekey_leave_hop_bits(float(n)) == pytest.approx(
                ledger_model.hop_bits("evict", n)
            )

    def test_degenerate_sizes_cost_zero(self, context):
        assert context.rekey_join_hop_bits(1.0) == 0.0
        assert context.rekey_leave_hop_bits(0.5) == 0.0
        assert context.rekey_partition_hop_bits(2.0) == 0.0
        assert context.rekey_merge_hop_bits(0.3) == 0.0

    def test_mismatched_node_counts_rejected(self, params):
        other_net = NetworkModel.analytic(NetworkParameters(num_nodes=10))
        with pytest.raises(ParameterError):
            CostContext(params, other_net)


class TestComponentRates:
    def rates(self, context, detection, voting, t=100, u=0, d=0, ng=1) -> ComponentRates:
        return context.component_rates(
            t, u, d, ng, detection=detection, voting=voting
        )

    def test_gc_dominant_at_full_group(self, context, detection, voting):
        r = self.rates(context, detection, voting)
        # 100 nodes * (1/60) pkt/s * 4096 bits * 100-member flood.
        assert r.group_communication == pytest.approx(100 / 60 * 4096 * 100)
        assert r.group_communication > r.status_exchange
        assert r.group_communication > r.beacon

    def test_total_is_sum(self, context, detection, voting):
        r = self.rates(context, detection, voting, t=80, u=10, d=2)
        assert r.total == pytest.approx(sum(r.as_dict().values()))

    def test_empty_group_costs_nothing(self, context, detection, voting):
        r = self.rates(context, detection, voting, t=0, u=0, d=3)
        assert r.total == 0.0

    def test_ids_cost_scales_inverse_tids(self, context, voting, params):
        fast = DetectionFunction("linear", 15.0)
        slow = DetectionFunction("linear", 600.0)
        r_fast = context.component_rates(100, 0, 0, 1, detection=fast, voting=voting)
        r_slow = context.component_rates(100, 0, 0, 1, detection=slow, voting=voting)
        assert r_fast.ids_voting == pytest.approx(r_slow.ids_voting * 40.0)

    def test_eviction_rate_reflects_compromise(self, context, detection, voting):
        clean = self.rates(context, detection, voting, t=100, u=0)
        dirty = self.rates(context, detection, voting, t=90, u=10)
        assert dirty.eviction_rekey > clean.eviction_rekey

    def test_more_groups_reduce_gc_cost(self, context, detection, voting):
        one = self.rates(context, detection, voting, ng=1)
        two = self.rates(context, detection, voting, ng=2)
        # Same packet count, half the flood size.
        assert two.group_communication == pytest.approx(one.group_communication / 2)

    def test_partition_merge_traffic_only_with_multiple_groups(
        self, context, detection, voting
    ):
        one = self.rates(context, detection, voting, ng=1)
        two = self.rates(context, detection, voting, ng=2)
        assert two.partition_merge > one.partition_merge

    def test_validation(self, context, detection, voting):
        with pytest.raises(ParameterError):
            context.component_rates(-1, 0, 0, 1, detection=detection, voting=voting)
        with pytest.raises(ParameterError):
            context.component_rates(5, 0, 0, 0, detection=detection, voting=voting)


class TestGCSCostModel:
    def test_default_scenario_in_paper_range(self, params, network):
        model = GCSCostModel(params, network)
        c = model.state_cost_rate(100, 0, 0)
        # Figures 3/5 span roughly 1e5..1e6 hop-bits/s.
        assert 1e5 < c < 2e6

    def test_cache_consistency(self, params, network):
        model = GCSCostModel(params, network)
        a = model.state_cost_rate(90, 5, 1)
        b = model.state_cost_rate(90, 5, 1)
        assert a == b

    def test_breakdown_totals(self, params, network):
        model = GCSCostModel(params, network)
        bd = model.breakdown(100, 0, 0)
        assert bd["total"] == pytest.approx(model.state_cost_rate(100, 0, 0))
        assert set(bd) == {
            "group_communication",
            "status_exchange",
            "beacon",
            "rekey_membership",
            "ids_voting",
            "eviction_rekey",
            "partition_merge",
            "total",
        }

    def test_explicit_ng_distribution(self, params, network):
        model1 = GCSCostModel(params, network, ng_distribution={1: 1.0})
        model2 = GCSCostModel(params, network, ng_distribution={2: 1.0})
        # Two groups halve flood sizes: GC drops.
        assert model2.state_cost_rate(100, 0, 0) < model1.state_cost_rate(100, 0, 0)
        assert model1.expected_group_count() == 1.0
        assert model2.expected_group_count() == 2.0

    def test_weighted_distribution_interpolates(self, params, network):
        lo = GCSCostModel(params, network, ng_distribution={1: 1.0})
        hi = GCSCostModel(params, network, ng_distribution={2: 1.0})
        mid = GCSCostModel(params, network, ng_distribution={1: 0.5, 2: 0.5})
        c_mid = mid.state_cost_rate(100, 0, 0)
        assert lo.state_cost_rate(100, 0, 0) > c_mid > hi.state_cost_rate(100, 0, 0)

    def test_bad_distribution_rejected(self, params, network):
        with pytest.raises(ParameterError):
            GCSCostModel(params, network, ng_distribution={1: 0.4})
        with pytest.raises(ParameterError):
            GCSCostModel(params, network, ng_distribution={0: 1.0})

    def test_channel_utilization(self, params, network):
        model = GCSCostModel(params, network)
        assert model.channel_utilization(5e5) == pytest.approx(0.5)
        with pytest.raises(ParameterError):
            model.channel_utilization(-1.0)

    def test_smaller_group_cheaper(self, params, network):
        model = GCSCostModel(params, network)
        # Lifetime shrinkage: fewer live members => lower cost rate.
        assert model.state_cost_rate(50, 0, 0) < model.state_cost_rate(100, 0, 0)

    def test_custom_sizes(self, params, network):
        small = GCSCostModel(
            params, network, sizes=MessageSizes(data_packet_bits=1024.0)
        )
        big = GCSCostModel(
            params, network, sizes=MessageSizes(data_packet_bits=8192.0)
        )
        assert small.state_cost_rate(100, 0, 0) < big.state_cost_rate(100, 0, 0)


class TestMessageSizes:
    def test_defaults_positive(self):
        sizes = MessageSizes()
        assert sizes.data_packet_bits == 4096.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            MessageSizes(vote_bits=0.0)
