"""Birth-death chains: closed forms, NG model, CTMC export consistency."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctmc import BirthDeathProcess, stationary_distribution
from repro.errors import ParameterError


class TestConstruction:
    def test_sequence_rates(self):
        bd = BirthDeathProcess(0, 2, [1.0, 2.0], [3.0, 4.0])
        assert bd.num_levels == 3
        assert bd.birth_rate(0) == 1.0
        assert bd.birth_rate(2) == 0.0  # top level
        assert bd.death_rate(0) == 0.0  # bottom level
        assert bd.death_rate(2) == 4.0

    def test_callable_rates(self):
        bd = BirthDeathProcess(1, 4, lambda g: 0.5 * g, lambda g: 2.0 * (g - 1))
        assert bd.birth_rate(2) == 1.0
        assert bd.death_rate(3) == 4.0

    def test_wrong_length_rejected(self):
        with pytest.raises(ParameterError):
            BirthDeathProcess(0, 2, [1.0], [1.0, 1.0])

    def test_negative_birth_rejected(self):
        with pytest.raises(ParameterError):
            BirthDeathProcess(0, 1, [-1.0], [1.0])

    def test_zero_death_rejected(self):
        with pytest.raises(ParameterError):
            BirthDeathProcess(0, 1, [1.0], [0.0])

    def test_level_bounds_checked(self):
        bd = BirthDeathProcess(1, 3, [1.0, 1.0], [1.0, 1.0])
        with pytest.raises(ParameterError):
            bd.birth_rate(0)
        with pytest.raises(ParameterError):
            bd.death_rate(4)

    def test_lo_gt_hi_rejected(self):
        with pytest.raises(ParameterError):
            BirthDeathProcess(3, 1, [], [])


class TestStationary:
    def test_mm1k_closed_form(self):
        # Constant rates lam/mu on 0..K: pi_i ∝ rho^i.
        lam, mu, K = 2.0, 3.0, 6
        bd = BirthDeathProcess(0, K, [lam] * K, [mu] * K)
        rho = lam / mu
        ref = rho ** np.arange(K + 1)
        ref /= ref.sum()
        np.testing.assert_allclose(bd.stationary_distribution(), ref, rtol=1e-12)

    def test_single_level(self):
        bd = BirthDeathProcess(1, 1, [], [])
        np.testing.assert_allclose(bd.stationary_distribution(), [1.0])
        assert bd.mean_level() == 1.0

    def test_matches_gth_on_exported_ctmc(self):
        bd = BirthDeathProcess(1, 5, lambda g: 0.3 * g, lambda g: 1.1 * (g - 1))
        pi_closed = bd.stationary_distribution()
        pi_gth = stationary_distribution(bd.to_ctmc(), method="gth")
        np.testing.assert_allclose(pi_closed, pi_gth, rtol=1e-10)

    def test_zero_birth_truncates_support(self):
        bd = BirthDeathProcess(0, 2, [1.0, 0.0], [1.0, 1.0])
        pi = bd.stationary_distribution()
        assert pi[2] == 0.0
        assert pi.sum() == pytest.approx(1.0)

    def test_level_distribution_keys(self):
        bd = BirthDeathProcess.for_group_count(0.001, 0.01, 3)
        dist = bd.level_distribution()
        assert sorted(dist) == [1, 2, 3]
        assert sum(dist.values()) == pytest.approx(1.0)


class TestGroupCountModel:
    def test_rare_partition_concentrates_on_one_group(self):
        bd = BirthDeathProcess.for_group_count(1e-6, 1e-2, 4)
        pi = bd.stationary_distribution()
        assert pi[0] > 0.999
        assert bd.mean_level() == pytest.approx(1.0, abs=1e-2)

    def test_frequent_partition_spreads_mass(self):
        bd = BirthDeathProcess.for_group_count(0.1, 0.1, 4)
        pi = bd.stationary_distribution()
        assert pi[0] < 0.6
        assert bd.mean_level() > 1.3

    def test_unscaled_variant(self):
        bd = BirthDeathProcess.for_group_count(0.5, 1.0, 3, scale_with_level=False)
        # Constant-rate geometric shape: pi ∝ (1, 0.5, 0.25).
        ref = np.array([1.0, 0.5, 0.25])
        np.testing.assert_allclose(bd.stationary_distribution(), ref / ref.sum(), rtol=1e-12)

    def test_invalid_rates(self):
        with pytest.raises(ParameterError):
            BirthDeathProcess.for_group_count(-1.0, 1.0, 3)
        with pytest.raises(ParameterError):
            BirthDeathProcess.for_group_count(1.0, 0.0, 3)
        with pytest.raises(ParameterError):
            BirthDeathProcess.for_group_count(1.0, 1.0, 0)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), k=st.integers(2, 12))
def test_property_detailed_balance(seed, k):
    rng = np.random.default_rng(seed)
    birth = rng.uniform(0.1, 3.0, size=k)
    death = rng.uniform(0.1, 3.0, size=k)
    bd = BirthDeathProcess(0, k, birth, death)
    pi = bd.stationary_distribution()
    # Detailed balance: pi_i * birth_i == pi_{i+1} * death_{i+1}.
    np.testing.assert_allclose(pi[:-1] * birth, pi[1:] * death, rtol=1e-9)
    assert pi.sum() == pytest.approx(1.0, abs=1e-12)
