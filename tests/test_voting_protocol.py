"""Operational voting protocol + Monte Carlo agreement with Equation 1."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.voting import VoteOutcome, VotingErrorModel, VotingProtocol


class TestSelectVoters:
    def test_excludes_target(self):
        proto = VotingProtocol(3, 0.01, 0.01)
        rng = np.random.default_rng(0)
        voters = proto.select_voters(5, list(range(10)), rng)
        assert 5 not in voters
        assert len(voters) == 3
        assert len(set(voters)) == 3

    def test_small_pool_uses_everyone(self):
        proto = VotingProtocol(7, 0.01, 0.01)
        voters = proto.select_voters(1, [0, 1, 2], np.random.default_rng(0))
        assert sorted(voters) == [0, 2]

    def test_empty_pool(self):
        proto = VotingProtocol(3, 0.01, 0.01)
        assert proto.select_voters(1, [1], np.random.default_rng(0)) == []


class TestCastBallot:
    def test_colluder_votes_against_good_target(self):
        proto = VotingProtocol(3, 0.5, 0.5)
        rng = np.random.default_rng(1)
        assert proto.cast_ballot(True, False, rng) is True
        assert proto.cast_ballot(True, True, rng) is False

    def test_perfect_good_voter(self):
        proto = VotingProtocol(3, 0.0, 0.0)
        rng = np.random.default_rng(1)
        assert proto.cast_ballot(False, True, rng) is True
        assert proto.cast_ballot(False, False, rng) is False

    def test_error_rates_realised(self):
        proto = VotingProtocol(3, 0.25, 0.1)
        rng = np.random.default_rng(42)
        n = 20_000
        fn = sum(not proto.cast_ballot(False, True, rng) for _ in range(n)) / n
        fp = sum(proto.cast_ballot(False, False, rng) for _ in range(n)) / n
        assert fn == pytest.approx(0.25, abs=0.01)
        assert fp == pytest.approx(0.1, abs=0.01)


class TestConductVote:
    def test_no_quorum_keeps_target(self):
        proto = VotingProtocol(5, 0.0, 0.0)
        outcome = proto.conduct_vote(0, False, [0], [], np.random.default_rng(0))
        assert outcome.evicted is False
        assert outcome.num_voters == 0

    def test_unanimous_good_vote_evicts_bad_target(self):
        proto = VotingProtocol(5, 0.0, 0.0)
        outcome = proto.conduct_vote(
            9, True, list(range(10)), [9], np.random.default_rng(0)
        )
        assert outcome.evicted is True
        assert outcome.votes_against == 5

    def test_colluders_protect_bad_target(self):
        proto = VotingProtocol(3, 0.0, 0.0)
        # All candidate voters are compromised: they vote to keep.
        outcome = proto.conduct_vote(
            0, True, [0, 1, 2, 3], [0, 1, 2, 3], np.random.default_rng(0)
        )
        assert outcome.evicted is False
        assert outcome.votes_against == 0

    def test_inconsistent_target_flag_rejected(self):
        proto = VotingProtocol(3, 0.0, 0.0)
        with pytest.raises(ParameterError):
            proto.conduct_vote(0, False, [0, 1, 2, 3], [0], np.random.default_rng(0))

    def test_outcome_metadata(self):
        proto = VotingProtocol(3, 0.0, 0.0)
        outcome = proto.conduct_vote(
            2, True, [0, 1, 2, 3, 4], [2, 3], np.random.default_rng(5)
        )
        assert isinstance(outcome, VoteOutcome)
        assert outcome.target == 2
        assert outcome.target_compromised is True
        assert all(b.voter != 2 for b in outcome.ballots)
        flagged = {b.voter: b.voter_compromised for b in outcome.ballots}
        for voter, is_bad in flagged.items():
            assert is_bad == (voter == 3)


class TestMonteCarloMatchesEquationOne:
    """The protocol's eviction frequencies converge to Equation 1."""

    @pytest.mark.parametrize(
        "good,bad,m", [(8, 2, 3), (10, 3, 5), (6, 5, 5)]
    )
    def test_pfp_agreement(self, good, bad, m):
        p1, p2 = 0.05, 0.15
        model = VotingErrorModel(m, p1, p2)
        proto = VotingProtocol(m, p1, p2)
        rng = np.random.default_rng(123)
        members = list(range(good + bad))
        compromised = list(range(good, good + bad))
        trials = 6000
        evictions = sum(
            proto.conduct_vote(0, False, members, compromised, rng).evicted
            for _ in range(trials)
        )
        estimate = evictions / trials
        exact = model.false_positive_probability(good, bad)
        # 4-sigma binomial tolerance.
        sigma = np.sqrt(max(exact * (1 - exact), 1e-6) / trials)
        assert abs(estimate - exact) < 4 * sigma + 1e-3

    @pytest.mark.parametrize(
        "good,bad,m", [(8, 2, 3), (10, 3, 5), (4, 4, 5)]
    )
    def test_pfn_agreement(self, good, bad, m):
        p1, p2 = 0.1, 0.05
        model = VotingErrorModel(m, p1, p2)
        proto = VotingProtocol(m, p1, p2)
        rng = np.random.default_rng(321)
        members = list(range(good + bad))
        compromised = list(range(good, good + bad))
        target = compromised[0]
        trials = 6000
        kept = sum(
            not proto.conduct_vote(target, True, members, compromised, rng).evicted
            for _ in range(trials)
        )
        estimate = kept / trials
        exact = model.false_negative_probability(good, bad)
        sigma = np.sqrt(max(exact * (1 - exact), 1e-6) / trials)
        assert abs(estimate - exact) < 4 * sigma + 1e-3
