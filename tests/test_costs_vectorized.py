"""Vectorised cost path == scalar cost path (element-wise)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costs import GCSCostModel
from repro.detection.functions import DetectionFunction, vector_shape_factor
from repro.errors import ParameterError
from repro.manet import NetworkModel
from repro.params import GCSParameters


@pytest.fixture(scope="module")
def model() -> GCSCostModel:
    params = GCSParameters.paper_defaults(num_nodes=20)
    return GCSCostModel(params, NetworkModel.analytic(params.network))


class TestVectorShapeFactor:
    @pytest.mark.parametrize("form", ["logarithmic", "linear", "polynomial"])
    @pytest.mark.parametrize("shifted", [True, False])
    def test_matches_scalar_detection(self, form, shifted):
        fn = DetectionFunction(form, 60.0, shifted_log=shifted)
        ratios = np.array([1.0, 1.5, 2.0, 5.0, 20.0])
        vec = vector_shape_factor(form, ratios, 3.0, shifted) / 60.0
        for r, v in zip(ratios, vec):
            assert v == pytest.approx(fn.rate_at_ratio(r), rel=1e-12)

    def test_unknown_form(self):
        with pytest.raises(ParameterError):
            vector_shape_factor("cubic", np.array([1.0]), 3.0, True)


class TestCostVector:
    def test_matches_scalar_on_full_lattice(self, model):
        n = model.params.num_nodes
        ts, us, ds = [], [], []
        for t in range(n + 1):
            for u in range(n + 1 - t):
                for d in range(n + 1 - t - u):
                    ts.append(t)
                    us.append(u)
                    ds.append(d)
        vec = model.cost_vector(np.array(ts), np.array(us), np.array(ds))
        # Compare a deterministic sample of 200 states scalar-wise.
        idx = np.linspace(0, len(ts) - 1, 200).astype(int)
        for i in idx:
            scalar = model.state_cost_rate(ts[i], us[i], ds[i])
            assert vec[i] == pytest.approx(scalar, rel=1e-10, abs=1e-12)

    def test_per_component_sums_to_total(self, model):
        t = np.array([20, 15, 10, 0])
        u = np.array([0, 3, 5, 0])
        d = np.array([0, 2, 5, 0])
        total = model.cost_vector(t, u, d)
        parts = model.cost_vector(t, u, d, per_component=True)
        np.testing.assert_allclose(sum(parts.values()), total, rtol=1e-12)

    def test_component_names_match_breakdown(self, model):
        parts = model.cost_vector(
            np.array([10]), np.array([2]), np.array([1]), per_component=True
        )
        breakdown = model.breakdown(10, 2, 1)
        for name, arr in parts.items():
            assert breakdown[name] == pytest.approx(float(arr[0]), rel=1e-10)

    def test_shape_mismatch_rejected(self, model):
        with pytest.raises(ParameterError):
            model.cost_vector(np.array([1, 2]), np.array([1]), np.array([1]))

    def test_dead_states_cost_zero(self, model):
        vec = model.cost_vector(np.array([0]), np.array([0]), np.array([5]))
        assert vec[0] == 0.0


@settings(max_examples=30, deadline=None)
@given(
    t=st.integers(0, 20),
    u=st.integers(0, 20),
    d=st.integers(0, 20),
)
def test_property_vector_equals_scalar(t, u, d):
    if t + u + d > 20:
        t, u, d = t % 7, u % 7, d % 7
    params = GCSParameters.paper_defaults(num_nodes=20)
    model = GCSCostModel(params, NetworkModel.analytic(params.network))
    vec = model.cost_vector(np.array([t]), np.array([u]), np.array([d]))
    assert vec[0] == pytest.approx(model.state_cost_rate(t, u, d), rel=1e-10, abs=1e-12)
