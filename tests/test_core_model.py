"""Core model: failure conditions, rates, the Figure 1 SPN."""


import pytest

from repro.core import GCSRates, build_gcs_spn, security_failure_condition
from repro.core.failure import c1_data_leak, c2_byzantine, depleted, is_absorbed
from repro.errors import ParameterError
from repro.manet import NetworkModel
from repro.params import GCSParameters
from repro.spn import explore, net_to_dot


@pytest.fixture
def params() -> GCSParameters:
    return GCSParameters.small_test()


@pytest.fixture
def network(params) -> NetworkModel:
    return NetworkModel.analytic(params.network)


@pytest.fixture
def rates(params, network) -> GCSRates:
    return GCSRates.from_scenario(params, network)


class TestFailureConditions:
    def test_c1(self):
        assert c1_data_leak(10, 0, 1)
        assert not c1_data_leak(10, 5, 0)

    def test_c2_exact_boundary(self):
        # u/(t+u) > 1/3 must be strict.
        assert not c2_byzantine(2, 1, 0)  # 1/3 exactly -> no failure
        assert c2_byzantine(1, 1, 0)  # 1/2 > 1/3
        assert not c2_byzantine(10, 0, 0)  # no compromised member
        assert c2_byzantine(0, 1, 0)

    def test_c2_requires_no_leak_flag(self):
        assert not c2_byzantine(1, 1, 1)  # classified as C1 instead

    def test_depleted(self):
        assert depleted(0, 0, 0)
        assert not depleted(1, 0, 0)
        assert not depleted(0, 0, 1)

    def test_combined_condition(self):
        assert security_failure_condition(10, 0, 1)
        assert security_failure_condition(1, 1, 0)
        assert not security_failure_condition(10, 1, 0)


class TestRates:
    def test_compromise_rate_is_attacker_function(self, rates, params):
        lam = params.attack.base_compromise_rate_hz
        assert rates.rate_compromise(12, 0) == pytest.approx(lam)
        assert rates.rate_compromise(6, 6) == pytest.approx(lam * 2.0)
        assert rates.rate_compromise(0, 5) == 0.0

    def test_data_leak_rate(self, rates, params):
        p1 = params.detection.host_false_negative
        lq = params.workload.data_rate_hz
        assert rates.rate_data_leak(3) == pytest.approx(3 * p1 * lq)
        assert rates.rate_data_leak(0) == 0.0

    def test_detection_rate_formula(self, rates, params):
        t, u = 10, 2
        d_rate = rates.detection.rate(params.num_nodes, t + u)
        pfn = rates.voting.false_negative_probability(t, u)
        assert rates.rate_detection(t, u) == pytest.approx(u * d_rate * (1 - pfn))
        assert rates.rate_detection(10, 0) == 0.0

    def test_false_accusation_rate_formula(self, rates, params):
        t, u = 10, 2
        d_rate = rates.detection.rate(params.num_nodes, t + u)
        pfp = rates.voting.false_positive_probability(t, u)
        assert rates.rate_false_accusation(t, u) == pytest.approx(t * d_rate * pfp)
        assert rates.rate_false_accusation(0, 2) == 0.0

    def test_rekey_rate_single_server(self, rates):
        r1 = rates.rate_rekey(10, 0, 1)
        r5 = rates.rate_rekey(10, 0, 5)
        # Rate reflects the (slightly larger) member count, not the backlog.
        assert r1 == pytest.approx(1.0 / rates.rekey.tcm_s(11))
        assert r5 == pytest.approx(1.0 / rates.rekey.tcm_s(15))
        assert rates.rate_rekey(10, 0, 0) == 0.0

    def test_group_scale_shrinks_voting_pools(self, params, network):
        full = GCSRates.from_scenario(params, network, expected_groups=1.0)
        half = GCSRates.from_scenario(params, network, expected_groups=2.0)
        # Halved pools: collusion weighs more, Pfp differs.
        assert half.rate_false_accusation(10, 2) != full.rate_false_accusation(10, 2)

    def test_validation(self, params, network):
        with pytest.raises(ParameterError):
            GCSRates.from_scenario(params, network, expected_groups=0.5)

    def test_describe(self, rates):
        assert "m=5" in rates.describe()


class TestFigureOneSPN:
    def test_structure_matches_figure_1(self, params, network):
        net = build_gcs_spn(params, network)
        assert {p.name for p in net.places} == {"Tm", "UCm", "DCm", "GF"}
        assert {t.name for t in net.transitions} == {
            "T_CP",
            "T_DRQ",
            "T_IDS",
            "T_FA",
            "T_RK",
        }
        assert net.initial_marking == (params.num_nodes, 0, 0, 0)

    def test_coupled_adds_group_dynamics(self, params, network):
        net = build_gcs_spn(params, network, coupled_groups=True)
        assert "NG" in {p.name for p in net.places}
        names = {t.name for t in net.transitions}
        assert "T_PAR" in names and "T_MER" in names

    def test_failure_states_are_absorbing(self, params, network):
        net = build_gcs_spn(params, network)
        # C2 marking: u=2, t=1 -> 2u > t.
        marking = net.marking(Tm=1, UCm=2)
        assert net.enabled_transitions(marking) == []
        # C1 marking.
        marking = net.marking(Tm=5, UCm=1, GF=1)
        assert net.enabled_transitions(marking) == []

    def test_healthy_state_enables_expected_transitions(self, params, network):
        net = build_gcs_spn(params, network)
        enabled = {t.name for t, _ in net.enabled_transitions(net.marking(Tm=8, UCm=1, DCm=1))}
        assert enabled == {"T_CP", "T_DRQ", "T_IDS", "T_FA", "T_RK"}
        # Pristine group: compromise, and false accusation from host-IDS
        # errors alone (Pfp > 0 with zero colluders), but nothing else.
        enabled0 = {t.name for t, _ in net.enabled_transitions(net.initial_marking)}
        assert enabled0 == {"T_CP", "T_FA"}

    def test_reachability_respects_lattice_invariants(self, params, network):
        net = build_gcs_spn(params, network)
        graph = explore(net)
        n = params.num_nodes
        lattice = (n + 1) * (n + 2) * (n + 3) // 6
        # Guards absorb at the C2 frontier, so the reachable set is a
        # strict subset of the full simplex (plus C1 leak markings).
        assert 0 < graph.num_states <= lattice + graph.num_states
        for marking in graph.markings:
            view = net.view(marking)
            assert view["Tm"] + view["UCm"] + view["DCm"] <= n
            assert view["GF"] <= 1

    def test_dot_export_of_figure_1(self, params, network):
        dot = net_to_dot(build_gcs_spn(params, network))
        for name in ("T_CP", "T_IDS", "T_FA", "T_DRQ", "T_RK", "Tm", "UCm", "DCm", "GF"):
            assert name in dot

    def test_is_absorbed_view(self, params, network):
        net = build_gcs_spn(params, network)
        assert is_absorbed(net.view(net.marking(Tm=1, UCm=2)))
        assert not is_absorbed(net.view(net.marking(Tm=9, UCm=1)))
