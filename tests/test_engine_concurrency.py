"""Concurrent multi-process cache-sharing stress tests.

The acceptance bar for the shared result store: N independent worker
*processes* pointed at one ``--cache-dir`` must produce byte-identical
series to the serial path, leave zero torn or corrupt records behind,
and — when a size cap is configured — never let the directory exceed
it.

Process count scales with ``REPRO_TEST_JOBS`` (the CI ``engine-parallel``
job sets 4; the default 3 keeps single-core laptops honest but quick).
Workers are deliberately *processes*, not threads: the point is the
advisory file lock and the atomic rename, which in-process locks never
exercise.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from pathlib import Path

import pytest

from repro.engine import BatchRunner, ResultCache, run_tids_sweep
from repro.engine.cache import result_from_dict
from repro.params import GCSParameters

GRID = (15.0, 60.0, 240.0, 960.0)

N_WORKERS = max(2, int(os.environ.get("REPRO_TEST_JOBS", "3")))


def _hammer_shared_cache(args: tuple[str, "int | None"]) -> list[float]:
    """One worker: sweep the grid through a cache in the shared dir."""
    cache_dir, max_disk_bytes = args
    cache = ResultCache(
        cache_dir=Path(cache_dir),
        max_disk_bytes=max_disk_bytes,
        memory_capacity=0,  # every hit goes to disk: maximal contention
    )
    points = run_tids_sweep(
        BatchRunner(cache=cache), GCSParameters.small_test(), GRID
    )
    return [p.mttsf_s for p in points]


def _serial_reference() -> list[float]:
    points = run_tids_sweep(BatchRunner(), GCSParameters.small_test(), GRID)
    return [p.mttsf_s for p in points]


def _assert_no_torn_records(cache_dir: Path) -> int:
    """Every record on disk parses and rebuilds; returns the count."""
    records = sorted(cache_dir.glob("v*/*/*.json"))
    for record in records:
        payload = json.loads(record.read_text())  # raises on torn JSON
        assert payload["key"] == record.stem
        result_from_dict(payload["result"])  # raises on truncated payload
    assert not list(cache_dir.glob("v*/*/*.tmp")), "leaked tmp files"
    return len(records)


def _run_workers(cache_dir: Path, cap: "int | None") -> list[list[float]]:
    tasks = [(str(cache_dir), cap)] * N_WORKERS
    # fork shares the warm imports; every worker still has its own
    # ResultCache instance and its own advisory lock fd.
    with multiprocessing.get_context("fork").Pool(N_WORKERS) as pool:
        return pool.map(_hammer_shared_cache, tasks)


@pytest.mark.slow
class TestConcurrentWriters:
    def test_shared_dir_identical_to_serial(self, tmp_path):
        reference = _serial_reference()
        all_values = _run_workers(tmp_path, cap=None)
        for values in all_values:
            assert values == reference  # byte-identical, not approx
        # All four unique points landed, none torn, none duplicated.
        assert _assert_no_torn_records(tmp_path) == len(GRID)

    def test_shared_dir_respects_size_cap(self, tmp_path):
        probe_dir = tmp_path / "probe"
        _hammer_shared_cache((str(probe_dir), None))
        record_size = max(
            p.stat().st_size for p in probe_dir.glob("v*/*/*.json")
        )
        cap = 2 * record_size + record_size // 2  # room for 2 of 4 records

        shared = tmp_path / "shared"
        reference = _serial_reference()
        all_values = _run_workers(shared, cap=cap)
        for values in all_values:
            assert values == reference
        usage = sum(p.stat().st_size for p in shared.glob("v*/*/*.json"))
        assert usage <= cap, f"cache dir {usage} B exceeds cap {cap} B"
        _assert_no_torn_records(shared)

    def test_warm_shared_dir_serves_every_worker_from_disk(self, tmp_path):
        _hammer_shared_cache((str(tmp_path), None))  # pre-warm serially
        before = {
            p: p.read_bytes() for p in sorted(tmp_path.glob("v*/*/*.json"))
        }
        all_values = _run_workers(tmp_path, cap=None)
        reference = _serial_reference()
        for values in all_values:
            assert values == reference
        after = {
            p: p.read_bytes() for p in sorted(tmp_path.glob("v*/*/*.json"))
        }
        # Warm workers only read: records are byte-for-byte untouched.
        assert before == after
