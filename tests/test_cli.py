"""CLI smoke tests (in-process, no subprocess overhead)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_parses(self):
        args = build_parser().parse_args(["run", "fig2", "--full", "--seed", "3"])
        assert args.experiment == "fig2"
        assert args.full is True
        assert args.seed == 3

    def test_evaluate_defaults(self):
        args = build_parser().parse_args(["evaluate"])
        assert args.n == 100
        assert args.tids == 60.0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "val-sim" in out

    def test_unknown_experiment_returns_error(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_evaluate_small(self, capsys):
        code = main(
            ["evaluate", "--n", "16", "--m", "3", "--tids", "120", "--breakdown"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MTTSF" in out and "cost/s" in out

    def test_run_scale_with_artifacts(self, capsys, tmp_path):
        code = main(["run", "scale", "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "solver_scaling" in out
        assert (tmp_path / "scale.json").exists()

    def test_package_version_importable(self):
        import repro

        assert repro.__version__


class TestSweepCommand:
    def test_sweep_parses_engine_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--axis", "num_voters=3,5", "--jobs", "2",
             "--cache-dir", "/tmp/x"]
        )
        assert args.axis == ["num_voters=3,5"]
        assert args.jobs == 2 and args.cache_dir == "/tmp/x"

    def test_jobs_accepts_backend_grammar(self):
        args = build_parser().parse_args(["run", "fig2", "--jobs", "auto"])
        assert args.jobs == "auto"
        args = build_parser().parse_args(["run", "fig2", "--jobs", "thread:2"])
        assert args.jobs == "thread:2"

    def test_bad_jobs_spec_is_an_error(self, capsys):
        assert main(["run", "scale", "--jobs", "nonsense"]) == 2
        assert "jobs" in capsys.readouterr().err

    def test_cache_cap_requires_cache_dir(self, capsys):
        assert main(["run", "scale", "--jobs", "0", "--cache-cap-mb", "1"]) == 2
        assert "cache_cap_mb" in capsys.readouterr().err
        # A lone --cache-cap-mb must fail the same way, not be silently
        # dropped because no other engine flag was given.
        assert main(["run", "scale", "--cache-cap-mb", "1"]) == 2
        assert "cache_cap_mb" in capsys.readouterr().err

    def test_verbose_prints_cache_stats(self, capsys, tmp_path):
        code = main(
            ["sweep", "--axis", "detection_interval_s=15,60", "--n", "12",
             "--cache-dir", str(tmp_path / "cache"),
             "--cache-cap-mb", "8", "--verbose"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cache stats:" in out
        assert "disk_evictions=0" in out
        assert "misses=2" in out

    def test_sweep_grid(self, capsys, tmp_path):
        code = main(
            ["sweep", "--axis", "detection_interval_s=15,60",
             "--axis", "num_voters=3,5", "--n", "12",
             "--cache-dir", str(tmp_path / "cache"),
             "--out", str(tmp_path / "sweep.json")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "4 points" in out and "MTTSF_s" in out
        artifact = (tmp_path / "sweep.json").read_text()
        assert "cli-sweep" in artifact

    def test_sweep_needs_axes(self, capsys):
        assert main(["sweep"]) == 2
        assert "--axis" in capsys.readouterr().err

    def test_sweep_bad_axis_spec(self, capsys):
        assert main(["sweep", "--axis", "nonsense"]) == 2
        assert "NAME=VALUE" in capsys.readouterr().err

    def test_sweep_spec_file(self, capsys, tmp_path):
        import json

        spec = tmp_path / "jobs.json"
        spec.write_text(json.dumps({
            "name": "mini",
            "jobs": [
                {"name": "a", "base": {"num_nodes": 12},
                 "axes": {"detection_interval_s": [15.0, 60.0]}},
                {"name": "b", "base": {"num_nodes": 12},
                 "axes": {"detection_interval_s": [15.0, 60.0]}},
            ],
        }))
        assert main(["sweep", "--spec", str(spec)]) == 0
        out = capsys.readouterr().out
        assert "4 requested, 2 unique" in out

    def test_point_errors_exit_nonzero_not_silent(self, capsys, tmp_path):
        import json

        # A bogus method passes spec construction but fails per point at
        # evaluation time: the series must be marked FAILED and the exit
        # code must flag it (never a silent 0 with partial data).
        spec = tmp_path / "bad.json"
        spec.write_text(json.dumps({
            "name": "bad", "base": {"num_nodes": 12}, "method": "bogus",
            "axes": {"detection_interval_s": [15.0, 60.0]},
        }))
        out_path = tmp_path / "partial.json"
        assert main(["sweep", "--spec", str(spec), "--out", str(out_path)]) == 1
        captured = capsys.readouterr()
        assert captured.out.count("FAILED") == 4  # 2 points x 2 metrics
        assert "2 of 2 grid points failed" in captured.err

    def test_run_with_cache_reuses_results(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["run", "abl-hostids", "--cache-dir", cache]) == 0
        first = capsys.readouterr().out
        assert main(["run", "abl-hostids", "--cache-dir", cache]) == 0
        second = capsys.readouterr().out

        def series_lines(text):
            return [
                line for line in text.splitlines()
                if not line.startswith("==")  # header carries wall time
            ]

        assert series_lines(first) == series_lines(second)
        cache_files = list((tmp_path / "cache").glob("v*/*/*.json"))
        assert len(cache_files) == 5  # one per host-IDS quality level


class TestObservabilityFlags:
    SWEEP = ["sweep", "--axis", "detection_interval_s=15,60", "--n", "12"]

    def test_traced_sweep_writes_valid_artifacts(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        metrics_out = tmp_path / "metrics.json"
        out = tmp_path / "sweep.json"
        code = main(self.SWEEP + [
            "--trace", str(trace),
            "--metrics-out", str(metrics_out),
            "--out", str(out),
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert f"trace: {trace}" in stdout
        assert f"manifest: {tmp_path / 'sweep.manifest.json'}" in stdout

        payload = json.loads(trace.read_text())
        names = {e["name"] for e in payload["traceEvents"]}
        assert {"batch.dedup", "batch.evaluate"} <= names
        assert all(e["ph"] == "X" for e in payload["traceEvents"])

        merged = json.loads(metrics_out.read_text())
        assert merged["engine.requests"]["value"] == 2
        assert merged["engine.evaluated"]["value"] == 2

        manifest = json.loads((tmp_path / "sweep.manifest.json").read_text())
        assert manifest["schema_version"] == 1
        assert manifest["backend"] == "serial"
        assert len(manifest["params_digest"]) == 64
        # The manifest report mirrors the artifact's own report counts.
        artifact = json.loads(out.read_text())
        (report,) = manifest["reports"]
        assert report["n_requested"] == artifact["report"]["n_requested"]
        assert report["n_evaluated"] == artifact["report"]["n_evaluated"]

    def test_jsonl_trace_format(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main(self.SWEEP + ["--trace", str(trace)]) == 0
        lines = [json.loads(l) for l in trace.read_text().splitlines()]
        assert lines and all("name" in l and "start_s" in l for l in lines)

    def test_explicit_manifest_path(self, tmp_path):
        manifest = tmp_path / "deep" / "run.manifest.json"
        assert main(self.SWEEP + ["--manifest", str(manifest)]) == 0
        payload = json.loads(manifest.read_text())
        assert payload["command"] == "repro-experiments sweep"
        assert payload["errors"] == []

    def test_progress_line_on_stderr(self, capsys):
        assert main(self.SWEEP + ["--progress"]) == 0
        err = capsys.readouterr().err
        assert "2/2 points" in err
        assert "evaluated=2" in err
        assert err.endswith("\n")

    def test_verbose_prints_phase_timings(self, capsys, tmp_path):
        code = main(self.SWEEP + [
            "--cache-dir", str(tmp_path / "cache"), "--verbose",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "phases: dedup=" in out
        assert "hit rate" in out

    def test_run_manifest_lands_in_out_dir(self, capsys, tmp_path):
        out = tmp_path / "artifacts"
        code = main([
            "run", "abl-hostids", "--jobs", "0",
            "--out", str(out),
            "--metrics-out", str(tmp_path / "metrics.json"),
        ])
        assert code == 0
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["command"] == "repro-experiments run abl-hostids"
        assert manifest["reports"], "batch ledger missing from manifest"

    def test_bad_log_level_is_a_cli_error(self, capsys):
        assert main(self.SWEEP + ["--log-level", "NOISY"]) == 2
        assert "unknown log level" in capsys.readouterr().err
