"""CLI smoke tests (in-process, no subprocess overhead)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_parses(self):
        args = build_parser().parse_args(["run", "fig2", "--full", "--seed", "3"])
        assert args.experiment == "fig2"
        assert args.full is True
        assert args.seed == 3

    def test_evaluate_defaults(self):
        args = build_parser().parse_args(["evaluate"])
        assert args.n == 100
        assert args.tids == 60.0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "val-sim" in out

    def test_unknown_experiment_returns_error(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_evaluate_small(self, capsys):
        code = main(
            ["evaluate", "--n", "16", "--m", "3", "--tids", "120", "--breakdown"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MTTSF" in out and "cost/s" in out

    def test_run_scale_with_artifacts(self, capsys, tmp_path):
        code = main(["run", "scale", "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "solver_scaling" in out
        assert (tmp_path / "scale.json").exists()

    def test_package_version_importable(self):
        import repro

        assert repro.__version__
