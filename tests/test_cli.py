"""CLI smoke tests (in-process, no subprocess overhead)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_parses(self):
        args = build_parser().parse_args(["run", "fig2", "--full", "--seed", "3"])
        assert args.experiment == "fig2"
        assert args.full is True
        assert args.seed == 3

    def test_evaluate_defaults(self):
        args = build_parser().parse_args(["evaluate"])
        assert args.n == 100
        assert args.tids == 60.0

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out and "val-sim" in out

    def test_unknown_experiment_returns_error(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_evaluate_small(self, capsys):
        code = main(
            ["evaluate", "--n", "16", "--m", "3", "--tids", "120", "--breakdown"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "MTTSF" in out and "cost/s" in out

    def test_run_scale_with_artifacts(self, capsys, tmp_path):
        code = main(["run", "scale", "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "solver_scaling" in out
        assert (tmp_path / "scale.json").exists()

    def test_package_version_importable(self):
        import repro

        assert repro.__version__


class TestSweepCommand:
    def test_sweep_parses_engine_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--axis", "num_voters=3,5", "--jobs", "2",
             "--cache-dir", "/tmp/x"]
        )
        assert args.axis == ["num_voters=3,5"]
        assert args.jobs == 2 and args.cache_dir == "/tmp/x"

    def test_sweep_grid(self, capsys, tmp_path):
        code = main(
            ["sweep", "--axis", "detection_interval_s=15,60",
             "--axis", "num_voters=3,5", "--n", "12",
             "--cache-dir", str(tmp_path / "cache"),
             "--out", str(tmp_path / "sweep.json")]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "4 points" in out and "MTTSF_s" in out
        artifact = (tmp_path / "sweep.json").read_text()
        assert "cli-sweep" in artifact

    def test_sweep_needs_axes(self, capsys):
        assert main(["sweep"]) == 2
        assert "--axis" in capsys.readouterr().err

    def test_sweep_bad_axis_spec(self, capsys):
        assert main(["sweep", "--axis", "nonsense"]) == 2
        assert "NAME=VALUE" in capsys.readouterr().err

    def test_sweep_spec_file(self, capsys, tmp_path):
        import json

        spec = tmp_path / "jobs.json"
        spec.write_text(json.dumps({
            "name": "mini",
            "jobs": [
                {"name": "a", "base": {"num_nodes": 12},
                 "axes": {"detection_interval_s": [15.0, 60.0]}},
                {"name": "b", "base": {"num_nodes": 12},
                 "axes": {"detection_interval_s": [15.0, 60.0]}},
            ],
        }))
        assert main(["sweep", "--spec", str(spec)]) == 0
        out = capsys.readouterr().out
        assert "4 requested, 2 unique" in out

    def test_run_with_cache_reuses_results(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["run", "abl-hostids", "--cache-dir", cache]) == 0
        first = capsys.readouterr().out
        assert main(["run", "abl-hostids", "--cache-dir", cache]) == 0
        second = capsys.readouterr().out

        def series_lines(text):
            return [
                line for line in text.splitlines()
                if not line.startswith("==")  # header carries wall time
            ]

        assert series_lines(first) == series_lines(second)
        cache_files = list((tmp_path / "cache").glob("v*/*/*.json"))
        assert len(cache_files) == 5  # one per host-IDS quality level
