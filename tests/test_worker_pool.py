"""Fault-tolerance tests for the distributed worker pool (ISSUE 8).

The correctness bar for the multi-host tier:

* a campaign evaluated by pool workers is **byte-identical** to
  ``--jobs serial`` — including while workers are killed mid-chunk and
  restarted (leases expire, chunks are reassigned, results land
  exactly once);
* a poison chunk (fails ``max_attempts`` times on every worker) stops
  retrying and surfaces as per-point errors carrying the worker's
  traceback — the job completes, the batch does not hang;
* an empty or fully-quarantined pool degrades to local evaluation, so
  the service tier is never worse than PR 7's single-host behaviour;
* a client streaming results via ``offset`` survives a mid-job server
  restart: resubmit (same content-addressed job id), resume the
  stream, deliver every outcome exactly once.

Unit tests drive :class:`~repro.service.pool.WorkerPool` directly
(the test plays the worker); end-to-end tests boot the real HTTP
server with in-process :class:`~repro.service.worker.ServiceWorker`
threads and inject faults via :class:`~repro.service.chaos.ChaosConfig`.
"""

import json
import os
import threading
import time

import pytest

from repro.engine.batch import BatchRunner, EvalRequest, evaluate_auto
from repro.engine.cache import ResultCache
from repro.engine.executor import SerialBackend, run_chunk
from repro.obs import metrics, reset_observability
from repro.params import GCSParameters
from repro.service import (
    ChaosConfig,
    ChunkReport,
    DistributedBackend,
    PoolConfig,
    RemoteBackend,
    ServiceClient,
    ServiceError,
    ServiceServer,
    ServiceWorker,
    SweepService,
    WorkerPool,
    WorkerRegistration,
)
from repro.service.chaos import ChaosCorruption, ChaosKill
from repro.service.protocol import (
    FetchResponse,
    SubmitResponse,
    chunk_outcome_to_dict,
)

TIMING_FIELDS = ("build_seconds", "solve_seconds")


@pytest.fixture(autouse=True)
def _fresh_obs():
    reset_observability()
    yield
    reset_observability()


def _requests(count=3):
    scenarios = [
        GCSParameters.small_test(),
        GCSParameters.small_test().replacing(num_voters=3),
        GCSParameters.small_test().replacing(detection_interval_s=120.0),
    ]
    return [EvalRequest(params=p) for p in scenarios[:count]]


def _many_requests(count):
    """``count`` distinct points (a grid over the detection interval)."""
    return [
        EvalRequest(
            params=GCSParameters.small_test().replacing(
                detection_interval_s=60.0 + i
            )
        )
        for i in range(count)
    ]


def _strip_timings(record: dict) -> dict:
    return {k: v for k, v in record.items() if k not in TIMING_FIELDS}


def _counter(name: str) -> int:
    entry = metrics().snapshot().get(name)
    return entry["value"] if entry else 0


def _health_counter(health: dict, name: str) -> int:
    entry = health["metrics"].get(name)
    return entry["value"] if entry else 0


def _serial_reference(requests, tmp_path, sub="serial-reference"):
    batch = BatchRunner(
        cache=ResultCache(cache_dir=str(tmp_path / sub)),
        backend=SerialBackend(),
    ).run(requests, evaluate=evaluate_auto)
    batch.report.raise_on_error()
    return batch.results


# The in-process fault windows: ~10× smaller than production defaults
# so lease expiry / reassignment happen within a test-sized budget.
def _fast_config(**overrides):
    config = dict(
        lease_ttl_s=0.5,
        heartbeat_interval_s=0.1,
        poll_interval_s=0.05,
        reap_tick_s=0.05,
        backoff_base_s=0.02,
        backoff_cap_s=0.1,
        chunk_size=1,
    )
    config.update(overrides)
    return PoolConfig(**config)


class _RunThread(threading.Thread):
    """Drives ``run_distributed`` so the test thread can play the worker."""

    def __init__(self, pool, requests, **kwargs):
        super().__init__(name="run-distributed", daemon=True)
        self.pool = pool
        self.requests = requests
        self.kwargs = kwargs
        self.outcomes = None
        self.error = None

    def run(self):
        try:
            self.outcomes = self.pool.run_distributed(
                evaluate_auto,
                self.requests,
                fallback=SerialBackend(),
                **self.kwargs,
            )
        except BaseException as exc:  # noqa: BLE001 — surfaced by the test
            self.error = exc


def _register(pool, name="unit-worker"):
    return pool.register(
        WorkerRegistration(name=name, pid=os.getpid(), host="test-host")
    )


def _lease_blocking(pool, worker_id, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        response = pool.lease(worker_id)
        if response.chunk is not None:
            return response.chunk
        time.sleep(0.01)
    raise AssertionError(f"no chunk leased within {timeout}s")


def _evaluate_report(chunk, elapsed_s=None):
    """What a well-behaved worker reports for a leased chunk."""
    outcomes, _telemetry = run_chunk(
        evaluate_auto, list(enumerate(chunk.requests)), backend=SerialBackend()
    )
    return ChunkReport(
        chunk_id=chunk.chunk_id,
        outcomes=tuple(chunk_outcome_to_dict(o) for o in outcomes),
        elapsed_s=elapsed_s,
    )


_FAILURE = {
    "error": "boom",
    "error_type": "RuntimeError",
    "traceback": "Traceback (most recent call last): boom",
}


class TestWorkerPoolUnit:
    def test_lease_report_lifecycle_completes_batch(self, tmp_path):
        pool = WorkerPool(_fast_config())
        registered = _register(pool)
        requests = _requests(3)
        driver = _RunThread(pool, requests)
        driver.start()

        while driver.is_alive():
            response = pool.lease(registered.worker_id)
            if response.chunk is None:
                time.sleep(0.01)
                continue
            assert pool.report(
                registered.worker_id, _evaluate_report(response.chunk)
            )
        driver.join(timeout=30)
        assert driver.error is None

        outcomes = driver.outcomes
        assert [o.index for o in outcomes] == [0, 1, 2]
        assert all(o.ok for o in outcomes)
        for outcome, reference in zip(
            outcomes, _serial_reference(requests, tmp_path)
        ):
            assert _strip_timings(outcome.value.to_dict()) == _strip_timings(
                reference.to_dict()
            )
        assert _counter("service.chunks_completed") == 3
        assert _counter("service.chunks_local_fallback") == 0
        roster = pool.roster()
        assert roster["roster"][0]["chunks_completed"] == 3

    def test_expired_lease_is_reassigned_same_chunk(self):
        pool = WorkerPool(_fast_config(lease_ttl_s=0.2))
        registered = _register(pool)
        driver = _RunThread(pool, _requests(1))
        driver.start()

        first = _lease_blocking(pool, registered.worker_id)
        assert first.attempt == 1
        # Never report, never heartbeat: the lease must expire and the
        # *same* content-addressed chunk come back with attempt 2.
        second = _lease_blocking(pool, registered.worker_id)
        assert second.chunk_id == first.chunk_id
        assert second.attempt == 2
        pool.report(registered.worker_id, _evaluate_report(second))
        driver.join(timeout=30)
        assert driver.error is None
        assert all(o.ok for o in driver.outcomes)
        assert _counter("service.leases_expired") >= 1
        assert _counter("service.chunks_reassigned") >= 1

    def test_heartbeat_extends_lease_and_flags_stale_chunks(self):
        pool = WorkerPool(_fast_config(lease_ttl_s=0.3))
        registered = _register(pool)
        driver = _RunThread(pool, _requests(1))
        driver.start()

        chunk = _lease_blocking(pool, registered.worker_id)
        # Heartbeats every ~0.1s keep a 0.3s lease alive well past TTL.
        for _ in range(6):
            time.sleep(0.1)
            ack = pool.heartbeat(registered.worker_id, [chunk.chunk_id])
            assert chunk.chunk_id not in ack.stale
        assert _counter("service.leases_expired") == 0
        pool.report(registered.worker_id, _evaluate_report(chunk))
        driver.join(timeout=30)
        assert driver.error is None
        # A heartbeat for a chunk the pool no longer tracks is stale.
        ack = pool.heartbeat(registered.worker_id, [chunk.chunk_id])
        assert chunk.chunk_id in ack.stale

    def test_poison_chunk_resolves_to_point_errors(self):
        pool = WorkerPool(
            _fast_config(max_attempts=2, quarantine_after=100, chunk_size=3)
        )
        registered = _register(pool)
        driver = _RunThread(pool, _requests(3))
        driver.start()

        for attempt in (1, 2):
            chunk = _lease_blocking(pool, registered.worker_id)
            assert chunk.attempt == attempt
            pool.report(
                registered.worker_id,
                ChunkReport(chunk_id=chunk.chunk_id, failed=dict(_FAILURE)),
            )
        driver.join(timeout=30)
        assert driver.error is None

        outcomes = driver.outcomes
        assert len(outcomes) == 3
        assert all(not o.ok for o in outcomes)
        assert "poison chunk" in outcomes[0].error
        assert "boom" in outcomes[0].error
        assert outcomes[0].error_type == "RuntimeError"
        assert outcomes[0].traceback == _FAILURE["traceback"]
        assert _counter("service.chunks_poisoned") == 1

    def test_repeatedly_failing_worker_is_quarantined(self):
        pool = WorkerPool(
            _fast_config(quarantine_after=2, max_attempts=10)
        )
        registered = _register(pool)
        driver = _RunThread(pool, _requests(3))
        driver.start()

        for _ in range(2):
            chunk = _lease_blocking(pool, registered.worker_id)
            pool.report(
                registered.worker_id,
                ChunkReport(chunk_id=chunk.chunk_id, failed=dict(_FAILURE)),
            )
        # Quarantined: no more leases for this worker, ever.
        response = pool.lease(registered.worker_id)
        assert response.chunk is None
        assert response.retry_after_s is not None
        assert pool.roster()["quarantined"] == 1
        assert pool.live_worker_count() == 0
        assert _counter("service.workers_quarantined") == 1

        # With the only worker quarantined the batch still completes —
        # every chunk (including the two it failed) runs locally.
        driver.join(timeout=30)
        assert driver.error is None
        assert all(o.ok for o in driver.outcomes)
        assert _counter("service.chunks_local_fallback") >= 3

    def test_empty_pool_falls_back_to_local_evaluation(self, tmp_path):
        pool = WorkerPool(_fast_config())
        requests = _requests(3)
        outcomes = pool.run_distributed(
            evaluate_auto, requests, fallback=SerialBackend()
        )
        assert all(o.ok for o in outcomes)
        for outcome, reference in zip(
            outcomes, _serial_reference(requests, tmp_path)
        ):
            assert _strip_timings(outcome.value.to_dict()) == _strip_timings(
                reference.to_dict()
            )
        assert _counter("service.chunks_local_fallback") >= 1
        assert _counter("service.chunks_dispatched") == 0

    def test_duplicate_report_is_counted_and_dropped(self):
        pool = WorkerPool(_fast_config())
        registered = _register(pool)
        driver = _RunThread(pool, _requests(1))
        driver.start()

        chunk = _lease_blocking(pool, registered.worker_id)
        report = _evaluate_report(chunk)
        assert pool.report(registered.worker_id, report) is True
        assert pool.report(registered.worker_id, report) is False
        driver.join(timeout=30)
        assert driver.error is None
        assert all(o.ok for o in driver.outcomes)
        assert _counter("service.duplicate_results") == 1

    def test_deregister_requeues_held_leases(self):
        pool = WorkerPool(_fast_config())
        registered = _register(pool)
        driver = _RunThread(pool, _requests(1))
        driver.start()

        _lease_blocking(pool, registered.worker_id)
        pool.deregister(registered.worker_id)
        # The departed worker's chunk requeues and (pool now empty)
        # completes on the local fallback.
        driver.join(timeout=30)
        assert driver.error is None
        assert all(o.ok for o in driver.outcomes)
        assert _counter("service.chunks_reassigned") >= 1
        assert pool.roster()["total"] == 0

    def test_describe_hides_pool_until_a_worker_is_live(self):
        pool = WorkerPool(_fast_config())
        backend = DistributedBackend(pool, SerialBackend())
        assert backend.describe() == "serial"
        _register(pool)
        assert backend.describe() == "pool(workers=1)+serial"


class TestAdaptiveScheduling:
    """The ISSUE 9 scheduling layer: per-lease sizing, EWMA throughput,
    work stealing, tail speculation, and the satellite correctness
    fixes (empty-pool carving, lost-worker recovery, backoff hints)."""

    def test_lease_sizing_uses_capability_prior_then_throughput_ewma(self):
        """A ``vector`` worker gets bigger chunks than a ``serial`` one
        from its capability prior; once chunk timings arrive, measured
        throughput (EWMA points/sec) takes over and is in the roster."""
        pool = WorkerPool(
            _fast_config(
                chunk_size=None,
                chunks_per_worker=2,
                steal=False,
                speculate=False,
            )
        )
        vec = pool.register(
            WorkerRegistration(
                name="vec", pid=1, host="h", backend="vector"
            )
        )
        ser = pool.register(
            WorkerRegistration(
                name="ser", pid=2, host="h", backend="serial"
            )
        )
        driver = _RunThread(pool, _many_requests(12))
        driver.start()
        try:
            # Capability prior (vector_weight=4 vs 1, mean 2.5):
            # vec gets ceil(12/4 · 1.6) = 5 points, ser ceil(7/4 · 0.4) = 1.
            vec_chunk = _lease_blocking(pool, vec.worker_id)
            ser_chunk = _lease_blocking(pool, ser.worker_id)
            assert len(vec_chunk.requests) == 5
            assert len(ser_chunk.requests) == 1
            assert len(vec_chunk.requests) > len(ser_chunk.requests)

            # Timed reports seed the EWMA (first observation verbatim).
            assert pool.report(
                vec.worker_id, _evaluate_report(vec_chunk, elapsed_s=0.5)
            )
            assert pool.report(
                ser.worker_id, _evaluate_report(ser_chunk, elapsed_s=2.0)
            )
            by_name = {
                e["name"]: e for e in pool.roster()["roster"]
            }
            assert by_name["vec"]["throughput_points_per_s"] == pytest.approx(
                10.0
            )
            assert by_name["ser"]["throughput_points_per_s"] == pytest.approx(
                0.5
            )
            assert by_name["vec"]["points_completed"] == 5

            # Measured throughput now drives sizing (10 vs 0.5 pps,
            # mean 5.25): vec gets ceil(6/4 · 10/5.25) = 3 points.
            vec_chunk = _lease_blocking(pool, vec.worker_id)
            assert len(vec_chunk.requests) == 3
            # A second observation blends: 0.3·3 + 0.7·10 = 7.9.
            assert pool.report(
                vec.worker_id, _evaluate_report(vec_chunk, elapsed_s=1.0)
            )
            by_name = {e["name"]: e for e in pool.roster()["roster"]}
            assert by_name["vec"]["throughput_points_per_s"] == pytest.approx(
                7.9
            )

            while driver.is_alive():
                response = pool.lease(vec.worker_id)
                if response.chunk is None:
                    time.sleep(0.01)
                    continue
                pool.report(vec.worker_id, _evaluate_report(response.chunk))
            driver.join(timeout=30)
            assert driver.error is None
            assert all(o.ok for o in driver.outcomes)
        finally:
            driver.join(timeout=30)

    def test_empty_pool_at_submit_spreads_over_late_workers(self, tmp_path):
        """Regression (ISSUE 9 satellite): chunk sizes must NOT freeze
        at distribution time.  A job submitted to an empty pool used to
        be pre-split into ``ceil(total/4)`` mega-chunks sized for the
        instantaneous live count (0 → 1); workers that registered a
        moment later inherited those four oversized chunks.  With
        per-lease carving, a late worker's first lease is sized for the
        pool as it exists *now*."""
        pool = WorkerPool(
            _fast_config(
                chunk_size=None,
                chunks_per_worker=2,
                steal=False,
                speculate=False,
            )
        )
        requests = _many_requests(12)
        # Submit with NO workers registered; the slow local fallback
        # keeps the run alive long enough for workers to join.
        outcome_box = {}

        def _drive():
            outcome_box["outcomes"] = pool.run_distributed(
                evaluate_auto, requests, fallback=_SlowSerial(0.3)
            )

        thread = threading.Thread(target=_drive, daemon=True)
        thread.start()
        time.sleep(0.05)  # let the fallback grab (and sit on) one chunk

        late = [
            pool.register(
                WorkerRegistration(
                    name=f"late-{i}", pid=i, host="h", backend="serial"
                )
            )
            for i in range(3)
        ]
        # Three live workers now: every fresh lease is carved at
        # ceil(remaining / (3 workers · 2 chunks-per-worker)) — small
        # shares, NOT a quarter of the whole job.
        seen_sizes = []
        deadline = time.monotonic() + 30
        while thread.is_alive() and time.monotonic() < deadline:
            progressed = False
            for registered in late:
                response = pool.lease(registered.worker_id)
                if response.chunk is not None:
                    seen_sizes.append(len(response.chunk.requests))
                    pool.report(
                        registered.worker_id,
                        _evaluate_report(response.chunk),
                    )
                    progressed = True
            if not progressed:
                time.sleep(0.01)
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert all(o.ok for o in outcome_box["outcomes"])
        assert seen_sizes, "late workers never leased anything"
        # 12 points over 6 target chunks: every late lease is ≤ 2
        # points (the old frozen sizing would have handed out 3s).
        assert max(seen_sizes) <= 2
        assert len(seen_sizes) >= 3

    def test_steal_splits_straggler_tail_byte_identical(self, tmp_path):
        """An idle worker steals the tail half of a straggler's leased
        chunk; both report, per-point first-wins keeps the batch
        byte-identical to serial."""
        pool = WorkerPool(
            _fast_config(
                chunk_size=4,
                speculate=False,
                tail_min_lease_age_s=0.0,
            )
        )
        slow = _register(pool, name="straggler")
        fast = _register(pool, name="thief")
        requests = _many_requests(4)
        driver = _RunThread(pool, requests)
        driver.start()

        victim = _lease_blocking(pool, slow.worker_id)
        assert len(victim.requests) == 4
        # Nothing pending, nothing to carve: the idle worker splits the
        # straggler's tail (last 2 of 4 points) off as a new chunk.
        stolen = _lease_blocking(pool, fast.worker_id)
        assert stolen.chunk_id != victim.chunk_id
        assert not stolen.speculative
        assert [r.fingerprint() for r in stolen.requests] == [
            r.fingerprint() for r in victim.requests[2:]
        ]
        assert _counter("service.chunks_stolen") == 1

        # Thief reports first; the straggler's full report then only
        # fills the 2 points the thief didn't already resolve.
        assert pool.report(fast.worker_id, _evaluate_report(stolen))
        assert pool.report(slow.worker_id, _evaluate_report(victim))
        driver.join(timeout=30)
        assert driver.error is None

        outcomes = driver.outcomes
        assert [o.index for o in outcomes] == [0, 1, 2, 3]
        assert all(o.ok for o in outcomes)
        for outcome, reference in zip(
            outcomes, _serial_reference(requests, tmp_path)
        ):
            assert _strip_timings(outcome.value.to_dict()) == _strip_timings(
                reference.to_dict()
            )

    def test_speculative_duplicate_lease_first_report_wins(self):
        """Near the tail (nothing to carve or steal) an idle worker
        duplicate-leases the in-flight chunk; the first report resolves
        it and the loser is dropped by the exactly-once dedup."""
        pool = WorkerPool(
            _fast_config(
                chunk_size=2,
                steal=False,
                tail_min_lease_age_s=0.0,
            )
        )
        slow = _register(pool, name="straggler")
        fast = _register(pool, name="spectre")
        driver = _RunThread(pool, _requests(2))
        driver.start()

        original = _lease_blocking(pool, slow.worker_id)
        assert not original.speculative
        duplicate = _lease_blocking(pool, fast.worker_id)
        assert duplicate.chunk_id == original.chunk_id
        assert duplicate.speculative
        assert duplicate.attempt == 2
        assert _counter("service.leases_speculated") == 1

        assert pool.report(fast.worker_id, _evaluate_report(duplicate))
        # The straggler's late copy is a duplicate — counted, dropped.
        assert not pool.report(slow.worker_id, _evaluate_report(original))
        driver.join(timeout=30)
        assert driver.error is None
        assert all(o.ok for o in driver.outcomes)
        assert _counter("service.duplicate_results") == 1
        assert _counter("service.chunks_completed") == 1

    def test_backoff_blocked_lease_hints_actual_eligibility_wait(self):
        """When every pending chunk is backoff-blocked the lease
        response's ``retry_after_s`` is the real wait until the
        earliest ``not_before``, not the generic poll interval."""
        pool = WorkerPool(
            _fast_config(
                backoff_base_s=0.5,
                backoff_cap_s=1.0,
                steal=False,
                speculate=False,
                max_attempts=3,
            )
        )
        registered = _register(pool)
        # No runs at all: the generic poll hint applies.
        idle_hint = pool.lease(registered.worker_id)
        assert idle_hint.chunk is None
        assert idle_hint.retry_after_s == pytest.approx(0.05)

        driver = _RunThread(pool, _requests(1))
        driver.start()
        chunk = _lease_blocking(pool, registered.worker_id)
        pool.report(
            registered.worker_id,
            ChunkReport(chunk_id=chunk.chunk_id, failed=dict(_FAILURE)),
        )
        # Requeued with ~0.5s backoff (±25% jitter): the hint must
        # reflect that wait, not the 0.05s poll default.
        blocked = pool.lease(registered.worker_id)
        assert blocked.chunk is None
        assert 0.2 < blocked.retry_after_s <= 0.65

        retry = _lease_blocking(pool, registered.worker_id)
        assert retry.chunk_id == chunk.chunk_id
        pool.report(registered.worker_id, _evaluate_report(retry))
        driver.join(timeout=30)
        assert driver.error is None
        assert all(o.ok for o in driver.outcomes)

    def test_lost_worker_recovers_on_heartbeat(self):
        """Satellite fix: a worker the reaper marked ``lost`` goes back
        to ``idle`` on its next heartbeat — not only on its next lease."""
        pool = WorkerPool(
            _fast_config(lease_ttl_s=0.2, heartbeat_interval_s=0.05)
        )
        registered = _register(pool)
        driver = _RunThread(pool, _requests(1))
        driver.start()
        # Hold a lease and go silent: the lease expires, the chunk
        # completes on the local fallback (the pool has no live worker
        # left), and the reaper stores state="lost".
        _lease_blocking(pool, registered.worker_id)
        driver.join(timeout=30)
        assert driver.error is None
        assert all(o.ok for o in driver.outcomes)
        assert pool.roster()["roster"][0]["state"] == "lost"
        assert pool.live_worker_count() == 0

        # One heartbeat brings it back — visible immediately in the
        # roster and the live count, without needing a lease first.
        pool.heartbeat(registered.worker_id)
        assert pool.roster()["roster"][0]["state"] == "idle"
        assert pool.live_worker_count() == 1


class _WorkerThread(threading.Thread):
    """An in-process ServiceWorker; a ChaosKill ends only this thread."""

    def __init__(self, url, *, name, chaos=None, client=None):
        super().__init__(name=f"svc-{name}", daemon=True)
        self.worker = ServiceWorker(
            url, name=name, chaos=chaos, client=client, poll_interval=0.05
        )
        self.died = None

    def run(self):
        try:
            self.worker.run()
        except ChaosKill as exc:
            self.died = exc
        except ServiceError:
            pass  # server shut down while polling — test teardown

    def stop(self, timeout=10.0):
        self.worker.stop()
        self.join(timeout=timeout)


class _ClientThread(threading.Thread):
    """A BatchRunner submitting through RemoteBackend on its own thread."""

    def __init__(self, url, requests, cache_dir):
        super().__init__(name="remote-client", daemon=True)
        self.url = url
        self.requests = requests
        self.cache_dir = str(cache_dir)
        self.batch = None
        self.error = None

    def run(self):
        try:
            self.batch = BatchRunner(
                cache=ResultCache(cache_dir=self.cache_dir),
                backend=RemoteBackend(self.url),
            ).run(self.requests, evaluate=evaluate_auto)
        except BaseException as exc:  # noqa: BLE001 — surfaced by the test
            self.error = exc


def _wait_for_workers(server, count, timeout=15.0):
    """Block until ``count`` workers are live (registration is async).

    Without this, a campaign submitted before the worker's
    registration lands is — correctly — evaluated by the empty-pool
    local fallback, and the test would not exercise the pool at all.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if server.service.pool.live_worker_count() >= count:
            return
        time.sleep(0.01)
    raise AssertionError(f"{count} worker(s) did not register in {timeout}s")


def _boot_server(tmp_path, *, pool_config, backend=None, cache_dir=None, port=0):
    service = SweepService(
        cache=ResultCache(
            cache_dir=str(cache_dir or (tmp_path / "server-cache"))
        ),
        backend=backend or SerialBackend(),
        pool_config=pool_config,
    )
    server = ServiceServer(service, port=port)
    server.start_in_background()
    return server


class TestServiceWorkerEndToEnd:
    def test_worker_killed_mid_chunk_chunk_reassigned_byte_identical(
        self, tmp_path
    ):
        """The flagship chaos scenario (ISSUE 8 acceptance):

        worker A dies mid-chunk (lease held, no report), a replacement
        worker picks up the reassigned chunk, and the campaign
        completes byte-identical to ``--jobs serial``.
        """
        server = _boot_server(
            tmp_path, pool_config=_fast_config(lease_ttl_s=0.4)
        )
        worker_b = None
        try:
            requests = _requests(3)
            worker_a = _WorkerThread(
                server.url,
                name="worker-a",
                chaos=ChaosConfig(kill_after_chunks=1, kill_mode="raise"),
            )
            worker_a.start()
            _wait_for_workers(server, 1)
            client = _ClientThread(
                server.url, requests, tmp_path / "client-cache"
            )
            client.start()

            # Worker A completes one chunk, then dies inside its second.
            worker_a.join(timeout=30)
            assert not worker_a.is_alive()
            assert worker_a.died is not None

            # "Restart" it: a fresh worker joins and inherits the load.
            worker_b = _WorkerThread(server.url, name="worker-a-restarted")
            worker_b.start()

            client.join(timeout=60)
            assert client.error is None
            batch = client.batch
            batch.report.raise_on_error()
            assert all(result is not None for result in batch.results)

            # Byte-identity: a serial run over the server's cache is
            # 100% disk hits, so the JSON must match bit-for-bit —
            # timing fields included (measured once, on the workers).
            with_server_cache = BatchRunner(
                cache=ResultCache(
                    cache_dir=server.service.runner.cache.cache_dir
                ),
                backend=SerialBackend(),
            ).run(requests, evaluate=evaluate_auto)
            assert with_server_cache.report.n_cache_hits == len(requests)
            for ours, theirs in zip(batch.results, with_server_cache.results):
                assert json.dumps(ours.to_dict(), sort_keys=True) == json.dumps(
                    theirs.to_dict(), sort_keys=True
                )

            health = ServiceClient(server.url).health()
            assert _health_counter(health, "service.leases_expired") >= 1
            assert _health_counter(health, "service.chunks_reassigned") >= 1
            workers = health["workers"]
            assert workers["total"] == 2
            dead = next(
                e for e in workers["roster"] if e["name"] == "worker-a"
            )
            assert dead["state"] == "lost"
            assert dead["chunks_failed"] >= 1
        finally:
            if worker_b is not None:
                worker_b.stop()
            server.stop()

    def test_corrupted_chunk_poisons_with_worker_traceback(self, tmp_path):
        server = _boot_server(
            tmp_path,
            pool_config=_fast_config(max_attempts=2, quarantine_after=100),
        )
        worker = None
        try:
            # Seeded corruption keyed on content-addressed chunk ids:
            # every retry of a chunk fails identically, which is
            # exactly the poison scenario the retry cap must stop.
            worker = _WorkerThread(
                server.url,
                name="corruptor",
                chaos=ChaosConfig(corrupt_seed=7, corrupt_one_in=1),
            )
            worker.start()
            _wait_for_workers(server, 1)
            requests = _requests(2)
            batch = BatchRunner(
                cache=ResultCache(cache_dir=str(tmp_path / "client-cache")),
                backend=RemoteBackend(server.url),
            ).run(requests, evaluate=evaluate_auto)

            assert list(batch.results) == [None, None]
            assert len(batch.report.errors) == 2
            for error in batch.report.errors:
                assert error.error_type == "ChaosCorruption"
                assert "poison chunk" in error.error
                assert "chaos" in error.traceback

            # >= because the in-process client absorbs the job's
            # telemetry delta into the same registry the server uses.
            health = ServiceClient(server.url).health()
            assert _health_counter(health, "service.chunks_poisoned") >= 2
            assert _health_counter(health, "service.chunks_failed") >= 4
        finally:
            if worker is not None:
                worker.stop()
            server.stop()

    def test_dropped_report_is_reassigned_and_completes(self, tmp_path):
        server = _boot_server(
            tmp_path, pool_config=_fast_config(lease_ttl_s=0.3)
        )
        worker = None
        try:
            # The worker evaluates its first chunk but the report is
            # lost on the wire; the lease expires and the chunk is
            # re-leased (to the same worker — it is still live).
            worker = _WorkerThread(
                server.url,
                name="lossy",
                chaos=ChaosConfig(drop_results=1),
            )
            worker.start()
            _wait_for_workers(server, 1)
            requests = _requests(2)
            batch = BatchRunner(
                cache=ResultCache(cache_dir=str(tmp_path / "client-cache")),
                backend=RemoteBackend(server.url),
            ).run(requests, evaluate=evaluate_auto)
            batch.report.raise_on_error()
            assert all(result is not None for result in batch.results)
            health = ServiceClient(server.url).health()
            assert _health_counter(health, "service.chunks_reassigned") >= 1
        finally:
            if worker is not None:
                worker.stop()
            server.stop()

    def test_slow_worker_tail_stolen_or_speculated_byte_identical(
        self, tmp_path
    ):
        """The ISSUE 9 chaos scenario: one worker is deliberately slowed
        (chaos chunk delay ≫ the fast worker's evaluation time) but
        keeps heartbeating — a straggler, not a corpse.  The scheduler
        must finish the job tail via stealing/speculation instead of
        waiting the straggler out, stay byte-identical to serial, and
        surface per-worker throughput in the roster."""
        server = _boot_server(
            tmp_path,
            pool_config=_fast_config(
                chunk_size=None, tail_min_lease_age_s=0.1
            ),
        )
        tortoise = hare = None
        try:
            requests = _many_requests(4)
            tortoise = _WorkerThread(
                server.url,
                name="tortoise",
                chaos=ChaosConfig(chunk_delay_s=1.5),
            )
            tortoise.start()
            _wait_for_workers(server, 1)

            started = time.monotonic()
            client = _ClientThread(
                server.url, requests, tmp_path / "client-cache"
            )
            client.start()
            # Let the tortoise actually lease (and sit on) a chunk
            # before the hare joins — otherwise a fast hare could drain
            # the whole queue and leave no straggler tail to rescue.
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline:
                roster = ServiceClient(server.url).health()["workers"]
                held = [
                    e for e in roster["roster"]
                    if e["name"] == "tortoise" and e["leases"]
                ]
                if held:
                    break
                time.sleep(0.02)
            assert held, "tortoise never leased a chunk"

            hare = _WorkerThread(server.url, name="hare")
            hare.start()
            client.join(timeout=60)
            elapsed = time.monotonic() - started
            assert client.error is None
            batch = client.batch
            batch.report.raise_on_error()
            assert all(result is not None for result in batch.results)
            # The tortoise sleeps 1.5s per chunk; had the tail waited
            # for it the job could not finish under ~1.5s per held
            # chunk.  (Generous bound — the point is "not serialized
            # behind the straggler", not a precise speedup.)
            assert elapsed < 20

            # Byte-identity vs serial over the server's cache (100%
            # hits, timing fields measured once on whichever worker
            # won each point).
            with_server_cache = BatchRunner(
                cache=ResultCache(
                    cache_dir=server.service.runner.cache.cache_dir
                ),
                backend=SerialBackend(),
            ).run(requests, evaluate=evaluate_auto)
            assert with_server_cache.report.n_cache_hits == len(requests)
            for ours, theirs in zip(batch.results, with_server_cache.results):
                assert json.dumps(ours.to_dict(), sort_keys=True) == json.dumps(
                    theirs.to_dict(), sort_keys=True
                )

            health = ServiceClient(server.url).health()
            rescued = _health_counter(
                health, "service.chunks_stolen"
            ) + _health_counter(health, "service.leases_speculated")
            assert rescued >= 1
            by_name = {
                e["name"]: e for e in health["workers"]["roster"]
            }
            assert by_name["hare"]["throughput_points_per_s"] is not None
            assert by_name["hare"]["throughput_points_per_s"] > 0
            assert by_name["hare"]["backend"] == "serial"
            assert by_name["tortoise"]["backend"] == "serial"
        finally:
            for worker in (tortoise, hare):
                if worker is not None:
                    worker.stop()
            server.stop()

    def test_health_workers_section_schema(self, tmp_path):
        server = _boot_server(tmp_path, pool_config=_fast_config())
        try:
            client = ServiceClient(server.url)
            empty = client.health()["workers"]
            assert empty == {
                "total": 0, "idle": 0, "busy": 0,
                "quarantined": 0, "lost": 0, "roster": [],
            }
            client.register_worker(
                name="probe", pid=4242, host="host-a", backend="serial",
                kernel="numpy",
            )
            workers = client.health()["workers"]
            assert workers["total"] == 1
            assert workers["idle"] == 1
            (entry,) = workers["roster"]
            assert set(entry) == {
                "id", "name", "pid", "host", "backend", "kernel", "state",
                "leases", "last_heartbeat_age_s", "chunks_completed",
                "chunks_failed", "points_completed",
                "throughput_points_per_s",
            }
            assert entry["name"] == "probe"
            assert entry["pid"] == 4242
            assert entry["host"] == "host-a"
            assert entry["kernel"] == "numpy"
            assert entry["state"] == "idle"
            assert entry["leases"] == []
            assert entry["points_completed"] == 0
            assert entry["throughput_points_per_s"] is None
            scheduling = client.health()["scheduling"]
            assert scheduling["steal"] is True
            assert scheduling["speculate"] is True
            assert scheduling["chunks_per_worker"] == 4
        finally:
            server.stop()

    def test_worker_reregisters_after_server_restart(self, tmp_path):
        config = _fast_config()
        server = _boot_server(tmp_path, pool_config=config)
        url = server.url
        port = int(url.rsplit(":", 1)[1])
        cache_dir = server.service.runner.cache.cache_dir
        worker = _WorkerThread(
            url,
            name="persistent",
            client=ServiceClient(url, retries=10, retry_backoff_s=0.05),
        )
        restarted = None
        try:
            worker.start()
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline and worker.worker.worker_id is None:
                time.sleep(0.01)
            old_id = worker.worker.worker_id
            assert old_id is not None

            server.stop()
            restarted = _boot_server(
                tmp_path, pool_config=config, cache_dir=cache_dir, port=port
            )
            # The restarted server does not know the worker's id; its
            # next lease 404s and it re-registers.  Wait for that
            # before submitting, or the (empty-pool) local fallback
            # races the worker to the chunks.
            _wait_for_workers(restarted, 1, timeout=20)
            batch = BatchRunner(
                cache=ResultCache(cache_dir=str(tmp_path / "client-cache")),
                backend=RemoteBackend(restarted.url),
            ).run(_requests(2), evaluate=evaluate_auto)
            batch.report.raise_on_error()
            roster = restarted.service.pool.roster()
            assert roster["total"] == 1
            assert roster["roster"][0]["name"] == "persistent"
            assert roster["roster"][0]["id"] != old_id
            assert roster["roster"][0]["chunks_completed"] >= 1
        finally:
            worker.stop()
            if restarted is not None:
                restarted.stop()


class _SlowSerial(SerialBackend):
    """A serial backend with a per-chunk delay, to hold a job mid-run."""

    def __init__(self, delay_s):
        super().__init__()
        self.delay_s = delay_s

    def run(self, fn, items, *, on_outcome=None):
        time.sleep(self.delay_s)
        return super().run(fn, items, on_outcome=on_outcome)


class TestClientRestartResume:
    def test_client_resumes_across_server_restart_exactly_once(self, tmp_path):
        """Satellite: mid-job server restart, resumable ``offset`` fetch.

        The client receives K outcomes from the first server, the
        server restarts mid-job, and the client — via resubmission of
        the same content-addressed campaign — receives the remaining
        outcomes exactly once, byte-identical to serial.
        """
        requests = _requests(3)
        cache_dir = tmp_path / "shared-cache"
        # Pre-warm one point so the stream yields an entry immediately
        # (cache hits materialise mid-run; evaluated points only after
        # the batch stores them).
        warm = BatchRunner(
            cache=ResultCache(cache_dir=str(cache_dir)),
            backend=SerialBackend(),
        ).run(requests[:1], evaluate=evaluate_auto)
        warm.report.raise_on_error()

        first = _boot_server(
            tmp_path,
            pool_config=_fast_config(),
            backend=_SlowSerial(delay_s=0.5),
            cache_dir=cache_dir,
        )
        port = int(first.url.rsplit(":", 1)[1])

        seen = []
        outcomes_box = {}
        error_box = {}
        backend = RemoteBackend(
            first.url,
            client=ServiceClient(first.url, retries=12, retry_backoff_s=0.05),
            poll_timeout=120,
        )

        def _run_client():
            try:
                outcomes_box["outcomes"] = backend.run(
                    evaluate_auto, requests, on_outcome=seen.append
                )
            except BaseException as exc:  # noqa: BLE001 — checked below
                error_box["error"] = exc

        client = threading.Thread(target=_run_client, daemon=True)
        client.start()

        # Wait for the pre-warmed point to stream, then restart the
        # server while the remaining evaluations are still in flight.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline and not seen:
            time.sleep(0.01)
        assert seen, "client never received the pre-warmed outcome"
        first.stop()

        second = _boot_server(
            tmp_path,
            pool_config=_fast_config(),
            cache_dir=cache_dir,
            port=port,
        )
        try:
            client.join(timeout=60)
            assert not client.is_alive()
            assert "error" not in error_box, error_box.get("error")
            outcomes = outcomes_box["outcomes"]
            assert [o.index for o in outcomes] == [0, 1, 2]
            assert all(o.ok for o in outcomes)
            # Exactly once: the resumed stream must not re-deliver the
            # outcomes received before the restart.
            assert sorted(o.index for o in seen) == [0, 1, 2]
            for outcome, reference in zip(
                outcomes, _serial_reference(requests, tmp_path)
            ):
                assert _strip_timings(
                    outcome.value.to_dict()
                ) == _strip_timings(reference.to_dict())
        finally:
            second.stop()


class _StubStuckClient:
    """A client whose job never completes — for deadline tests."""

    url = "http://stub.invalid"

    def submit(self, requests, *, name="stub"):
        return SubmitResponse(
            job_id="f" * 64, total=len(requests), state="running",
            resubmitted=False,
        )

    def fetch(self, job_id, offset=0):
        return FetchResponse(
            job_id=job_id, state="running", entries=(), next_offset=offset,
            complete=False,
        )


class TestClientRobustness:
    def test_poll_timeout_names_job_and_progress(self):
        backend = RemoteBackend(
            client=_StubStuckClient(), poll_interval=0.01, poll_timeout=0.3
        )
        with pytest.raises(ServiceError) as excinfo:
            backend.run(evaluate_auto, _requests(2))
        message = str(excinfo.value)
        assert "timed out after 0.3s" in message
        assert "f" * 64 in message
        assert "0/2 outcomes received" in message

    def test_unreachable_error_reports_attempt_count(self):
        client = ServiceClient(
            "http://127.0.0.1:1", timeout=1, retries=2, retry_backoff_s=0.01
        )
        with pytest.raises(ServiceError, match="after 2 attempts"):
            client.health()


class TestChaosConfig:
    def test_default_is_inert(self):
        chaos = ChaosConfig()
        assert not chaos.armed
        chaos.maybe_kill(0)  # must not raise
        assert not chaos.should_corrupt("abc")
        assert not chaos.take_drop()
        assert chaos.heartbeat_sleep_s(1.0) == 1.0

    def test_from_env_is_inert_without_variables(self):
        assert not ChaosConfig.from_env({}).armed

    def test_from_env_parses_every_hook(self):
        chaos = ChaosConfig.from_env(
            {
                "REPRO_CHAOS_KILL_AFTER_CHUNKS": "2",
                "REPRO_CHAOS_HEARTBEAT_DELAY_S": "1.5",
                "REPRO_CHAOS_CHUNK_DELAY_S": "0.25",
                "REPRO_CHAOS_DROP_RESULTS": "3",
                "REPRO_CHAOS_CORRUPT_SEED": "42",
                "REPRO_CHAOS_CORRUPT_ONE_IN": "4",
            },
            kill_mode="raise",
        )
        assert chaos.armed
        assert chaos.kill_after_chunks == 2
        assert chaos.heartbeat_delay_s == 1.5
        assert chaos.chunk_delay_s == 0.25
        assert chaos.corrupt_seed == 42
        assert chaos.corrupt_one_in == 4
        assert chaos.kill_mode == "raise"
        assert chaos.heartbeat_sleep_s(0.5) == 2.0
        # chunk_delay alone arms the config (slow worker, no other hooks).
        assert ChaosConfig(chunk_delay_s=0.1).armed

    def test_maybe_kill_raises_at_threshold(self):
        chaos = ChaosConfig(kill_after_chunks=1, kill_mode="raise")
        chaos.maybe_kill(0)
        with pytest.raises(ChaosKill):
            chaos.maybe_kill(1)

    def test_corruption_is_deterministic_per_chunk(self):
        chaos = ChaosConfig(corrupt_seed=13, corrupt_one_in=2)
        verdicts = {cid: chaos.should_corrupt(cid) for cid in "abcdefgh"}
        again = ChaosConfig(corrupt_seed=13, corrupt_one_in=2)
        assert {cid: again.should_corrupt(cid) for cid in "abcdefgh"} == verdicts
        assert any(verdicts.values()) and not all(verdicts.values())
        with pytest.raises(ChaosCorruption, match="chaos"):
            chaos.corrupt("deadbeefdeadbeef")

    def test_drop_tokens_are_consumed(self):
        chaos = ChaosConfig(drop_results=2)
        assert chaos.take_drop()
        assert chaos.take_drop()
        assert not chaos.take_drop()

    def test_bad_kill_mode_rejected(self):
        with pytest.raises(ValueError, match="kill_mode"):
            ChaosConfig(kill_mode="explode")


class TestCliWorkCommand:
    def test_parser_has_work_subcommand(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["work", "--server", "http://example.test:1", "--max-chunks", "2"]
        )
        assert args.command == "work"
        assert args.server == "http://example.test:1"
        assert args.max_chunks == 2

    def test_work_rejects_remote_jobs(self, capsys):
        from repro.cli import main

        code = main(
            ["work", "--server", "http://127.0.0.1:1", "--jobs", "remote"]
        )
        assert code == 2
        assert "cannot evaluate through --jobs remote" in capsys.readouterr().err

    def test_serve_parser_exposes_pool_knobs(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve", "--port", "0",
                "--lease-ttl", "2.5", "--heartbeat-interval", "0.5",
                "--chunk-size", "4", "--max-chunk-attempts", "5",
            ]
        )
        assert args.lease_ttl == 2.5
        assert args.heartbeat_interval == 0.5
        assert args.chunk_size == 4
        assert args.max_chunk_attempts == 5
