"""Detection functions, host IDS presets, adaptive controller."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detection import (
    AdaptiveIDSController,
    DetectionFunction,
    HostIDS,
    detection_ratio,
    recommend_detection_function,
)
from repro.errors import ParameterError
from repro.params import DetectionParameters


class TestDetectionRatio:
    def test_full_group(self):
        assert detection_ratio(100, 100) == 1.0

    def test_grows_as_members_leave(self):
        assert detection_ratio(100, 50) == 2.0

    def test_empty_group_undefined(self):
        with pytest.raises(ParameterError):
            detection_ratio(100, 0)

    def test_bad_initial(self):
        with pytest.raises(ParameterError):
            detection_ratio(0, 10)


class TestDetectionFunction:
    def test_all_forms_start_at_base_interval(self):
        for form in ("logarithmic", "linear", "polynomial"):
            fn = DetectionFunction(form, base_interval_s=60.0)
            assert fn.rate(100, 100) == pytest.approx(1.0 / 60.0)
            assert fn.interval(100, 100) == pytest.approx(60.0)

    def test_aggressiveness_ordering(self):
        fns = {
            form: DetectionFunction(form, 60.0)
            for form in ("logarithmic", "linear", "polynomial")
        }
        for md in (1.0, 1.25, 2.0, 5.0):
            assert fns["logarithmic"].rate_at_ratio(md) <= fns["linear"].rate_at_ratio(md) + 1e-15
            assert fns["linear"].rate_at_ratio(md) <= fns["polynomial"].rate_at_ratio(md) + 1e-15

    def test_polynomial_form(self):
        fn = DetectionFunction("polynomial", 10.0, base_index_p=3.0)
        assert fn.rate_at_ratio(2.0) == pytest.approx(8.0 / 10.0)

    def test_literal_log_zero_at_start(self):
        fn = DetectionFunction("logarithmic", 60.0, shifted_log=False)
        assert fn.rate_at_ratio(1.0) == 0.0
        assert fn.interval(100, 100) == float("inf")

    def test_from_params(self):
        fn = DetectionFunction.from_params(
            DetectionParameters(detection_interval_s=120.0, detection_function="polynomial")
        )
        assert fn.form == "polynomial"
        assert fn.base_interval_s == 120.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            DetectionFunction("linear", 0.0)
        with pytest.raises(ParameterError):
            DetectionFunction("cubic", 60.0)
        with pytest.raises(ParameterError):
            DetectionFunction("linear", 60.0).rate_at_ratio(0.9)

    def test_describe(self):
        assert "60" in DetectionFunction("linear", 60.0).describe()


class TestHostIDS:
    def test_paper_default(self):
        ids = HostIDS.paper_default()
        assert ids.false_negative == 0.01
        assert ids.false_positive == 0.01

    def test_presets_trade_off(self):
        misuse = HostIDS.misuse_detection()
        anomaly = HostIDS.anomaly_detection()
        assert misuse.false_negative > anomaly.false_negative
        assert misuse.false_positive < anomaly.false_positive

    def test_verdict_frequencies(self):
        ids = HostIDS(false_negative=0.2, false_positive=0.1)
        rng = np.random.default_rng(3)
        n = 20000
        hit = sum(ids.verdict(True, rng) for _ in range(n)) / n
        fp = sum(ids.verdict(False, rng) for _ in range(n)) / n
        assert hit == pytest.approx(0.8, abs=0.01)
        assert fp == pytest.approx(0.1, abs=0.01)

    def test_validation(self):
        with pytest.raises(ParameterError):
            HostIDS(false_negative=1.5)

    def test_describe(self):
        assert "misuse" in HostIDS.misuse_detection().describe()


class TestRecommendation:
    @pytest.mark.parametrize("form", ["logarithmic", "linear", "polynomial"])
    def test_matched_strength(self, form):
        assert recommend_detection_function(form) == form

    def test_unknown_rejected(self):
        with pytest.raises(ParameterError):
            recommend_detection_function("zigzag")


class TestAdaptiveController:
    def make_controller(self, **kwargs) -> AdaptiveIDSController:
        return AdaptiveIDSController(
            detection=DetectionParameters(detection_function="logarithmic"),
            num_nodes=50,
            **kwargs,
        )

    @staticmethod
    def polynomial_history(n: int, k: int, seed: int = 0) -> list[float]:
        from repro.attackers import AttackerFunction

        fn = AttackerFunction("polynomial", 1e-3)
        rng = np.random.default_rng(seed)
        t, out = 0.0, []
        for i in range(k):
            t += rng.exponential(1.0 / fn.rate(n - i, i))
            out.append(t)
        return out

    def test_no_adaptation_below_min_observations(self):
        ctl = self.make_controller()
        ctl.observe_compromise(10.0)
        ctl.observe_compromise(20.0)
        out = ctl.adapt()
        assert out.detection_function == "logarithmic"
        assert ctl.last_estimate is None

    def test_adapts_to_polynomial_attacker(self):
        ctl = self.make_controller()
        # Use a sharply accelerating history (strongly polynomial).
        for t in self.polynomial_history(50, 25, seed=4):
            ctl.observe_compromise(t)
        out = ctl.adapt()
        assert ctl.last_estimate is not None
        assert out.detection_function == recommend_detection_function(ctl.last_estimate)

    def test_evaluator_reoptimises_interval(self):
        ctl = self.make_controller()
        # Quadratic score peaked at TIDS = 120.
        evaluator = lambda d: -(d.detection_interval_s - 120.0) ** 2  # noqa: E731
        out = ctl.adapt(evaluator=evaluator, tids_grid_s=[30, 60, 120, 240])
        assert out.detection_interval_s == 120.0

    def test_observe_monotonicity_enforced(self):
        ctl = self.make_controller()
        ctl.observe_compromise(5.0)
        with pytest.raises(ParameterError):
            ctl.observe_compromise(5.0)

    def test_current_function(self):
        ctl = self.make_controller()
        assert ctl.current_function().form == "logarithmic"

    def test_min_observations_validated(self):
        with pytest.raises(ParameterError):
            AdaptiveIDSController(DetectionParameters(), 10, min_observations=2)


@settings(max_examples=40, deadline=None)
@given(
    md=st.floats(min_value=1.0, max_value=40.0),
    tids=st.floats(min_value=1.0, max_value=2400.0),
)
def test_property_detection_rates_positive_and_ordered(md, tids):
    rates = {
        form: DetectionFunction(form, tids).rate_at_ratio(md)
        for form in ("logarithmic", "linear", "polynomial")
    }
    assert all(r >= 0 for r in rates.values())
    assert rates["logarithmic"] <= rates["linear"] + 1e-12
    assert rates["linear"] <= rates["polynomial"] + 1e-12
