"""Optimal-TIDS search and tradeoff curves."""

import pytest

from repro.core import Scenario, optimize_tids, tradeoff_curve
from repro.errors import ParameterError
from repro.params import GCSParameters

GRID = [15.0, 60.0, 240.0, 960.0]


@pytest.fixture(scope="module")
def params() -> GCSParameters:
    return GCSParameters.small_test()


@pytest.fixture(scope="module")
def curve(params):
    return tradeoff_curve(params, GRID)


class TestTradeoffCurve:
    def test_one_point_per_grid_entry(self, curve):
        assert [p.tids_s for p in curve] == GRID

    def test_points_carry_results(self, curve):
        for p in curve:
            assert p.mttsf_s > 0
            assert p.ctotal_hop_bits_s > 0
            assert p.result.params.tids_s == p.tids_s

    def test_grid_must_be_increasing(self, params):
        with pytest.raises(ParameterError):
            tradeoff_curve(params, [60.0, 30.0])
        with pytest.raises(ParameterError):
            tradeoff_curve(params, [])

    def test_progress_callback(self, params):
        seen = []
        tradeoff_curve(params, [30.0, 60.0], progress=seen.append)
        assert [p.tids_s for p in seen] == [30.0, 60.0]


class TestOptimizeTids:
    def test_max_mttsf_picks_argmax(self, params, curve):
        out = optimize_tids(params, GRID, objective="max-mttsf")
        best_ref = max(curve, key=lambda p: p.mttsf_s)
        assert out.optimal_tids_s == best_ref.tids_s
        assert out.feasible

    def test_min_ctotal_picks_argmin(self, params, curve):
        out = optimize_tids(params, GRID, objective="min-ctotal")
        best_ref = min(curve, key=lambda p: p.ctotal_hop_bits_s)
        assert out.optimal_tids_s == best_ref.tids_s

    def test_cost_ceiling_restricts(self, params, curve):
        # Set the ceiling between min and max cost: some points excluded.
        costs = sorted(p.ctotal_hop_bits_s for p in curve)
        ceiling = (costs[0] + costs[-1]) / 2
        out = optimize_tids(
            params, GRID, objective="max-mttsf", cost_ceiling_hop_bits_s=ceiling
        )
        assert out.feasible
        assert out.best.ctotal_hop_bits_s <= ceiling
        # The unconstrained optimum may differ; the constrained one must be
        # the best among feasible points.
        feasible = [p for p in curve if p.ctotal_hop_bits_s <= ceiling]
        assert out.best.mttsf_s == max(p.mttsf_s for p in feasible)

    def test_infeasible_ceiling(self, params, curve):
        ceiling = min(p.ctotal_hop_bits_s for p in curve) * 0.5
        out = optimize_tids(
            params, GRID, cost_ceiling_hop_bits_s=ceiling
        )
        assert not out.feasible
        with pytest.raises(ParameterError):
            _ = out.optimal_tids_s
        assert "NO FEASIBLE POINT" in out.summary()

    def test_summary_marks_optimum(self, params):
        out = optimize_tids(params, [30.0, 120.0])
        assert "<== optimal" in out.summary()

    def test_summary_marks_exactly_one_point(self, curve):
        # Stitch two copies of the curve together: several points now
        # share a tids_s with the optimum, so marking by float equality
        # on tids_s would flag duplicates — the marker must go by curve
        # index instead.
        from repro.core.optimizer import select_optimum

        doubled = list(curve) + list(curve)
        out = select_optimum(doubled)
        summary = out.summary()
        assert summary.count("<== optimal") == 1
        marked_line = next(
            line for line in summary.splitlines() if "<== optimal" in line
        )
        lines = summary.splitlines()[1:]  # skip the objective header
        assert lines.index(marked_line) == out.best_index

    def test_best_index_none_when_infeasible(self, curve):
        from repro.core.optimizer import select_optimum

        out = select_optimum(
            curve, objective="max-mttsf", cost_ceiling_hop_bits_s=1e-12
        )
        assert out.best is None
        assert out.best_index is None
        assert "NO FEASIBLE POINT" in out.summary()

    def test_validation(self, params):
        with pytest.raises(ParameterError):
            optimize_tids(params, GRID, objective="max-fun")
        with pytest.raises(ParameterError):
            optimize_tids(params, GRID, cost_ceiling_hop_bits_s=-5.0)
        with pytest.raises(ParameterError):
            optimize_tids(
                params, GRID, objective="min-ctotal", cost_ceiling_hop_bits_s=1.0
            )


class TestParallelSweep:
    def test_parallel_matches_serial(self, params):
        grid = [30.0, 120.0, 480.0]
        serial = tradeoff_curve(params, grid)
        parallel = tradeoff_curve(params, grid, workers=2)
        assert [p.tids_s for p in parallel] == grid
        for a, b in zip(serial, parallel):
            assert a.mttsf_s == pytest.approx(b.mttsf_s, rel=1e-12)
            assert a.ctotal_hop_bits_s == pytest.approx(b.ctotal_hop_bits_s, rel=1e-12)

    def test_progress_fires_in_parallel_mode(self, params):
        seen = []
        tradeoff_curve(params, [30.0, 120.0], workers=2, progress=seen.append)
        assert sorted(p.tids_s for p in seen) == [30.0, 120.0]

    def test_invalid_workers(self, params):
        with pytest.raises(ParameterError):
            tradeoff_curve(params, [30.0], workers=0)

    def test_optimize_accepts_workers(self, params):
        out = optimize_tids(params, [30.0, 120.0], workers=2)
        assert out.feasible


class TestScenarioOptimize:
    def test_scenario_wrapper(self, params):
        sc = Scenario(params)
        out = sc.optimize([30.0, 120.0], objective="max-mttsf")
        assert out.feasible
        out2 = sc.optimize([30.0, 120.0], num_voters=7)
        assert out2.best.result.params.num_voters == 7
