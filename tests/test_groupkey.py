"""GDH key agreement, rekeying, cost ledgers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError, ProtocolError
from repro.groupkey import (
    DHGroup,
    DHKeyPair,
    GroupKeyManager,
    RekeyCostModel,
    run_gdh2,
)
from repro.manet import NetworkModel
from repro.params import NetworkParameters


class TestDHGroup:
    def test_toy_group_properties(self):
        g = DHGroup.toy()
        assert g.element_bits == 61
        assert g.prime == (1 << 61) - 1

    def test_modp_group_size(self):
        g = DHGroup.modp_1536()
        assert g.element_bits == 1536

    def test_private_in_range(self):
        g = DHGroup.toy()
        rng = np.random.default_rng(0)
        for _ in range(100):
            x = g.sample_private(rng)
            assert 2 <= x <= g.prime - 2

    def test_exponentiation(self):
        g = DHGroup(prime=23, generator=5)
        assert g.exp(5, 3) == pow(5, 3, 23)
        assert g.public_of(4) == pow(5, 4, 23)

    def test_dh_commutativity(self):
        g = DHGroup.toy()
        rng = np.random.default_rng(1)
        a, b = DHKeyPair.generate(g, rng), DHKeyPair.generate(g, rng)
        assert g.exp(b.public, a.private) == g.exp(a.public, b.private)

    def test_validation(self):
        with pytest.raises(ParameterError):
            DHGroup(prime=4, generator=2)
        with pytest.raises(ParameterError):
            DHGroup(prime=23, generator=1)
        with pytest.raises(ParameterError):
            DHGroup(prime=23, generator=5).exp(25, 2)


class TestGDH2:
    @pytest.mark.parametrize("n", [2, 3, 5, 10, 25])
    def test_all_members_agree(self, n):
        result = run_gdh2(n, rng=np.random.default_rng(n))
        assert len(set(result.member_keys)) == 1
        assert result.member_keys[0] == result.shared_key

    def test_key_is_product_exponent(self):
        g = DHGroup.toy()
        rng = np.random.default_rng(2)
        pairs = [DHKeyPair.generate(g, rng) for _ in range(4)]
        result = run_gdh2(pairs)
        exponent = 1
        for pair in pairs:
            exponent = (exponent * pair.private) % (g.prime - 1)
        assert result.shared_key == pow(g.generator, exponent, g.prime)

    def test_ledger_message_counts(self):
        n = 7
        result = run_gdh2(n, rng=np.random.default_rng(3))
        ledger = result.ledger
        # n-1 upflow unicasts + 1 broadcast.
        assert ledger.num_messages == n
        broadcasts = [m for m in ledger.messages if m.is_broadcast]
        assert len(broadcasts) == 1
        assert broadcasts[0].num_elements == n - 1
        # Upflow message i has i+1 elements.
        upflow = [m for m in ledger.messages if not m.is_broadcast]
        assert [m.num_elements for m in upflow] == [i + 1 for i in range(1, n)]
        # Total elements: sum_{i=1}^{n-1}(i+1) + (n-1).
        expected = sum(i + 1 for i in range(1, n)) + (n - 1)
        assert ledger.total_elements == expected
        assert ledger.total_bits == expected * 61

    def test_different_runs_different_keys(self):
        a = run_gdh2(4, rng=np.random.default_rng(10))
        b = run_gdh2(4, rng=np.random.default_rng(11))
        assert a.shared_key != b.shared_key

    def test_too_few_members(self):
        with pytest.raises(ProtocolError):
            run_gdh2(1)

    def test_mixed_groups_rejected(self):
        rng = np.random.default_rng(0)
        pairs = [
            DHKeyPair.generate(DHGroup.toy(), rng),
            DHKeyPair.generate(DHGroup(prime=23, generator=5), rng),
        ]
        with pytest.raises(ProtocolError):
            run_gdh2(pairs)


@pytest.fixture
def cost_model() -> RekeyCostModel:
    return RekeyCostModel(NetworkModel.analytic(NetworkParameters()), element_bits=1024)


class TestRekeyCostModel:
    def test_initial_matches_gdh_ledger(self, cost_model):
        n = 9
        synthetic = cost_model.ledger_for("initial", n)
        actual = run_gdh2(n, rng=np.random.default_rng(1)).ledger
        assert synthetic.total_elements == actual.total_elements
        assert synthetic.num_messages == actual.num_messages

    def test_evict_is_single_broadcast(self, cost_model):
        ledger = cost_model.ledger_for("evict", 50)
        assert ledger.num_messages == 1
        assert ledger.messages[0].is_broadcast
        assert ledger.messages[0].num_elements == 49

    def test_hop_bits_flooding(self, cost_model):
        n = 20
        hop_bits = cost_model.hop_bits("evict", n)
        # One broadcast of (n-1) elements flooded through n members.
        assert hop_bits == pytest.approx((n - 1) * 1024 * n)

    def test_join_cost_has_unicast_and_broadcast(self, cost_model):
        n = 10
        hop_bits = cost_model.hop_bits("join", n)
        avg_hops = cost_model.network.avg_hops
        expected = n * 1024 * avg_hops + n * 1024 * n
        assert hop_bits == pytest.approx(expected)

    def test_costs_grow_with_group_size(self, cost_model):
        costs = [cost_model.hop_bits("initial", n) for n in (5, 10, 20, 40)]
        assert costs == sorted(costs)

    def test_tcm_positive_and_small(self, cost_model):
        tcm = cost_model.tcm_s(100)
        # ~99 elements * 1024 bits / 1 Mbps ≈ 0.1 s.
        assert tcm == pytest.approx(99 * 1024 / 1e6, rel=1e-6)
        assert cost_model.tcm_s(1) > 0.0
        assert cost_model.tcm_s(0) > 0.0

    def test_degenerate_groups_cost_nothing(self, cost_model):
        assert cost_model.hop_bits("join", 1) == 0.0
        assert cost_model.ledger_for("evict", 0).num_messages == 0

    def test_unknown_kind(self, cost_model):
        with pytest.raises(ParameterError):
            cost_model.ledger_for("reboot", 5)
        with pytest.raises(ParameterError):
            cost_model.hop_bits("evict", -1)


class TestGroupKeyManager:
    def make(self, n=5, seed=0) -> GroupKeyManager:
        return GroupKeyManager(range(n), rng=np.random.default_rng(seed))

    def test_initial_agreement(self):
        mgr = self.make()
        assert mgr.members == (0, 1, 2, 3, 4)
        assert mgr.key_version == 1
        assert mgr.current_key > 0

    def test_join_changes_key(self):
        mgr = self.make()
        old = mgr.current_key
        op = mgr.join(99)
        assert mgr.current_key != old  # backward secrecy
        assert 99 in mgr.members
        assert op.kind == "join"
        assert mgr.key_version == 2

    def test_evict_changes_key_and_removes(self):
        mgr = self.make()
        old = mgr.current_key
        mgr.evict(3)
        assert 3 not in mgr.members
        assert mgr.current_key != old  # forward secrecy
        assert not mgr.was_member_key(mgr.current_key + 1)
        assert mgr.was_member_key(old)

    def test_duplicate_join_rejected(self):
        mgr = self.make()
        with pytest.raises(ProtocolError):
            mgr.join(2)

    def test_remove_unknown_rejected(self):
        mgr = self.make()
        with pytest.raises(ProtocolError):
            mgr.leave(42)

    def test_cannot_shrink_below_two(self):
        mgr = self.make(3)
        mgr.leave(0)
        with pytest.raises(ProtocolError):
            mgr.leave(1)

    def test_partition_and_merge(self):
        mgr = self.make(6, seed=1)
        key_before = mgr.current_key
        other = mgr.partition([4, 5])
        assert mgr.members == (0, 1, 2, 3)
        assert other.members == (4, 5)
        assert mgr.current_key != key_before
        assert other.current_key != mgr.current_key
        op = mgr.merge(other)
        assert op.kind == "merge"
        assert set(mgr.members) == {0, 1, 2, 3, 4, 5}

    def test_partition_validation(self):
        mgr = self.make(4)
        with pytest.raises(ProtocolError):
            mgr.partition([0])  # departing too small
        with pytest.raises(ProtocolError):
            mgr.partition([0, 1, 2])  # staying too small
        with pytest.raises(ProtocolError):
            mgr.partition([0, 42])

    def test_merge_overlap_rejected(self):
        a = self.make(4, seed=2)
        b = GroupKeyManager([3, 9], rng=np.random.default_rng(3))
        with pytest.raises(ProtocolError):
            a.merge(b)

    def test_history_records_operations(self):
        mgr = self.make()
        mgr.join(50)
        mgr.evict(0)
        kinds = [op.kind for op in mgr.history]
        assert kinds == ["initial", "join", "evict"]

    def test_cost_model_attached(self):
        model = RekeyCostModel(
            NetworkModel.analytic(NetworkParameters()), element_bits=512
        )
        mgr = GroupKeyManager(range(4), cost_model=model, rng=np.random.default_rng(4))
        op = mgr.join(10)
        assert op.hop_bits > 0
        assert op.duration_s > 0

    def test_too_small_initial_group(self):
        with pytest.raises(ProtocolError):
            GroupKeyManager([1])


@settings(max_examples=15, deadline=None)
@given(n=st.integers(2, 12), seed=st.integers(0, 100))
def test_property_gdh_agreement(n, seed):
    result = run_gdh2(n, rng=np.random.default_rng(seed))
    assert len(set(result.member_keys)) == 1
    assert result.ledger.num_messages == n
