"""MANET substrate: geometry, mobility, connectivity, partition rates."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.manet import (
    NetworkModel,
    RandomWaypointModel,
    adjacency_matrix,
    average_hop_count,
    connected_component_count,
    connected_components,
    estimate_partition_merge_rates,
    pairwise_distances,
    sample_points_in_disk,
)
from repro.manet.connectivity import hop_count_matrix
from repro.manet.geometry import mean_distance_in_disk
from repro.params import NetworkParameters


class TestGeometry:
    def test_points_inside_disk(self):
        pts = sample_points_in_disk(500, 100.0, np.random.default_rng(0))
        assert pts.shape == (500, 2)
        assert (np.linalg.norm(pts, axis=1) <= 100.0 + 1e-9).all()

    def test_uniform_in_area(self):
        # Half the area lies within R/sqrt(2): expect ~50% of points.
        rng = np.random.default_rng(1)
        pts = sample_points_in_disk(20000, 1.0, rng)
        inner = (np.linalg.norm(pts, axis=1) <= 1.0 / math.sqrt(2)).mean()
        assert inner == pytest.approx(0.5, abs=0.02)

    def test_center_offset(self):
        pts = sample_points_in_disk(100, 10.0, np.random.default_rng(2), center=(50, -20))
        assert (np.linalg.norm(pts - [50, -20], axis=1) <= 10.0 + 1e-9).all()

    def test_pairwise_distances(self):
        pts = np.array([[0.0, 0.0], [3.0, 4.0], [0.0, 8.0]])
        d = pairwise_distances(pts)
        assert d[0, 1] == pytest.approx(5.0)
        assert d[1, 2] == pytest.approx(5.0)
        assert d[0, 2] == pytest.approx(8.0)
        np.testing.assert_allclose(d, d.T)
        np.testing.assert_allclose(np.diag(d), 0.0)

    def test_mean_distance_closed_form(self):
        rng = np.random.default_rng(3)
        a = sample_points_in_disk(60000, 1.0, rng)
        b = sample_points_in_disk(60000, 1.0, rng)
        empirical = np.linalg.norm(a - b, axis=1).mean()
        assert mean_distance_in_disk(1.0) == pytest.approx(empirical, rel=0.01)

    def test_validation(self):
        with pytest.raises(ParameterError):
            sample_points_in_disk(-1, 1.0)
        with pytest.raises(ParameterError):
            sample_points_in_disk(1, 0.0)
        with pytest.raises(ParameterError):
            pairwise_distances(np.ones((3, 3)))
        with pytest.raises(ParameterError):
            mean_distance_in_disk(-1.0)


class TestRandomWaypoint:
    def small_params(self, **kw) -> NetworkParameters:
        defaults = dict(num_nodes=20, radius_m=100.0, wireless_range_m=40.0)
        defaults.update(kw)
        return NetworkParameters(**defaults)

    def test_positions_stay_in_disk(self):
        model = RandomWaypointModel(self.small_params(), np.random.default_rng(0))
        for positions in model.trace(120.0, 1.0):
            assert (np.linalg.norm(positions, axis=1) <= 100.0 + 1e-6).all()

    def test_nodes_actually_move(self):
        model = RandomWaypointModel(self.small_params(pause_s=0.0), np.random.default_rng(1))
        start = model.snapshot()
        for _ in model.trace(60.0, 1.0):
            pass
        moved = np.linalg.norm(model.positions - start, axis=1)
        assert (moved > 1.0).mean() > 0.9

    def test_pause_halts_movement(self):
        params = self.small_params(pause_s=1e9)  # effectively forever
        model = RandomWaypointModel(params, np.random.default_rng(2))
        # Drive every node to arrival by stepping far.
        model.step(1e6)
        frozen = model.snapshot()
        model.step(10.0)
        np.testing.assert_allclose(model.positions, frozen)

    def test_speed_bounds_respected(self):
        params = self.small_params(speed_min_mps=2.0, speed_max_mps=3.0, pause_s=0.0)
        model = RandomWaypointModel(params, np.random.default_rng(3))
        prev = model.snapshot()
        for positions in model.trace(30.0, 1.0):
            step = np.linalg.norm(positions - prev, axis=1)
            assert (step <= 3.0 + 1e-9).all()
            prev = positions.copy()

    def test_deterministic_given_seed(self):
        a = RandomWaypointModel(self.small_params(), np.random.default_rng(7))
        b = RandomWaypointModel(self.small_params(), np.random.default_rng(7))
        for _ in range(20):
            a.step(1.0)
            b.step(1.0)
        np.testing.assert_array_equal(a.positions, b.positions)

    def test_time_tracked(self):
        model = RandomWaypointModel(self.small_params(), np.random.default_rng(0))
        model.step(2.5)
        model.step(2.5)
        assert model.time_s == pytest.approx(5.0)

    def test_validation(self):
        model = RandomWaypointModel(self.small_params(), np.random.default_rng(0))
        with pytest.raises(ParameterError):
            model.step(0.0)
        with pytest.raises(ParameterError):
            list(model.trace(-5.0, 1.0))


class TestConnectivity:
    def line_positions(self, n: int, spacing: float) -> np.ndarray:
        return np.column_stack([np.arange(n) * spacing, np.zeros(n)])

    def test_adjacency_by_range(self):
        pts = self.line_positions(3, 10.0)
        adj = adjacency_matrix(pts, 10.0)
        assert adj[0, 1] and adj[1, 2]
        assert not adj[0, 2]
        assert not adj.diagonal().any()

    def test_connected_components_line(self):
        pts = self.line_positions(5, 10.0)
        assert connected_component_count(pts, 10.0) == 1
        assert connected_component_count(pts, 9.0) == 5

    def test_two_clusters(self):
        pts = np.vstack([self.line_positions(3, 5.0), self.line_positions(3, 5.0) + [1000, 0]])
        labels = connected_components(pts, 10.0)
        assert len(set(labels[:3])) == 1
        assert len(set(labels[3:])) == 1
        assert labels[0] != labels[3]

    def test_hop_counts_line(self):
        pts = self.line_positions(4, 10.0)
        hops = hop_count_matrix(pts, 10.0)
        assert hops[0, 3] == 3
        assert hops[0, 1] == 1

    def test_average_hop_count_line(self):
        pts = self.line_positions(3, 10.0)
        # Pairs: (0,1)=1, (1,2)=1, (0,2)=2 -> mean 4/3.
        assert average_hop_count(pts, 10.0) == pytest.approx(4 / 3)

    def test_average_hop_count_disconnected_pairs_excluded(self):
        pts = np.array([[0.0, 0.0], [5.0, 0.0], [1000.0, 0.0]])
        assert average_hop_count(pts, 10.0) == pytest.approx(1.0)

    def test_no_connected_pairs(self):
        pts = np.array([[0.0, 0.0], [1000.0, 0.0]])
        assert math.isnan(average_hop_count(pts, 10.0))

    def test_bad_range(self):
        with pytest.raises(ParameterError):
            adjacency_matrix(np.zeros((2, 2)), 0.0)


class TestPartitionEstimation:
    def test_dense_network_rarely_partitions(self):
        params = NetworkParameters(num_nodes=40, radius_m=300.0, wireless_range_m=250.0)
        est = estimate_partition_merge_rates(
            params, duration_s=400.0, dt_s=2.0, rng=np.random.default_rng(0)
        )
        assert est.mean_groups < 1.3
        assert est.mean_hop_count >= 1.0
        assert est.samples == 200

    def test_sparse_network_partitions_often(self):
        params = NetworkParameters(num_nodes=12, radius_m=600.0, wireless_range_m=120.0)
        est = estimate_partition_merge_rates(
            params, duration_s=400.0, dt_s=2.0, rng=np.random.default_rng(1)
        )
        assert est.mean_groups > 1.5
        assert est.partition_rate_hz > 0.0
        assert est.max_groups_seen >= 2

    def test_describe(self):
        params = NetworkParameters(num_nodes=10, radius_m=200.0, wireless_range_m=150.0)
        est = estimate_partition_merge_rates(
            params, duration_s=60.0, dt_s=2.0, rng=np.random.default_rng(2)
        )
        assert "partition=" in est.describe()

    def test_validation(self):
        params = NetworkParameters(num_nodes=5)
        with pytest.raises(ParameterError):
            estimate_partition_merge_rates(params, duration_s=0.0)
        with pytest.raises(ParameterError):
            estimate_partition_merge_rates(params, duration_s=10.0, dt_s=1.0, hop_sample_every=0)


class TestNetworkModel:
    def test_analytic_hops_scale_with_arena(self):
        small = NetworkModel.analytic(NetworkParameters(radius_m=200.0))
        large = NetworkModel.analytic(NetworkParameters(radius_m=2000.0))
        assert large.avg_hops > small.avg_hops
        assert small.avg_hops >= 1.0

    def test_cost_primitives(self):
        net = NetworkModel.analytic(NetworkParameters())
        assert net.unicast_cost_bits(1000.0) == pytest.approx(1000.0 * net.avg_hops)
        assert net.flood_cost_bits(1000.0, 50) == pytest.approx(50000.0)
        assert net.neighborhood_cost_bits(64.0) == 64.0
        assert net.transmission_time_s(1e6) == pytest.approx(1.0)

    def test_from_mobility(self):
        params = NetworkParameters(num_nodes=15, radius_m=300.0, wireless_range_m=200.0)
        net = NetworkModel.from_mobility(
            params, duration_s=120.0, dt_s=2.0, rng=np.random.default_rng(5)
        )
        assert net.measured
        assert net.avg_hops >= 1.0
        assert "measured" in net.describe()

    def test_validation(self):
        net = NetworkModel.analytic(NetworkParameters())
        with pytest.raises(ParameterError):
            net.unicast_cost_bits(-1.0)
        with pytest.raises(ParameterError):
            net.flood_cost_bits(10.0, -1)
        with pytest.raises(ParameterError):
            NetworkModel(NetworkParameters(), avg_hops=0.5, partition_rate_hz=0.0, merge_rate_hz=1.0)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 1000), n=st.integers(2, 30))
def test_property_components_partition_nodes(seed, n):
    rng = np.random.default_rng(seed)
    pts = sample_points_in_disk(n, 100.0, rng)
    labels = connected_components(pts, 30.0)
    assert labels.shape == (n,)
    k = connected_component_count(pts, 30.0)
    assert set(labels) == set(range(k))
    # Adjacent nodes always share a component.
    adj = adjacency_matrix(pts, 30.0)
    for i in range(n):
        for j in range(n):
            if adj[i, j]:
                assert labels[i] == labels[j]
