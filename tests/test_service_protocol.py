"""Protocol-layer tests: wire round-trips and malformed-payload handling.

Everything here runs without a socket — the payload dataclasses in
:mod:`repro.service.protocol` must round-trip through plain JSON and
reject junk with :class:`ProtocolError` (which the HTTP layer maps onto
4xx; see ``test_service.py`` for the socket-level assertions).
"""

import json

import pytest

from repro.engine.batch import (
    EvalRequest,
    SurvivabilityRequest,
    network_from_dict,
    network_to_dict,
    request_from_dict,
    request_to_dict,
)
from repro.core.metrics import resolve_network
from repro.errors import ParameterError, ReproError
from repro.params import GCSParameters, NetworkParameters
from repro.service.protocol import (
    PROTOCOL_VERSION,
    FetchResponse,
    JobStatus,
    ProtocolError,
    SubmitRequest,
    SubmitResponse,
    job_id_for,
    outcome_entry_to_dict,
)


def _requests():
    return (
        EvalRequest(params=GCSParameters.small_test()),
        EvalRequest(params=GCSParameters.small_test(), include_variance=True),
        SurvivabilityRequest(
            params=GCSParameters.small_test(), times_s=(10.0, 100.0)
        ),
    )


def _json_round_trip(payload: dict) -> dict:
    return json.loads(json.dumps(payload))


class TestRequestWireFormat:
    def test_eval_request_round_trip(self):
        request = EvalRequest(
            params=GCSParameters.small_test(),
            method="spn",
            include_breakdown=True,
        )
        rebuilt = request_from_dict(_json_round_trip(request_to_dict(request)))
        assert rebuilt == request
        assert rebuilt.fingerprint() == request.fingerprint()

    def test_survivability_request_round_trip(self):
        request = SurvivabilityRequest(
            params=GCSParameters.small_test(),
            times_s=(5.0, 50.0, 500.0),
            eps=1e-10,
        )
        rebuilt = request_from_dict(_json_round_trip(request_to_dict(request)))
        assert rebuilt == request
        assert rebuilt.fingerprint() == request.fingerprint()

    def test_explicit_network_round_trips(self):
        from repro.manet.network import NetworkModel

        params = GCSParameters.small_test()
        network = NetworkModel.analytic(
            NetworkParameters(radius_m=2000.0, wireless_range_m=400.0)
        )
        request = EvalRequest(params=params, network=network)
        rebuilt = request_from_dict(_json_round_trip(request_to_dict(request)))
        assert rebuilt.network == network
        assert rebuilt.fingerprint() == request.fingerprint()

    def test_default_network_collapses_to_none_on_wire(self):
        # An explicit NetworkModel equal to the params-derived default is
        # canonicalised away (exactly like the cache fingerprint does),
        # keeping payloads small and fingerprints stable.
        params = GCSParameters.small_test()
        request = EvalRequest(params=params, network=resolve_network(params, None))
        record = request_to_dict(request)
        assert record["network"] is None
        assert request_from_dict(record).fingerprint() == request.fingerprint()

    def test_network_dict_none_passthrough(self):
        assert network_to_dict(None) is None
        assert network_from_dict(None) is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ParameterError):
            request_from_dict({"kind": "mystery", "params": {}})

    def test_malformed_params_rejected(self):
        with pytest.raises(ParameterError):
            request_from_dict({"kind": "eval", "params": {"num_nodes": "many"}})


class TestJobId:
    def test_order_independent(self):
        requests = _requests()
        assert job_id_for(requests) == job_id_for(tuple(reversed(requests)))

    def test_content_sensitive(self):
        a, b, c = _requests()
        assert job_id_for((a, b)) != job_id_for((a, c))

    def test_survives_wire_round_trip(self):
        requests = _requests()
        rebuilt = tuple(
            request_from_dict(_json_round_trip(request_to_dict(r)))
            for r in requests
        )
        assert job_id_for(rebuilt) == job_id_for(requests)


class TestSubmitPayloads:
    def test_submit_round_trip(self):
        submit = SubmitRequest(requests=_requests(), name="trip")
        rebuilt = SubmitRequest.from_dict(_json_round_trip(submit.to_dict()))
        assert rebuilt.name == "trip"
        assert rebuilt.requests == submit.requests
        assert rebuilt.job_id == submit.job_id

    def test_empty_campaign_rejected(self):
        with pytest.raises(ProtocolError):
            SubmitRequest(requests=())

    def test_non_request_items_rejected(self):
        with pytest.raises(ProtocolError):
            SubmitRequest(requests=("not-a-request",))

    @pytest.mark.parametrize(
        "body",
        [
            "a string",
            {"name": "x"},  # missing requests
            {"requests": "nope"},
            {"requests": [{"kind": "mystery"}]},
            {"requests": [], "name": "empty"},
            {"requests": [{"kind": "eval", "params": {"num_nodes": -3}}]},
            {"requests": [{"kind": "eval"}]},  # missing params
            {"protocol_version": 999, "requests": []},
            {"requests": [{"kind": "eval", "params": {}}], "name": ""},
        ],
    )
    def test_malformed_submit_raises_protocol_error(self, body):
        with pytest.raises(ProtocolError):
            SubmitRequest.from_dict(body)

    def test_protocol_error_is_repro_error_with_400(self):
        with pytest.raises(ReproError) as excinfo:
            SubmitRequest.from_dict({"requests": "nope"})
        assert excinfo.value.status == 400

    def test_submit_response_round_trip(self):
        response = SubmitResponse(
            job_id="abc", total=7, state="queued", resubmitted=True
        )
        rebuilt = SubmitResponse.from_dict(_json_round_trip(response.to_dict()))
        assert rebuilt == response

    def test_submit_response_missing_fields(self):
        with pytest.raises(ProtocolError):
            SubmitResponse.from_dict({"job_id": "abc"})


class TestStatusAndFetchPayloads:
    def test_job_status_round_trip(self):
        status = JobStatus(
            job_id="abc",
            name="fig2",
            state="running",
            total=40,
            done=12,
            cache_hits=5,
            evaluated=7,
            errors=0,
            created_at="2026-01-01T00:00:00+0000",
            elapsed_seconds=1.5,
            metrics_delta={"engine.requests": {"kind": "counter", "value": 12}},
        )
        rebuilt = JobStatus.from_dict(_json_round_trip(status.to_dict()))
        assert rebuilt == status

    def test_job_status_version_tagged(self):
        payload = JobStatus(
            job_id="x", name="campaign", state="done", total=1
        ).to_dict()
        assert payload["protocol_version"] == PROTOCOL_VERSION

    def test_fetch_round_trip(self):
        fetch = FetchResponse(
            job_id="abc",
            state="done",
            entries=(
                outcome_entry_to_dict(0, "cache", result={"mttsf_s": 1.0}),
                outcome_entry_to_dict(
                    1, "error", error={"error_type": "SolverError", "error": "x"}
                ),
            ),
            next_offset=2,
            complete=True,
            telemetry={"metrics": {}, "spans": []},
        )
        rebuilt = FetchResponse.from_dict(_json_round_trip(fetch.to_dict()))
        assert rebuilt == fetch

    def test_fetch_entries_must_be_list(self):
        with pytest.raises(ProtocolError):
            FetchResponse.from_dict(
                {"job_id": "x", "state": "done", "entries": "nope"}
            )

    def test_outcome_entry_shape(self):
        entry = outcome_entry_to_dict(3, "evaluated", result={"a": 1})
        assert entry == {"index": 3, "source": "evaluated", "result": {"a": 1}}
        bare = outcome_entry_to_dict(0, "cache")
        assert "result" not in bare and "error" not in bare
