"""Event queue, entities, collectors."""

import numpy as np
import pytest

from repro.errors import ParameterError, SimulationError
from repro.sim import EventQueue, GroupState, MissionRecord, NodeState, ReplicationStats


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.schedule(5.0, "b")
        q.schedule(1.0, "a")
        q.schedule(3.0, "c")
        assert [q.pop().kind for _ in range(3)] == ["a", "c", "b"]
        assert q.now_s == 5.0

    def test_stable_tie_break(self):
        q = EventQueue()
        q.schedule(1.0, "first")
        q.schedule(1.0, "second")
        assert q.pop().kind == "first"
        assert q.pop().kind == "second"

    def test_cancellation(self):
        q = EventQueue()
        e = q.schedule(1.0, "dead")
        q.schedule(2.0, "alive")
        e.cancel()
        assert q.pop().kind == "alive"
        assert len(q) == 0

    def test_schedule_at(self):
        q = EventQueue()
        q.schedule_at(10.0, "x")
        assert q.peek_time() == 10.0
        with pytest.raises(SimulationError):
            q.pop()
            q.schedule_at(5.0, "y")

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().schedule(-1.0, "x")

    def test_pop_empty(self):
        assert EventQueue().pop() is None

    def test_clear(self):
        q = EventQueue()
        q.schedule(1.0, "x")
        q.clear()
        assert q.pop() is None

    def test_payloads(self):
        q = EventQueue()
        q.schedule(1.0, "x", payload={"node": 3})
        assert q.pop().payload == {"node": 3}

    def test_len_counts_live_events(self):
        q = EventQueue()
        events = [q.schedule(float(i + 1), "e") for i in range(5)]
        assert len(q) == 5
        events[1].cancel()
        events[3].cancel()
        assert len(q) == 3
        q.pop()
        assert len(q) == 2

    def test_len_is_constant_time(self):
        # The counter, not a heap scan: len() must not depend on the
        # number of dead events still sitting in the heap.
        q = EventQueue()
        events = [q.schedule(float(i + 1), "e") for i in range(1000)]
        for e in events[:-1]:
            e.cancel()
        assert len(q) == 1
        assert len(q._heap) == 1000  # lazily cancelled, not removed

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        e = q.schedule(1.0, "x")
        q.schedule(2.0, "y")
        e.cancel()
        e.cancel()  # double-cancel must not double-decrement
        assert len(q) == 1

    def test_cancel_after_pop_is_noop(self):
        q = EventQueue()
        q.schedule(1.0, "x")
        q.schedule(2.0, "y")
        popped = q.pop()
        popped.cancel()
        assert len(q) == 1

    def test_cancel_after_clear_is_noop(self):
        q = EventQueue()
        e = q.schedule(1.0, "x")
        q.clear()
        e.cancel()
        assert len(q) == 0
        q.schedule(1.5, "z")
        assert len(q) == 1


class TestGroupState:
    def test_fresh_all_trusted(self):
        g = GroupState.fresh(5)
        assert g.t == 5 and g.u == 0 and g.d == 0
        assert sorted(g.trusted) == [0, 1, 2, 3, 4]
        assert g.live_members == g.trusted

    def test_lifecycle(self):
        g = GroupState.fresh(3)
        g.compromise(1)
        assert g.of(1) is NodeState.COMPROMISED
        assert g.u == 1 and g.t == 2
        g.detect(1)
        assert g.d == 1 and g.u == 0
        g.evict(1)
        assert g.of(1) is NodeState.EVICTED
        assert 1 not in g.live_members

    def test_false_accusation_path(self):
        g = GroupState.fresh(3)
        g.detect(0)  # trusted -> detected is legal (false accusation)
        assert g.t == 2 and g.d == 1

    def test_invalid_transitions(self):
        g = GroupState.fresh(3)
        g.compromise(0)
        with pytest.raises(SimulationError):
            g.compromise(0)
        with pytest.raises(SimulationError):
            g.evict(0)  # must be detected first
        with pytest.raises(SimulationError):
            g.of(99)


class TestReplicationStats:
    def test_from_samples(self):
        s = ReplicationStats.from_samples([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.count == 3

    def test_interval_contains(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(10.0, 1.0, size=200)
        s = ReplicationStats.from_samples(samples)
        assert s.contains(10.0)
        assert not s.contains(12.0)
        lo, hi = s.interval
        assert lo < s.mean < hi

    def test_single_sample_infinite_ci(self):
        s = ReplicationStats.from_samples([5.0])
        assert s.half_width == float("inf")

    def test_validation(self):
        with pytest.raises(ParameterError):
            ReplicationStats.from_samples([])
        with pytest.raises(ParameterError):
            ReplicationStats.from_samples([1.0], confidence=1.5)

    def test_describe(self):
        assert "n=2" in ReplicationStats.from_samples([1.0, 2.0]).describe()


class TestMissionRecord:
    def test_mean_cost_rate(self):
        r = MissionRecord(
            ttsf_s=100.0,
            failure_mode="c1_data_leak",
            accumulated_cost_hop_bits=500.0,
            num_compromises=1,
            num_detections=0,
            num_false_evictions=0,
            num_leak_attempts=1,
        )
        assert r.mean_cost_rate == pytest.approx(5.0)
