"""Audit-feature host IDS: closed forms vs Monte Carlo, calibration."""

import numpy as np
import pytest
from scipy import stats

from repro.detection.audit import AnomalyDetector, AuditFeatureModel, MisuseDetector
from repro.errors import ParameterError


class TestAuditFeatureModel:
    def test_defaults_consistent(self):
        m = AuditFeatureModel()
        assert m.num_features == 3
        assert m.noncentrality > 0

    def test_sample_shapes_and_shift(self):
        m = AuditFeatureModel()
        rng = np.random.default_rng(0)
        normal = m.sample(False, rng, 5000)
        bad = m.sample(True, rng, 5000)
        assert normal.shape == (5000, 3)
        # Compromised nodes forward less and send more route traffic.
        assert bad[:, 0].mean() < normal[:, 0].mean()
        assert bad[:, 1].mean() > normal[:, 1].mean()

    def test_validation(self):
        with pytest.raises(ParameterError):
            AuditFeatureModel(normal_mean=(1.0,))  # wrong arity
        with pytest.raises(ParameterError):
            AuditFeatureModel(normal_std=(0.0, 1.0, 1.0))


class TestAnomalyDetector:
    def test_calibration_hits_target_p2(self):
        for target in (0.001, 0.01, 0.05):
            det = AnomalyDetector.calibrated(target)
            assert det.false_positive_probability == pytest.approx(target, rel=1e-9)

    def test_closed_form_p1_is_ncx2(self):
        det = AnomalyDetector.calibrated(0.01)
        ref = stats.ncx2.cdf(det.threshold, df=3, nc=det.model.noncentrality)
        assert det.false_negative_probability == pytest.approx(ref)

    def test_monte_carlo_matches_closed_form(self):
        det = AnomalyDetector.calibrated(0.02)
        p1_mc, p2_mc = det.realized_error_rates(trials=40_000, rng=np.random.default_rng(1))
        assert p2_mc == pytest.approx(det.false_positive_probability, abs=0.004)
        assert p1_mc == pytest.approx(det.false_negative_probability, abs=0.01)

    def test_tradeoff_direction(self):
        # Stricter threshold (fewer false alarms) must miss more.
        loose = AnomalyDetector.calibrated(0.05)
        strict = AnomalyDetector.calibrated(0.001)
        assert strict.false_negative_probability > loose.false_negative_probability

    def test_score_and_flag(self):
        det = AnomalyDetector.calibrated(0.01)
        at_mean = np.asarray([det.model.normal_mean])
        assert det.score(at_mean)[0] == pytest.approx(0.0)
        assert not det.flag(at_mean)[0]
        far = at_mean + 10 * np.asarray([det.model.normal_std])
        assert det.flag(far)[0]

    def test_feature_arity_checked(self):
        det = AnomalyDetector.calibrated(0.01)
        with pytest.raises(ParameterError):
            det.score(np.zeros((1, 5)))

    def test_to_host_ids(self):
        det = AnomalyDetector.calibrated(0.02)
        ids = det.to_host_ids()
        assert ids.technique == "anomaly-audit"
        assert ids.false_positive == pytest.approx(0.02, rel=1e-9)

    def test_invalid_calibration(self):
        with pytest.raises(ParameterError):
            AnomalyDetector.calibrated(0.0)
        with pytest.raises(ParameterError):
            AnomalyDetector.calibrated(1.5)


class TestMisuseDetector:
    def test_error_rate_formulas(self):
        det = MisuseDetector(coverage=0.9, match_rate=0.95, collision_rate=0.002)
        assert det.false_negative_probability == pytest.approx(1 - 0.9 * 0.95)
        assert det.false_positive_probability == 0.002

    def test_monte_carlo_matches(self):
        det = MisuseDetector()
        p1, p2 = det.realized_error_rates(trials=30_000, rng=np.random.default_rng(2))
        assert p1 == pytest.approx(det.false_negative_probability, abs=0.01)
        assert p2 == pytest.approx(det.false_positive_probability, abs=0.005)

    def test_dichotomy_vs_anomaly(self):
        # Paper Section 2.2: misuse = more misses/fewer false alarms
        # relative to an anomaly detector tuned to the same context.
        misuse = MisuseDetector()
        anomaly = AnomalyDetector.calibrated(0.02)
        assert misuse.false_positive_probability < anomaly.false_positive_probability
        assert misuse.false_negative_probability > anomaly.false_negative_probability * 0.0
        assert misuse.to_host_ids().technique == "misuse-audit"

    def test_validation(self):
        with pytest.raises(ParameterError):
            MisuseDetector(coverage=1.2)


class TestEndToEnd:
    def test_derived_rates_feed_the_model(self):
        """(p1, p2) from the audit detector drive a full evaluation."""
        from repro.core import evaluate
        from repro.params import GCSParameters

        det = AnomalyDetector.calibrated(0.01)
        ids = det.to_host_ids()
        params = GCSParameters.small_test(
            host_false_negative=ids.false_negative,
            host_false_positive=ids.false_positive,
        )
        result = evaluate(params)
        assert result.mttsf_s > 0
