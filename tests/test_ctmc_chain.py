"""Unit tests for the CTMC container."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.ctmc import CTMC
from repro.errors import ModelError, ParameterError


def simple_chain() -> CTMC:
    # 0 -> 1 -> 2 (absorbing), plus 0 -> 2 direct.
    return CTMC.from_transitions(3, [(0, 1, 2.0), (1, 2, 1.0), (0, 2, 0.5)])


class TestConstruction:
    def test_from_transitions_basic(self):
        chain = simple_chain()
        assert chain.num_states == 3
        assert chain.num_transitions == 3
        assert chain.rates[0, 1] == 2.0
        assert chain.rates[0, 2] == 0.5

    def test_out_rates(self):
        chain = simple_chain()
        np.testing.assert_allclose(chain.out_rates, [2.5, 1.0, 0.0])

    def test_duplicate_transitions_summed(self):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0), (0, 1, 2.0)])
        assert chain.rates[0, 1] == 3.0
        assert chain.num_transitions == 1

    def test_zero_rate_dropped(self):
        chain = CTMC.from_transitions(2, [(0, 1, 0.0)])
        assert chain.num_transitions == 0

    def test_self_loop_dropped(self):
        chain = CTMC.from_transitions(2, [(0, 0, 5.0), (0, 1, 1.0)])
        assert chain.num_transitions == 1
        np.testing.assert_allclose(chain.out_rates, [1.0, 0.0])

    def test_negative_rate_rejected(self):
        with pytest.raises(ModelError):
            CTMC.from_transitions(2, [(0, 1, -1.0)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ModelError):
            CTMC.from_transitions(2, [(0, 2, 1.0)])

    def test_nonsquare_rejected(self):
        with pytest.raises(ModelError):
            CTMC(sp.csr_matrix(np.ones((2, 3))))

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            CTMC.from_transitions(0, [])

    def test_nan_rate_rejected(self):
        with pytest.raises(ModelError):
            CTMC.from_transitions(2, [(0, 1, float("nan"))])

    def test_labels_attached(self):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0)], labels=["start", "end"])
        assert chain.labels == ["start", "end"]

    def test_labels_length_mismatch(self):
        with pytest.raises(ModelError):
            CTMC.from_transitions(2, [(0, 1, 1.0)], labels=["only-one"])

    def test_dense_matrix_accepted(self):
        chain = CTMC(np.array([[0.0, 1.0], [0.0, 0.0]]))
        assert chain.num_states == 2
        assert chain.rates[0, 1] == 1.0


class TestStructure:
    def test_absorbing_detection(self):
        chain = simple_chain()
        np.testing.assert_array_equal(chain.absorbing_states, [2])
        np.testing.assert_array_equal(chain.transient_states, [0, 1])

    def test_generator_rows_sum_to_zero(self):
        chain = simple_chain()
        Q = chain.generator()
        np.testing.assert_allclose(np.asarray(Q.sum(axis=1)).ravel(), 0.0, atol=1e-15)
        assert Q[0, 0] == -2.5

    def test_uniformized_dtmc_stochastic(self):
        chain = simple_chain()
        P = chain.uniformized_dtmc()
        np.testing.assert_allclose(np.asarray(P.sum(axis=1)).ravel(), 1.0)
        assert (P.toarray() >= 0).all()

    def test_uniformization_rate_positive_for_absorbing_only(self):
        chain = CTMC.from_transitions(1, [])
        assert chain.uniformization_rate() > 0

    def test_uniformized_dtmc_bad_rate(self):
        chain = simple_chain()
        with pytest.raises(ParameterError):
            chain.uniformized_dtmc(rate=1.0)  # below max exit rate 2.5


class TestReachability:
    def test_reachable_from_initial(self):
        chain = CTMC.from_transitions(
            4, [(0, 1, 1.0), (1, 2, 1.0), (3, 2, 1.0)]
        )
        np.testing.assert_array_equal(chain.reachable_from(0), [0, 1, 2])
        np.testing.assert_array_equal(chain.reachable_from(3), [2, 3])

    def test_can_reach(self):
        chain = CTMC.from_transitions(
            4, [(0, 1, 1.0), (1, 2, 1.0), (3, 3, 1.0)]
        )
        mask = chain.can_reach([2])
        np.testing.assert_array_equal(mask, [True, True, True, False])

    def test_subchain_remaps(self):
        chain = CTMC.from_transitions(
            4, [(0, 1, 1.0), (1, 3, 2.0), (2, 3, 9.0)], labels=list("abcd")
        )
        sub, idx = chain.subchain([0, 1, 3])
        np.testing.assert_array_equal(idx, [0, 1, 3])
        assert sub.num_states == 3
        assert sub.rates[1, 2] == 2.0
        assert sub.labels == ["a", "b", "d"]

    def test_subchain_bad_indices(self):
        chain = simple_chain()
        with pytest.raises(ParameterError):
            chain.subchain([7])
        with pytest.raises(ParameterError):
            chain.subchain([])


class TestInitialDistribution:
    def test_int_initial(self):
        chain = simple_chain()
        dist = chain.validate_initial_distribution(1)
        np.testing.assert_allclose(dist, [0, 1, 0])

    def test_vector_initial(self):
        chain = simple_chain()
        dist = chain.validate_initial_distribution(np.array([0.5, 0.5, 0.0]))
        np.testing.assert_allclose(dist, [0.5, 0.5, 0.0])

    def test_bad_vector_rejected(self):
        chain = simple_chain()
        with pytest.raises(ParameterError):
            chain.validate_initial_distribution(np.array([0.7, 0.7, 0.0]))
        with pytest.raises(ParameterError):
            chain.validate_initial_distribution(np.array([1.0, 0.0]))
        with pytest.raises(ParameterError):
            chain.validate_initial_distribution(5)
