"""Second-moment / variance of the absorption time (extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import evaluate
from repro.ctmc import CTMC, analyze_absorbing
from repro.errors import ParameterError
from repro.params import GCSParameters


class TestClosedForms:
    def test_single_exponential(self):
        lam = 0.4
        chain = CTMC.from_transitions(2, [(0, 1, lam)])
        sol = analyze_absorbing(chain, second_moment=True)
        assert sol.mtta_variance == pytest.approx(1.0 / lam**2)
        assert sol.mtta_std == pytest.approx(1.0 / lam)

    def test_erlang_variance(self):
        n, lam = 6, 2.0
        chain = CTMC.from_transitions(n + 1, [(i, i + 1, lam) for i in range(n)])
        sol = analyze_absorbing(chain, second_moment=True)
        assert sol.mtta_variance == pytest.approx(n / lam**2, rel=1e-10)

    def test_competing_exponentials(self):
        alpha, beta = 1.5, 2.5
        chain = CTMC.from_transitions(3, [(0, 1, alpha), (0, 2, beta)])
        sol = analyze_absorbing(chain, second_moment=True)
        # Time to absorption is Exp(alpha + beta) regardless of target.
        assert sol.mtta_variance == pytest.approx(1.0 / (alpha + beta) ** 2)

    def test_hyperexponential_mixture(self):
        # From a mixed initial distribution over two exponential stages.
        chain = CTMC.from_transitions(3, [(0, 2, 1.0), (1, 2, 4.0)])
        init = np.array([0.3, 0.7, 0.0])
        sol = analyze_absorbing(chain, initial=init, second_moment=True)
        mean = 0.3 * 1.0 + 0.7 * 0.25
        second = 0.3 * 2.0 + 0.7 * 2.0 / 16.0
        assert sol.mtta == pytest.approx(mean)
        assert sol.mtta_variance == pytest.approx(second - mean**2, rel=1e-10)

    def test_not_computed_by_default(self):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0)])
        sol = analyze_absorbing(chain)
        with pytest.raises(ParameterError):
            _ = sol.mtta_variance


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 5000), n=st.integers(3, 15))
def test_property_acyclic_and_linear_agree_on_variance(seed, n):
    rng = np.random.default_rng(seed)
    transitions = []
    for i in range(n - 1):
        j = int(rng.integers(i + 1, n))
        transitions.append((i, j, float(rng.uniform(0.1, 3.0))))
        if rng.random() < 0.5:
            k = int(rng.integers(i + 1, n))
            transitions.append((i, k, float(rng.uniform(0.1, 3.0))))
    chain = CTMC.from_transitions(n, transitions)
    a = analyze_absorbing(chain, method="acyclic", second_moment=True)
    b = analyze_absorbing(chain, method="linear", second_moment=True)
    assert a.mtta_variance == pytest.approx(b.mtta_variance, rel=1e-8)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 5000))
def test_property_variance_matches_monte_carlo(seed):
    """Exact variance vs empirical variance of sampled trajectories."""
    rng = np.random.default_rng(seed)
    # Small random DAG chain.
    n = 6
    transitions = []
    for i in range(n - 1):
        for j in range(i + 1, n):
            if rng.random() < 0.6:
                transitions.append((i, j, float(rng.uniform(0.2, 2.0))))
    transitions.append((0, n - 1, 0.1))  # ensure absorption from 0
    chain = CTMC.from_transitions(n, transitions)
    sol = analyze_absorbing(chain, second_moment=True)

    R = chain.rates.toarray()
    q = chain.out_rates
    samples = []
    for _ in range(4000):
        s, t = 0, 0.0
        while q[s] > 0:
            t += rng.exponential(1.0 / q[s])
            s = rng.choice(n, p=R[s] / q[s])
        samples.append(t)
    emp_var = float(np.var(samples, ddof=1))
    # 4000 samples: variance of the sample variance is large; 30% slack.
    assert emp_var == pytest.approx(sol.mtta_variance, rel=0.3)


class TestGCSVariance:
    def test_evaluate_with_variance(self):
        params = GCSParameters.small_test()
        result = evaluate(params, include_variance=True)
        assert result.mttsf_std_s is not None
        assert result.mttsf_std_s > 0
        # Failure times of this model are roughly exponential-ish:
        # CV should be O(1).
        assert 0.2 < result.mttsf_cv < 3.0
        assert "mttsf_std_s" in result.to_dict()

    def test_survival_bound_properties(self):
        params = GCSParameters.small_test()
        result = evaluate(params, include_variance=True)
        # Bound is 0 beyond the mean, monotone decreasing before it.
        assert result.survival_probability_lower_bound(result.mttsf_s * 2) == 0.0
        b_early = result.survival_probability_lower_bound(result.mttsf_s * 0.01)
        b_late = result.survival_probability_lower_bound(result.mttsf_s * 0.9)
        assert 0.0 <= b_late <= b_early <= 1.0
        with pytest.raises(ValueError):
            result.survival_probability_lower_bound(-1.0)

    def test_variance_requires_flag(self):
        params = GCSParameters.small_test()
        result = evaluate(params)
        with pytest.raises(ValueError):
            _ = result.mttsf_cv
        with pytest.raises(ValueError):
            result.survival_probability_lower_bound(10.0)

    def test_variance_unsupported_on_spn_path(self):
        params = GCSParameters.small_test()
        with pytest.raises(ParameterError):
            evaluate(params, method="spn", include_variance=True)

    def test_sim_variance_agreement(self):
        """The exact std matches the Monte Carlo sample std."""
        from repro.sim import run_replications

        params = GCSParameters.small_test()
        result = evaluate(params, include_variance=True)
        summary = run_replications(params, replications=300, mode="rates", seed=99)
        assert summary.ttsf.std == pytest.approx(result.mttsf_std_s, rel=0.25)
