"""Absorbing-chain analysis: closed forms, solver agreement, rewards."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctmc import CTMC, analyze_absorbing, topological_levels
from repro.errors import NotAbsorbingError, ParameterError, SolverError


class TestClosedForms:
    def test_single_exponential(self):
        chain = CTMC.from_transitions(2, [(0, 1, 0.25)])
        sol = analyze_absorbing(chain)
        assert sol.mtta == pytest.approx(4.0)

    def test_erlang_series(self):
        # n-stage Erlang: MTTA = n / lam.
        n, lam = 7, 3.0
        chain = CTMC.from_transitions(n + 1, [(i, i + 1, lam) for i in range(n)])
        sol = analyze_absorbing(chain)
        assert sol.mtta == pytest.approx(n / lam)
        assert sol.method == "acyclic"

    def test_competing_exponentials(self):
        alpha, beta = 2.0, 3.0
        chain = CTMC.from_transitions(3, [(0, 1, alpha), (0, 2, beta)])
        sol = analyze_absorbing(
            chain, absorbing_classes={"a": [1], "b": [2]}
        )
        assert sol.mtta == pytest.approx(1.0 / (alpha + beta))
        assert sol.absorption_probability("a") == pytest.approx(alpha / (alpha + beta))
        assert sol.absorption_probability("b") == pytest.approx(beta / (alpha + beta))

    def test_accumulated_reward_single_state(self):
        alpha = 0.5
        chain = CTMC.from_transitions(2, [(0, 1, alpha)])
        sol = analyze_absorbing(chain, rewards={"cost": np.array([10.0, 99.0])})
        # Reward accrues only while transient: 10 / alpha.
        assert sol.expected_reward("cost") == pytest.approx(10.0 / alpha)
        assert sol.lifetime_average("cost") == pytest.approx(10.0)

    def test_two_stage_reward(self):
        # 0 --1.0--> 1 --2.0--> 2; rewards 3 and 8 per unit time.
        chain = CTMC.from_transitions(3, [(0, 1, 1.0), (1, 2, 2.0)])
        sol = analyze_absorbing(chain, rewards={"c": np.array([3.0, 8.0, 0.0])})
        assert sol.mtta == pytest.approx(1.0 + 0.5)
        assert sol.expected_reward("c") == pytest.approx(3.0 * 1.0 + 8.0 * 0.5)
        assert sol.lifetime_average("c") == pytest.approx(7.0 / 1.5)

    def test_cyclic_closed_form(self):
        # 0 <-> 1 with escape 1 -> 2. Oracle by dense solve.
        r01, r10, r12 = 2.0, 5.0, 1.0
        chain = CTMC.from_transitions(3, [(0, 1, r01), (1, 0, r10), (1, 2, r12)])
        sol = analyze_absorbing(chain)
        assert sol.method == "linear"
        A = np.array([[r01, -r01], [-r10, r10 + r12]])
        tau = np.linalg.solve(A, np.ones(2))
        assert sol.mtta == pytest.approx(tau[0])

    def test_initial_distribution_mixture(self):
        chain = CTMC.from_transitions(3, [(0, 2, 1.0), (1, 2, 2.0)])
        sol = analyze_absorbing(chain, initial=np.array([0.25, 0.75, 0.0]))
        assert sol.mtta == pytest.approx(0.25 * 1.0 + 0.75 * 0.5)


class TestValidation:
    def test_no_absorbing_state(self):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0), (1, 0, 1.0)])
        with pytest.raises(NotAbsorbingError):
            analyze_absorbing(chain)

    def test_absorption_not_almost_sure(self):
        # 0 can wander into recurrent class {1, 2} with no escape.
        chain = CTMC.from_transitions(
            4, [(0, 1, 1.0), (1, 2, 1.0), (2, 1, 1.0), (0, 3, 1.0)]
        )
        with pytest.raises(NotAbsorbingError):
            analyze_absorbing(chain)

    def test_unreachable_recurrent_class_is_tolerated(self):
        # States 2<->3 form a cycle but are unreachable from 0.
        chain = CTMC.from_transitions(
            4, [(0, 1, 1.0), (2, 3, 1.0), (3, 2, 1.0)]
        )
        sol = analyze_absorbing(chain, initial=0)
        assert sol.mtta == pytest.approx(1.0)
        assert np.isnan(sol.tau[2]) and np.isnan(sol.tau[3])

    def test_bad_reward_shape(self):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0)])
        with pytest.raises(ParameterError):
            analyze_absorbing(chain, rewards={"c": np.ones(5)})

    def test_bad_class_member(self):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0)])
        with pytest.raises(ParameterError):
            analyze_absorbing(chain, absorbing_classes={"x": [0]})  # 0 not absorbing

    def test_unknown_reward_name(self):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0)])
        sol = analyze_absorbing(chain)
        with pytest.raises(ParameterError):
            sol.expected_reward("nope")
        with pytest.raises(ParameterError):
            sol.absorption_probability("nope")

    def test_method_acyclic_on_cyclic_chain(self):
        chain = CTMC.from_transitions(3, [(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0)])
        with pytest.raises(SolverError):
            analyze_absorbing(chain, method="acyclic")

    def test_bad_method(self):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0)])
        with pytest.raises(ParameterError):
            analyze_absorbing(chain, method="quantum")


class TestTopologicalLevels:
    def test_dag_levels(self):
        chain = CTMC.from_transitions(4, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (3, 2, 1.0)])
        s = topological_levels(chain)
        assert s is not None
        assert s.levels[2] == 0
        assert s.levels[1] == 1
        assert s.levels[3] == 1
        assert s.levels[0] == 2
        assert s.depth == 3

    def test_cycle_returns_none(self):
        chain = CTMC.from_transitions(3, [(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0)])
        assert topological_levels(chain) is None


def _random_chain(rng: np.random.Generator, n: int, acyclic: bool) -> CTMC:
    """A random absorbing chain; every state can reach state n-1."""
    transitions = []
    for i in range(n - 1):
        # Guaranteed forward edge keeps absorption almost-sure.
        j = int(rng.integers(i + 1, n))
        transitions.append((i, j, float(rng.uniform(0.1, 5.0))))
        for _ in range(int(rng.integers(0, 3))):
            k = int(rng.integers(i + 1, n)) if acyclic else int(rng.integers(0, n))
            if k != i:
                transitions.append((i, k, float(rng.uniform(0.1, 5.0))))
    return CTMC.from_transitions(n, transitions)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(3, 25))
def test_solvers_agree_on_random_dags(seed, n):
    """Property: topological sweep == sparse LU on random DAG chains."""
    rng = np.random.default_rng(seed)
    chain = _random_chain(rng, n, acyclic=True)
    reward = rng.uniform(0.0, 4.0, size=n)
    classes = {"last": [s for s in chain.absorbing_states.tolist()]}
    a = analyze_absorbing(chain, rewards={"c": reward}, absorbing_classes=classes, method="acyclic")
    b = analyze_absorbing(chain, rewards={"c": reward}, absorbing_classes=classes, method="linear")
    assert a.mtta == pytest.approx(b.mtta, rel=1e-9)
    assert a.expected_reward("c") == pytest.approx(b.expected_reward("c"), rel=1e-9)
    assert a.absorption_probability("last") == pytest.approx(1.0, abs=1e-9)
    assert b.absorption_probability("last") == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(3, 15))
def test_linear_solver_matches_dense_oracle(seed, n):
    """Property: sparse LU result == dense numpy solve on cyclic chains."""
    rng = np.random.default_rng(seed)
    chain = _random_chain(rng, n, acyclic=False)
    sol = analyze_absorbing(chain, method="linear")
    # Dense oracle restricted to transient states; the solution is only
    # defined (non-NaN) on states reachable from the initial state.
    reachable = set(chain.reachable_from(0).tolist())
    R = chain.rates.toarray()
    q = chain.out_rates
    t = chain.transient_states
    A = np.diag(q[t]) - R[np.ix_(t, t)]
    tau = np.linalg.solve(A, np.ones(t.size))
    keep = np.array([s in reachable for s in t])
    np.testing.assert_allclose(sol.tau[t][keep], tau[keep], rtol=1e-8)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(3, 20))
def test_absorption_probabilities_sum_to_one(seed, n):
    rng = np.random.default_rng(seed)
    chain = _random_chain(rng, n, acyclic=False)
    classes = {f"s{int(s)}": [int(s)] for s in chain.absorbing_states}
    sol = analyze_absorbing(chain, absorbing_classes=classes)
    total = sum(sol.absorption_probability(name) for name in classes)
    assert total == pytest.approx(1.0, abs=1e-9)
