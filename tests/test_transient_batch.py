"""Batched transient survivability: differential + routing tests.

The batched uniformization path must be *numerically equivalent* to the
per-point ``transient_distribution`` / ``absorption_cdf`` functions —
same per-point uniformization rates and truncated Poisson weights,
only the IEEE summation order differs — within the documented
:data:`repro.ctmc.transient.BATCH_EQUIVALENCE_RTOL`. These tests pin
that contract differentially on the paper's fig2/fig4 grids (reduced
``N``; the arithmetic is size-independent) and cover the engine
routing: ``SurvivabilityRequest`` fingerprints, cache hit/miss parity
across ``--jobs vector``, ``vector:N`` (the vector+procs hybrid) and
serial, byte-identity of the hybrid against the single-process vector
path, the ``SurvivabilitySweep`` job spec, and the ``survivability``
CLI subcommand.
"""

import json

import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis.sweep import survivability_grid_sweep
from repro.cli import main as cli_main
from repro.core.metrics import (
    evaluate_survivability,
    evaluate_survivability_batch,
    evaluate_survivability_batch_outcomes,
)
from repro.ctmc import (
    BATCH_EQUIVALENCE_RTOL,
    CTMC,
    absorption_cdf,
    absorption_cdf_batch,
    transient_distribution,
    transient_distribution_batch,
)
from repro.engine import (
    BatchRunner,
    EvalRequest,
    ResultCache,
    SerialBackend,
    SurvivabilityRequest,
    SurvivabilitySweep,
    VectorBackend,
    evaluate_request,
    evaluate_survivability_request,
    make_backend,
    result_from_dict,
)
from repro.errors import ParameterError, SolverError
from repro.params import GCSParameters

N_TEST = 12  # lattice size that solves in ms
#: Mission grid sized so Λ·t stays in the low thousands (the lattice's
#: uniformization rate is ~1e3 from the fast small-group rekey states).
TIMES = (0.0, 0.5, 2.0, 5.0)
RTOL = BATCH_EQUIVALENCE_RTOL
ATOL = 1e-12


def _fig2_scenarios(tids=(15.0, 60.0, 240.0)) -> list[GCSParameters]:
    base = GCSParameters.paper_defaults(num_nodes=N_TEST)
    return [
        base.replacing(num_voters=m, detection_interval_s=float(t))
        for m in (3, 5, 7, 9)
        for t in tids
    ]


def _fig4_scenarios(tids=(15.0, 60.0, 240.0)) -> list[GCSParameters]:
    base = GCSParameters.paper_defaults(num_nodes=N_TEST)
    return [
        base.replacing(detection_function=fn, detection_interval_s=float(t))
        for fn in ("logarithmic", "linear", "polynomial")
        for t in tids
    ]


def _assert_curves_close(batch_result, point_result):
    assert batch_result.times_s == point_result.times_s
    assert batch_result.num_states == point_result.num_states
    np.testing.assert_allclose(
        batch_result.survival, point_result.survival, rtol=RTOL, atol=ATOL
    )
    assert set(batch_result.failure_cdf) == set(point_result.failure_cdf)
    for name in batch_result.failure_cdf:
        np.testing.assert_allclose(
            batch_result.failure_cdf[name],
            point_result.failure_cdf[name],
            rtol=RTOL,
            atol=ATOL,
        )
    np.testing.assert_allclose(
        batch_result.expected_cost_rate,
        point_result.expected_cost_rate,
        rtol=RTOL,
    )
    np.testing.assert_allclose(
        batch_result.time_bounded_cost,
        point_result.time_bounded_cost,
        rtol=RTOL,
    )


# ---------------------------------------------------------------------------
# transient_distribution_batch / absorption_cdf_batch unit level
# ---------------------------------------------------------------------------

def _random_chain(rng, n=24, density=0.15, cyclic=True):
    """Random rate matrix; strictly lower-triangular when not cyclic."""
    rows, cols, vals = [], [], []
    for i in range(n):
        for j in range(n if cyclic else i):
            if i != j and rng.random() < density:
                rows.append(i)
                cols.append(j)
                vals.append(float(rng.uniform(0.1, 2.0)))
    return CTMC(sp.csr_matrix((vals, (rows, cols)), shape=(n, n)))


def _per_point_chain(shared_csr, values_row):
    return CTMC(
        sp.csr_matrix(
            (values_row, shared_csr.indices.copy(), shared_csr.indptr.copy()),
            shape=shared_csr.shape,
        )
    )


class TestTransientBatchUnit:
    def test_matches_per_point_on_cyclic_chain(self):
        rng = np.random.default_rng(7)
        chain = _random_chain(rng, cyclic=True)
        R = chain.rates
        P = 5
        values = np.stack([R.data * s for s in rng.uniform(0.3, 3.0, size=P)])
        times = [0.0, 0.3, 1.0, 4.0]
        batch = transient_distribution_batch(R.indptr, R.indices, values, times, 0)
        for p in range(P):
            ref = transient_distribution(_per_point_chain(R, values[p]), times, 0)
            np.testing.assert_allclose(batch[p], ref, rtol=RTOL, atol=ATOL)

    def test_explicit_zeros_match_pruned_chain(self):
        rng = np.random.default_rng(11)
        chain = _random_chain(rng, n=18, density=0.3, cyclic=False)
        R = chain.rates
        values = np.stack([R.data.copy(), R.data * 0.5])
        values[1, rng.random(R.nnz) < 0.3] = 0.0
        times = [0.5, 2.0, 8.0]
        batch = transient_distribution_batch(
            R.indptr, R.indices, values, times, chain.num_states - 1
        )
        for p in range(2):
            ref = transient_distribution(
                _per_point_chain(R, values[p]), times, chain.num_states - 1
            )
            np.testing.assert_allclose(batch[p], ref, rtol=RTOL, atol=ATOL)

    def test_absorption_cdf_matches_per_point(self):
        rng = np.random.default_rng(3)
        chain = _random_chain(rng, n=16, density=0.3, cyclic=False)
        R = chain.rates
        values = np.stack([R.data * s for s in (1.0, 0.4, 2.5)])
        times = [0.5, 2.0, 8.0]
        initial = chain.num_states - 1
        classes = {"zero": [0], "empty": []}
        batch = absorption_cdf_batch(
            R.indptr, R.indices, values, times, initial, classes=classes
        )
        for p in range(3):
            ref = absorption_cdf(
                _per_point_chain(R, values[p]), times, initial, classes=classes
            )
            for name in ("any", "zero", "empty"):
                np.testing.assert_allclose(
                    batch[name][p], ref[name], rtol=RTOL, atol=ATOL
                )
            assert np.all(np.diff(batch["any"][p]) >= -ATOL)

    def test_scalar_times_shape(self):
        chain = CTMC.from_transitions(3, [(2, 1, 1.0), (1, 0, 0.5)])
        R = chain.rates
        values = R.data[None, :]
        dist = transient_distribution_batch(R.indptr, R.indices, values, 0.7, 2)
        assert dist.shape == (1, 3)
        ref = transient_distribution(chain, 0.7, 2)
        np.testing.assert_allclose(dist[0], ref, rtol=RTOL, atol=ATOL)

    def test_empty_batch_shapes(self):
        # The scalar-squeeze epilogue must apply to empty batches too,
        # so chunked callers can concatenate without rank mismatches.
        chain = CTMC.from_transitions(3, [(2, 1, 1.0)])
        R = chain.rates
        empty = np.empty((0, R.nnz))
        scalar = transient_distribution_batch(R.indptr, R.indices, empty, 2.0)
        assert scalar.shape == (0, 3)
        grid = transient_distribution_batch(R.indptr, R.indices, empty, [1.0, 2.0])
        assert grid.shape == (0, 2, 3)

    def test_time_zero_is_initial(self):
        chain = CTMC.from_transitions(3, [(0, 1, 1.0), (1, 2, 1.0)])
        R = chain.rates
        dist = transient_distribution_batch(
            R.indptr, R.indices, R.data[None, :], [0.0], 0
        )
        np.testing.assert_allclose(dist[0, 0], [1.0, 0.0, 0.0])

    def test_shared_initial_distribution_broadcasts(self):
        chain = CTMC.from_transitions(3, [(2, 1, 1.0), (1, 0, 0.5)])
        R = chain.rates
        values = np.stack([R.data, R.data * 2.0])
        pi0 = np.array([0.2, 0.3, 0.5])
        batch = transient_distribution_batch(
            R.indptr, R.indices, values, [1.0], pi0
        )
        for p in range(2):
            ref = transient_distribution(_per_point_chain(R, values[p]), [1.0], pi0)
            np.testing.assert_allclose(batch[p], ref, rtol=RTOL, atol=ATOL)

    def test_validation_errors(self):
        chain = CTMC.from_transitions(3, [(2, 1, 1.0)])
        R = chain.rates
        good = R.data[None, :]
        with pytest.raises(SolverError, match="values"):
            transient_distribution_batch(R.indptr, R.indices, good[:, :-1], [1.0])
        with pytest.raises(ParameterError, match="non-negative"):
            transient_distribution_batch(R.indptr, R.indices, -good, [1.0])
        with pytest.raises(ParameterError, match="times"):
            transient_distribution_batch(R.indptr, R.indices, good, [-1.0])
        with pytest.raises(ParameterError, match="initial"):
            transient_distribution_batch(R.indptr, R.indices, good, [1.0], 99)


# ---------------------------------------------------------------------------
# evaluate_survivability_batch differential on the paper grids
# ---------------------------------------------------------------------------

class TestSurvivabilityDifferential:
    def test_fig2_grid(self):
        scenarios = _fig2_scenarios()
        batch = evaluate_survivability_batch(scenarios, times=TIMES)
        for scenario, result in zip(scenarios, batch):
            assert result.solver == "uniformization-batch"
            point = evaluate_survivability(scenario, times=TIMES)
            assert point.solver == "uniformization"
            _assert_curves_close(result, point)

    def test_fig4_grid(self):
        scenarios = _fig4_scenarios()
        batch = evaluate_survivability_batch(scenarios, times=TIMES)
        for scenario, result in zip(scenarios, batch):
            _assert_curves_close(
                result, evaluate_survivability(scenario, times=TIMES)
            )

    def test_degenerate_single_point_batch(self):
        scenario = GCSParameters.small_test()
        (result,) = evaluate_survivability_batch([scenario], times=TIMES)
        _assert_curves_close(
            result, evaluate_survivability(scenario, times=TIMES)
        )

    def test_empty_batch(self):
        assert evaluate_survivability_batch([], times=TIMES) == []

    def test_mixed_group_sizes_keep_input_order(self):
        small = GCSParameters.small_test()
        bigger = GCSParameters.paper_defaults(num_nodes=N_TEST)
        scenarios = [bigger, small, bigger.replacing(num_voters=3), small]
        batch = evaluate_survivability_batch(scenarios, times=TIMES)
        for scenario, result in zip(scenarios, batch):
            assert result.params == scenario
            _assert_curves_close(
                result, evaluate_survivability(scenario, times=TIMES)
            )

    def test_survival_is_one_minus_any(self):
        (result,) = evaluate_survivability_batch(
            [GCSParameters.small_test()], times=TIMES
        )
        np.testing.assert_allclose(
            np.asarray(result.survival) + np.asarray(result.failure_cdf["any"]),
            1.0,
            atol=1e-12,
        )
        assert result.survival[0] == 1.0  # grid starts at t = 0

    def test_per_point_error_capture(self):
        good = GCSParameters.small_test()
        outcomes = evaluate_survivability_batch_outcomes(
            [good, "not-a-scenario"], times=TIMES
        )
        assert outcomes[0][1] is None
        assert outcomes[1][0] is None
        assert isinstance(outcomes[1][1], ParameterError)
        with pytest.raises(ParameterError, match="batch scenario"):
            evaluate_survivability_batch([good, "not-a-scenario"], times=TIMES)

    def test_times_must_be_sorted_and_non_negative(self):
        scenario = GCSParameters.small_test()
        with pytest.raises(ParameterError, match="strictly increasing"):
            evaluate_survivability(scenario, times=(2.0, 1.0))
        with pytest.raises(ParameterError, match="non-negative"):
            evaluate_survivability(scenario, times=(-1.0, 1.0))
        with pytest.raises(ParameterError, match="non-empty"):
            evaluate_survivability_batch([scenario], times=())

    def test_survival_at_interpolates(self):
        result = evaluate_survivability(GCSParameters.small_test(), times=TIMES)
        assert result.survival_at(0.0) == result.survival[0]
        assert result.survival_at(TIMES[-1]) == result.survival[-1]
        mid = 0.5 * (TIMES[1] + TIMES[2])
        lo, hi = sorted((result.survival[1], result.survival[2]))
        assert lo <= result.survival_at(mid) <= hi


# ---------------------------------------------------------------------------
# Engine routing: VectorBackend, hybrid, cache parity
# ---------------------------------------------------------------------------

def _surv_requests(n_points=6) -> list[SurvivabilityRequest]:
    return [
        SurvivabilityRequest(params=params, times_s=TIMES)
        for params in _fig2_scenarios(tids=(60.0, 240.0))[:n_points]
    ]


class TestVectorBackendSurvivability:
    def test_vector_matches_serial_backend(self):
        requests = _surv_requests()
        serial = SerialBackend().run(evaluate_survivability_request, requests)
        vector = VectorBackend().run(evaluate_survivability_request, requests)
        assert [o.index for o in vector] == [o.index for o in serial]
        for vec, ser in zip(vector, serial):
            assert vec.ok and ser.ok
            _assert_curves_close(vec.value, ser.value)

    def test_error_capture_in_batch(self):
        good = _surv_requests(1)[0]
        bad = SurvivabilityRequest(
            params=GCSParameters.small_test(), times_s=(1.0,), eps=-1.0
        )
        outcomes = VectorBackend().run(
            evaluate_survivability_request, [good, bad]
        )
        assert outcomes[0].ok
        assert not outcomes[1].ok
        serial = SerialBackend().run(evaluate_survivability_request, [good, bad])
        assert not serial[1].ok
        assert serial[1].error_type == outcomes[1].error_type


class TestVectorProcsHybrid:
    """--jobs vector:N must be byte-identical to --jobs vector."""

    def test_model_chunks_identical_to_sequential(self):
        requests = [EvalRequest(params=p) for p in _fig2_scenarios()]
        vector = VectorBackend().run(evaluate_request, requests)
        hybrid = VectorBackend(chunk_workers=2).run(evaluate_request, requests)
        assert [o.index for o in hybrid] == [o.index for o in vector]
        for h, v in zip(hybrid, vector):
            assert h.ok and v.ok
            assert h.value.mttsf_s == v.value.mttsf_s
            assert h.value.ctotal_hop_bits_s == v.value.ctotal_hop_bits_s
            assert dict(h.value.failure_probabilities) == dict(
                v.value.failure_probabilities
            )

    def test_survivability_chunks_identical_to_sequential(self):
        requests = _surv_requests()
        vector = VectorBackend().run(evaluate_survivability_request, requests)
        hybrid = VectorBackend(chunk_workers=2).run(
            evaluate_survivability_request, requests
        )
        for h, v in zip(hybrid, vector):
            assert h.ok and v.ok
            assert h.value.survival == v.value.survival
            assert h.value.failure_cdf == v.value.failure_cdf
            assert h.value.time_bounded_cost == v.value.time_bounded_cost

    def test_explicit_chunk_size_still_identical(self):
        requests = _surv_requests()
        vector = VectorBackend().run(evaluate_survivability_request, requests)
        hybrid = VectorBackend(chunk_workers=2, chunk_size=1).run(
            evaluate_survivability_request, requests
        )
        for h, v in zip(hybrid, vector):
            assert h.value.survival == v.value.survival

    def test_error_capture_across_pool(self):
        requests = _surv_requests(3) + [
            SurvivabilityRequest(
                params=GCSParameters.small_test(), times_s=(1.0,), eps=-1.0
            )
        ]
        hybrid = VectorBackend(chunk_workers=2, chunk_size=2).run(
            evaluate_survivability_request, requests
        )
        assert [o.ok for o in hybrid] == [True, True, True, False]
        assert hybrid[3].error_type == "ParameterError"

    def test_small_groups_solve_inline(self):
        # A single chunk never pays pool spin-up; results still correct.
        requests = _surv_requests(2)
        hybrid = VectorBackend(chunk_workers=8).run(
            evaluate_survivability_request, requests
        )
        assert all(o.ok for o in hybrid)

    def test_make_backend_specs(self):
        assert isinstance(make_backend("vector"), VectorBackend)
        assert make_backend("vector").chunk_workers is None
        hybrid = make_backend("vector:3")
        assert isinstance(hybrid, VectorBackend)
        assert hybrid.chunk_workers == 3
        assert hybrid.describe() == "vector+procs(workers=3)"
        auto = make_backend("vector:auto")
        assert isinstance(auto, VectorBackend)
        with pytest.raises(ParameterError, match="vector"):
            make_backend("vector:warp")
        with pytest.raises(ParameterError, match="chunk_workers"):
            VectorBackend(chunk_workers=0)


class TestCacheParityAcrossBackends:
    """serial, vector and vector:N must be cache-indistinguishable."""

    GRID = [
        SurvivabilityRequest(
            params=GCSParameters.small_test(
                num_voters=m, detection_interval_s=float(tids)
            ),
            times_s=TIMES,
        )
        for m in (3, 5)
        for tids in (15.0, 60.0, 240.0)
    ]

    def _cold_then_warm(self, tmp_path, cold_jobs, warm_jobs):
        cache_dir = tmp_path / f"{cold_jobs}-then-{warm_jobs}"
        stats = []
        results = []
        for jobs in (cold_jobs, warm_jobs):
            runner = BatchRunner(
                cache=ResultCache(cache_dir=cache_dir),
                backend=make_backend(jobs),
            )
            batch = runner.run(
                self.GRID, evaluate=evaluate_survivability_request
            )
            batch.report.raise_on_error()
            stats.append((batch.report.n_cache_hits, batch.report.n_evaluated))
            results.append([r.survival for r in batch.results])
        return stats, results

    @pytest.mark.parametrize(
        "cold,warm",
        [("vector", "serial"), ("serial", "vector"), ("vector", "vector:2")],
    )
    def test_hit_miss_parity(self, tmp_path, cold, warm):
        stats, results = self._cold_then_warm(tmp_path, cold, warm)
        # Cold run all misses; warm run served entirely by the other
        # backend's records (same content-addressed keys, times grid
        # included).
        assert stats == [(0, len(self.GRID)), (len(self.GRID), 0)]
        # The warm run returns the cold run's stored curves verbatim.
        assert results[0] == results[1]

    def test_time_grid_is_part_of_the_key(self, tmp_path):
        runner = BatchRunner(cache=ResultCache(cache_dir=tmp_path / "grid"))
        params = GCSParameters.small_test()
        a = SurvivabilityRequest(params=params, times_s=(0.5, 1.0))
        b = SurvivabilityRequest(params=params, times_s=(0.5, 2.0))
        c = SurvivabilityRequest(params=params, times_s=(0.5, 1.0), eps=1e-10)
        assert len({a.fingerprint(), b.fingerprint(), c.fingerprint()}) == 3
        # And none collide with the steady-state evaluation of the
        # same parameters.
        assert EvalRequest(params=params).fingerprint() != a.fingerprint()
        batch = runner.run([a, b], evaluate=evaluate_survivability_request)
        batch.report.raise_on_error()
        assert batch.report.n_unique == 2

    def test_survivability_record_roundtrip(self):
        result = evaluate_survivability(GCSParameters.small_test(), times=TIMES)
        rebuilt = result_from_dict(json.loads(json.dumps(result.to_dict())))
        assert rebuilt == result


# ---------------------------------------------------------------------------
# SurvivabilitySweep + analysis sweep + CLI
# ---------------------------------------------------------------------------

class TestSurvivabilitySweep:
    def _sweep(self) -> SurvivabilitySweep:
        return SurvivabilitySweep(
            name="t",
            times_s=TIMES,
            axes={"detection_interval_s": (60.0, 240.0)},
            base={"num_nodes": N_TEST},
        )

    def test_json_roundtrip(self, tmp_path):
        sweep = self._sweep()
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(sweep.to_dict()))
        rebuilt = SurvivabilitySweep.from_dict(json.loads(path.read_text()))
        assert rebuilt == sweep

    def test_empty_axes_is_single_point(self):
        sweep = SurvivabilitySweep(
            name="single", times_s=TIMES, base={"num_nodes": N_TEST}
        )
        assert len(sweep) == 1
        outcome = sweep.run(BatchRunner(backend=VectorBackend()))
        assert outcome.n_failed == 0
        assert len(outcome.points) == 1
        assert outcome.points[0][0] == {}

    def test_run_and_warm_cache(self, tmp_path):
        sweep = self._sweep()
        cache = ResultCache(cache_dir=tmp_path / "c")
        outcome = sweep.run(
            BatchRunner(cache=cache, backend=make_backend("vector"))
        )
        assert outcome.n_failed == 0
        assert outcome.report.n_evaluated == len(sweep)
        assert all(curve is not None for curve in outcome.curves())
        warm = sweep.run(
            BatchRunner(
                cache=ResultCache(cache_dir=tmp_path / "c"),
                backend=make_backend("vector"),
            )
        )
        assert warm.report.n_cache_hits == len(sweep)

    def test_validation(self):
        with pytest.raises(ParameterError, match="strictly increasing"):
            SurvivabilitySweep(name="x", times_s=(2.0, 1.0))
        with pytest.raises(ParameterError, match="name"):
            SurvivabilitySweep(name="", times_s=TIMES)
        with pytest.raises(ParameterError, match="axis"):
            SurvivabilitySweep(name="x", times_s=TIMES, axes={"num_voters": ()})


class TestSurvivabilityGridSweep:
    def test_vector_parity_with_serial(self):
        grid = {"detection_interval_s": (60.0, 240.0)}
        serial = survivability_grid_sweep(
            grid, TIMES, params=GCSParameters.small_test()
        )
        vector = survivability_grid_sweep(
            grid, TIMES, params=GCSParameters.small_test(), backend="vector"
        )
        assert [p.assignment for p in serial] == [p.assignment for p in vector]
        for s, v in zip(serial, vector):
            _assert_curves_close(v.value, s.value)

    def test_base_path_uses_sweep_spec(self):
        points = survivability_grid_sweep(
            {"num_voters": (3, 5)},
            TIMES,
            base={"num_nodes": N_TEST},
            backend="vector",
        )
        assert [p.assignment["num_voters"] for p in points] == [3, 5]
        assert all(p.ok for p in points)

    def test_rejects_params_and_base(self):
        with pytest.raises(ParameterError, match="params or base"):
            survivability_grid_sweep(
                {"num_voters": (3,)},
                TIMES,
                params=GCSParameters.small_test(),
                base={"num_nodes": 12},
            )


class TestSurvivabilityCli:
    def test_smoke_with_artifact(self, tmp_path, capsys):
        out = tmp_path / "surv.json"
        code = cli_main(
            [
                "survivability",
                "--axis",
                "detection_interval_s=60,240",
                "--n",
                str(N_TEST),
                "--times",
                "0,0.5,2,5",
                "--jobs",
                "vector",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "S@5s" in captured.out
        artifact = json.loads(out.read_text())
        assert artifact["report"]["n_errors"] == 0
        assert len(artifact["points"]) == 2
        curves = [p["result"]["survival"] for p in artifact["points"]]
        assert all(len(c) == 4 for c in curves)

    def test_until_grid(self, capsys):
        code = cli_main(
            [
                "survivability",
                "--n",
                str(N_TEST),
                "--until",
                "4",
                "--points",
                "4",
                "--jobs",
                "vector",
            ]
        )
        assert code == 0
        assert "S@4s" in capsys.readouterr().out

    def test_times_and_until_conflict(self, capsys):
        code = cli_main(
            ["survivability", "--times", "1,2", "--until", "5", "--n", "8"]
        )
        assert code == 2
        assert "either --times or --until" in capsys.readouterr().err

    def test_missing_grid_errors(self, capsys):
        assert cli_main(["survivability", "--n", "8"]) == 2
        assert "--times" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# Fused-gather variant of the batched uniformization
# ---------------------------------------------------------------------------

class TestFusedTransientKernel:
    """Fused on/off must produce the identical distributions."""

    def _fills(self):
        from repro.core.fastpath import fill_transition_rates, lattice_structure
        from repro.core.metrics import resolve_network
        from repro.core.rates import GCSRates

        structure = lattice_structure(N_TEST)
        scenarios = [
            GCSParameters.paper_defaults(
                num_nodes=N_TEST, detection_interval_s=t
            )
            for t in (15.0, 60.0, 240.0)
        ]
        values = np.stack(
            [
                fill_transition_rates(
                    structure,
                    GCSRates.from_scenario(p, resolve_network(p, None)),
                ).values
                for p in scenarios
            ]
        )
        return structure, values

    def test_stacked_matrix_assembly_identical(self):
        from repro.ctmc.transient import (
            _stacked_jump_matrix,
            _stacked_jump_matrix_fused,
            csr_row_sums,
        )

        structure, values = self._fills()
        q = csr_row_sums(structure.indptr, values)
        lam = q.max(axis=1)
        lam[lam <= 0.0] = 1.0
        legacy = _stacked_jump_matrix(structure.indptr, structure.indices, values, q, lam)
        fused = _stacked_jump_matrix_fused(
            structure.indptr, structure.indices, values, q, lam
        )
        legacy.sort_indices()
        assert legacy.shape == fused.shape
        assert np.array_equal(
            legacy.indptr.astype(np.int64), fused.indptr.astype(np.int64)
        )
        assert np.array_equal(
            legacy.indices.astype(np.int64), fused.indices.astype(np.int64)
        )
        assert np.array_equal(legacy.data, fused.data)

    def test_distributions_bit_identical(self):
        structure, values = self._fills()
        legacy = transient_distribution_batch(
            structure.indptr,
            structure.indices,
            values,
            TIMES,
            structure.initial_state,
            fused=False,
        )
        fused = transient_distribution_batch(
            structure.indptr,
            structure.indices,
            values,
            TIMES,
            structure.initial_state,
            fused=True,
        )
        assert np.array_equal(legacy, fused)

    def test_env_toggle_matches_explicit(self, monkeypatch):
        structure, values = self._fills()
        monkeypatch.setenv("REPRO_FUSED_GATHER", "0")
        via_env = transient_distribution_batch(
            structure.indptr,
            structure.indices,
            values,
            TIMES,
            structure.initial_state,
        )
        explicit = transient_distribution_batch(
            structure.indptr,
            structure.indices,
            values,
            TIMES,
            structure.initial_state,
            fused=False,
        )
        assert np.array_equal(via_env, explicit)
