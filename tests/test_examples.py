"""Examples execute end-to-end (subprocess smoke tests).

Each example is a user-facing artifact; these tests pin that they run
to completion and print their headline result. They are the slowest
tests in the suite (~1 min total) but guard the deliverable a new user
touches first.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: float = 420.0) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stdout}\n{proc.stderr}"
    return proc.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Default operating point" in out
        assert "TIDS sweep" in out
        assert "Maximise MTTSF subject to" in out
        assert "<== optimal" in out

    def test_quickstart_engine_flags_and_warm_cache(self, tmp_path):
        cache = str(tmp_path / "cache")
        cold = run_example("quickstart.py", "--cache-dir", cache)
        warm = run_example(
            "quickstart.py", "--jobs", "thread:2", "--cache-dir", cache
        )
        assert "hit rate 0.0%" in cold
        assert "hit rate 100.0%" in warm

        def series_lines(text):
            return [
                line for line in text.splitlines() if "ResultCache[" not in line
            ]

        # The cached (and thread-pooled) run reproduces the cold run.
        assert series_lines(cold) == series_lines(warm)

    def test_battlefield_adaptive_ids(self):
        out = run_example("battlefield_adaptive_ids.py")
        assert "identified attacker function : polynomial" in out
        assert "Adaptation multiplied the model-predicted MTTSF by" in out

    def test_rescue_mission_planning(self):
        out = run_example("rescue_mission_planning.py")
        assert "=== selected plan ===" in out
        assert "dominant residual risk" in out

    def test_validation_sim_vs_model(self):
        out = run_example("validation_sim_vs_model.py")
        assert "inside the CI" in out
        assert "Figure 1 SPN written to" in out
        assert (EXAMPLES / "figure1_spn.dot").exists()

    def test_perimeter_surveillance(self):
        out = run_example("perimeter_surveillance.py")
        assert "host IDS derived from audit features" in out
        assert "P(survive the 48 h mission)" in out
        assert "mean packet delay at this load" in out
