"""Parameter bundles: validation, presets, ergonomic replacement."""

import dataclasses
import math

import pytest

from repro import constants as C
from repro.errors import ParameterError
from repro.params import (
    AttackParameters,
    DetectionParameters,
    GCSParameters,
    GroupDynamicsParameters,
    NetworkParameters,
    WorkloadParameters,
)


class TestNetworkParameters:
    def test_defaults_match_paper(self):
        net = NetworkParameters()
        assert net.num_nodes == 100
        assert net.radius_m == 500.0
        assert net.bandwidth_bps == 1e6

    def test_area_and_density(self):
        net = NetworkParameters(num_nodes=10, radius_m=100.0)
        assert net.area_m2 == pytest.approx(math.pi * 1e4)
        assert net.node_density_per_m2 == pytest.approx(10 / (math.pi * 1e4))

    def test_speed_ordering_enforced(self):
        with pytest.raises(ParameterError):
            NetworkParameters(speed_min_mps=5.0, speed_max_mps=1.0)

    @pytest.mark.parametrize(
        "field,value",
        [
            ("num_nodes", 0),
            ("radius_m", -1.0),
            ("wireless_range_m", 0.0),
            ("bandwidth_bps", 0.0),
            ("pause_s", -2.0),
            ("beacon_interval_s", 0.0),
        ],
    )
    def test_invalid_fields(self, field, value):
        with pytest.raises(ParameterError):
            NetworkParameters(**{field: value})


class TestWorkloadParameters:
    def test_defaults_match_paper(self):
        w = WorkloadParameters()
        assert w.join_rate_hz == pytest.approx(1 / 3600)
        assert w.leave_rate_hz == pytest.approx(1 / 14400)
        assert w.data_rate_hz == pytest.approx(1 / 60)

    def test_data_rate_must_be_positive(self):
        with pytest.raises(ParameterError):
            WorkloadParameters(data_rate_hz=0.0)


class TestAttackParameters:
    def test_defaults(self):
        a = AttackParameters()
        assert a.attacker_function == "linear"
        assert a.base_compromise_rate_hz == pytest.approx(1 / 43200)

    def test_function_name_validated(self):
        with pytest.raises(ParameterError):
            AttackParameters(attacker_function="quadratic")

    def test_base_index_must_exceed_one(self):
        with pytest.raises(ParameterError):
            AttackParameters(base_index_p=1.0)


class TestDetectionParameters:
    def test_majority(self):
        assert DetectionParameters(num_voters=5).majority == 3
        assert DetectionParameters(num_voters=9).majority == 5

    def test_even_voters_rejected(self):
        with pytest.raises(ParameterError):
            DetectionParameters(num_voters=4)

    def test_probability_domains(self):
        with pytest.raises(ParameterError):
            DetectionParameters(host_false_negative=1.5)
        with pytest.raises(ParameterError):
            DetectionParameters(host_false_positive=-0.1)

    def test_interval_positive(self):
        with pytest.raises(ParameterError):
            DetectionParameters(detection_interval_s=0.0)


class TestGroupDynamicsParameters:
    def test_explicit_rates_flag(self):
        g = GroupDynamicsParameters(partition_rate_hz=0.001, merge_rate_hz=0.01)
        assert g.has_explicit_rates
        assert not GroupDynamicsParameters().has_explicit_rates

    def test_merge_rate_positive_when_given(self):
        with pytest.raises(ParameterError):
            GroupDynamicsParameters(merge_rate_hz=0.0)


class TestGCSParameters:
    def test_paper_defaults(self):
        p = GCSParameters.paper_defaults()
        assert p.num_nodes == 100
        assert p.num_voters == 5
        assert p.tids_s == 60.0
        assert p.attack.attacker_function == "linear"

    def test_small_test_preset(self):
        p = GCSParameters.small_test()
        assert p.num_nodes == 12
        assert p.groups.has_explicit_rates

    def test_replacing_leaf_fields(self):
        p = GCSParameters.paper_defaults()
        q = p.replacing(num_nodes=50, detection_interval_s=120.0, num_voters=7)
        assert q.num_nodes == 50
        assert q.tids_s == 120.0
        assert q.num_voters == 7
        # Original untouched (frozen dataclasses).
        assert p.num_nodes == 100

    def test_replacing_bundle(self):
        p = GCSParameters.paper_defaults()
        q = p.replacing(workload=WorkloadParameters(data_rate_hz=1.0))
        assert q.workload.data_rate_hz == 1.0

    def test_replacing_shared_field_applies_to_both(self):
        p = GCSParameters.paper_defaults()
        q = p.replacing(base_index_p=2.0)
        assert q.attack.base_index_p == 2.0
        assert q.detection.base_index_p == 2.0

    def test_replacing_prefixed_fields(self):
        p = GCSParameters.paper_defaults()
        q = p.replacing(attack_base_index_p=2.5)
        assert q.attack.base_index_p == 2.5
        assert q.detection.base_index_p == 3.0

    def test_replacing_alias(self):
        q = GCSParameters.paper_defaults().replacing(num_voters_m=9)
        assert q.num_voters == 9

    def test_replacing_unknown_rejected(self):
        with pytest.raises(ParameterError):
            GCSParameters.paper_defaults().replacing(warp_speed=9)

    def test_paper_defaults_with_overrides(self):
        p = GCSParameters.paper_defaults(detection_interval_s=15.0)
        assert p.tids_s == 15.0

    def test_to_dict_roundtrippable(self):
        d = GCSParameters.paper_defaults().to_dict()
        assert d["network"]["num_nodes"] == 100
        assert d["detection"]["num_voters"] == 5

    def test_describe(self):
        text = GCSParameters.paper_defaults().describe()
        assert "N=100" in text and "m=5" in text

    def test_frozen(self):
        p = GCSParameters.paper_defaults()
        with pytest.raises(dataclasses.FrozenInstanceError):
            p.network = NetworkParameters()  # type: ignore[misc]


class TestConstants:
    def test_grids(self):
        assert C.PAPER_TIDS_GRID_S[0] == 5
        assert C.PAPER_TIDS_GRID_COST_S[0] == 30
        assert C.PAPER_M_VALUES == (3, 5, 7, 9)

    def test_byzantine_threshold(self):
        assert C.BYZANTINE_FRACTION == pytest.approx(1 / 3)
