"""Shared test configuration: hypothesis seed profiles.

``HYPOTHESIS_PROFILE=ci`` (set by the CI coverage job) derandomises
every hypothesis test — examples are generated from a fixed seed, so a
red CI run is reproducible locally by exporting the same profile. The
default profile keeps hypothesis's usual randomised exploration for
local development.
"""

import os

try:
    from hypothesis import settings
except ImportError:  # pragma: no cover — hypothesis is a test extra
    pass
else:
    settings.register_profile("ci", derandomize=True, deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
