"""GDH.3 protocol: agreement, ledger economics, cost-model integration."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError, ProtocolError
from repro.groupkey import (
    DHGroup,
    DHKeyPair,
    RekeyCostModel,
    run_gdh2,
    run_gdh3,
)
from repro.manet import NetworkModel
from repro.params import NetworkParameters


class TestGDH3Agreement:
    @pytest.mark.parametrize("n", [2, 3, 5, 12, 30])
    def test_all_members_agree(self, n):
        result = run_gdh3(n, rng=np.random.default_rng(n))
        assert len(set(result.member_keys)) == 1
        assert result.num_members == n

    def test_same_key_as_product_exponent(self):
        group = DHGroup.toy()
        rng = np.random.default_rng(5)
        # Invertible shares for GDH.3.
        pairs = []
        while len(pairs) < 4:
            pair = DHKeyPair.generate(group, rng)
            if math.gcd(pair.private, group.prime - 1) == 1:
                pairs.append(pair)
        result = run_gdh3(pairs)
        exponent = 1
        for pair in pairs:
            exponent = (exponent * pair.private) % (group.prime - 1)
        assert result.shared_key == pow(group.generator, exponent, group.prime)

    def test_gdh2_and_gdh3_agree_on_same_shares(self):
        group = DHGroup.toy()
        rng = np.random.default_rng(6)
        pairs = []
        while len(pairs) < 5:
            pair = DHKeyPair.generate(group, rng)
            if math.gcd(pair.private, group.prime - 1) == 1:
                pairs.append(pair)
        assert run_gdh2(pairs).shared_key == run_gdh3(pairs).shared_key

    def test_non_invertible_share_rejected(self):
        group = DHGroup(prime=23, generator=5)
        bad = DHKeyPair(group, 11)  # gcd(11, 22) = 11
        ok = DHKeyPair(group, 3)
        with pytest.raises(ProtocolError):
            run_gdh3([bad, ok])

    def test_too_few_members(self):
        with pytest.raises(ProtocolError):
            run_gdh3(1)


class TestGDH3Ledger:
    @pytest.mark.parametrize("n", [2, 3, 7, 20])
    def test_linear_element_count(self, n):
        result = run_gdh3(n, rng=np.random.default_rng(n))
        assert result.ledger.total_elements == 3 * n - 3

    def test_stage_structure(self):
        n = 6
        ledger = run_gdh3(n, rng=np.random.default_rng(0)).ledger
        stages = [m.stage for m in ledger.messages]
        assert stages.count("upflow") == n - 2
        assert stages.count("broadcast") == 1
        assert stages.count("response") == n - 1
        assert stages.count("final") == 1
        finals = [m for m in ledger.messages if m.stage == "final"]
        assert finals[0].is_broadcast
        assert finals[0].num_elements == n - 1

    def test_asymptotically_cheaper_than_gdh2(self):
        for n in (4, 10, 40):
            e2 = run_gdh2(n, rng=np.random.default_rng(n)).ledger.total_elements
            e3 = run_gdh3(n, rng=np.random.default_rng(n)).ledger.total_elements
            assert e3 < e2
        # Quadratic vs linear: the ratio grows with n.
        r10 = run_gdh2(10, rng=np.random.default_rng(1)).ledger.total_elements / (3 * 10 - 3)
        r40 = run_gdh2(40, rng=np.random.default_rng(2)).ledger.total_elements / (3 * 40 - 3)
        assert r40 > r10


class TestCostModelIntegration:
    @pytest.fixture
    def network(self) -> NetworkModel:
        return NetworkModel.analytic(NetworkParameters())

    def test_initial_ledger_matches_protocol(self, network):
        model = RekeyCostModel(network, element_bits=61, initial_protocol="gdh3")
        for n in (2, 5, 15):
            synthetic = model.ledger_for("initial", n)
            actual = run_gdh3(n, rng=np.random.default_rng(n)).ledger
            assert synthetic.total_elements == actual.total_elements
            assert synthetic.num_messages == actual.num_messages

    def test_gdh3_initial_cheaper(self, network):
        gdh2 = RekeyCostModel(network, initial_protocol="gdh2")
        gdh3 = RekeyCostModel(network, initial_protocol="gdh3")
        assert gdh3.hop_bits("initial", 50) < gdh2.hop_bits("initial", 50)
        # Incremental operations are protocol-independent.
        assert gdh3.hop_bits("evict", 50) == gdh2.hop_bits("evict", 50)

    def test_invalid_protocol(self, network):
        with pytest.raises(ParameterError):
            RekeyCostModel(network, initial_protocol="gdh9")


@settings(max_examples=15, deadline=None)
@given(n=st.integers(2, 15), seed=st.integers(0, 100))
def test_property_gdh3_agreement(n, seed):
    result = run_gdh3(n, rng=np.random.default_rng(seed))
    assert len(set(result.member_keys)) == 1
    assert result.ledger.total_elements == 3 * n - 3
