"""GCS simulator: analytic agreement, protocol mode, runner."""

import numpy as np
import pytest

from repro.core import evaluate
from repro.core.metrics import resolve_network
from repro.errors import ParameterError
from repro.params import GCSParameters
from repro.sim import GCSSimulator, compare_with_model, run_replications


@pytest.fixture(scope="module")
def params() -> GCSParameters:
    return GCSParameters.small_test()


@pytest.fixture(scope="module")
def network(params):
    return resolve_network(params)


class TestRatesMode:
    def test_matches_analytic_mttsf(self, params):
        cmp = compare_with_model(params, replications=300, mode="rates", seed=11)
        # 300 replications: CI half-width ~ 5%; require containment or
        # very close means (guards against systematic bias, tolerates
        # unlucky seeds).
        assert cmp.mttsf_within_ci or cmp.mttsf_relative_error < 0.08

    def test_matches_analytic_cost(self, params):
        cmp = compare_with_model(params, replications=200, mode="rates", seed=5)
        assert cmp.cost_relative_error < 0.05

    def test_failure_modes_match_absorption_split(self, params):
        summary = run_replications(params, replications=400, mode="rates", seed=3)
        analytic = evaluate(params)
        frac = summary.failure_mode_fractions
        for mode, p in analytic.failure_probabilities.items():
            observed = frac.get(mode, 0.0)
            sigma = np.sqrt(max(p * (1 - p), 1e-6) / 400)
            assert abs(observed - p) < 5 * sigma + 0.01

    def test_deterministic_given_seed(self, params, network):
        sim = GCSSimulator(params, network, mode="rates")
        a = sim.run_mission(np.random.default_rng(9)).ttsf_s
        b = sim.run_mission(np.random.default_rng(9)).ttsf_s
        assert a == b

    def test_censoring(self, params, network):
        sim = GCSSimulator(params, network, mode="rates", max_time_s=10.0)
        record = sim.run_mission(np.random.default_rng(0))
        assert record.failure_mode == "censored"
        assert record.ttsf_s == 10.0

    def test_event_counters_consistent(self, params, network):
        sim = GCSSimulator(params, network, mode="rates")
        r = sim.run_mission(np.random.default_rng(21))
        if r.failure_mode == "c1_data_leak":
            assert r.num_leak_attempts >= 1
        # Detections never exceed compromises.
        assert r.num_detections <= r.num_compromises


class TestProtocolMode:
    def test_same_ballpark_as_analytic(self, params):
        # Batch sweeps differ from per-node exponential detection; demand
        # order-of-magnitude agreement, not CI containment.
        summary = run_replications(params, replications=25, mode="protocol", seed=2)
        analytic = evaluate(params)
        ratio = summary.ttsf.mean / analytic.mttsf_s
        assert 0.3 < ratio < 3.0

    def test_mission_record_counters(self, params, network):
        sim = GCSSimulator(params, network, mode="protocol")
        r = sim.run_mission(np.random.default_rng(4))
        assert r.ttsf_s > 0
        assert r.failure_mode in ("c1_data_leak", "c2_byzantine", "depletion")
        assert r.accumulated_cost_hop_bits > 0

    def test_no_ids_means_leak_failure(self, params, network):
        # Astronomically long detection interval: the only failure
        # channels are C1 leak or C2 accumulation.
        p = params.replacing(detection_interval_s=1e9)
        sim = GCSSimulator(p, network, mode="protocol")
        r = sim.run_mission(np.random.default_rng(6))
        assert r.failure_mode in ("c1_data_leak", "c2_byzantine")
        assert r.num_detections == 0 or r.num_false_evictions >= 0


class TestRunner:
    def test_summary_statistics(self, params):
        s = run_replications(params, replications=20, mode="rates", seed=1)
        assert s.num_replications == 20
        assert s.ttsf.count == 20
        assert sum(s.failure_mode_fractions.values()) == pytest.approx(1.0)
        assert "TTSF" in s.describe()

    def test_all_censored_raises(self, params):
        with pytest.raises(ParameterError):
            run_replications(
                params, replications=5, mode="rates", seed=0, max_time_s=1e-3
            )

    def test_invalid_arguments(self, params, network):
        with pytest.raises(ParameterError):
            GCSSimulator(params, network, mode="magic")
        with pytest.raises(ParameterError):
            GCSSimulator(params, network, max_time_s=0.0)
        with pytest.raises(ParameterError):
            run_replications(params, replications=0)

    def test_comparison_report(self, params):
        cmp = compare_with_model(params, replications=10, mode="rates", seed=8)
        text = cmp.describe()
        assert "analytic MTTSF" in text
        assert cmp.analytic.mttsf_s > 0
