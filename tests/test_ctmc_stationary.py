"""Stationary solvers: GTH, power iteration, closed forms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctmc import CTMC, stationary_distribution
from repro.ctmc.stationary import gth_stationary
from repro.errors import ParameterError, SolverError


def two_state_closed_form(a: float, b: float) -> np.ndarray:
    # 0 -> 1 at rate a, 1 -> 0 at rate b: pi = (b, a) / (a + b).
    return np.array([b, a]) / (a + b)


class TestGTH:
    def test_two_state(self):
        a, b = 2.0, 5.0
        chain = CTMC.from_transitions(2, [(0, 1, a), (1, 0, b)])
        pi = stationary_distribution(chain, method="gth")
        np.testing.assert_allclose(pi, two_state_closed_form(a, b), rtol=1e-12)

    def test_single_state(self):
        pi = gth_stationary(np.array([[1.0]]))
        np.testing.assert_allclose(pi, [1.0])

    def test_stiff_chain(self):
        # Rates spanning 12 orders of magnitude: GTH stays accurate.
        chain = CTMC.from_transitions(
            3, [(0, 1, 1e-6), (1, 2, 1e6), (2, 0, 1.0), (1, 0, 1e-6)]
        )
        pi = stationary_distribution(chain, method="gth")
        Q = chain.generator().toarray()
        np.testing.assert_allclose(pi @ Q, 0.0, atol=1e-12 * np.abs(Q).max())

    def test_reducible_detected(self):
        P = np.array([[1.0, 0.0], [0.0, 1.0]])
        with pytest.raises(SolverError):
            gth_stationary(P)

    def test_nonsquare_rejected(self):
        with pytest.raises(ParameterError):
            gth_stationary(np.ones((2, 3)))


class TestStationaryFacade:
    def test_power_matches_gth(self):
        rng = np.random.default_rng(7)
        n = 12
        transitions = [
            (i, j, float(rng.uniform(0.1, 2.0)))
            for i in range(n)
            for j in range(n)
            if i != j
        ]
        chain = CTMC.from_transitions(n, transitions)
        pi_gth = stationary_distribution(chain, method="gth")
        pi_pow = stationary_distribution(chain, method="power", tol=1e-14)
        np.testing.assert_allclose(pi_pow, pi_gth, atol=1e-10)

    def test_absorbing_chain_rejected(self):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0)])
        with pytest.raises(SolverError):
            stationary_distribution(chain)

    def test_bad_method(self):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0), (1, 0, 1.0)])
        with pytest.raises(ParameterError):
            stationary_distribution(chain, method="magic")

    def test_single_state_chain(self):
        chain = CTMC.from_transitions(1, [])
        np.testing.assert_allclose(stationary_distribution(chain), [1.0])


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), n=st.integers(2, 10))
def test_property_stationary_solves_balance(seed, n):
    """Property: pi @ Q == 0 and pi sums to 1 on random irreducible chains."""
    rng = np.random.default_rng(seed)
    transitions = []
    for i in range(n):
        # Ring edge guarantees irreducibility.
        transitions.append((i, (i + 1) % n, float(rng.uniform(0.2, 3.0))))
        for j in range(n):
            if j != i and rng.random() < 0.3:
                transitions.append((i, j, float(rng.uniform(0.05, 2.0))))
    chain = CTMC.from_transitions(n, transitions)
    pi = stationary_distribution(chain, method="gth")
    assert pi.sum() == pytest.approx(1.0, abs=1e-12)
    assert (pi > 0).all()
    residual = pi @ chain.generator().toarray()
    np.testing.assert_allclose(residual, 0.0, atol=1e-10)
