"""ASCII plot renderer."""

import pytest

from repro.analysis.figures import DataSeries
from repro.analysis.plots import ascii_plot
from repro.errors import ParameterError


def demo_series() -> DataSeries:
    return DataSeries.build(
        "demo",
        "TIDS_s",
        [5, 50, 500],
        "MTTSF_s",
        {"a": [1e5, 1e6, 2e5], "b": [5e4, 3e5, 4e5]},
    )


class TestAsciiPlot:
    def test_contains_axes_and_legend(self):
        out = ascii_plot(demo_series())
        assert "legend: o=a  x=b" in out
        assert "TIDS_s" in out
        assert "|" in out and "+" in out

    def test_glyphs_present(self):
        out = ascii_plot(demo_series())
        assert "o" in out and "x" in out

    def test_title_override(self):
        out = ascii_plot(demo_series(), title="Custom Title")
        assert out.splitlines()[0] == "Custom Title"

    def test_linear_axes(self):
        s = DataSeries.build("lin", "x", [0, 1, 2], "y", {"a": [0.0, 1.0, 4.0]})
        out = ascii_plot(s, log_x=False, log_y=False)
        assert "legend" in out

    def test_log_rejects_nonpositive(self):
        s = DataSeries.build("bad", "x", [1, 2], "y", {"a": [0.0, 1.0]})
        with pytest.raises(ParameterError):
            ascii_plot(s)
        # Works with the log axis disabled.
        assert ascii_plot(s, log_y=False)

    def test_dimensions(self):
        out = ascii_plot(demo_series(), width=40, height=10)
        body_lines = [l for l in out.splitlines() if l.rstrip().endswith("|")]
        assert len(body_lines) == 10
        with pytest.raises(ParameterError):
            ascii_plot(demo_series(), width=5)

    def test_too_many_series(self):
        s = DataSeries.build(
            "many", "x", [1], "y", {f"s{i}": [1.0] for i in range(9)}
        )
        with pytest.raises(ParameterError):
            ascii_plot(s)

    def test_constant_series_does_not_crash(self):
        s = DataSeries.build("flat", "x", [1, 2], "y", {"a": [5.0, 5.0]})
        assert ascii_plot(s)


class TestCliPlotFlag:
    def test_run_with_plot(self, capsys):
        from repro.cli import main

        assert main(["run", "scale", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "legend:" in out
