"""Equation 1 (VotingErrorModel): exhaustive oracle, properties, edges."""

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.voting import VotingErrorModel


def brute_force_eviction_probability(
    pool_good: int,
    pool_bad: int,
    m: int,
    p_err: float,
    bad_votes_against: bool,
) -> float:
    """Independent oracle: enumerate voter subsets and good-voter error
    patterns exhaustively (exponential; keep pools tiny)."""
    pool = [("bad",)] * pool_bad + [("good",)] * pool_good
    m_eff = min(m, len(pool))
    if m_eff == 0:
        return 0.0
    majority = math.ceil(m_eff / 2)
    total = 0.0
    n_subsets = 0
    for subset in itertools.combinations(range(len(pool)), m_eff):
        n_subsets += 1
        n_bad_voters = sum(1 for i in subset if i < pool_bad)
        n_good_voters = m_eff - n_bad_voters
        base_against = n_bad_voters if bad_votes_against else 0
        # Sum over error patterns of the good voters.
        for errs in range(n_good_voters + 1):
            against = base_against + errs
            if against >= majority:
                weight = (
                    math.comb(n_good_voters, errs)
                    * p_err**errs
                    * (1 - p_err) ** (n_good_voters - errs)
                )
                total += weight
    return total / n_subsets


class TestAgainstBruteForce:
    @pytest.mark.parametrize("good,bad", [(4, 0), (3, 2), (2, 3), (5, 1), (1, 4), (6, 2)])
    @pytest.mark.parametrize("m", [1, 3, 5])
    def test_pfp_matches(self, good, bad, m):
        model = VotingErrorModel(m, host_false_negative=0.05, host_false_positive=0.08)
        ours = model.false_positive_probability(good, bad)
        oracle = brute_force_eviction_probability(good - 1, bad, m, 0.08, True)
        assert ours == pytest.approx(oracle, rel=1e-10, abs=1e-12)

    @pytest.mark.parametrize("good,bad", [(4, 1), (3, 2), (2, 3), (0, 4), (5, 2)])
    @pytest.mark.parametrize("m", [1, 3, 5])
    def test_pfn_matches(self, good, bad, m):
        model = VotingErrorModel(m, host_false_negative=0.05, host_false_positive=0.08)
        ours = model.false_negative_probability(good, bad)
        oracle = 1.0 - brute_force_eviction_probability(good, bad - 1, m, 0.95, False)
        assert ours == pytest.approx(oracle, rel=1e-10, abs=1e-12)


class TestClosedFormSpotChecks:
    def test_all_good_voters_pfp_is_binomial_tail(self):
        # No compromised nodes: Pfp = P(Binom(m, p2) >= ceil(m/2)).
        model = VotingErrorModel(5, 0.01, 0.01)
        pfp = model.false_positive_probability(50, 0)
        ref = sum(
            math.comb(5, k) * 0.01**k * 0.99 ** (5 - k) for k in range(3, 6)
        )
        assert pfp == pytest.approx(ref, rel=1e-12)

    def test_all_good_voters_pfn_is_binomial(self):
        # Single bad target, no other bad nodes: eviction needs >= 3 of 5
        # correct detections (each w.p. 1 - p1).
        model = VotingErrorModel(5, 0.02, 0.01)
        pfn = model.false_negative_probability(50, 1)
        p_detect = 0.98
        ref_evict = sum(
            math.comb(5, k) * p_detect**k * (1 - p_detect) ** (5 - k)
            for k in range(3, 6)
        )
        assert pfn == pytest.approx(1.0 - ref_evict, rel=1e-12)

    def test_colluder_majority_forces_outcomes(self):
        # With overwhelmingly bad pools the colluders control every vote.
        model = VotingErrorModel(3, 0.0, 0.0)
        assert model.false_positive_probability(1, 50) == pytest.approx(1.0, abs=1e-9)
        assert model.false_negative_probability(0, 50) == pytest.approx(1.0, abs=1e-9)

    def test_perfect_host_ids_no_colluders(self):
        model = VotingErrorModel(5, 0.0, 0.0)
        assert model.false_positive_probability(10, 0) == 0.0
        assert model.false_negative_probability(10, 1) == 0.0

    def test_empty_pool_conventions(self):
        model = VotingErrorModel(5, 0.01, 0.01)
        # Lone good target: nobody can vote, never evicted.
        assert model.false_positive_probability(1, 0) == 0.0
        # Lone bad target: nobody can vote, always kept.
        assert model.false_negative_probability(0, 1) == 1.0

    def test_probabilities_tuple(self):
        model = VotingErrorModel(5, 0.01, 0.02)
        pfp, pfn = model.probabilities(10, 2)
        assert pfp == model.false_positive_probability(10, 2)
        assert pfn == model.false_negative_probability(10, 2)
        assert model.probabilities(0, 2)[0] == 0.0
        assert model.probabilities(5, 0)[1] == 0.0
        assert model.false_alarm_probability(10, 2) == pytest.approx(pfp + pfn)


class TestValidation:
    def test_even_voters_rejected(self):
        with pytest.raises(ParameterError):
            VotingErrorModel(4, 0.01, 0.01)

    def test_probability_domains(self):
        with pytest.raises(ParameterError):
            VotingErrorModel(5, 1.2, 0.01)
        with pytest.raises(ParameterError):
            VotingErrorModel(5, 0.01, -0.2)

    def test_target_requirements(self):
        model = VotingErrorModel(3, 0.01, 0.01)
        with pytest.raises(ParameterError):
            model.false_positive_probability(0, 5)
        with pytest.raises(ParameterError):
            model.false_negative_probability(5, 0)
        with pytest.raises(ParameterError):
            model.false_positive_probability(-1, 5)


class TestStructuralProperties:
    def test_more_voters_reduce_false_alarms_without_collusion(self):
        # Paper, Figure 2 discussion: larger m ⇒ smaller Pfp + Pfn
        # (few colluders). Use a healthy group with one bad node.
        alarms = []
        for m in (3, 5, 7, 9):
            model = VotingErrorModel(m, 0.01, 0.01)
            alarms.append(model.false_alarm_probability(80, 1))
        assert alarms == sorted(alarms, reverse=True)

    def test_pfp_increases_with_colluders(self):
        model = VotingErrorModel(5, 0.01, 0.01)
        values = [model.false_positive_probability(50, b) for b in (0, 5, 15, 30)]
        assert values == sorted(values)

    def test_pfn_increases_with_colluders(self):
        model = VotingErrorModel(5, 0.01, 0.01)
        values = [model.false_negative_probability(50, b) for b in (1, 5, 15, 30)]
        assert values == sorted(values)

    def test_table_consistent_with_scalars(self):
        model = VotingErrorModel(3, 0.02, 0.03)
        pfp, pfn = model.table(6)
        assert pfp.shape == (7, 7)
        assert pfp[3, 2] == pytest.approx(model.false_positive_probability(3, 2))
        assert pfn[3, 2] == pytest.approx(model.false_negative_probability(3, 2))
        assert pfp[0, 2] == 0.0  # no good target
        assert pfn[3, 0] == 0.0  # no bad target


@settings(max_examples=40, deadline=None)
@given(
    m=st.sampled_from([1, 3, 5, 7]),
    good=st.integers(1, 30),
    bad=st.integers(0, 30),
    p1=st.floats(min_value=0.0, max_value=0.5),
    p2=st.floats(min_value=0.0, max_value=0.5),
)
def test_property_probabilities_in_unit_interval(m, good, bad, p1, p2):
    model = VotingErrorModel(m, p1, p2)
    pfp, pfn = model.probabilities(good, bad)
    assert 0.0 <= pfp <= 1.0
    assert 0.0 <= pfn <= 1.0


@settings(max_examples=25, deadline=None)
@given(
    good=st.integers(2, 12),
    bad=st.integers(0, 6),
    p2=st.floats(min_value=0.0, max_value=0.3),
)
def test_property_pfp_monotone_in_host_error(good, bad, p2):
    lo = VotingErrorModel(5, 0.01, p2)
    hi = VotingErrorModel(5, 0.01, min(p2 + 0.2, 1.0))
    assert lo.false_positive_probability(good, bad) <= hi.false_positive_probability(
        good, bad
    ) + 1e-12
