"""End-to-end sweep-service tests: in-process server, remote backend.

The correctness bar for the service tier (see ISSUE 7 / ROADMAP item 1):

* a campaign run via ``--jobs remote`` is **byte-identical** to
  ``--jobs serial`` — exactly equal on a warm shared cache, equal
  modulo wall-clock timing fields on a cold one;
* resubmitting a finished campaign — including to a *restarted* server
  sharing the same cache directory — is 100% cache hits;
* ``/health`` and per-job progress are rendered from the merged obs
  metrics registry;
* malformed requests are 4xx JSON errors, never tracebacks.

Every server here is booted in-process on an ephemeral port.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.engine.batch import BatchRunner, EvalRequest, evaluate_auto
from repro.engine.cache import ResultCache
from repro.engine.executor import SerialBackend, make_backend
from repro.obs import metrics, reset_observability
from repro.params import GCSParameters
from repro.service import (
    RemoteBackend,
    ServiceClient,
    ServiceError,
    ServiceServer,
    SweepService,
)

# Wall-clock fields measured where the result was computed; everything
# else must match bit-for-bit between local and remote evaluation.
TIMING_FIELDS = ("build_seconds", "solve_seconds")


@pytest.fixture(autouse=True)
def _fresh_obs():
    reset_observability()
    yield
    reset_observability()


@pytest.fixture()
def server(tmp_path):
    service = SweepService(
        cache=ResultCache(cache_dir=str(tmp_path / "server-cache")),
        backend=SerialBackend(),
        manifest_dir=str(tmp_path / "manifests"),
    )
    srv = ServiceServer(service, port=0)
    srv.start_in_background()
    yield srv
    srv.stop()


def _requests(count=3):
    scenarios = [
        GCSParameters.small_test(),
        GCSParameters.small_test().replacing(num_voters=3),
        GCSParameters.small_test().replacing(detection_interval_s=120.0),
    ]
    return [EvalRequest(params=p) for p in scenarios[:count]]


def _strip_timings(record: dict) -> dict:
    return {k: v for k, v in record.items() if k not in TIMING_FIELDS}


def _http(url, payload=None, method=None):
    """Raw HTTP helper returning (status, parsed JSON body)."""
    data = None
    headers = {}
    if payload is not None:
        data = payload if isinstance(payload, bytes) else json.dumps(payload).encode()
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(url, data=data, headers=headers, method=method)
    try:
        with urllib.request.urlopen(request, timeout=30) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestRemoteVsSerial:
    def test_cold_cache_identical_modulo_wall_clock(self, server, tmp_path):
        requests = _requests()
        remote = BatchRunner(
            cache=ResultCache(cache_dir=str(tmp_path / "client-cache")),
            backend=RemoteBackend(server.url),
        ).run(requests, evaluate=evaluate_auto)
        remote.report.raise_on_error()
        serial = BatchRunner(
            cache=ResultCache(cache_dir=str(tmp_path / "serial-cache")),
            backend=SerialBackend(),
        ).run(requests, evaluate=evaluate_auto)
        serial.report.raise_on_error()
        for ours, theirs in zip(remote.results, serial.results):
            assert _strip_timings(ours.to_dict()) == _strip_timings(
                theirs.to_dict()
            )

    def test_warm_shared_cache_byte_identical(self, server, tmp_path):
        requests = _requests()
        remote = BatchRunner(backend=RemoteBackend(server.url)).run(
            requests, evaluate=evaluate_auto
        )
        remote.report.raise_on_error()
        # Serial run over the *server's* cache directory: every point is
        # a disk hit, so the JSON bytes must match exactly — timing
        # fields included (they were measured once, server-side).
        with_server_cache = BatchRunner(
            cache=ResultCache(
                cache_dir=server.service.runner.cache.cache_dir
            ),
            backend=SerialBackend(),
        ).run(requests, evaluate=evaluate_auto)
        assert with_server_cache.report.n_cache_hits == len(requests)
        for ours, theirs in zip(remote.results, with_server_cache.results):
            assert json.dumps(ours.to_dict(), sort_keys=True) == json.dumps(
                theirs.to_dict(), sort_keys=True
            )

    def test_streams_outcomes_in_completion_order(self, server):
        requests = _requests()
        seen = []
        backend = RemoteBackend(server.url)
        outcomes = backend.run(
            evaluate_auto, requests, on_outcome=lambda o: seen.append(o.index)
        )
        assert sorted(seen) == list(range(len(requests)))
        assert [o.index for o in outcomes] == list(range(len(requests)))
        assert all(o.ok for o in outcomes)

    def test_error_points_propagate_with_traceback(self, server):
        good = EvalRequest(params=GCSParameters.small_test())
        bad = EvalRequest(
            params=GCSParameters.small_test(), method="no-such-method"
        )
        batch = BatchRunner(backend=RemoteBackend(server.url)).run(
            [good, bad], evaluate=evaluate_auto
        )
        assert batch.results[0] is not None
        assert batch.results[1] is None
        (error,) = batch.report.errors
        assert error.error_type == "ParameterError"
        assert error.traceback  # server-side traceback rides the wire

    def test_fallback_for_non_wire_batches(self, server):
        # Arbitrary callables can't cross the wire; the backend must
        # quietly run them on its local fallback instead.
        backend = RemoteBackend(server.url)
        outcomes = backend.run(lambda x: x * 2, [1, 2, 3])
        assert [o.value for o in outcomes] == [2, 4, 6]


class TestIdempotencyAndRecovery:
    def test_resubmit_same_server_reuses_job(self, server):
        client = ServiceClient(server.url)
        requests = _requests()
        first = client.submit(requests, name="once")
        assert not first.resubmitted
        # Wait for completion through the remote backend's machinery.
        RemoteBackend(server.url).run(evaluate_auto, requests)
        again = client.submit(requests, name="twice")
        assert again.resubmitted
        assert again.job_id == first.job_id

    def test_restarted_server_serves_from_shared_cache(self, server, tmp_path):
        requests = _requests()
        RemoteBackend(server.url).run(evaluate_auto, requests)
        cache_dir = server.service.runner.cache.cache_dir
        server.stop()

        # "Restart": a fresh service over the same cache directory.
        service = SweepService(
            cache=ResultCache(cache_dir=cache_dir), backend=SerialBackend()
        )
        restarted = ServiceServer(service, port=0)
        url = restarted.start_in_background()
        try:
            outcomes = RemoteBackend(url).run(evaluate_auto, requests)
            assert all(o.ok for o in outcomes)
            client = ServiceClient(url)
            (job,) = client.jobs()
            assert job.state == "done"
            assert job.cache_hits == len(requests)
            assert job.evaluated == 0
            assert job.report["hit_rate"] == 1.0
        finally:
            restarted.stop()

    def test_manifest_artifact_is_valid(self, server, tmp_path):
        requests = _requests()
        RemoteBackend(server.url).run(evaluate_auto, requests)
        client = ServiceClient(server.url)
        (job,) = client.jobs()
        assert job.manifest_path is not None
        manifest = json.loads(open(job.manifest_path).read())
        assert manifest["schema_version"] == 1
        assert manifest["params_digest"] == job.job_id
        assert manifest["backend"] == "serial"
        (report,) = manifest["reports"]
        assert report["n_requested"] == len(requests)
        assert manifest["cache_stats"]["stores"] >= len(requests)


class TestObservabilitySurface:
    def test_health_renders_merged_metrics(self, server):
        client = ServiceClient(server.url)
        before = client.health()
        assert before["status"] == "ok"
        assert before["jobs"]["total"] == 0
        RemoteBackend(server.url).run(evaluate_auto, _requests())
        after = client.health()
        assert after["jobs"]["done"] == 1
        counters = after["metrics"]
        assert counters["engine.requests"]["value"] >= 3
        assert counters["engine.evaluated"]["value"] >= 3
        assert after["cache"]["stores"] >= 3
        assert after["backend"] == "serial"

    def test_job_status_carries_metrics_delta_and_report(self, server):
        requests = _requests()
        RemoteBackend(server.url).run(evaluate_auto, requests)
        client = ServiceClient(server.url)
        (job,) = client.jobs()
        status = client.poll(job.job_id)
        assert status.state == "done"
        assert status.done == len(requests)
        assert status.report["n_evaluated"] == len(requests)
        assert status.metrics_delta["engine.requests"]["value"] == len(requests)
        assert status.elapsed_seconds > 0

    def test_client_absorbs_server_telemetry(self, server):
        # The fetch telemetry payload folds server-side counters into
        # the *client's* registry — same channel as pool workers.
        RemoteBackend(server.url).run(evaluate_auto, _requests())
        snapshot = metrics().snapshot()
        assert snapshot["engine.requests"]["value"] >= 3


class TestHttpFailureModes:
    def test_bad_json_is_400(self, server):
        status, body = _http(
            server.url + "/api/v1/campaigns", payload=b"{not json", method="POST"
        )
        assert status == 400
        assert "error" in body and "Traceback" not in body["error"]

    def test_malformed_submit_is_400(self, server):
        status, body = _http(
            server.url + "/api/v1/campaigns",
            payload={"requests": "nope"},
            method="POST",
        )
        assert status == 400
        assert "error" in body

    def test_bad_request_record_is_400(self, server):
        status, body = _http(
            server.url + "/api/v1/campaigns",
            payload={"requests": [{"kind": "eval", "params": {"num_nodes": -1}}]},
            method="POST",
        )
        assert status == 400
        assert "error" in body

    def test_unknown_job_is_404(self, server):
        status, body = _http(server.url + "/api/v1/jobs/deadbeef")
        assert status == 404
        status, _ = _http(server.url + "/api/v1/jobs/deadbeef/results")
        assert status == 404

    def test_unknown_route_is_404(self, server):
        status, _ = _http(server.url + "/api/v1/nonsense")
        assert status == 404

    def test_wrong_method_is_405(self, server):
        status, _ = _http(server.url + "/health", payload={}, method="POST")
        assert status == 405

    def test_bad_offset_is_400(self, server):
        client = ServiceClient(server.url)
        submitted = client.submit(_requests())
        RemoteBackend(server.url).run(evaluate_auto, _requests())
        status, _ = _http(
            server.url + f"/api/v1/jobs/{submitted.job_id}/results?offset=nope"
        )
        assert status == 400
        status, _ = _http(
            server.url + f"/api/v1/jobs/{submitted.job_id}/results?offset=9999"
        )
        assert status == 400

    def test_client_raises_service_error_with_server_message(self, server):
        client = ServiceClient(server.url)
        with pytest.raises(ServiceError) as excinfo:
            client.poll("deadbeef")
        assert excinfo.value.status == 404
        assert "unknown job" in str(excinfo.value)

    def test_unreachable_server_is_service_error(self):
        client = ServiceClient("http://127.0.0.1:1", timeout=2)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.health()


class TestBackendRegistration:
    def test_make_backend_remote_spec_preserves_url_case(self):
        backend = make_backend("remote:http://Example.Test:9999")
        assert backend.describe() == "remote:http://Example.Test:9999"

    def test_make_backend_remote_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_URL", "http://10.0.0.7:4321")
        backend = make_backend("remote")
        assert backend.describe() == "remote:http://10.0.0.7:4321"

    def test_make_backend_remote_fallback_is_serial(self):
        backend = make_backend("remote:http://127.0.0.1:1")
        assert backend.fallback.describe() == "serial"

    def test_cli_serve_rejects_remote_jobs(self, capsys):
        from repro.cli import main

        code = main(["serve", "--port", "0", "--jobs", "remote"])
        assert code == 2
        assert "cannot evaluate through --jobs remote" in capsys.readouterr().err

    def test_cli_parser_has_serve(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--port", "0", "--manifest-dir", "m"]
        )
        assert args.command == "serve"
        assert args.manifest_dir == "m"
