"""Attacker functions, profiles and runtime identification."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attackers import (
    AttackerFunction,
    AttackerProfile,
    compromise_ratio,
    estimate_attacker_function,
)
from repro.errors import ParameterError
from repro.params import AttackParameters


class TestCompromiseRatio:
    def test_clean_group(self):
        assert compromise_ratio(100, 0) == 1.0

    def test_grows_with_compromise(self):
        assert compromise_ratio(50, 50) == 2.0
        assert compromise_ratio(10, 30) == 4.0

    def test_no_trusted_members(self):
        with pytest.raises(ParameterError):
            compromise_ratio(0, 5)

    def test_negative_counts(self):
        with pytest.raises(ParameterError):
            compromise_ratio(-1, 0)


class TestAttackerFunction:
    def test_all_forms_equal_base_rate_when_clean(self):
        lam = 1.0 / 43200
        for form in ("logarithmic", "linear", "polynomial"):
            fn = AttackerFunction(form, lam)
            assert fn.rate(100, 0) == pytest.approx(lam)

    def test_ordering_log_linear_poly(self):
        lam = 0.01
        log_fn = AttackerFunction("logarithmic", lam)
        lin_fn = AttackerFunction("linear", lam)
        pol_fn = AttackerFunction("polynomial", lam)
        for mc in (1.0, 1.5, 2.0, 4.0, 10.0):
            assert log_fn.rate_at_ratio(mc) <= lin_fn.rate_at_ratio(mc) + 1e-15
            assert lin_fn.rate_at_ratio(mc) <= pol_fn.rate_at_ratio(mc) + 1e-15

    def test_linear_form(self):
        fn = AttackerFunction("linear", 2.0)
        assert fn.rate_at_ratio(3.0) == pytest.approx(6.0)

    def test_polynomial_form(self):
        fn = AttackerFunction("polynomial", 2.0, base_index_p=3.0)
        assert fn.rate_at_ratio(2.0) == pytest.approx(16.0)

    def test_literal_log_is_zero_at_start(self):
        fn = AttackerFunction("logarithmic", 1.0, shifted_log=False)
        assert fn.rate_at_ratio(1.0) == 0.0

    def test_shifted_log_formula(self):
        fn = AttackerFunction("logarithmic", 1.0, base_index_p=3.0)
        assert fn.rate_at_ratio(3.0) == pytest.approx(2.0)  # 1 + log_3(3)

    def test_from_params(self):
        fn = AttackerFunction.from_params(AttackParameters(attacker_function="polynomial"))
        assert fn.form == "polynomial"
        assert fn.base_rate_hz == pytest.approx(1 / 43200)

    def test_invalid_inputs(self):
        with pytest.raises(ParameterError):
            AttackerFunction("quadratic", 1.0)
        with pytest.raises(ParameterError):
            AttackerFunction("linear", 0.0)
        with pytest.raises(ParameterError):
            AttackerFunction("linear", 1.0, base_index_p=1.0)
        with pytest.raises(ParameterError):
            AttackerFunction("linear", 1.0).rate_at_ratio(0.5)

    def test_describe_mentions_form(self):
        assert "mc^3" in AttackerFunction("polynomial", 1.0).describe()
        assert "log" in AttackerFunction("logarithmic", 1.0).describe()


class TestAttackerProfile:
    def test_delay_sampling_matches_rate(self):
        fn = AttackerFunction("linear", 0.1)
        profile = AttackerProfile(fn)
        rng = np.random.default_rng(0)
        delays = [profile.sample_compromise_delay(10, 10, rng) for _ in range(4000)]
        # Rate = 0.1 * mc = 0.1 * 2 = 0.2 => mean delay 5.
        assert np.mean(delays) == pytest.approx(5.0, rel=0.1)

    def test_no_trusted_nodes_never_fires(self):
        profile = AttackerProfile(AttackerFunction("linear", 0.1))
        assert profile.sample_compromise_delay(0, 5, np.random.default_rng(0)) == float("inf")

    def test_flags_default_to_paper_behaviour(self):
        profile = AttackerProfile(AttackerFunction("linear", 0.1))
        assert profile.colludes_in_votes and profile.leaks_data


class TestEstimator:
    @staticmethod
    def synth_times(form: str, lam: float, n: int, k: int, seed: int) -> list[float]:
        fn = AttackerFunction(form, lam)
        rng = np.random.default_rng(seed)
        t, times = 0.0, []
        for i in range(k):
            rate = fn.rate(n - i, i)
            t += rng.exponential(1.0 / rate)
            times.append(t)
        return times

    @pytest.mark.parametrize(
        "form,min_wins",
        [("logarithmic", 15), ("linear", 15), ("polynomial", 25)],
    )
    def test_identifies_generating_form(self, form, min_wins):
        # Deep histories (mc up to 7.5) so the likelihood ratio has
        # power; log and linear attackers are statistically close, hence
        # the lower win threshold for them.
        wins = 0
        for seed in range(30):
            times = self.synth_times(form, 1e-3, 30, 26, seed)
            best, rate, scores = estimate_attacker_function(times, 30)
            assert set(scores) == {"logarithmic", "linear", "polynomial"}
            if best == form:
                wins += 1
        assert wins >= min_wins

    def test_rate_recovered_for_linear(self):
        times = self.synth_times("linear", 2e-3, 50, 30, 7)
        best, rate, _ = estimate_attacker_function(times, 50)
        assert rate == pytest.approx(2e-3, rel=0.5)

    def test_validation(self):
        with pytest.raises(ParameterError):
            estimate_attacker_function([1.0, 2.0], 10)  # too few
        with pytest.raises(ParameterError):
            estimate_attacker_function([1.0, 1.0, 2.0], 10)  # not increasing
        with pytest.raises(ParameterError):
            estimate_attacker_function([1.0, 2.0, 3.0], 3)  # k >= N
        with pytest.raises(ParameterError):
            estimate_attacker_function([1.0, 2.0, 3.0], 10, candidates=["bogus"])


@settings(max_examples=40, deadline=None)
@given(
    mc=st.floats(min_value=1.0, max_value=50.0),
    lam=st.floats(min_value=1e-6, max_value=1.0),
)
def test_property_rates_positive_and_ordered(mc, lam):
    rates = {
        form: AttackerFunction(form, lam).rate_at_ratio(mc)
        for form in ("logarithmic", "linear", "polynomial")
    }
    assert all(r >= 0 for r in rates.values())
    assert rates["logarithmic"] <= rates["linear"] + 1e-12
    assert rates["linear"] <= rates["polynomial"] + 1e-12
