"""Numba kernel tier: selection seam, fallback, and bit-identity.

Two families of guarantees, tested in two regimes:

* **Without numba** (the container default): requesting the ``numba``
  tier must degrade to ``fused`` — same bits, counted under
  ``solver.kernel_fallbacks`` / ``solver.kernel_jit_failures`` — and
  never error. These tests force the degradation paths with
  monkeypatching so they are deterministic on hosts that *do* have
  numba.
* **With numba** (the CI ``tests-numba`` leg): the jitted sweep and
  the jitted stacked matvec must be *bit-identical* to the fused
  NumPy tier on the paper grids — the jit reproduces the exact IEEE
  accumulation order, so ``np.array_equal`` holds, not just allclose.

The ``expm`` transient backend is a genuinely different algorithm, so
its contract is a pinned tolerance
(:data:`repro.ctmc.EXPM_EQUIVALENCE_RTOL`), not bit-identity.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fastpath import (
    fill_transition_rates,
    lattice_structure,
)
from repro.core.metrics import evaluate_batch, resolve_network
from repro.core.rates import GCSRates
from repro.ctmc import (
    CTMC,
    EXPM_EQUIVALENCE_RTOL,
    KERNEL_CHOICES,
    TRANSIENT_BACKEND_CHOICES,
    numba_available,
    resolve_kernel,
    resolve_transient_backend,
    transient_distribution_batch,
)
from repro.ctmc import kernels as kernels_module
from repro.ctmc.acyclic import batch_dag_structure, solve_dag, solve_dag_batch
from repro.ctmc.acyclic import topological_levels
from repro.errors import SolverError
from repro.obs import metrics
from repro.params import GCSParameters

N_TEST = 12
TIMES = (0.0, 0.5, 2.0, 5.0)
EXPM_ATOL = 1e-10


def _fig2_scenarios(tids=(15.0, 60.0, 240.0)) -> list[GCSParameters]:
    base = GCSParameters.paper_defaults(num_nodes=N_TEST)
    return [
        base.replacing(num_voters=m, detection_interval_s=float(t))
        for m in (3, 5, 7, 9)
        for t in tids
    ]


def _fig4_scenarios(tids=(15.0, 60.0, 240.0)) -> list[GCSParameters]:
    base = GCSParameters.paper_defaults(num_nodes=N_TEST)
    return [
        base.replacing(detection_function=fn, detection_interval_s=float(t))
        for fn in ("logarithmic", "linear", "polynomial")
        for t in tids
    ]


def _lattice_fills(scenarios):
    structure = lattice_structure(scenarios[0].num_nodes)
    values = np.stack(
        [
            fill_transition_rates(
                structure,
                GCSRates.from_scenario(p, resolve_network(p, None)),
            ).values
            for p in scenarios
        ]
    )
    return structure, values


def _random_dag_chain(rng, n=40, density=0.2):
    transitions = []
    for src in range(1, n):
        for dst in range(src):
            if rng.random() < density:
                transitions.append((src, dst, float(rng.uniform(0.1, 5.0))))
    return CTMC.from_transitions(n, transitions)


def _random_cyclic_chain(rng, n=20, density=0.2):
    rows, cols, vals = [], [], []
    for i in range(n):
        for j in range(n):
            if i != j and rng.random() < density:
                rows.append(i)
                cols.append(j)
                vals.append(float(rng.uniform(0.1, 2.0)))
    return CTMC(sp.csr_matrix((vals, (rows, cols)), shape=(n, n)))


def _dag_problem(seed=7, n=35, P=4, k=2):
    rng = np.random.default_rng(seed)
    chain = _random_dag_chain(rng, n=n, density=0.25)
    R = chain.rates
    shared = batch_dag_structure(R.indptr, R.indices)
    values = np.stack([R.data * s for s in rng.uniform(0.5, 2.0, size=P)])
    values[0, rng.random(values.shape[1]) < 0.2] = 0.0  # zero-pruned point
    numer = rng.uniform(0.0, 1.0, size=(P, chain.num_states, k))
    boundary = np.zeros((chain.num_states, k))
    boundary[chain.absorbing_states, 0] = 1.0
    return shared, values, numer, boundary


# ---------------------------------------------------------------------------
# Selection seam (runs with or without numba installed)
# ---------------------------------------------------------------------------

class TestResolveKernel:
    def test_choices_are_exported(self):
        assert KERNEL_CHOICES == ("numba", "fused", "numpy")
        assert TRANSIENT_BACKEND_CHOICES == ("uniformization", "expm")

    def test_default_is_fused(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        monkeypatch.delenv("REPRO_FUSED_GATHER", raising=False)
        assert resolve_kernel() == "fused"

    def test_legacy_fused_gather_env_still_selects_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        monkeypatch.setenv("REPRO_FUSED_GATHER", "0")
        assert resolve_kernel() == "numpy"

    def test_env_beats_legacy_toggle(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "fused")
        monkeypatch.setenv("REPRO_FUSED_GATHER", "0")
        assert resolve_kernel() == "fused"

    def test_fused_bool_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "numpy")
        assert resolve_kernel(fused=True) == "fused"
        assert resolve_kernel(fused=False) == "numpy"

    def test_explicit_kernel_beats_everything(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "numpy")
        assert resolve_kernel("fused", fused=False) == "fused"

    def test_unknown_explicit_kernel_raises(self):
        with pytest.raises(SolverError, match="warp"):
            resolve_kernel("warp")
        shared, values, numer, boundary = _dag_problem()
        with pytest.raises(SolverError, match="kernel"):
            solve_dag_batch(shared, values, numer, boundary, kernel="warp")

    def test_unknown_env_kernel_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "warp")
        monkeypatch.delenv("REPRO_FUSED_GATHER", raising=False)
        assert resolve_kernel() == "fused"

    def test_numba_request_without_numba_degrades_counted(self, monkeypatch):
        monkeypatch.setattr(kernels_module, "_NUMBA_AVAILABLE", False)
        before = metrics().counter("solver.kernel_fallbacks").value
        assert resolve_kernel("numba") == "fused"
        assert metrics().counter("solver.kernel_fallbacks").value == before + 1

    def test_numba_request_with_numba_sticks(self, monkeypatch):
        monkeypatch.setattr(kernels_module, "_NUMBA_AVAILABLE", True)
        assert resolve_kernel("numba") == "numba"

    def test_numba_available_matches_import_reality(self):
        try:
            import numba  # noqa: F401

            expected = True
        except Exception:  # noqa: BLE001 — import failure means "no"
            expected = False
        assert numba_available() is expected


class TestResolveTransientBackend:
    def test_default_is_uniformization(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRANSIENT_BACKEND", raising=False)
        assert resolve_transient_backend() == "uniformization"

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSIENT_BACKEND", "uniformization")
        assert resolve_transient_backend("expm") == "expm"

    def test_env_selects_expm(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSIENT_BACKEND", "expm")
        assert resolve_transient_backend() == "expm"

    def test_unknown_explicit_raises(self):
        with pytest.raises(SolverError, match="pade"):
            resolve_transient_backend("pade")

    def test_unknown_env_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSIENT_BACKEND", "pade")
        assert resolve_transient_backend() == "uniformization"


# ---------------------------------------------------------------------------
# Fallback paths must produce fused bits (deterministic on any host)
# ---------------------------------------------------------------------------

class TestNumbaFallback:
    def test_solve_dag_batch_falls_back_bitwise(self, monkeypatch):
        monkeypatch.setattr(kernels_module, "_NUMBA_AVAILABLE", False)
        shared, values, numer, boundary = _dag_problem()
        fused = solve_dag_batch(shared, values, numer, boundary, kernel="fused")
        degraded = solve_dag_batch(shared, values, numer, boundary, kernel="numba")
        assert np.array_equal(fused, degraded)

    def test_transient_falls_back_bitwise(self, monkeypatch):
        monkeypatch.setattr(kernels_module, "_NUMBA_AVAILABLE", False)
        chain = _random_cyclic_chain(np.random.default_rng(5))
        R = chain.rates
        values = np.stack([R.data, R.data * 0.5])
        fused = transient_distribution_batch(
            R.indptr, R.indices, values, TIMES, 0, kernel="fused"
        )
        degraded = transient_distribution_batch(
            R.indptr, R.indices, values, TIMES, 0, kernel="numba"
        )
        assert np.array_equal(fused, degraded)

    def test_jit_failure_degrades_counted(self, monkeypatch):
        # numba "available" but compilation explodes: the solver must
        # absorb the failure before the span opens and run fused bits.
        import repro.ctmc._numba_kernels as nk

        def _boom():
            raise RuntimeError("synthetic jit failure")

        monkeypatch.setattr(kernels_module, "_NUMBA_AVAILABLE", True)
        monkeypatch.setattr(nk, "ensure_compiled", _boom)
        shared, values, numer, boundary = _dag_problem(seed=13)
        before = metrics().counter("solver.kernel_jit_failures").value
        degraded = solve_dag_batch(shared, values, numer, boundary, kernel="numba")
        assert metrics().counter("solver.kernel_jit_failures").value == before + 1
        fused = solve_dag_batch(shared, values, numer, boundary, kernel="fused")
        assert np.array_equal(fused, degraded)

    def test_jit_failure_degrades_transient(self, monkeypatch):
        import repro.ctmc._numba_kernels as nk

        def _boom():
            raise RuntimeError("synthetic jit failure")

        monkeypatch.setattr(kernels_module, "_NUMBA_AVAILABLE", True)
        monkeypatch.setattr(nk, "ensure_compiled", _boom)
        chain = _random_cyclic_chain(np.random.default_rng(17))
        R = chain.rates
        values = R.data[None, :]
        before = metrics().counter("solver.kernel_jit_failures").value
        degraded = transient_distribution_batch(
            R.indptr, R.indices, values, TIMES, 0, kernel="numba"
        )
        assert metrics().counter("solver.kernel_jit_failures").value == before + 1
        fused = transient_distribution_batch(
            R.indptr, R.indices, values, TIMES, 0, kernel="fused"
        )
        assert np.array_equal(fused, degraded)


# ---------------------------------------------------------------------------
# Strict bit-identity with numba installed (CI tests-numba leg)
# ---------------------------------------------------------------------------

@pytest.mark.skipif(not numba_available(), reason="numba not installed")
class TestNumbaBitIdentity:
    @pytest.mark.parametrize("grid", ["fig2", "fig4"])
    def test_dag_sweep_bit_identical_on_paper_grids(self, grid):
        scenarios = _fig2_scenarios() if grid == "fig2" else _fig4_scenarios()
        structure, values = _lattice_fills(scenarios)
        n = structure.num_states
        numer = np.ones((len(scenarios), n, 1))
        boundary = np.zeros((n, 1))
        boundary[structure.c1_state, 0] = 1.0
        fused = solve_dag_batch(
            structure.dag, values, numer, boundary, kernel="fused"
        )
        jitted = solve_dag_batch(
            structure.dag, values, numer, boundary, kernel="numba"
        )
        assert np.array_equal(fused, jitted)

    def test_dag_sweep_matches_per_point_solve_dag(self):
        shared, values, numer, boundary = _dag_problem(seed=23)
        R_indptr, R_indices = shared.indptr, shared.indices
        x = solve_dag_batch(shared, values, numer, boundary, kernel="numba")
        for p in range(values.shape[0]):
            chain_p = CTMC(
                sp.csr_matrix(
                    (values[p], R_indices.copy(), R_indptr.copy()),
                    shape=(numer.shape[1], numer.shape[1]),
                )
            )
            x_p = solve_dag(
                chain_p, topological_levels(chain_p), numer[p], boundary
            )
            assert np.array_equal(x[p], x_p), f"point {p} diverged"

    def test_transient_matvec_bit_identical_on_paper_grid(self):
        structure, values = _lattice_fills(_fig2_scenarios(tids=(15.0, 240.0)))
        fused = transient_distribution_batch(
            structure.indptr,
            structure.indices,
            values,
            TIMES,
            structure.initial_state,
            kernel="fused",
        )
        jitted = transient_distribution_batch(
            structure.indptr,
            structure.indices,
            values,
            TIMES,
            structure.initial_state,
            kernel="numba",
        )
        assert np.array_equal(fused, jitted)

    def test_evaluate_batch_identical_under_env(self, monkeypatch):
        scenarios = _fig2_scenarios()[:6]
        monkeypatch.setenv("REPRO_KERNEL", "fused")
        fused = evaluate_batch(scenarios, include_variance=True)
        monkeypatch.setenv("REPRO_KERNEL", "numba")
        jitted = evaluate_batch(scenarios, include_variance=True)
        for a, b in zip(fused, jitted):
            assert a.mttsf_s == b.mttsf_s
            assert a.mttsf_std_s == b.mttsf_std_s
            assert a.ctotal_hop_bits_s == b.ctotal_hop_bits_s
            assert dict(a.failure_probabilities) == dict(b.failure_probabilities)


# ---------------------------------------------------------------------------
# expm transient backend: pinned-tolerance equivalence
# ---------------------------------------------------------------------------

class TestExpmBackend:
    def test_matches_uniformization_on_cyclic_chain(self):
        chain = _random_cyclic_chain(np.random.default_rng(7))
        R = chain.rates
        rng = np.random.default_rng(8)
        values = np.stack([R.data * s for s in rng.uniform(0.3, 3.0, size=4)])
        uni = transient_distribution_batch(
            R.indptr, R.indices, values, TIMES, 0, backend="uniformization"
        )
        expm = transient_distribution_batch(
            R.indptr, R.indices, values, TIMES, 0, backend="expm"
        )
        np.testing.assert_allclose(
            expm, uni, rtol=EXPM_EQUIVALENCE_RTOL, atol=EXPM_ATOL
        )

    def test_matches_uniformization_on_paper_grid(self):
        structure, values = _lattice_fills(_fig2_scenarios(tids=(15.0, 240.0)))
        uni = transient_distribution_batch(
            structure.indptr,
            structure.indices,
            values,
            TIMES,
            structure.initial_state,
            backend="uniformization",
        )
        expm = transient_distribution_batch(
            structure.indptr,
            structure.indices,
            values,
            TIMES,
            structure.initial_state,
            backend="expm",
        )
        np.testing.assert_allclose(
            expm, uni, rtol=EXPM_EQUIVALENCE_RTOL, atol=EXPM_ATOL
        )

    def test_unsorted_times_and_time_zero(self):
        chain = CTMC.from_transitions(3, [(0, 1, 1.0), (1, 2, 1.0)])
        R = chain.rates
        values = R.data[None, :]
        times = [2.0, 0.0, 0.5]  # deliberately unsorted, includes t=0
        expm = transient_distribution_batch(
            R.indptr, R.indices, values, times, 0, backend="expm"
        )
        uni = transient_distribution_batch(
            R.indptr, R.indices, values, times, 0, backend="uniformization"
        )
        np.testing.assert_allclose(
            expm, uni, rtol=EXPM_EQUIVALENCE_RTOL, atol=EXPM_ATOL
        )
        np.testing.assert_allclose(expm[0, 1], [1.0, 0.0, 0.0])

    def test_scalar_time_shape(self):
        chain = CTMC.from_transitions(3, [(2, 1, 1.0), (1, 0, 0.5)])
        R = chain.rates
        dist = transient_distribution_batch(
            R.indptr, R.indices, R.data[None, :], 0.7, 2, backend="expm"
        )
        assert dist.shape == (1, 3)
        ref = transient_distribution_batch(
            R.indptr, R.indices, R.data[None, :], 0.7, 2
        )
        np.testing.assert_allclose(
            dist, ref, rtol=EXPM_EQUIVALENCE_RTOL, atol=EXPM_ATOL
        )

    def test_env_selection(self, monkeypatch):
        chain = _random_cyclic_chain(np.random.default_rng(9), n=10)
        R = chain.rates
        values = R.data[None, :]
        monkeypatch.setenv("REPRO_TRANSIENT_BACKEND", "expm")
        via_env = transient_distribution_batch(
            R.indptr, R.indices, values, TIMES, 0
        )
        monkeypatch.delenv("REPRO_TRANSIENT_BACKEND")
        explicit = transient_distribution_batch(
            R.indptr, R.indices, values, TIMES, 0, backend="expm"
        )
        assert np.array_equal(via_env, explicit)

    def test_rows_are_distributions(self):
        chain = _random_cyclic_chain(np.random.default_rng(10), n=12)
        R = chain.rates
        values = R.data[None, :]
        dist = transient_distribution_batch(
            R.indptr, R.indices, values, TIMES, 0, backend="expm"
        )
        assert np.all(dist >= 0.0)
        np.testing.assert_allclose(dist.sum(axis=-1), 1.0, atol=1e-9)

    def test_absorption_cdf_backend_passthrough(self):
        from repro.ctmc import absorption_cdf_batch

        rng = np.random.default_rng(3)
        chain = _random_dag_chain(rng, n=16, density=0.3)
        R = chain.rates
        values = np.stack([R.data * s for s in (1.0, 0.4)])
        initial = chain.num_states - 1
        uni = absorption_cdf_batch(R.indptr, R.indices, values, TIMES, initial)
        expm = absorption_cdf_batch(
            R.indptr, R.indices, values, TIMES, initial, backend="expm"
        )
        np.testing.assert_allclose(
            expm["any"], uni["any"], rtol=EXPM_EQUIVALENCE_RTOL, atol=EXPM_ATOL
        )


# ---------------------------------------------------------------------------
# Manifest echo
# ---------------------------------------------------------------------------

class TestManifestKernelFlags:
    def test_kernel_flags_echo_env(self, monkeypatch):
        from repro.obs.manifest import kernel_flags

        monkeypatch.setenv("REPRO_KERNEL", "numpy")
        monkeypatch.setenv("REPRO_TRANSIENT_BACKEND", "expm")
        flags = kernel_flags()
        assert flags["kernel"] == "numpy"
        assert flags["transient_backend"] == "expm"
        assert flags["env"]["REPRO_KERNEL"] == "numpy"
        assert flags["env"]["REPRO_TRANSIENT_BACKEND"] == "expm"

    def test_numba_request_reflects_availability(self, monkeypatch):
        from repro.obs.manifest import kernel_flags

        monkeypatch.setenv("REPRO_KERNEL", "numba")
        expected = "numba" if numba_available() else "fused"
        assert kernel_flags()["kernel"] == expected


# ---------------------------------------------------------------------------
# Property: the numba request never changes the answer
# ---------------------------------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_numba_request_matches_fused(seed):
    """With or without numba installed, kernel='numba' returns fused bits."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(5, 30))
    chain = _random_dag_chain(rng, n=n, density=0.3)
    R = chain.rates
    if R.nnz == 0:
        return
    shared = batch_dag_structure(R.indptr, R.indices)
    P, k = 3, 2
    values = np.stack([R.data * s for s in rng.uniform(0.5, 2.0, size=P)])
    numer = rng.uniform(0.0, 1.0, size=(P, n, k))
    boundary = np.zeros((n, k))
    boundary[chain.absorbing_states, 0] = 1.0
    fused = solve_dag_batch(shared, values, numer, boundary, kernel="fused")
    jitted = solve_dag_batch(shared, values, numer, boundary, kernel="numba")
    assert np.array_equal(fused, jitted)
