"""Combinatorics vs scipy oracles."""

import math

import pytest
import scipy.stats as stats
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.voting import (
    binomial_pmf,
    binomial_tail,
    hypergeometric_pmf,
    log_binomial,
)


class TestLogBinomial:
    def test_small_values(self):
        assert log_binomial(5, 2) == pytest.approx(math.log(10))
        assert log_binomial(0, 0) == pytest.approx(0.0)

    def test_out_of_support(self):
        assert log_binomial(5, 6) == float("-inf")
        assert log_binomial(5, -1) == float("-inf")

    def test_negative_n_rejected(self):
        with pytest.raises(ParameterError):
            log_binomial(-1, 0)

    def test_large_values_stable(self):
        # C(1000, 500) overflows floats; log form must not.
        assert log_binomial(1000, 500) == pytest.approx(
            math.lgamma(1001) - 2 * math.lgamma(501), rel=1e-12
        )


class TestBinomialPmf:
    @pytest.mark.parametrize("n,p", [(0, 0.5), (1, 0.3), (10, 0.01), (25, 0.99)])
    def test_matches_scipy(self, n, p):
        for k in range(n + 1):
            assert binomial_pmf(k, n, p) == pytest.approx(
                stats.binom.pmf(k, n, p), rel=1e-10, abs=1e-300
            )

    def test_edge_probabilities(self):
        assert binomial_pmf(0, 5, 0.0) == 1.0
        assert binomial_pmf(3, 5, 0.0) == 0.0
        assert binomial_pmf(5, 5, 1.0) == 1.0
        assert binomial_pmf(4, 5, 1.0) == 0.0

    def test_out_of_support(self):
        assert binomial_pmf(-1, 5, 0.5) == 0.0
        assert binomial_pmf(6, 5, 0.5) == 0.0

    def test_invalid_args(self):
        with pytest.raises(ParameterError):
            binomial_pmf(0, -1, 0.5)
        with pytest.raises(ParameterError):
            binomial_pmf(0, 1, 1.5)


class TestBinomialTail:
    @pytest.mark.parametrize("n,p", [(5, 0.2), (12, 0.5), (9, 0.01)])
    def test_matches_scipy_sf(self, n, p):
        for k in range(n + 2):
            assert binomial_tail(k, n, p) == pytest.approx(
                stats.binom.sf(k - 1, n, p), rel=1e-10, abs=1e-300
            )

    def test_boundaries(self):
        assert binomial_tail(0, 5, 0.3) == 1.0
        assert binomial_tail(-2, 5, 0.3) == 1.0
        assert binomial_tail(6, 5, 0.3) == 0.0


class TestHypergeometricPmf:
    def test_matches_scipy(self):
        good, bad, draws = 7, 4, 5
        rv = stats.hypergeom(good + bad, bad, draws)  # M, n (successes), N
        for k in range(draws + 1):
            assert hypergeometric_pmf(k, good, bad, draws) == pytest.approx(
                rv.pmf(k), rel=1e-10, abs=1e-300
            )

    def test_support_limits(self):
        # Cannot draw more bad members than exist, nor more good than exist.
        assert hypergeometric_pmf(3, 5, 2, 4) == 0.0  # only 2 bad available
        assert hypergeometric_pmf(0, 1, 5, 3) == 0.0  # needs 3 good, only 1

    def test_degenerate_pool(self):
        assert hypergeometric_pmf(0, 0, 0, 0) == 1.0
        assert hypergeometric_pmf(2, 0, 5, 2) == 1.0  # all-bad pool

    def test_invalid_args(self):
        with pytest.raises(ParameterError):
            hypergeometric_pmf(0, -1, 2, 1)
        with pytest.raises(ParameterError):
            hypergeometric_pmf(0, 2, 2, 5)  # draws > pool


@settings(max_examples=60, deadline=None)
@given(
    good=st.integers(0, 40),
    bad=st.integers(0, 40),
    data=st.data(),
)
def test_property_hypergeometric_normalised(good, bad, data):
    draws = data.draw(st.integers(0, good + bad))
    total = math.fsum(
        hypergeometric_pmf(k, good, bad, draws) for k in range(draws + 1)
    )
    assert total == pytest.approx(1.0, abs=1e-12)


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(0, 30),
    p=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
def test_property_binomial_normalised(n, p):
    total = math.fsum(binomial_pmf(k, n, p) for k in range(n + 1))
    assert total == pytest.approx(1.0, abs=1e-12)
