"""End-to-end integration: the documented user journeys work verbatim."""

import pytest

from repro import (
    GCSParameters,
    GCSResult,
    ReproError,
    Scenario,
    evaluate,
    optimize_tids,
    tradeoff_curve,
)


class TestReadmeQuickstart:
    """The README's code path, at test scale."""

    def test_quickstart_flow(self):
        params = GCSParameters.paper_defaults(num_nodes=16)
        result = evaluate(params, include_breakdown=True, include_variance=True)
        assert isinstance(result, GCSResult)
        assert result.mttsf_s > 0
        assert result.cost_breakdown["total"] == pytest.approx(
            result.ctotal_hop_bits_s
        )
        assert result.mttsf_std_s > 0

        scenario = Scenario(params)
        best = scenario.optimize(
            [15, 30, 60, 120, 240, 480],
            objective="max-mttsf",
            cost_ceiling_hop_bits_s=5e5,
        )
        assert best.feasible
        assert "optimal" in best.summary()

    def test_public_api_surface(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_exceptions_catchable_via_base(self):
        with pytest.raises(ReproError):
            evaluate(GCSParameters.paper_defaults(), method="bogus")


class TestDesignWorkflow:
    """The paper's Section 5 design procedure, end to end."""

    def test_security_vs_performance_tradeoff(self):
        params = GCSParameters.small_test()
        curve = tradeoff_curve(params, [15.0, 60.0, 240.0, 960.0])
        mttsf = [p.mttsf_s for p in curve]
        cost = [p.ctotal_hop_bits_s for p in curve]
        # The tradeoff is real: neither metric is optimised at the same
        # grid point in general, and the curve spans a meaningful range
        # (flatter at N=12 than at paper scale, hence the mild bounds).
        assert max(mttsf) / min(mttsf) > 1.25
        assert max(cost) / min(cost) > 1.1

        unconstrained = optimize_tids(params, [15.0, 60.0, 240.0, 960.0])
        ceiling = min(cost) * 1.05
        constrained = optimize_tids(
            params,
            [15.0, 60.0, 240.0, 960.0],
            cost_ceiling_hop_bits_s=ceiling,
        )
        assert constrained.feasible
        assert constrained.best.ctotal_hop_bits_s <= ceiling
        assert constrained.best.mttsf_s <= unconstrained.best.mttsf_s

    def test_derived_constraint_chain(self):
        """audit detector -> (p1,p2) -> delay budget -> ceiling -> plan."""
        from repro.costs import DelayModel, MessageSizes
        from repro.detection.audit import AnomalyDetector

        det = AnomalyDetector.calibrated(0.01)
        ids = det.to_host_ids()
        params = GCSParameters.small_test(
            host_false_negative=ids.false_negative,
            host_false_positive=ids.false_positive,
        )
        scenario = Scenario(params)
        delay = DelayModel(network=scenario.network, sizes=MessageSizes())
        ceiling = delay.max_traffic_for_delay(0.1)
        plan = scenario.optimize([30.0, 120.0, 480.0], cost_ceiling_hop_bits_s=ceiling)
        assert plan.feasible
        chosen = scenario.evaluate(
            detection_interval_s=plan.optimal_tids_s, include_variance=True
        )
        assert 0.0 <= chosen.survival_probability_lower_bound(3600.0) <= 1.0


class TestCliPaperCommand:
    def test_paper_quick(self, capsys):
        from repro.cli import main

        assert main(["paper"]) == 0
        out = capsys.readouterr().out
        for fig in ("fig2", "fig3", "fig4", "fig5"):
            assert fig in out
