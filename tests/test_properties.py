"""Property-based solver invariants (hypothesis).

Where the differential tests pin *equivalence* between solver paths,
these pin the *invariants* every path must satisfy on randomly
generated chains and parameters:

* transient distributions are probability vectors at every time point
  (non-negative, sum to one, finite) — per-point and batched;
* absorption CDFs are monotone non-decreasing in ``t`` and confined to
  ``[0, 1]``;
* :func:`repro.ctmc.acyclic.solve_dag_batch` is permutation-invariant
  over point order (bit-identical, not approximately);
* voting-combinatorics probabilities always land in ``[0, 1]``.

The CI coverage job runs these under the fixed-seed ``ci`` hypothesis
profile (see ``tests/conftest.py``), so a red run reproduces locally
with ``HYPOTHESIS_PROFILE=ci``.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctmc import (
    CTMC,
    absorption_cdf,
    absorption_cdf_batch,
    batch_dag_structure,
    solve_dag_batch,
    transient_distribution,
    transient_distribution_batch,
)
from repro.voting.combinatorics import (
    binomial_pmf,
    binomial_tail,
    hypergeometric_pmf,
)
from repro.voting.majority import VotingErrorModel

TOL = 1e-9


def _random_chain(seed: int, *, cyclic: bool, n_min=2, n_max=12) -> CTMC:
    """Deterministic random chain from one integer seed."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(n_min, n_max + 1))
    rows, cols, vals = [], [], []
    for i in range(n):
        for j in range(n if cyclic else i):
            if i != j and rng.random() < 0.35:
                rows.append(i)
                cols.append(j)
                vals.append(float(rng.uniform(1e-3, 5.0)))
    return CTMC(sp.csr_matrix((vals, (rows, cols)), shape=(n, n)))


def _stacked_values(chain: CTMC, seed: int, num_points: int) -> np.ndarray:
    """Per-point rate fills over the chain's pattern, some rates zeroed."""
    rng = np.random.default_rng(seed + 1)
    scales = rng.uniform(0.2, 4.0, size=(num_points, 1))
    values = chain.rates.data[None, :] * scales
    zero_mask = rng.random(values.shape) < 0.15
    values[zero_mask] = 0.0
    return values


times_strategy = st.lists(
    st.floats(min_value=0.0, max_value=8.0, allow_nan=False),
    min_size=1,
    max_size=4,
    unique=True,
).map(sorted)


class TestTransientIsProbabilityVector:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), times=times_strategy)
    def test_per_point(self, seed, times):
        chain = _random_chain(seed, cyclic=True)
        dist = np.atleast_2d(transient_distribution(chain, times, 0))
        assert np.all(np.isfinite(dist))
        assert np.all(dist >= 0.0)
        np.testing.assert_allclose(dist.sum(axis=1), 1.0, atol=TOL)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        num_points=st.integers(1, 4),
        times=times_strategy,
    )
    def test_batched(self, seed, num_points, times):
        chain = _random_chain(seed, cyclic=True)
        R = chain.rates
        values = _stacked_values(chain, seed, num_points)
        dist = transient_distribution_batch(R.indptr, R.indices, values, times, 0)
        assert dist.shape == (num_points, len(times), chain.num_states)
        assert np.all(np.isfinite(dist))
        assert np.all(dist >= 0.0)
        np.testing.assert_allclose(dist.sum(axis=2), 1.0, atol=TOL)


class TestAbsorptionCdfMonotone:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), times=times_strategy)
    def test_per_point(self, seed, times):
        chain = _random_chain(seed, cyclic=False, n_min=3)
        cdf = absorption_cdf(chain, times, chain.num_states - 1)
        for curve in cdf.values():
            assert np.all(curve >= -TOL)
            assert np.all(curve <= 1.0 + TOL)
        assert np.all(np.diff(cdf["any"]) >= -TOL)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        num_points=st.integers(1, 4),
        times=times_strategy,
    )
    def test_batched(self, seed, num_points, times):
        chain = _random_chain(seed, cyclic=False, n_min=3)
        R = chain.rates
        values = _stacked_values(chain, seed, num_points)
        cdf = absorption_cdf_batch(
            R.indptr, R.indices, values, times, chain.num_states - 1
        )
        assert np.all(cdf["any"] >= -TOL)
        assert np.all(cdf["any"] <= 1.0 + TOL)
        assert np.all(np.diff(cdf["any"], axis=1) >= -TOL)


class TestSolveDagBatchPermutationInvariance:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        num_points=st.integers(2, 6),
        num_cols=st.integers(1, 3),
    )
    def test_point_order_is_irrelevant(self, seed, num_points, num_cols):
        chain = _random_chain(seed, cyclic=False, n_min=3)
        R = chain.rates
        shared = batch_dag_structure(R.indptr, R.indices)
        n = chain.num_states
        values = _stacked_values(chain, seed, num_points)
        rng = np.random.default_rng(seed + 2)
        numer = rng.uniform(0.0, 1.0, size=(num_points, n, num_cols))
        boundary = np.zeros((n, num_cols))
        boundary[chain.absorbing_states, 0] = 1.0

        x = solve_dag_batch(shared, values, numer, boundary)
        perm = rng.permutation(num_points)
        x_perm = solve_dag_batch(shared, values[perm], numer[perm], boundary)
        # Bit-identical, not merely close: per-point arithmetic never
        # mixes points, which is exactly what makes the vector+procs
        # chunk fan-out byte-identical to sequential solving.
        assert np.array_equal(x_perm, x[perm])


class TestVotingProbabilitiesInUnitInterval:
    @settings(max_examples=50, deadline=None)
    @given(
        k=st.integers(-2, 20),
        n=st.integers(0, 18),
        p=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    def test_binomial(self, k, n, p):
        assert 0.0 <= binomial_pmf(k, n, p) <= 1.0
        assert 0.0 <= binomial_tail(k, n, p) <= 1.0 + TOL

    @settings(max_examples=50, deadline=None)
    @given(
        k=st.integers(0, 12),
        good=st.integers(0, 12),
        bad=st.integers(0, 12),
        draws=st.integers(0, 12),
    )
    def test_hypergeometric(self, k, good, bad, draws):
        if draws > good + bad:
            return  # outside the support contract
        assert 0.0 <= hypergeometric_pmf(k, good, bad, draws) <= 1.0 + TOL

    @settings(max_examples=30, deadline=None)
    @given(
        m=st.sampled_from((1, 3, 5, 7, 9)),
        p1=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        p2=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        max_nodes=st.integers(1, 16),
    )
    def test_error_model_table(self, m, p1, p2, max_nodes):
        model = VotingErrorModel(
            num_voters=m, host_false_negative=p1, host_false_positive=p2
        )
        pfp, pfn = model.table(max_nodes)
        for table in (pfp, pfn):
            assert np.all(np.isfinite(table))
            assert np.all(table >= -TOL)
            assert np.all(table <= 1.0 + TOL)


if __name__ == "__main__":  # pragma: no cover
    pytest.main([__file__, "-q"])
