"""Cross-worker lattice-structure sharing: shm lifecycle + .npz fallback.

The contract under test (ISSUE 5 tentpole, second half):

* the ``.npz`` round-trip reproduces a freshly built
  :class:`~repro.core.fastpath.LatticeStructure` **array for array**
  (same names, dtypes, values);
* the shared-memory attach/detach lifecycle leaks nothing: workers
  attach read-only views, the parent unlinks after the pool, and no
  segment survives a ``vector:2`` / ``--jobs 2`` run;
* every failure path (corrupt cache file, stale schema, missing
  segment, sharing disabled) degrades to a local rebuild, never an
  error;
* the engine plumbing (``make_runner`` / ``--structure-cache``) maps
  the CLI grammar onto :class:`~repro.engine.StructureShareConfig`.
"""

import glob
import os
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import numpy as np
import pytest

from repro.core import structshare as ss
from repro.core.fastpath import (
    clear_structure_cache,
    lattice_structure,
    peek_structure_cache,
    seed_structure_cache,
)
from repro.engine import (
    BatchRunner,
    EvalRequest,
    ProcessPoolBackend,
    StructureShareConfig,
    VectorBackend,
    make_backend,
)
from repro.engine.batch import make_runner
from repro.engine.executor import _shareable_sizes
from repro.params import GCSParameters

N_TEST = 14


def _fresh_structure(n):
    """A structure built from scratch, bypassing the process cache."""
    clear_structure_cache()
    structure = lattice_structure(n)
    clear_structure_cache()
    return structure


def _assert_structures_equal(a, b):
    arrays_a = ss.structure_to_arrays(a)
    arrays_b = ss.structure_to_arrays(b)
    assert arrays_a.keys() == arrays_b.keys()
    for name in arrays_a:
        assert arrays_a[name].dtype == arrays_b[name].dtype, name
        assert np.array_equal(arrays_a[name], arrays_b[name]), name
    # level_states is reconstructed from the fused plan — check it too.
    assert len(a.dag.structure.level_states) == len(b.dag.structure.level_states)
    for la, lb in zip(a.dag.structure.level_states, b.dag.structure.level_states):
        assert np.array_equal(la, lb)


# ---------------------------------------------------------------------------
# .npz fallback round-trip
# ---------------------------------------------------------------------------

class TestNpzRoundTrip:
    def test_round_trip_equals_fresh_build(self, tmp_path):
        structure = _fresh_structure(N_TEST)
        path = ss.save_structure(
            ss.structure_cache_path(N_TEST, tmp_path), structure
        )
        loaded = ss.load_structure(path)
        _assert_structures_equal(structure, loaded)
        # Loaded arrays are frozen like locally built ones.
        assert not loaded.t.flags.writeable
        assert not loaded.dag.lvl_ell_slots.flags.writeable

    def test_cached_structure_builds_then_loads(self, tmp_path):
        clear_structure_cache()
        built = ss.cached_structure(N_TEST, tmp_path)
        assert ss.structure_cache_path(N_TEST, tmp_path).exists()
        clear_structure_cache()
        loaded = ss.cached_structure(N_TEST, tmp_path)
        _assert_structures_equal(built, loaded)
        # Warm process cache short-circuits the disk read.
        assert ss.cached_structure(N_TEST, tmp_path) is loaded
        clear_structure_cache()

    def test_corrupt_cache_file_is_a_miss(self, tmp_path):
        path = ss.structure_cache_path(N_TEST, tmp_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not an npz payload")
        clear_structure_cache()
        structure = ss.cached_structure(N_TEST, tmp_path)
        assert structure.num_nodes == N_TEST
        # The miss was repaired: the file now loads.
        clear_structure_cache()
        _assert_structures_equal(structure, ss.load_structure(path))
        clear_structure_cache()

    def test_stale_schema_rejected(self, tmp_path):
        structure = _fresh_structure(N_TEST)
        arrays = dict(ss.structure_to_arrays(structure))
        meta = arrays["meta"].copy()
        meta[0] = ss.STRUCT_SCHEMA_VERSION + 1
        arrays["meta"] = meta
        with pytest.raises(Exception, match="schema"):
            ss.structure_from_arrays(arrays)

    def test_cache_path_is_schema_versioned(self, tmp_path):
        path = ss.structure_cache_path(40, tmp_path)
        assert f".v{ss.STRUCT_SCHEMA_VERSION}.npz" in path.name
        assert "N40" in path.name


# ---------------------------------------------------------------------------
# Shared-memory export / attach lifecycle
# ---------------------------------------------------------------------------

def _dev_shm_segments() -> set:
    return set(glob.glob("/dev/shm/psm_*"))


def _worker_probe(n: int) -> bool:
    """True iff the worker got the structure without building it."""
    return peek_structure_cache(n) is not None


class TestShmLifecycle:
    def test_export_attach_close(self):
        reference = _fresh_structure(N_TEST)
        handle = ss.export_structures([N_TEST])
        assert handle is not None
        spec = handle.spec
        assert spec.num_nodes == (N_TEST,)
        try:
            if spec.shm_name is None:
                pytest.skip("no shared memory on this platform")
            clear_structure_cache()
            assert ss.attach_structures(spec) == 1
            attached = peek_structure_cache(N_TEST)
            assert attached is not None
            assert not attached.t.flags.writeable
            _assert_structures_equal(reference, attached)
        finally:
            handle.close()
        # close() unlinked the segment: nobody can attach any more.
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=spec.shm_name, create=False)
        handle.close()  # idempotent
        clear_structure_cache()

    def test_pool_workers_attach_instead_of_building(self):
        handle = ss.export_structures([N_TEST])
        assert handle is not None
        try:
            with ProcessPoolExecutor(
                max_workers=2,
                initializer=ss.pool_initializer,
                initargs=(handle.spec,),
            ) as pool:
                probes = list(pool.map(_worker_probe, [N_TEST] * 4))
            assert all(probes), probes
        finally:
            handle.close()

    @pytest.mark.skipif(
        not os.path.isdir("/dev/shm"), reason="no /dev/shm on this platform"
    )
    def test_no_leaked_segments_after_pool_runs(self):
        before = _dev_shm_segments()
        requests = [
            EvalRequest(
                params=GCSParameters.small_test(detection_interval_s=t)
            )
            for t in (15.0, 60.0, 240.0, 960.0)
        ]
        for jobs in ("vector:2", 2):
            batch = BatchRunner(backend=make_backend(jobs)).run(requests)
            batch.report.raise_on_error()
        assert _dev_shm_segments() == before

    def test_export_disabled_by_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_STRUCTURE_SHARE", "0")
        assert ss.export_structures([N_TEST]) is None

    def test_export_nothing_to_share(self):
        assert ss.export_structures([]) is None

    def test_attach_missing_segment_falls_back(self, tmp_path):
        # A spec whose segment is gone and whose npz dir has the file:
        # the worker still gets the structure (disk layer).
        structure = _fresh_structure(N_TEST)
        ss.save_structure(
            ss.structure_cache_path(N_TEST, tmp_path), structure
        )
        spec = ss.StructureShareSpec(
            num_nodes=(N_TEST,),
            shm_name="psm_repro_gone_segment",
            manifest=((),),
            npz_dir=str(tmp_path),
        )
        clear_structure_cache()
        assert ss.attach_structures(spec) == 1
        _assert_structures_equal(structure, peek_structure_cache(N_TEST))
        clear_structure_cache()

    def test_attach_nothing_available_is_harmless(self):
        spec = ss.StructureShareSpec(
            num_nodes=(N_TEST,), shm_name=None, manifest=(), npz_dir=None
        )
        clear_structure_cache()
        assert ss.attach_structures(spec) == 0
        assert peek_structure_cache(N_TEST) is None


# ---------------------------------------------------------------------------
# Results through shared structures stay identical
# ---------------------------------------------------------------------------

class TestSharedStructureResults:
    GRID = [
        EvalRequest(
            params=GCSParameters.small_test(
                num_voters=m, detection_interval_s=t
            )
        )
        for m in (3, 5)
        for t in (15.0, 60.0)
    ]

    def test_shared_vs_disabled_bit_identical(self, monkeypatch):
        serial = BatchRunner().run(self.GRID)
        serial.report.raise_on_error()
        shared = BatchRunner(backend=make_backend("vector:2")).run(self.GRID)
        shared.report.raise_on_error()
        monkeypatch.setenv("REPRO_STRUCTURE_SHARE", "0")
        rebuilt = BatchRunner(backend=make_backend("vector:2")).run(self.GRID)
        rebuilt.report.raise_on_error()
        for a, b, c in zip(serial.results, shared.results, rebuilt.results):
            assert a.mttsf_s == b.mttsf_s == c.mttsf_s
            assert (
                a.ctotal_hop_bits_s == b.ctotal_hop_bits_s == c.ctotal_hop_bits_s
            )

    def test_npz_layer_through_process_pool(self, tmp_path):
        config = StructureShareConfig(use_shm=False, npz_dir=str(tmp_path))
        backend = ProcessPoolBackend(max_workers=2, structure_share=config)
        batch = BatchRunner(backend=backend).run(self.GRID)
        batch.report.raise_on_error()
        assert ss.structure_cache_path(
            self.GRID[0].params.num_nodes, tmp_path
        ).exists()
        serial = BatchRunner().run(self.GRID)
        for a, b in zip(serial.results, batch.results):
            assert a.mttsf_s == b.mttsf_s


# ---------------------------------------------------------------------------
# Engine / CLI plumbing
# ---------------------------------------------------------------------------

class TestPlumbing:
    def test_shareable_sizes(self):
        fast = EvalRequest(params=GCSParameters.small_test())
        spn = EvalRequest(params=GCSParameters.small_test(), method="spn")
        assert _shareable_sizes([fast]) == (fast.params.num_nodes,)
        assert _shareable_sizes([spn]) == ()
        assert _shareable_sizes([fast, "not-a-request"]) == ()
        assert _shareable_sizes([]) == ()

    def test_make_runner_structure_cache_grammar(self, tmp_path):
        off = make_runner(2, structure_cache="off")
        assert not off.backend.structure_share.enabled

        explicit = make_runner(2, structure_cache=tmp_path / "structs")
        assert explicit.backend.structure_share.npz_dir == str(
            tmp_path / "structs"
        )

        defaulted = make_runner(2, cache_dir=tmp_path / "cache")
        assert defaulted.backend.structure_share.npz_dir == str(
            tmp_path / "cache" / "structures"
        )

        bare = make_runner(2)
        assert bare.backend.structure_share.use_shm
        assert bare.backend.structure_share.npz_dir is None

    def test_serial_backend_uses_disk_layer(self, tmp_path):
        # --structure-cache must not be silently dropped for in-process
        # backends: a serial run persists (and later loads) the skeleton.
        from repro.engine import SerialBackend

        config = StructureShareConfig(use_shm=False, npz_dir=str(tmp_path))
        backend = SerialBackend(structure_share=config)
        batch = BatchRunner(backend=backend).run(
            [EvalRequest(params=GCSParameters.small_test())]
        )
        batch.report.raise_on_error()
        assert ss.structure_cache_path(
            GCSParameters.small_test().num_nodes, tmp_path
        ).exists()

    def test_vector_backend_config_default(self):
        assert VectorBackend().structure_share.enabled
        disabled = VectorBackend(
            structure_share=StructureShareConfig.disabled()
        )
        assert not disabled.structure_share.enabled

    def test_cli_structure_cache_flag(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(
            [
                "sweep",
                "--axis",
                "detection_interval_s=15,60",
                "--n",
                "12",
                "--jobs",
                "vector:2",
                "--structure-cache",
                str(tmp_path / "structs"),
            ]
        )
        assert rc == 0
        assert (tmp_path / "structs").is_dir()
        files = list(Path(tmp_path / "structs").glob("*.npz"))
        assert files, "structure cache dir should hold the N=12 skeleton"

    def test_cli_structure_cache_off(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "sweep",
                "--axis",
                "detection_interval_s=15,60",
                "--n",
                "12",
                "--structure-cache",
                "off",
            ]
        )
        assert rc == 0


# ---------------------------------------------------------------------------
# seed/peek cache surface
# ---------------------------------------------------------------------------

class TestSeedPeek:
    def test_seed_keeps_incumbent(self):
        clear_structure_cache()
        incumbent = lattice_structure(N_TEST)
        other = _fresh_structure(N_TEST)
        seed_structure_cache(incumbent)
        assert other is not incumbent
        seed_structure_cache(other)
        assert peek_structure_cache(N_TEST) is incumbent
        clear_structure_cache()

    def test_peek_without_build(self):
        clear_structure_cache()
        assert peek_structure_cache(N_TEST) is None
