"""Packet-delay model (timeliness requirement)."""

import pytest

from repro.costs import MessageSizes
from repro.costs.delay import DelayModel
from repro.errors import ParameterError
from repro.manet import NetworkModel
from repro.params import NetworkParameters


@pytest.fixture
def model() -> DelayModel:
    return DelayModel(
        network=NetworkModel.analytic(NetworkParameters()),
        sizes=MessageSizes(),
    )


class TestDelayModel:
    def test_unloaded_delay(self, model):
        base = model.mean_packet_delay_s(0.0)
        assert base == pytest.approx(
            model.network.avg_hops * 4096 / 1e6
        )

    def test_delay_grows_with_load(self, model):
        d1 = model.mean_packet_delay_s(1e5)
        d2 = model.mean_packet_delay_s(5e5)
        d3 = model.mean_packet_delay_s(9e5)
        assert d1 < d2 < d3

    def test_saturation_is_infinite(self, model):
        assert model.mean_packet_delay_s(1e6) == float("inf")
        assert model.mean_packet_delay_s(2e6) == float("inf")

    def test_utilization(self, model):
        assert model.utilization(5e5) == pytest.approx(0.5)
        with pytest.raises(ParameterError):
            model.utilization(-1.0)

    def test_inverse_round_trip(self, model):
        budget = 0.05  # 50 ms
        ceiling = model.max_traffic_for_delay(budget)
        assert model.mean_packet_delay_s(ceiling) == pytest.approx(budget, rel=1e-9)
        assert model.meets_delay_requirement(ceiling * 0.99, budget)
        assert not model.meets_delay_requirement(ceiling * 1.01, budget)

    def test_unachievable_budget_rejected(self, model):
        base = model.mean_packet_delay_s(0.0)
        with pytest.raises(ParameterError):
            model.max_traffic_for_delay(base * 0.5)
        with pytest.raises(ParameterError):
            model.max_traffic_for_delay(0.0)

    def test_ceiling_feeds_optimizer(self):
        """End-to-end: delay budget -> cost ceiling -> TIDS choice."""
        from repro.core import optimize_tids
        from repro.params import GCSParameters

        params = GCSParameters.small_test()
        net = NetworkModel.analytic(params.network)
        delay = DelayModel(network=net, sizes=MessageSizes())
        ceiling = delay.max_traffic_for_delay(0.1)
        out = optimize_tids(
            params,
            [30.0, 120.0, 480.0],
            cost_ceiling_hop_bits_s=ceiling,
        )
        assert out.feasible  # small group is far from saturating 1 Mbps
