"""Evaluation pipeline: solver-path agreement, metrics, breakdowns."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Scenario, build_lattice_chain, evaluate
from repro.core.metrics import resolve_network
from repro.errors import ParameterError
from repro.manet import NetworkModel
from repro.params import GCSParameters, GroupDynamicsParameters


@pytest.fixture(scope="module")
def params() -> GCSParameters:
    return GCSParameters.small_test()


class TestSolverPathAgreement:
    """The vectorised lattice and the generic SPN must be the same model."""

    def test_default_point(self, params):
        fast = evaluate(params, method="fast")
        spn = evaluate(params, method="spn")
        assert fast.mttsf_s == pytest.approx(spn.mttsf_s, rel=1e-9)
        assert fast.ctotal_hop_bits_s == pytest.approx(spn.ctotal_hop_bits_s, rel=1e-9)
        for key in fast.failure_probabilities:
            assert fast.failure_probabilities[key] == pytest.approx(
                spn.failure_probabilities[key], abs=1e-9
            )

    @pytest.mark.parametrize("attacker", ["logarithmic", "linear", "polynomial"])
    @pytest.mark.parametrize("detection", ["logarithmic", "linear", "polynomial"])
    def test_all_function_combinations(self, params, attacker, detection):
        p = params.replacing(attacker_function=attacker, detection_function=detection)
        fast = evaluate(p, method="fast")
        spn = evaluate(p, method="spn")
        assert fast.mttsf_s == pytest.approx(spn.mttsf_s, rel=1e-9)
        assert fast.ctotal_hop_bits_s == pytest.approx(spn.ctotal_hop_bits_s, rel=1e-9)

    @pytest.mark.parametrize("m", [1, 3, 7])
    def test_voter_counts(self, params, m):
        p = params.replacing(num_voters=m)
        fast = evaluate(p, method="fast")
        spn = evaluate(p, method="spn")
        assert fast.mttsf_s == pytest.approx(spn.mttsf_s, rel=1e-9)

    @pytest.mark.parametrize("tids", [5.0, 120.0, 1200.0])
    def test_detection_intervals(self, params, tids):
        p = params.replacing(detection_interval_s=tids)
        fast = evaluate(p, method="fast")
        spn = evaluate(p, method="spn")
        assert fast.mttsf_s == pytest.approx(spn.mttsf_s, rel=1e-9)

    def test_coupled_agrees_in_single_group_limit(self, params):
        p = params.replacing(
            groups=GroupDynamicsParameters(
                partition_rate_hz=1e-15, merge_rate_hz=1.0, max_groups=1
            )
        )
        coupled = evaluate(p, method="spn-coupled")
        fast = evaluate(p, method="fast")
        assert coupled.mttsf_s == pytest.approx(fast.mttsf_s, rel=1e-9)

    def test_coupled_partitions_reduce_mttsf(self, params):
        # Frequent partitioning halves voting pools; the exactly-coupled
        # model must show the extra vulnerability (DESIGN.md §4.4).
        coupled = evaluate(params, method="spn-coupled")
        fast = evaluate(params, method="fast")
        assert coupled.mttsf_s < fast.mttsf_s


from hypothesis import HealthCheck


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    n=st.integers(6, 14),
    m=st.sampled_from([1, 3, 5]),
    tids=st.floats(min_value=5.0, max_value=2000.0),
    p_err=st.floats(min_value=0.0, max_value=0.2),
    attacker=st.sampled_from(["logarithmic", "linear", "polynomial"]),
    detection=st.sampled_from(["logarithmic", "linear", "polynomial"]),
)
def test_property_fastpath_equals_spn(n, m, tids, p_err, attacker, detection):
    """Property: the vectorised lattice and the generic SPN agree for
    arbitrary parameter combinations, not just the curated grid."""
    p = GCSParameters.small_test(
        num_nodes=n,
        num_voters=m,
        detection_interval_s=tids,
        host_false_negative=p_err,
        host_false_positive=p_err,
        attacker_function=attacker,
        detection_function=detection,
    )
    fast = evaluate(p, method="fast")
    spn = evaluate(p, method="spn")
    assert fast.mttsf_s == pytest.approx(spn.mttsf_s, rel=1e-8)
    assert fast.ctotal_hop_bits_s == pytest.approx(spn.ctotal_hop_bits_s, rel=1e-8)


class TestLatticeChain:
    def test_metadata(self, params):
        net = NetworkModel.analytic(params.network)
        lattice = build_lattice_chain(params, net)
        n = params.num_nodes
        assert lattice.num_states == (n + 1) * (n + 2) * (n + 3) // 6 + 1
        assert lattice.state_of(n, 0, 0) == lattice.initial_state
        assert lattice.c1_state == lattice.num_states - 1
        with pytest.raises(ParameterError):
            lattice.state_of(n, 1, 0)  # outside the simplex

    def test_absorbing_classes_disjoint(self, params):
        net = NetworkModel.analytic(params.network)
        lattice = build_lattice_chain(params, net)
        classes = lattice.absorbing_classes()
        all_states = sum(classes.values(), [])
        assert len(all_states) == len(set(all_states))

    def test_chain_is_dag(self, params):
        from repro.ctmc import topological_levels

        net = NetworkModel.analytic(params.network)
        lattice = build_lattice_chain(params, net)
        assert topological_levels(lattice.chain) is not None


class TestEvaluateOutputs:
    def test_failure_probabilities_sum_to_one(self, params):
        r = evaluate(params)
        assert sum(r.failure_probabilities.values()) == pytest.approx(1.0, abs=1e-9)

    def test_breakdown_sums_to_total(self, params):
        r = evaluate(params, include_breakdown=True)
        parts = {k: v for k, v in r.cost_breakdown.items() if k != "total"}
        assert sum(parts.values()) == pytest.approx(r.ctotal_hop_bits_s, rel=1e-9)
        assert r.cost_breakdown["total"] == pytest.approx(r.ctotal_hop_bits_s)

    def test_breakdown_unsupported_on_spn_path(self, params):
        with pytest.raises(ParameterError):
            evaluate(params, method="spn", include_breakdown=True)

    def test_result_helpers(self, params):
        r = evaluate(params)
        assert r.mttsf_hours == pytest.approx(r.mttsf_s / 3600)
        assert r.mttsf_days == pytest.approx(r.mttsf_s / 86400)
        assert r.dominant_failure_mode in r.failure_probabilities
        assert r.meets_mission_time(1.0)
        assert not r.meets_mission_time(1e12)
        assert "MTTSF" in r.summary()
        d = r.to_dict()
        assert d["mttsf_s"] == r.mttsf_s

    def test_unknown_method(self, params):
        with pytest.raises(ParameterError):
            evaluate(params, method="warp")

    def test_channel_utilization_consistent(self, params):
        r = evaluate(params)
        assert r.channel_utilization == pytest.approx(
            r.ctotal_hop_bits_s / params.network.bandwidth_bps
        )


class TestResolveNetwork:
    def test_explicit_network_wins(self, params):
        net = NetworkModel.analytic(params.network)
        assert resolve_network(params, net) is net

    def test_explicit_rates_graft(self, params):
        net = resolve_network(params)
        assert net.partition_rate_hz == params.groups.partition_rate_hz
        assert net.merge_rate_hz == params.groups.merge_rate_hz

    def test_analytic_fallback(self):
        p = GCSParameters.paper_defaults()
        net = resolve_network(p)
        assert not net.measured

    def test_mobility_path(self):
        p = GCSParameters.paper_defaults(
            num_nodes=12, radius_m=250.0
        )
        net = resolve_network(p, use_mobility=True, mobility_duration_s=30.0, seed=1)
        assert net.measured


class TestScenario:
    def test_overrides_do_not_mutate(self, params):
        sc = Scenario(params)
        r1 = sc.evaluate()
        r2 = sc.evaluate(detection_interval_s=300.0)
        assert sc.params.tids_s == params.tids_s
        assert r1.params.tids_s != r2.params.tids_s

    def test_with_params_shares_network(self, params):
        sc = Scenario(params)
        sib = sc.with_params(num_voters=7)
        assert sib.network is sc.network
        assert sib.params.num_voters == 7

    def test_sweep_returns_points_in_grid_order(self, params):
        sc = Scenario(params)
        pts = sc.sweep_tids([30.0, 60.0, 120.0])
        assert [p.tids_s for p in pts] == [30.0, 60.0, 120.0]
        assert all(p.mttsf_s > 0 for p in pts)

    def test_describe(self, params):
        assert "Scenario(" in Scenario(params).describe()


class TestStructuralBehaviour:
    """Directional sanity: knobs move the metrics the right way."""

    def test_slower_attacker_lives_longer(self, params):
        fast_attack = evaluate(params.replacing(base_compromise_rate_hz=1e-4))
        slow_attack = evaluate(params.replacing(base_compromise_rate_hz=1e-6))
        assert slow_attack.mttsf_s > fast_attack.mttsf_s

    def test_better_host_ids_lives_longer(self, params):
        good = evaluate(params.replacing(host_false_negative=0.001, host_false_positive=0.001))
        bad = evaluate(params.replacing(host_false_negative=0.05, host_false_positive=0.05))
        assert good.mttsf_s > bad.mttsf_s

    def test_leak_channel_dominates_with_slow_detection(self, params):
        r = evaluate(params.replacing(detection_interval_s=4000.0))
        assert r.failure_probabilities["c1_data_leak"] > 0.3

    def test_bigger_group_costs_more(self, params):
        small = evaluate(params)
        big = evaluate(params.replacing(num_nodes=24))
        assert big.ctotal_hop_bits_s > small.ctotal_hop_bits_s
