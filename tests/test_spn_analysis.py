"""Reachability, CTMC compilation, end-to-end SPN analysis, DOT export."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError, StateSpaceError
from repro.spn import (
    StochasticPetriNet,
    analyze_spn,
    build_ctmc,
    explore,
    indicator_reward,
    net_to_dot,
    reachability_to_dot,
    reward_vector,
)


def pure_death_net(n: int, lam: float) -> StochasticPetriNet:
    """N tokens dying at rate lam each (rate lam * #P)."""
    net = StochasticPetriNet("death")
    net.add_place("P", tokens=n)
    net.add_transition("die", inputs={"P": 1}, rate=lambda m: lam * m["P"])
    return net


class TestReachability:
    def test_pure_death_state_count(self):
        graph = explore(pure_death_net(5, 1.0))
        assert graph.num_states == 6  # 5,4,3,2,1,0 tokens
        assert graph.dead_states == [graph.index[(0,)]]

    def test_edges_carry_marking_dependent_rates(self):
        graph = explore(pure_death_net(3, 2.0))
        flow = dict(
            ((graph.markings[s][0]), r) for s, _, r in graph.transition_flow("die")
        )
        assert flow == {3: 6.0, 2: 4.0, 1: 2.0}

    def test_max_states_bound(self):
        net = StochasticPetriNet("unbounded")
        net.add_place("P", tokens=1)
        net.add_transition("grow", inputs={"P": 1}, outputs={"P": 2}, rate=1.0)
        with pytest.raises(StateSpaceError):
            explore(net, max_states=50)

    def test_custom_initial_marking(self):
        net = pure_death_net(5, 1.0)
        graph = explore(net, initial=(2,))
        assert graph.num_states == 3

    def test_states_where(self):
        graph = explore(pure_death_net(4, 1.0))
        low = graph.states_where(lambda m: m["P"] <= 1)
        assert sorted(graph.markings[i][0] for i in low) == [0, 1]

    def test_invalid_initial_length(self):
        net = pure_death_net(3, 1.0)
        with pytest.raises(ModelError):
            explore(net, initial=(1, 2))


class TestBuildCtmc:
    def test_chain_structure(self):
        chain, graph = build_ctmc(pure_death_net(3, 1.5))
        assert chain.num_states == graph.num_states
        assert chain.labels == graph.markings
        i3, i2 = graph.index[(3,)], graph.index[(2,)]
        assert chain.rates[i3, i2] == pytest.approx(4.5)

    def test_parallel_transitions_summed(self):
        net = StochasticPetriNet()
        net.add_place("A", tokens=1)
        net.add_place("B")
        net.add_transition("t1", inputs={"A": 1}, outputs={"B": 1}, rate=1.0)
        net.add_transition("t2", inputs={"A": 1}, outputs={"B": 1}, rate=2.5)
        chain, graph = build_ctmc(net)
        a, b = graph.index[(1, 0)], graph.index[(0, 1)]
        assert chain.rates[a, b] == pytest.approx(3.5)

    def test_accepts_prebuilt_graph(self):
        graph = explore(pure_death_net(2, 1.0))
        chain, graph2 = build_ctmc(graph)
        assert graph2 is graph
        assert chain.num_states == 3


class TestAnalyzeSpn:
    def test_pure_death_mtta_harmonic(self):
        n, lam = 6, 0.5
        analysis = analyze_spn(pure_death_net(n, lam))
        expected = sum(1.0 / (lam * k) for k in range(1, n + 1))
        assert analysis.mtta == pytest.approx(expected, rel=1e-10)
        assert analysis.solution.method == "acyclic"

    def test_tandem_stages(self):
        net = StochasticPetriNet("tandem")
        net.add_place("A", tokens=1)
        net.add_place("B")
        net.add_place("C")
        net.add_transition("ab", inputs={"A": 1}, outputs={"B": 1}, rate=2.0)
        net.add_transition("bc", inputs={"B": 1}, outputs={"C": 1}, rate=4.0)
        analysis = analyze_spn(net)
        assert analysis.mtta == pytest.approx(0.5 + 0.25)

    def test_rewards_and_lifetime_average(self):
        # Reward = token count; accumulated = sum over k of k * 1/(lam k)
        # = n / lam; lifetime average = n / (lam * H_n / lam) = n / H_n.
        n, lam = 5, 2.0
        analysis = analyze_spn(
            pure_death_net(n, lam), rewards={"tokens": lambda m: float(m["P"])}
        )
        harmonic = sum(1.0 / k for k in range(1, n + 1))
        assert analysis.expected_reward("tokens") == pytest.approx(n / lam)
        assert analysis.lifetime_average("tokens") == pytest.approx(n / harmonic)

    def test_absorbing_classes_by_predicate(self):
        # Race: a token may die (leaving P empty) or be promoted to Q.
        net = StochasticPetriNet("race")
        net.add_place("P", tokens=1)
        net.add_place("Q")
        net.add_transition("die", inputs={"P": 1}, rate=1.0)
        net.add_transition("promote", inputs={"P": 1}, outputs={"Q": 1}, rate=3.0)
        analysis = analyze_spn(
            net,
            absorbing_classes={
                "died": lambda m: m["Q"] == 0,
                "promoted": lambda m: m["Q"] == 1,
            },
        )
        assert analysis.absorption_probability("died") == pytest.approx(0.25)
        assert analysis.absorption_probability("promoted") == pytest.approx(0.75)

    def test_guard_creates_absorbing_state(self):
        # Guard freezes the net once P drops below 2: states with P<2 dead.
        net = StochasticPetriNet("guarded")
        net.add_place("P", tokens=3)
        net.add_transition(
            "die", inputs={"P": 1}, rate=1.0, guard=lambda m: m["P"] >= 2
        )
        analysis = analyze_spn(net)
        # Two firings possible (3->2->1), each Exp(1).
        assert analysis.mtta == pytest.approx(2.0)

    def test_tau_of_specific_marking(self):
        analysis = analyze_spn(pure_death_net(4, 1.0))
        assert analysis.tau_of((2,)) == pytest.approx(1.0 / 2 + 1.0)
        with pytest.raises(ModelError):
            analysis.tau_of((99,))


class TestRewardVector:
    def test_values_align_with_states(self):
        graph = explore(pure_death_net(3, 1.0))
        vec = reward_vector(graph, lambda m: 10.0 * m["P"])
        for i, marking in enumerate(graph.markings):
            assert vec[i] == 10.0 * marking[0]

    def test_indicator(self):
        graph = explore(pure_death_net(3, 1.0))
        vec = indicator_reward(graph, lambda m: m["P"] % 2 == 0)
        for i, marking in enumerate(graph.markings):
            assert vec[i] == float(marking[0] % 2 == 0)

    def test_nonfinite_reward_raises(self):
        graph = explore(pure_death_net(2, 1.0))
        with pytest.raises(ModelError):
            reward_vector(graph, lambda m: float("inf"))


class TestDotExport:
    def test_net_dot_contains_elements(self):
        dot = net_to_dot(pure_death_net(2, 1.0))
        assert "digraph" in dot
        assert '"p_P"' in dot
        assert '"t_die"' in dot

    def test_reachability_dot(self):
        graph = explore(pure_death_net(2, 1.0))
        dot = reachability_to_dot(graph)
        assert dot.count("->") == 2
        assert "doublecircle" in dot  # dead state styling

    def test_reachability_dot_size_guard(self):
        graph = explore(pure_death_net(30, 1.0))
        with pytest.raises(ValueError):
            reachability_to_dot(graph, max_states=10)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(1, 12),
    lam=st.floats(min_value=0.05, max_value=10.0, allow_nan=False),
)
def test_property_death_chain_mtta(n, lam):
    """Property: SPN pipeline reproduces the harmonic closed form."""
    analysis = analyze_spn(pure_death_net(n, lam))
    expected = sum(1.0 / (lam * k) for k in range(1, n + 1))
    assert analysis.mtta == pytest.approx(expected, rel=1e-9)
