"""Tests for the :mod:`repro.engine` batch-evaluation subsystem."""

from __future__ import annotations

import json
import time

import pytest

from repro.analysis.sweep import grid_sweep
from repro.core.scenario import Scenario
from repro.engine import (
    BatchRunner,
    Campaign,
    EvalRequest,
    FileLock,
    ProcessPoolBackend,
    ResultCache,
    SerialBackend,
    SweepJob,
    ThreadPoolBackend,
    available_cpus,
    load_campaign,
    make_backend,
    make_runner,
    paper_campaign,
    params_from_dict,
    result_from_dict,
    run_tids_sweep,
    scenario_fingerprint,
)
from repro.engine.batch import evaluate_request
from repro.errors import ExperimentError, ParameterError
from repro.params import GCSParameters

GRID = (15.0, 60.0, 240.0)


@pytest.fixture(scope="module")
def params():
    return GCSParameters.small_test()


@pytest.fixture(scope="module")
def reference(params):
    """One evaluated point, shared across cache tests."""
    return evaluate_request(EvalRequest(params=params))


# ---------------------------------------------------------------------------
# keys
# ---------------------------------------------------------------------------

class TestKeys:
    def test_same_params_same_fingerprint(self, params):
        assert scenario_fingerprint(params) == scenario_fingerprint(
            GCSParameters.small_test()
        )

    def test_changed_param_changes_fingerprint(self, params):
        assert scenario_fingerprint(params) != scenario_fingerprint(
            params.replacing(detection_interval_s=params.tids_s + 1.0)
        )

    def test_method_and_options_matter(self, params):
        base = scenario_fingerprint(params)
        assert base != scenario_fingerprint(params, method="spn")
        assert base != scenario_fingerprint(
            params, options={"include_variance": True}
        )
        assert base == scenario_fingerprint(params, options={})

    def test_params_resolved_network_canonicalised(self, params):
        # A Scenario's shared network is exactly what the params resolve
        # to, so routing through it must share the params-only key …
        scenario = Scenario(params)
        assert scenario_fingerprint(params) == scenario_fingerprint(
            params, network=scenario.network
        )

    def test_genuinely_explicit_network_distinct(self, params):
        # … while a network that differs from the resolved one must not.
        import dataclasses

        scenario = Scenario(params)
        other = dataclasses.replace(scenario.network, avg_hops=9.9)
        assert scenario_fingerprint(params) != scenario_fingerprint(
            params, network=other
        )

    def test_network_params_in_signature(self, params):
        # Cost/delay equations read NetworkParameters off the model, so
        # two networks differing only there must not share a key.
        import dataclasses

        net = Scenario(params).network
        slower = dataclasses.replace(
            net,
            params=dataclasses.replace(net.params, bandwidth_bps=1e5),
            avg_hops=9.9,
        )
        faster = dataclasses.replace(
            net,
            params=dataclasses.replace(net.params, bandwidth_bps=1e7),
            avg_hops=9.9,
        )
        assert scenario_fingerprint(params, network=slower) != scenario_fingerprint(
            params, network=faster
        )

    def test_int_float_equal_values_share_key(self, params):
        assert scenario_fingerprint(
            params.replacing(detection_interval_s=15)
        ) == scenario_fingerprint(params.replacing(detection_interval_s=15.0))

    def test_request_and_plain_fingerprint_agree(self, params):
        # EvalRequest spells out default-false option flags; the plain
        # form omits them. Both must address the same cache entry.
        assert EvalRequest(params=params).fingerprint() == scenario_fingerprint(
            params
        )

    def test_params_roundtrip(self, params):
        assert params_from_dict(params.to_dict()) == params

    def test_malformed_params_dict_raises(self):
        with pytest.raises(ParameterError):
            params_from_dict({"network": {}})


# ---------------------------------------------------------------------------
# cache
# ---------------------------------------------------------------------------

class TestResultCache:
    def test_memory_hit(self, params, reference):
        cache = ResultCache()
        key = scenario_fingerprint(params)
        assert cache.get(key) is None
        cache.put(key, reference)
        assert cache.get(key) == reference
        assert cache.stats.memory_hits == 1 and cache.stats.misses == 1

    def test_disk_roundtrip_across_instances(self, tmp_path, params, reference):
        key = scenario_fingerprint(params)
        ResultCache(cache_dir=tmp_path).put(key, reference)
        fresh = ResultCache(cache_dir=tmp_path)
        restored = fresh.get(key)
        assert restored == reference
        assert fresh.stats.disk_hits == 1
        # Promoted into the memory layer.
        assert fresh.get(key) == reference
        assert fresh.stats.memory_hits == 1

    def test_version_mismatch_is_a_miss(self, tmp_path, params, reference):
        key = scenario_fingerprint(params)
        ResultCache(cache_dir=tmp_path, version=1).put(key, reference)
        assert ResultCache(cache_dir=tmp_path, version=2).get(key) is None

    def test_prune_stale_versions_on_open(self, tmp_path, params, reference):
        key = scenario_fingerprint(params)
        ResultCache(cache_dir=tmp_path, version=1).put(key, reference)
        assert (tmp_path / "v1").exists()
        new = ResultCache(cache_dir=tmp_path, version=2)  # prunes on open
        assert not (tmp_path / "v1").exists()
        new.put(key, reference)
        assert new.prune_stale_versions() == 0  # nothing stale left
        assert len(new) == 1  # current-version record survives

    def test_prune_ignores_lockfile_husk(self, tmp_path, params, reference):
        # A capped cache creates v1/.lock, which pruning never deletes
        # (deleting a live lockfile would void exclusion). The leftover
        # husk must not read as "stale records present" — otherwise
        # every subsequent open re-locks and re-walks the tree forever.
        key = scenario_fingerprint(params)
        old = ResultCache(cache_dir=tmp_path, version=1, max_disk_bytes=10**9)
        old.put(key, reference)
        assert (tmp_path / "v1" / ".lock").exists()
        new = ResultCache(cache_dir=tmp_path, version=2)  # prunes on open
        assert not list((tmp_path / "v1").glob("*/*.json"))
        assert not new._has_stale_versions()
        assert new.prune_stale_versions() == 0

    def test_prune_stale_versions_manual(self, tmp_path, params, reference):
        key = scenario_fingerprint(params)
        ResultCache(cache_dir=tmp_path, version=1).put(key, reference)
        new = ResultCache(
            cache_dir=tmp_path, version=2, prune_stale_on_open=False
        )
        new.put(key, reference)
        assert (tmp_path / "v1").exists()  # opt-out keeps old records
        assert new.prune_stale_versions() == 1
        assert len(new) == 1

    def test_corrupt_record_counts_as_miss(self, tmp_path, params, reference):
        cache = ResultCache(cache_dir=tmp_path, memory_capacity=0)
        key = scenario_fingerprint(params)
        cache.put(key, reference)
        record = next(tmp_path.glob("v*/*/*.json"))
        record.write_text("{not json")
        assert cache.get(key) is None
        assert cache.stats.corrupt_records == 1

    def test_lru_eviction(self, params, reference):
        cache = ResultCache(memory_capacity=2)
        for i in range(3):
            cache.put(f"k{i}", reference)
        assert cache.stats.evictions == 1
        assert cache.get("k0") is None  # oldest evicted
        assert cache.get("k2") is not None

    def test_result_roundtrip_preserves_everything(self, params):
        rich = evaluate_request(
            EvalRequest(params=params, include_breakdown=True)
        )
        assert result_from_dict(rich.to_dict()) == rich

    def test_truncated_record_is_a_miss_not_a_crash(self, tmp_path, params, reference):
        # A torn write (powered-off writer without the atomic-rename
        # protection) leaves a prefix of valid JSON; readers must treat
        # it as a miss and count it, never raise.
        cache = ResultCache(cache_dir=tmp_path, memory_capacity=0)
        key = scenario_fingerprint(params)
        cache.put(key, reference)
        record = next(tmp_path.glob("v*/*/*.json"))
        full = record.read_text()
        record.write_text(full[: len(full) // 2])
        assert cache.get(key) is None
        assert cache.stats.corrupt_records == 1
        # An empty record (0-byte file) is the same story.
        record.write_text("")
        assert cache.get(key) is None
        assert cache.stats.corrupt_records == 2

    def test_missing_record_is_plain_miss(self, tmp_path, params):
        # Concurrent eviction deletes files under a reader; that is a
        # miss, not a "corrupt record".
        cache = ResultCache(cache_dir=tmp_path, memory_capacity=0)
        assert cache.get(scenario_fingerprint(params)) is None
        assert cache.stats.misses == 1
        assert cache.stats.corrupt_records == 0


# ---------------------------------------------------------------------------
# locks
# ---------------------------------------------------------------------------

class TestFileLock:
    def test_acquire_release_and_reentrancy(self, tmp_path):
        lock = FileLock(tmp_path / "sub" / ".lock")
        assert not lock.held
        with lock:
            assert lock.held
            with lock:  # re-entrant on the same instance
                assert lock.held
            assert lock.held
        assert not lock.held
        assert (tmp_path / "sub" / ".lock").exists()

    def test_release_unheld_raises(self, tmp_path):
        with pytest.raises(RuntimeError, match="unheld"):
            FileLock(tmp_path / ".lock").release()

    def test_advisory_on_posix(self, tmp_path):
        assert FileLock(tmp_path / ".lock").advisory is True

    def test_exception_releases(self, tmp_path):
        lock = FileLock(tmp_path / ".lock")
        with pytest.raises(ValueError):
            with lock:
                raise ValueError("boom")
        assert not lock.held


# ---------------------------------------------------------------------------
# disk eviction
# ---------------------------------------------------------------------------

class TestDiskEviction:
    def _record_size(self, tmp_path, reference) -> int:
        probe = ResultCache(cache_dir=tmp_path / "probe")
        probe.put("aa" * 32, reference)
        return next((tmp_path / "probe").glob("v*/*/*.json")).stat().st_size

    def test_cap_validation(self, tmp_path):
        with pytest.raises(ParameterError, match="max_disk_bytes"):
            ResultCache(cache_dir=tmp_path, max_disk_bytes=0)

    def test_size_cap_honored(self, tmp_path, reference):
        size = self._record_size(tmp_path, reference)
        cache = ResultCache(
            cache_dir=tmp_path / "c",
            max_disk_bytes=3 * size,
            memory_capacity=0,
        )
        for i in range(8):
            cache.put(f"{i:02d}" + "a" * 62, reference)
            time.sleep(0.01)  # distinct mtimes on coarse filesystems
            assert cache.disk_usage_bytes() <= 3 * size
        assert len(cache) == 3
        assert cache.stats.disk_evictions == 5
        assert cache.stats.disk_bytes_evicted == 5 * size

    def test_lru_by_mtime_victim_selection(self, tmp_path, reference):
        size = self._record_size(tmp_path, reference)
        cache = ResultCache(
            cache_dir=tmp_path / "c",
            max_disk_bytes=3 * size,
            memory_capacity=0,  # force disk reads so mtime refreshes
        )
        keys = [f"{i:02d}" + "b" * 62 for i in range(3)]
        for key in keys:
            cache.put(key, reference)
            time.sleep(0.01)
        # Touch the oldest record: it becomes most-recently-used …
        assert cache.get(keys[0]) is not None
        time.sleep(0.01)
        cache.put("ff" + "b" * 62, reference)
        # … so the eviction victim is keys[1], not keys[0].
        assert cache.get(keys[0]) is not None
        assert cache.get(keys[1]) is None
        assert cache.stats.disk_evictions == 1

    def test_single_record_larger_than_cap_survives(self, tmp_path, reference):
        cache = ResultCache(
            cache_dir=tmp_path / "c", max_disk_bytes=1, memory_capacity=0
        )
        cache.put("aa" + "c" * 62, reference)
        # The just-written record is protected even when it alone busts
        # the cap (the cap may overshoot by at most one record).
        assert cache.get("aa" + "c" * 62) is not None
        # The next put evicts the previous one and keeps itself.
        cache.put("bb" + "c" * 62, reference)
        assert len(cache) == 1
        assert cache.get("bb" + "c" * 62) is not None

    def test_unbounded_by_default(self, tmp_path, reference):
        cache = ResultCache(cache_dir=tmp_path)
        for i in range(6):
            cache.put(f"{i:02d}" + "d" * 62, reference)
        assert len(cache) == 6
        assert cache.stats.disk_evictions == 0


# ---------------------------------------------------------------------------
# runner factory
# ---------------------------------------------------------------------------

class TestMakeRunner:
    def test_defaults_are_serial_and_ephemeral(self):
        runner = make_runner()
        assert isinstance(runner.backend, SerialBackend)
        assert runner.cache.cache_dir is None

    def test_flags_build_cache_and_backend(self, tmp_path):
        runner = make_runner("thread:2", tmp_path, cache_cap_mb=1.0)
        assert isinstance(runner.backend, ThreadPoolBackend)
        assert runner.cache.cache_dir == tmp_path
        assert runner.cache.max_disk_bytes == 1024 * 1024

    def test_cap_requires_cache_dir(self):
        with pytest.raises(ParameterError, match="cache_cap_mb"):
            make_runner(cache_cap_mb=1.0)


# ---------------------------------------------------------------------------
# executors
# ---------------------------------------------------------------------------

def _square(x):
    return x * x


def _explode_on_two(x):
    if x == 2:
        raise ValueError("boom")
    return x


class TestExecutors:
    def test_serial_order_and_values(self):
        outcomes = SerialBackend().run(_square, [3, 1, 2])
        assert [o.value for o in outcomes] == [9, 1, 4]
        assert [o.index for o in outcomes] == [0, 1, 2]

    def test_pool_matches_serial(self):
        items = list(range(7))
        serial = SerialBackend().run(_square, items)
        pooled = ProcessPoolBackend(2, chunksize=2).run(_square, items)
        assert [(o.index, o.value, o.error) for o in serial] == [
            (o.index, o.value, o.error) for o in pooled
        ]

    def test_thread_pool_matches_serial(self):
        items = list(range(7))
        serial = SerialBackend().run(_square, items)
        threaded = ThreadPoolBackend(3).run(_square, items)
        assert [(o.index, o.value, o.error) for o in serial] == [
            (o.index, o.value, o.error) for o in threaded
        ]

    def test_thread_pool_accepts_unpicklable_fn(self):
        # Closures can't cross a process boundary; threads don't care.
        offset = 10
        outcomes = ThreadPoolBackend(2).run(lambda x: x + offset, [1, 2, 3])
        assert [o.value for o in outcomes] == [11, 12, 13]

    @pytest.mark.parametrize(
        "backend",
        [SerialBackend(), ProcessPoolBackend(2), ThreadPoolBackend(2)],
    )
    def test_error_capture(self, backend):
        outcomes = backend.run(_explode_on_two, [1, 2, 3])
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[1].error_type == "ValueError"
        assert "boom" in outcomes[1].error
        # Original exception object crosses the process boundary.
        assert isinstance(outcomes[1].exception, ValueError)

    @pytest.mark.parametrize(
        "backend", [ProcessPoolBackend(2), ThreadPoolBackend(2)]
    )
    def test_empty_and_single_item(self, backend):
        assert backend.run(_square, []) == []
        assert backend.run(_square, [4])[0].value == 16

    def test_make_backend_semantics(self):
        assert isinstance(make_backend(None), SerialBackend)
        assert isinstance(make_backend(0), SerialBackend)
        assert isinstance(make_backend(1), SerialBackend)
        assert isinstance(make_backend(3), ProcessPoolBackend)
        with pytest.raises(ParameterError):
            make_backend(-1)

    def test_make_backend_string_grammar(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        assert isinstance(make_backend("1"), SerialBackend)
        assert isinstance(make_backend("3"), ProcessPoolBackend)
        auto = make_backend("auto")
        if available_cpus() > 1:
            assert isinstance(auto, ProcessPoolBackend)
            assert auto.max_workers == available_cpus()
        else:
            assert isinstance(auto, SerialBackend)
        threads = make_backend("thread")
        assert isinstance(threads, ThreadPoolBackend)
        assert threads.max_workers == available_cpus()
        assert make_backend("thread:5").max_workers == 5
        assert isinstance(make_backend("thread:auto"), ThreadPoolBackend)
        for bad in ("nonsense", "thread:x", "thread:"):
            with pytest.raises(ParameterError):
                make_backend(bad)

    def test_backend_validation(self):
        with pytest.raises(ParameterError):
            ProcessPoolBackend(0)
        with pytest.raises(ParameterError):
            ProcessPoolBackend(2, chunksize=0)
        with pytest.raises(ParameterError):
            ThreadPoolBackend(0)

    def test_available_cpus_positive(self):
        assert available_cpus() >= 1


# ---------------------------------------------------------------------------
# batch
# ---------------------------------------------------------------------------

class TestBatchRunner:
    def test_dedup_and_cache_hits(self, params):
        runner = BatchRunner()
        requests = [
            EvalRequest(params=params.replacing(detection_interval_s=t))
            for t in (15.0, 60.0, 15.0)
        ]
        first = runner.run(requests)
        assert first.report.n_requested == 3
        assert first.report.n_unique == 2
        assert first.report.n_evaluated == 2
        assert first.results[0] == first.results[2]

        second = runner.run(requests)
        assert second.report.n_cache_hits == 2
        assert second.report.n_evaluated == 0
        assert [r.mttsf_s for r in second.results] == [
            r.mttsf_s for r in first.results
        ]

    def test_progress_sources(self, params):
        runner = BatchRunner()
        requests = [
            EvalRequest(params=params),
            EvalRequest(params=params),
        ]
        seen: list[tuple[int, str]] = []
        runner.run(requests, progress=lambda i, key, src: seen.append((i, src)))
        assert seen == [(0, "evaluated"), (1, "cache")]
        seen.clear()
        runner.run(requests, progress=lambda i, key, src: seen.append((i, src)))
        assert seen == [(0, "cache"), (1, "cache")]

    def test_point_error_capture(self, params):
        bad = EvalRequest(params=params, method="spn", include_breakdown=True)
        batch = BatchRunner().run([bad, EvalRequest(params=params)])
        assert batch.results[0] is None
        assert batch.results[1] is not None
        assert batch.report.n_errors == 1
        assert batch.report.errors[0].error_type == "ParameterError"
        with pytest.raises(ExperimentError, match="1 of 2 batch points"):
            batch.report.raise_on_error()

    def test_matches_scenario_sweep_exactly(self, params):
        scenario = Scenario(params)
        expected = scenario.sweep_tids(GRID, num_voters=3)
        actual = run_tids_sweep(
            BatchRunner(),
            params,
            GRID,
            network=scenario.network,
            overrides={"num_voters": 3},
        )
        assert [p.tids_s for p in actual] == [p.tids_s for p in expected]
        assert [p.mttsf_s for p in actual] == [p.mttsf_s for p in expected]
        assert [p.ctotal_hop_bits_s for p in actual] == [
            p.ctotal_hop_bits_s for p in expected
        ]

    def test_process_pool_matches_serial(self, params):
        serial = run_tids_sweep(BatchRunner(), params, GRID)
        pooled = run_tids_sweep(
            BatchRunner(backend=ProcessPoolBackend(2)), params, GRID
        )
        assert [p.mttsf_s for p in serial] == [p.mttsf_s for p in pooled]

    def test_rejects_unsorted_grid_like_serial_path(self, params):
        with pytest.raises(ParameterError, match="strictly increasing"):
            run_tids_sweep(BatchRunner(), params, (60.0, 15.0))
        with pytest.raises(ParameterError, match="strictly increasing"):
            run_tids_sweep(BatchRunner(), params, (15.0, 15.0))

    def test_scenario_and_params_only_requests_share_cache(self, params):
        # The engine-backed experiment path (explicit scenario network)
        # and the params-only sweep/campaign path hit the same entries.
        runner = BatchRunner()
        scenario = Scenario(params)
        run_tids_sweep(runner, params, GRID, network=scenario.network)
        runner.run([
            EvalRequest(params=params.replacing(detection_interval_s=t))
            for t in GRID
        ])
        assert runner.cache.stats.hits == len(GRID)
        assert runner.cache.stats.stores == len(GRID)

    def test_cached_rerun_identical_across_processes(self, tmp_path, params):
        cold = run_tids_sweep(
            BatchRunner(cache=ResultCache(cache_dir=tmp_path)), params, GRID
        )
        warm_runner = BatchRunner(cache=ResultCache(cache_dir=tmp_path))
        warm = run_tids_sweep(warm_runner, params, GRID)
        assert warm_runner.cache.stats.disk_hits == len(GRID)
        assert [p.mttsf_s for p in warm] == [p.mttsf_s for p in cold]


# ---------------------------------------------------------------------------
# jobs
# ---------------------------------------------------------------------------

class TestJobs:
    def test_expansion_order_last_axis_fastest(self):
        job = SweepJob(
            name="j",
            axes={"detection_interval_s": (15.0, 60.0), "num_voters": (3, 5)},
        )
        assert len(job) == 4
        assert job.assignments() == [
            {"detection_interval_s": 15.0, "num_voters": 3},
            {"detection_interval_s": 15.0, "num_voters": 5},
            {"detection_interval_s": 60.0, "num_voters": 3},
            {"detection_interval_s": 60.0, "num_voters": 5},
        ]

    def test_validation(self):
        with pytest.raises(ParameterError):
            SweepJob(name="", axes={"a": (1,)})
        with pytest.raises(ParameterError):
            SweepJob(name="j", axes={})
        with pytest.raises(ParameterError):
            SweepJob(name="j", axes={"a": ()})
        with pytest.raises(ParameterError):
            Campaign(name="c", jobs=())
        job = SweepJob(name="j", axes={"a": (1,)})
        with pytest.raises(ParameterError):
            Campaign(name="c", jobs=(job, job))

    def test_json_roundtrip(self, tmp_path):
        campaign = Campaign(
            name="c",
            jobs=(
                SweepJob(
                    name="j",
                    axes={"detection_interval_s": (15.0, 60.0)},
                    base={"num_nodes": 12},
                ),
            ),
        )
        path = campaign.to_json(tmp_path / "spec.json")
        assert load_campaign(path) == campaign

    def test_load_single_job_spec(self, tmp_path):
        spec = tmp_path / "job.json"
        spec.write_text(
            json.dumps({"name": "solo", "axes": {"num_voters": [3, 5]}})
        )
        campaign = load_campaign(spec)
        assert campaign.name == "solo"
        assert len(campaign) == 2

    def test_campaign_dedups_across_jobs(self):
        shared_axes = {"detection_interval_s": (15.0, 60.0)}
        campaign = Campaign(
            name="c",
            jobs=(
                SweepJob(name="a", axes=shared_axes, base={"num_nodes": 12}),
                SweepJob(name="b", axes=shared_axes, base={"num_nodes": 12}),
            ),
        )
        outcome = campaign.run(BatchRunner())
        assert outcome.report.n_requested == 4
        assert outcome.report.n_unique == 2
        assert outcome.outcome("a").values() == outcome.outcome("b").values()
        with pytest.raises(ParameterError):
            outcome.outcome("nope")

    def test_paper_campaign_shape(self):
        campaign = paper_campaign(quick=True)
        assert [job.name.split("_")[0] for job in campaign.jobs] == [
            "fig2", "fig3", "fig4", "fig5",
        ]
        # Cross-figure overlap (fig2 m=5 column == fig4 linear column)
        # means the campaign has fewer unique points than requests.
        keys = [req.fingerprint() for job in campaign.jobs
                for _, req in job.requests()]
        assert len(set(keys)) < len(keys)


# ---------------------------------------------------------------------------
# experiment harness integration
# ---------------------------------------------------------------------------

class TestExperimentIntegration:
    def test_engine_backed_experiment_identical_to_seed_path(self):
        from repro.analysis.experiments import ExperimentConfig, get_experiment

        exp = get_experiment("abl-hostids")
        seed_path = exp.run(ExperimentConfig(quick=True))
        engine_path = exp.run(
            ExperimentConfig(quick=True, runner=BatchRunner())
        )
        assert [s.to_dict() for s in seed_path.series] == [
            s.to_dict() for s in engine_path.series
        ]
        assert seed_path.notes == engine_path.notes

    @pytest.mark.slow
    @pytest.mark.parametrize("experiment_id", ["abl-coupling", "val-sim"])
    def test_newly_routed_experiments_identical_to_seed_path(
        self, experiment_id
    ):
        # PR 2 routed the last registry experiments through the engine:
        # abl-coupling (two solver variants per point, one batch) and
        # val-sim (analytic batch + replication fan-out). Both must be
        # byte-identical to the serial path.
        from repro.analysis.experiments import ExperimentConfig, get_experiment

        exp = get_experiment(experiment_id)
        seed_path = exp.run(ExperimentConfig(quick=True))
        engine_path = exp.run(
            ExperimentConfig(quick=True, runner=BatchRunner())
        )
        assert [s.to_dict() for s in seed_path.series] == [
            s.to_dict() for s in engine_path.series
        ]
        assert seed_path.notes == engine_path.notes


# ---------------------------------------------------------------------------
# grid_sweep integration (bugfix + backend routing)
# ---------------------------------------------------------------------------

class TestGridSweepEngine:
    def test_generator_axes_accepted(self):
        pts = grid_sweep(
            {"a": (x for x in (1, 2)), "b": iter(["x"])},
            lambda a, b: f"{a}{b}",
        )
        assert [p.value for p in pts] == ["1x", "2x"]

    def test_empty_generator_axis_rejected(self):
        with pytest.raises(ParameterError, match="axis 'a' is empty"):
            grid_sweep({"a": (x for x in ())}, lambda a: a)

    def test_backend_routing_preserves_order(self):
        pts = grid_sweep({"x": [3, 1, 2]}, _square, backend=SerialBackend())
        assert [p.value for p in pts] == [9, 1, 4]

    def test_capture_errors_serial_and_backend(self):
        for kwargs in ({}, {"backend": SerialBackend()}):
            pts = grid_sweep(
                {"x": [1, 2, 3]}, _explode_on_two,
                capture_errors=True, **kwargs,
            )
            assert [p.ok for p in pts] == [True, False, True]
            assert pts[1].value is None and "boom" in pts[1].error

    def test_backend_error_propagates_original_exception(self):
        # Same exception type as the serial path, not a stringified wrap.
        with pytest.raises(ValueError, match="boom"):
            grid_sweep({"x": [1, 2]}, _explode_on_two, backend=SerialBackend())
        with pytest.raises(ValueError, match="boom"):
            grid_sweep({"x": [1, 2]}, _explode_on_two)

    def test_process_backend_sweep(self):
        pts = grid_sweep(
            {"x": list(range(5))}, _square, backend=ProcessPoolBackend(2)
        )
        assert [p.value for p in pts] == [0, 1, 4, 9, 16]
