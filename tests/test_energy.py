"""Energy model extension."""

import pytest

from repro.costs import EnergyModel
from repro.errors import ParameterError


class TestEnergyModel:
    def test_power_composition(self):
        em = EnergyModel(tx_j_per_bit=1e-9, rx_j_per_bit=2e-9, idle_w_per_node=0.01)
        # 1e6 hop-bits/s * 3 nJ + 10 nodes * 10 mW.
        assert em.group_power_w(1e6, 10) == pytest.approx(3e-3 + 0.1)

    def test_zero_traffic_is_idle_only(self):
        em = EnergyModel()
        assert em.group_power_w(0.0, 5) == pytest.approx(5 * 0.01)

    def test_mission_energy(self):
        em = EnergyModel()
        power = em.group_power_w(4e5, 100)
        assert em.mission_energy_j(4e5, 3600.0, 100) == pytest.approx(power * 3600)
        assert em.mission_energy_j(4e5, 0.0, 100) == 0.0

    def test_battery_lifetime_scales_inversely_with_traffic(self):
        em = EnergyModel()
        quiet = em.battery_lifetime_s(1e5, 100)
        busy = em.battery_lifetime_s(1e6, 100)
        assert quiet > busy

    def test_lifetime_vs_mttsf_check(self):
        em = EnergyModel(battery_j_per_node=1e9)
        assert em.energy_outlasts_security(4e5, 100, 2e6)
        em_small = EnergyModel(battery_j_per_node=1.0)
        assert not em_small.energy_outlasts_security(4e5, 100, 2e6)

    def test_paper_operating_point_energy_sane(self):
        # At the paper's default (Ctotal ~ 4.3e5 hop-bits/s, N=100) the
        # radio power is tens of mW — far below the idle floor, so
        # security failure (weeks) precedes battery exhaustion (days)
        # only if batteries are small; with the default budget the
        # security lifetime binds.
        em = EnergyModel()
        assert em.group_power_w(4.3e5, 100) < 2.0  # under 2 W for the group

    def test_validation(self):
        with pytest.raises(ParameterError):
            EnergyModel(tx_j_per_bit=-1.0)
        em = EnergyModel()
        with pytest.raises(ParameterError):
            em.group_power_w(-1.0, 10)
        with pytest.raises(ParameterError):
            em.group_power_w(1.0, 0)
        with pytest.raises(ParameterError):
            em.mission_energy_j(1.0, -1.0, 10)
        with pytest.raises(ParameterError):
            em.energy_outlasts_security(1.0, 10, 0.0)
