"""SPN structures: places, transitions, markings, enabling, firing."""

import pytest

from repro.errors import ModelError
from repro.spn import Place, StochasticPetriNet, Transition
from repro.spn.marking import MarkingView, marking_from


def small_net() -> StochasticPetriNet:
    net = StochasticPetriNet("toy")
    net.add_place("A", tokens=2)
    net.add_place("B")
    net.add_transition("move", inputs={"A": 1}, outputs={"B": 1}, rate=3.0)
    return net


class TestPlace:
    def test_valid(self):
        p = Place("Tm", 100)
        assert p.name == "Tm"
        assert p.initial_tokens == 100

    def test_negative_tokens_rejected(self):
        with pytest.raises(Exception):
            Place("Tm", -1)

    def test_empty_name_rejected(self):
        with pytest.raises(ModelError):
            Place("", 0)


class TestTransition:
    def test_constant_rate_must_be_positive(self):
        with pytest.raises(ModelError):
            Transition("t", rate=0.0)
        with pytest.raises(ModelError):
            Transition("t", rate=-1.0)

    def test_bad_multiplicity_rejected(self):
        with pytest.raises(ModelError):
            Transition("t", inputs={"A": 0})
        with pytest.raises(ModelError):
            Transition("t", outputs={"A": -2})

    def test_callable_rate_evaluated_on_marking(self):
        net = small_net()
        net.add_transition("dyn", inputs={"A": 1}, rate=lambda m: 0.5 * m["A"])
        enabled = dict(
            (t.name, r) for t, r in net.enabled_transitions(net.initial_marking)
        )
        assert enabled["dyn"] == pytest.approx(1.0)


class TestNetConstruction:
    def test_duplicate_place_rejected(self):
        net = StochasticPetriNet()
        net.add_place("A")
        with pytest.raises(ModelError):
            net.add_place("A")

    def test_duplicate_transition_rejected(self):
        net = small_net()
        with pytest.raises(ModelError):
            net.add_transition("move", inputs={"A": 1})

    def test_unknown_place_in_arc_rejected(self):
        net = StochasticPetriNet()
        net.add_place("A")
        with pytest.raises(ModelError):
            net.add_transition("t", inputs={"Z": 1})

    def test_lookup(self):
        net = small_net()
        assert net.place("A").initial_tokens == 2
        assert net.transition("move").rate == 3.0
        with pytest.raises(ModelError):
            net.place("nope")
        with pytest.raises(ModelError):
            net.transition("nope")


class TestMarkingMachinery:
    def test_initial_marking(self):
        net = small_net()
        assert net.initial_marking == (2, 0)

    def test_marking_kwargs(self):
        net = small_net()
        assert net.marking(A=1, B=5) == (1, 5)
        assert net.marking(B=3) == (0, 3)

    def test_marking_unknown_place(self):
        net = small_net()
        with pytest.raises(ModelError):
            net.marking(Z=1)

    def test_marking_negative_rejected(self):
        with pytest.raises(ModelError):
            marking_from(["A"], {"A": -1})

    def test_view_access(self):
        net = small_net()
        view = net.view((2, 0))
        assert view["A"] == 2
        assert view["B"] == 0
        assert view.total() == 2
        assert "A" in view and "Z" not in view
        assert view.as_dict() == {"A": 2, "B": 0}
        assert len(view) == 2
        assert sorted(view) == ["A", "B"]

    def test_view_unknown_place(self):
        net = small_net()
        with pytest.raises(ModelError):
            net.view((2, 0))["Z"]

    def test_view_wrong_length(self):
        net = small_net()
        with pytest.raises(ModelError):
            net.view((1, 2, 3))

    def test_view_is_mapping(self):
        view = MarkingView({"A": 0}, (7,))
        assert dict(view) == {"A": 7}


class TestEnablingAndFiring:
    def test_enabled_when_tokens_available(self):
        net = small_net()
        enabled = net.enabled_transitions((2, 0))
        assert [(t.name, r) for t, r in enabled] == [("move", 3.0)]

    def test_disabled_without_tokens(self):
        net = small_net()
        assert net.enabled_transitions((0, 2)) == []

    def test_guard_disables(self):
        net = StochasticPetriNet()
        net.add_place("A", tokens=1)
        net.add_transition(
            "t", inputs={"A": 1}, rate=1.0, guard=lambda m: m["A"] > 1
        )
        assert net.enabled_transitions((1,)) == []

    def test_zero_dynamic_rate_disables(self):
        net = StochasticPetriNet()
        net.add_place("A", tokens=1)
        net.add_transition("t", inputs={"A": 1}, rate=lambda m: 0.0)
        assert net.enabled_transitions((1,)) == []

    def test_nonfinite_rate_raises(self):
        net = StochasticPetriNet()
        net.add_place("A", tokens=1)
        net.add_transition("t", inputs={"A": 1}, rate=lambda m: float("nan"))
        with pytest.raises(ModelError):
            net.enabled_transitions((1,))

    def test_fire_moves_tokens(self):
        net = small_net()
        t = net.transition("move")
        assert net.fire((2, 0), t) == (1, 1)

    def test_fire_multiplicity(self):
        net = StochasticPetriNet()
        net.add_place("A", tokens=3)
        net.add_place("B")
        t = net.add_transition("t", inputs={"A": 2}, outputs={"B": 1})
        assert net.fire((3, 0), t) == (1, 1)

    def test_fire_negative_raises(self):
        net = small_net()
        t = net.transition("move")
        with pytest.raises(ModelError):
            net.fire((0, 0), t)

    def test_multiplicity_blocks_enabling(self):
        net = StochasticPetriNet()
        net.add_place("A", tokens=1)
        net.add_transition("t", inputs={"A": 2})
        assert net.enabled_transitions((1,)) == []
