"""Fox-Glynn style Poisson weights vs scipy oracle."""

import numpy as np
import pytest
import scipy.stats as stats
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctmc import poisson_weights
from repro.ctmc.poisson import poisson_truncation_point
from repro.errors import ParameterError


class TestTruncationPoint:
    def test_zero_lambda(self):
        assert poisson_truncation_point(0.0) == 0

    def test_tail_below_eps(self):
        for lam in (0.1, 1.0, 17.3, 400.0, 12_345.0):
            k = poisson_truncation_point(lam, 1e-10)
            assert stats.poisson.sf(k, lam) <= 1e-10

    def test_not_absurdly_large(self):
        # Truncation should stay within a few sigma of the mean.
        lam = 10_000.0
        k = poisson_truncation_point(lam, 1e-12)
        assert k < lam + 60.0 * np.sqrt(lam)

    def test_invalid_args(self):
        with pytest.raises(ParameterError):
            poisson_truncation_point(-1.0)
        with pytest.raises(ParameterError):
            poisson_truncation_point(1.0, eps=0.0)


class TestWeights:
    def test_zero_lambda(self):
        left, right, w = poisson_weights(0.0)
        assert (left, right) == (0, 0)
        np.testing.assert_allclose(w, [1.0])

    @pytest.mark.parametrize("lam", [0.01, 0.5, 1.0, 5.0, 50.0, 1000.0, 250_000.0])
    def test_matches_scipy_pmf(self, lam):
        left, right, w = poisson_weights(lam, eps=1e-13)
        ks = np.arange(left, right + 1)
        ref = stats.poisson.pmf(ks, lam)
        # Renormalised truncation: compare shape after normalising the oracle.
        # lgamma round-off accumulates over ~1e5 terms; 1e-7 relative is
        # still far tighter than the 1e-13 truncation mass.
        np.testing.assert_allclose(w, ref / ref.sum(), rtol=1e-7, atol=1e-300)

    @pytest.mark.parametrize("lam", [0.3, 7.0, 999.0])
    def test_weights_sum_to_one(self, lam):
        _, _, w = poisson_weights(lam)
        assert w.sum() == pytest.approx(1.0, abs=1e-12)
        assert (w >= 0).all()

    def test_mode_included(self):
        for lam in (3.7, 42.0, 5000.0):
            left, right, _ = poisson_weights(lam, eps=1e-6)
            assert left <= int(lam) <= right

    def test_invalid_args(self):
        with pytest.raises(ParameterError):
            poisson_weights(-2.0)
        with pytest.raises(ParameterError):
            poisson_weights(1.0, eps=2.0)


@settings(max_examples=50, deadline=None)
@given(lam=st.floats(min_value=1e-3, max_value=1e5, allow_nan=False))
def test_property_mass_and_support(lam):
    left, right, w = poisson_weights(lam, eps=1e-12)
    assert 0 <= left <= right
    assert w.shape == (right - left + 1,)
    assert w.sum() == pytest.approx(1.0, abs=1e-9)
    # Dropped mass on each side is small.
    assert stats.poisson.cdf(left - 1, lam) <= 1e-6
    assert stats.poisson.sf(right, lam) <= 1e-6
