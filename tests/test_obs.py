"""Tests for :mod:`repro.obs` — tracing, metrics, manifests, overhead.

Covers the contracts the rest of the repo leans on:

* span nesting/attrs and Chrome-trace / JSONL export round-trips;
* histogram bin-edge semantics (1-2-5 per decade, boundary values,
  merge requires identical edges);
* registry snapshot → diff → merge algebra, including that a fanned
  ``vector:2`` run merges worker deltas into exactly the counters an
  in-process run records;
* ``RunManifest`` schema stability (downstream tooling reads the keys);
* the disabled path stays a no-op (shared ``NULL_SPAN`` singleton,
  nothing recorded, per-call cost bounded);
* worker-side tracebacks on :class:`PointError`.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.engine import (
    BatchRunner,
    EvalRequest,
    ProcessPoolBackend,
    make_backend,
)
from repro.obs import (
    MANIFEST_SCHEMA_VERSION,
    NULL_SPAN,
    Histogram,
    MetricsRegistry,
    RunManifest,
    batch_reports,
    default_bin_edges,
    disable_tracing,
    enable_tracing,
    kernel_flags,
    metrics,
    params_digest,
    records_from_dicts,
    reset_observability,
    span,
    tracer,
    tracing_enabled,
    write_chrome_trace,
    write_jsonl,
)
from repro.params import GCSParameters


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts and ends with pristine observability state."""
    reset_observability()
    disable_tracing()
    yield
    reset_observability()
    disable_tracing()


@pytest.fixture(scope="module")
def params():
    return GCSParameters.small_test()


# ---------------------------------------------------------------------------
# spans
# ---------------------------------------------------------------------------

class TestSpans:
    def test_nesting_depth_and_attrs(self):
        enable_tracing()
        with span("outer", phase="a"):
            with span("inner", n=3):
                pass
        records = tracer().records()
        by_name = {r.name: r for r in records}
        assert set(by_name) == {"outer", "inner"}
        assert by_name["outer"].depth == 0
        assert by_name["inner"].depth == 1
        assert by_name["inner"].attrs["n"] == 3
        assert by_name["outer"].pid == os.getpid()
        # The inner span is fully contained in the outer one.
        outer, inner = by_name["outer"], by_name["inner"]
        assert outer.start_s <= inner.start_s
        assert inner.duration_s <= outer.duration_s

    def test_exception_marks_span(self):
        enable_tracing()
        with pytest.raises(ValueError):
            with span("boom"):
                raise ValueError("nope")
        (record,) = tracer().records()
        assert record.attrs["error"] == "ValueError"

    def test_set_adds_attrs_at_exit(self):
        enable_tracing()
        with span("work") as sp:
            sp.set(attached=2)
        (record,) = tracer().records()
        assert record.attrs["attached"] == 2

    def test_chrome_trace_export(self, tmp_path):
        enable_tracing()
        with span("outer"):
            with span("inner"):
                pass
        path = tmp_path / "trace.json"
        write_chrome_trace(path)
        payload = json.loads(path.read_text())
        events = payload["traceEvents"]
        assert len(events) == 2
        assert all(e["ph"] == "X" for e in events)
        assert [e["ts"] for e in events] == sorted(e["ts"] for e in events)
        assert {e["name"] for e in events} == {"outer", "inner"}

    def test_jsonl_round_trip(self, tmp_path):
        enable_tracing()
        with span("alpha", k=1):
            pass
        path = tmp_path / "trace.jsonl"
        write_jsonl(path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        (restored,) = records_from_dicts(lines)
        (original,) = tracer().records()
        assert restored == original

    def test_mark_since_isolates_new_spans(self):
        enable_tracing()
        with span("before"):
            pass
        mark = tracer().mark()
        with span("after"):
            pass
        assert [r.name for r in tracer().since(mark)] == ["after"]


# ---------------------------------------------------------------------------
# histograms
# ---------------------------------------------------------------------------

class TestHistogram:
    def test_default_edges_are_125_per_decade(self):
        edges = default_bin_edges()
        assert edges[0] == pytest.approx(1e-7)
        assert edges[1] == pytest.approx(2e-7)
        assert edges[2] == pytest.approx(5e-7)
        assert 1.0 in edges and 2.0 in edges and 5.0 in edges
        # 11 decades (1e-7 .. 1e3) x 3 mantissas.
        assert len(edges) == 33

    def test_boundary_values_bin_right(self):
        h = Histogram(edges=(1.0, 2.0, 5.0))
        h.observe(0.5)   # underflow
        h.observe(1.0)   # edge value goes to the bin *above* it
        h.observe(1.999)
        h.observe(2.0)
        h.observe(4.9)
        h.observe(5.0)   # overflow
        h.observe(70.0)  # overflow
        assert h.counts == [1, 2, 2, 2]
        assert h.count == 7
        assert h.min == 0.5
        assert h.max == 70.0

    def test_merge_adds_counts(self):
        a = Histogram(edges=(1.0, 2.0))
        b = Histogram(edges=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(3.0)
        a.merge_dict(b.as_dict())
        assert a.counts == [1, 1, 1]
        assert a.count == 3
        assert a.min == 0.5
        assert a.max == 3.0

    def test_merge_rejects_different_edges(self):
        a = Histogram(edges=(1.0, 2.0))
        b = Histogram(edges=(1.0, 3.0))
        b.observe(1.5)
        with pytest.raises(ValueError, match="identical bin edges"):
            a.merge_dict(b.as_dict())


# ---------------------------------------------------------------------------
# registry algebra
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_snapshot_diff_merge_round_trip(self):
        r1 = MetricsRegistry()
        r1.counter("c").add(2)
        r1.histogram("h", edges=(1.0, 2.0)).observe(1.5)
        base = r1.snapshot()
        r1.counter("c").add(3)
        r1.gauge("g").set(7.0)
        r1.histogram("h", edges=(1.0, 2.0)).observe(0.5)
        delta = r1.diff(base)

        r2 = MetricsRegistry()
        r2.merge(base)
        r2.merge(delta)
        assert r2.snapshot() == r1.snapshot()

    def test_unchanged_metrics_not_in_diff(self):
        r = MetricsRegistry()
        r.counter("hot").add()
        r.counter("cold").add()
        base = r.snapshot()
        r.counter("hot").add()
        assert list(r.diff(base)) == ["hot"]

    def test_kind_collision_raises(self):
        r = MetricsRegistry()
        r.counter("x")
        with pytest.raises(TypeError):
            r.gauge("x")


# ---------------------------------------------------------------------------
# cross-process merge
# ---------------------------------------------------------------------------

class TestCrossProcessMerge:
    GRID = [
        EvalRequest(
            params=GCSParameters.small_test(
                num_voters=m, detection_interval_s=t
            )
        )
        for m in (3, 5)
        for t in (15.0, 60.0)
    ]

    @staticmethod
    def _work_counters():
        """Counters that must not depend on where the work ran."""
        keep = (
            "engine.requests",
            "engine.unique",
            "engine.cache_hits",
            "engine.evaluated",
            "engine.errors",
            "solver.dag_points_solved",
        )
        snap = metrics().snapshot()
        return {k: snap[k]["value"] for k in keep if k in snap}

    def test_fanned_vector_merge_matches_inline(self):
        BatchRunner(backend=make_backend("vector")).run(
            self.GRID
        ).report.raise_on_error()
        inline = self._work_counters()

        reset_observability()
        BatchRunner(backend=make_backend("vector:2")).run(
            self.GRID
        ).report.raise_on_error()
        fanned = self._work_counters()

        assert inline["solver.dag_points_solved"] == len(self.GRID)
        assert fanned == inline

    def test_worker_spans_ship_to_parent(self):
        enable_tracing()
        BatchRunner(backend=make_backend("vector:2")).run(
            self.GRID
        ).report.raise_on_error()
        names = {r.name for r in tracer().records()}
        assert "vector.pool_run" in names
        assert "chunk.solve" in names
        solve_pids = {
            r.pid for r in tracer().records() if r.name == "chunk.solve"
        }
        assert solve_pids, "worker chunk spans were not shipped back"
        assert os.getpid() not in solve_pids


# ---------------------------------------------------------------------------
# batch reports and ledger
# ---------------------------------------------------------------------------

class TestBatchReport:
    def test_phase_timings_and_hit_rate(self, params):
        runner = BatchRunner()
        requests = [EvalRequest(params=params)]
        cold = runner.run(requests)
        assert set(cold.report.phase_seconds) == {
            "dedup", "cache_lookup", "evaluate", "store",
        }
        assert cold.report.hit_rate == 0.0
        warm = runner.run(requests)
        assert warm.report.hit_rate == 1.0
        assert "hit rate" in warm.report.describe_phases()

    def test_ledger_records_every_batch(self, params):
        runner = BatchRunner()
        runner.run([EvalRequest(params=params)])
        runner.run([EvalRequest(params=params)])
        reports = batch_reports()
        assert len(reports) == 2
        assert reports[0]["n_evaluated"] == 1
        assert reports[1]["n_cache_hits"] == 1
        assert "phase_seconds" in reports[0]


# ---------------------------------------------------------------------------
# manifests
# ---------------------------------------------------------------------------

class TestManifest:
    # Downstream tooling reads these keys; changing them requires a
    # schema_version bump.
    EXPECTED_KEYS = [
        "schema_version",
        "command",
        "created_at",
        "git_sha",
        "python",
        "backend",
        "params_digest",
        "kernel_flags",
        "reports",
        "cache_stats",
        "errors",
        "metrics",
    ]

    def test_schema_keys_stable(self):
        manifest = RunManifest(command="repro-experiments sweep")
        payload = manifest.finalize().to_dict()
        assert list(payload) == self.EXPECTED_KEYS
        assert payload["schema_version"] == MANIFEST_SCHEMA_VERSION == 1

    def test_kernel_flags_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_FUSED_GATHER", raising=False)
        monkeypatch.setenv("REPRO_STRUCTURE_SHARE", "off")
        flags = kernel_flags()
        assert flags["fused_gather"] is True
        assert flags["structure_share"] is False
        assert flags["env"]["REPRO_STRUCTURE_SHARE"] == "off"

    def test_params_digest_is_order_independent(self):
        assert params_digest(["b", "a"]) == params_digest(["a", "b"])
        assert params_digest(["a"]) != params_digest(["a", "b"])

    def test_write_is_valid_json(self, tmp_path):
        path = tmp_path / "manifest.json"
        RunManifest(command="test", backend="serial").write(path)
        payload = json.loads(path.read_text())
        assert payload["command"] == "test"
        assert payload["git_sha"] is None or isinstance(payload["git_sha"], str)
        assert payload["created_at"]


# ---------------------------------------------------------------------------
# disabled overhead
# ---------------------------------------------------------------------------

class TestDisabledOverhead:
    def test_disabled_span_is_shared_noop(self):
        assert not tracing_enabled()
        assert span("anything", n=1) is NULL_SPAN
        with span("anything"):
            pass
        assert tracer().records() == []

    def test_disabled_span_cost_bounded(self):
        iterations = 50_000
        t0 = time.perf_counter()
        for _ in range(iterations):
            with span("noop", i=0):
                pass
        per_call_ns = (time.perf_counter() - t0) / iterations * 1e9
        # A no-op context manager costs a few hundred ns; 10µs would
        # mean the disabled path started doing real work.  The bound is
        # deliberately loose so slow CI machines never flake.
        assert per_call_ns < 10_000, f"{per_call_ns:.0f}ns per disabled span"


# ---------------------------------------------------------------------------
# worker tracebacks
# ---------------------------------------------------------------------------

class TestPointErrorTraceback:
    def test_serial_traceback(self, params):
        bad = EvalRequest(params=params, method="spn", include_breakdown=True)
        batch = BatchRunner().run([bad])
        (error,) = batch.report.errors
        assert error.error_type == "ParameterError"
        assert "Traceback" in error.traceback
        assert "ParameterError" in error.traceback
        payload = error.as_dict()
        assert set(payload) == {
            "index", "params", "error_type", "error", "traceback",
        }

    def test_pool_traceback_crosses_processes(self, params):
        bad = EvalRequest(params=params, method="spn", include_breakdown=True)
        batch = BatchRunner(backend=ProcessPoolBackend(2)).run(
            [bad, EvalRequest(params=params)]
        )
        (error,) = batch.report.errors
        assert "Traceback" in error.traceback
        assert "ParameterError" in error.traceback
