"""Uniformization vs matrix-exponential oracle."""

import numpy as np
import pytest
import scipy.linalg
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctmc import CTMC, absorption_cdf, analyze_absorbing, transient_distribution
from repro.errors import ParameterError


def expm_oracle(chain: CTMC, t: float, initial: int = 0) -> np.ndarray:
    Q = chain.generator().toarray()
    pi0 = np.zeros(chain.num_states)
    pi0[initial] = 1.0
    return pi0 @ scipy.linalg.expm(Q * t)


class TestTransientDistribution:
    def test_time_zero_is_initial(self):
        chain = CTMC.from_transitions(3, [(0, 1, 1.0), (1, 2, 1.0)])
        pi = transient_distribution(chain, 0.0, initial=0)
        np.testing.assert_allclose(pi, [1, 0, 0])

    def test_two_state_closed_form(self):
        lam = 0.7
        chain = CTMC.from_transitions(2, [(0, 1, lam)])
        for t in (0.1, 1.0, 5.0):
            pi = transient_distribution(chain, t)
            np.testing.assert_allclose(pi[0], np.exp(-lam * t), rtol=1e-10)

    def test_matches_expm_small_chain(self):
        chain = CTMC.from_transitions(
            4,
            [(0, 1, 2.0), (1, 0, 1.0), (1, 2, 3.0), (2, 3, 0.5), (0, 3, 0.1)],
        )
        for t in (0.2, 1.0, 4.0, 20.0):
            ours = transient_distribution(chain, t)
            ref = expm_oracle(chain, t)
            np.testing.assert_allclose(ours, ref, atol=1e-9)

    def test_multiple_times_shape_and_order(self):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0)])
        times = [5.0, 0.5, 2.0]
        out = transient_distribution(chain, times)
        assert out.shape == (3, 2)
        # Row i corresponds to times[i], regardless of sort order.
        np.testing.assert_allclose(out[:, 0], np.exp(-np.asarray(times)), rtol=1e-9)

    def test_negative_time_rejected(self):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0)])
        with pytest.raises(ParameterError):
            transient_distribution(chain, -1.0)

    def test_rows_are_distributions(self):
        chain = CTMC.from_transitions(3, [(0, 1, 10.0), (1, 2, 0.1), (2, 0, 1.0)])
        out = transient_distribution(chain, [0.1, 1.0, 10.0, 100.0])
        np.testing.assert_allclose(out.sum(axis=1), 1.0, atol=1e-12)
        assert (out >= 0).all()


class TestAbsorptionCdf:
    def test_erlang_cdf(self):
        # 2-stage Erlang absorption time CDF.
        lam = 2.0
        chain = CTMC.from_transitions(3, [(0, 1, lam), (1, 2, lam)])
        times = np.array([0.1, 0.5, 1.0, 3.0])
        cdf = absorption_cdf(chain, times)["any"]
        ref = 1.0 - np.exp(-lam * times) * (1.0 + lam * times)
        np.testing.assert_allclose(cdf, ref, atol=1e-10)

    def test_classes_split(self):
        alpha, beta = 1.0, 3.0
        chain = CTMC.from_transitions(3, [(0, 1, alpha), (0, 2, beta)])
        out = absorption_cdf(chain, [100.0], classes={"a": [1], "b": [2]})
        assert out["a"][0] == pytest.approx(alpha / (alpha + beta), abs=1e-9)
        assert out["b"][0] == pytest.approx(beta / (alpha + beta), abs=1e-9)
        assert out["any"][0] == pytest.approx(1.0, abs=1e-9)

    def test_cdf_limit_matches_mtta_consistency(self):
        # CDF should approach 1 and the mean from trapezoid integration of
        # (1 - CDF) should approach MTTA.
        chain = CTMC.from_transitions(3, [(0, 1, 0.5), (1, 2, 0.25)])
        sol = analyze_absorbing(chain)
        ts = np.linspace(0.0, 200.0, 4001)
        cdf = absorption_cdf(chain, ts)["any"]
        mtta_numeric = np.trapezoid(1.0 - cdf, ts)
        assert mtta_numeric == pytest.approx(sol.mtta, rel=1e-3)

    def test_bad_class_state(self):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0)])
        with pytest.raises(ParameterError):
            absorption_cdf(chain, [1.0], classes={"x": [9]})


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), t=st.floats(min_value=0.01, max_value=30.0))
def test_property_uniformization_matches_expm(seed, t):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 8))
    transitions = []
    for i in range(n):
        for j in range(n):
            if i != j and rng.random() < 0.5:
                transitions.append((i, j, float(rng.uniform(0.05, 3.0))))
    chain = CTMC.from_transitions(n, transitions)
    ours = transient_distribution(chain, t)
    ref = expm_oracle(chain, t)
    np.testing.assert_allclose(ours, ref, atol=1e-8)
