"""Validators and RNG management."""

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.rng import RandomSource, as_generator, spawn_children
from repro.validation import (
    require_finite,
    require_in,
    require_in_range,
    require_int,
    require_non_negative,
    require_non_negative_int,
    require_odd,
    require_positive,
    require_positive_int,
    require_probability,
    require_sorted_unique,
)


class TestValidators:
    def test_require_positive(self):
        assert require_positive("x", 2.5) == 2.5
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ParameterError):
                require_positive("x", bad)

    def test_require_non_negative(self):
        assert require_non_negative("x", 0.0) == 0.0
        with pytest.raises(ParameterError):
            require_non_negative("x", -0.001)

    def test_require_probability(self):
        assert require_probability("p", 0.0) == 0.0
        assert require_probability("p", 1.0) == 1.0
        for bad in (-0.1, 1.1, float("nan")):
            with pytest.raises(ParameterError):
                require_probability("p", bad)

    def test_require_int_rejects_bool_and_float(self):
        assert require_int("n", 5) == 5
        assert require_int("n", np.int64(7)) == 7
        with pytest.raises(ParameterError):
            require_int("n", True)
        with pytest.raises(ParameterError):
            require_int("n", 2.5)

    def test_require_positive_int(self):
        assert require_positive_int("n", 1) == 1
        with pytest.raises(ParameterError):
            require_positive_int("n", 0)

    def test_require_non_negative_int(self):
        assert require_non_negative_int("n", 0) == 0
        with pytest.raises(ParameterError):
            require_non_negative_int("n", -1)

    def test_require_in(self):
        assert require_in("k", "a", ("a", "b")) == "a"
        with pytest.raises(ParameterError):
            require_in("k", "z", ("a", "b"))

    def test_require_in_range(self):
        assert require_in_range("x", 0.5, 0.0, 1.0) == 0.5
        with pytest.raises(ParameterError):
            require_in_range("x", 0.0, 0.0, 1.0, inclusive=False)

    def test_require_odd(self):
        assert require_odd("m", 5) == 5
        with pytest.raises(ParameterError):
            require_odd("m", 4)

    def test_require_finite(self):
        assert require_finite("x", -3.0) == -3.0
        with pytest.raises(ParameterError):
            require_finite("x", float("inf"))

    def test_require_sorted_unique(self):
        assert require_sorted_unique("g", [1.0, 2.0]) == (1.0, 2.0)
        with pytest.raises(ParameterError):
            require_sorted_unique("g", [2.0, 1.0])
        with pytest.raises(ParameterError):
            require_sorted_unique("g", [1.0, 1.0])
        with pytest.raises(ParameterError):
            require_sorted_unique("g", [])


class TestAsGenerator:
    def test_from_int_deterministic(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_passthrough_generator(self):
        g = np.random.default_rng(1)
        assert as_generator(g) is g

    def test_from_seed_sequence(self):
        g = as_generator(np.random.SeedSequence(9))
        assert isinstance(g, np.random.Generator)

    def test_none_gives_fresh(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_invalid_seed(self):
        with pytest.raises(ParameterError):
            as_generator("seed")  # type: ignore[arg-type]
        with pytest.raises(ParameterError):
            as_generator(-1)
        with pytest.raises(ParameterError):
            as_generator(True)  # type: ignore[arg-type]


class TestSpawnChildren:
    def test_children_independent_and_deterministic(self):
        a1, a2 = spawn_children(7, 2)
        b1, b2 = spawn_children(7, 2)
        np.testing.assert_array_equal(a1.random(4), b1.random(4))
        np.testing.assert_array_equal(a2.random(4), b2.random(4))
        assert not np.allclose(a1.random(4), a2.random(4))

    def test_from_generator(self):
        children = spawn_children(np.random.default_rng(3), 3)
        assert len(children) == 3

    def test_negative_count(self):
        with pytest.raises(ParameterError):
            spawn_children(1, -1)


class TestRandomSource:
    def test_streams_stable_across_instances(self):
        a = RandomSource(11).stream("mobility").random(3)
        b = RandomSource(11).stream("mobility").random(3)
        np.testing.assert_array_equal(a, b)

    def test_streams_differ_by_name(self):
        rs = RandomSource(11)
        a = rs.stream("mobility").random(3)
        b = rs.stream("simulator").random(3)
        assert not np.allclose(a, b)

    def test_stream_cached(self):
        rs = RandomSource(5)
        assert rs.stream("x") is rs.stream("x")

    def test_order_independence(self):
        r1 = RandomSource(2)
        r1.stream("a")
        v1 = r1.stream("b").random(2)
        r2 = RandomSource(2)
        v2 = r2.stream("b").random(2)
        np.testing.assert_array_equal(v1, v2)

    def test_invalid(self):
        with pytest.raises(ParameterError):
            RandomSource(3.5)  # type: ignore[arg-type]
        with pytest.raises(ParameterError):
            RandomSource(1).stream("")

    def test_seed_property(self):
        assert RandomSource(9).seed == 9
        assert RandomSource().seed is None

    def test_streams_iterator(self):
        rs = RandomSource(1)
        gens = list(rs.streams(["a", "b"]))
        assert len(gens) == 2
