"""Analysis harness: data series, tables, sweeps, IO, registry."""

import json

import pytest

from repro.analysis import (
    DataSeries,
    ExperimentConfig,
    get_experiment,
    grid_sweep,
    list_experiments,
    render_table,
    run,
    write_experiment_artifacts,
)
from repro.analysis.io import write_series_csv
from repro.analysis.tables import render_series
from repro.errors import ExperimentError, ParameterError


class TestDataSeries:
    def make(self) -> DataSeries:
        return DataSeries.build(
            "demo", "x", [1, 2, 3], "y", {"a": [10.0, 30.0, 20.0], "b": [3, 2, 1]}
        )

    def test_build_coerces_floats(self):
        s = self.make()
        assert s.x == (1.0, 2.0, 3.0)
        assert s.series["a"] == (10.0, 30.0, 20.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            DataSeries.build("bad", "x", [1, 2], "y", {"a": [1.0]})
        with pytest.raises(ParameterError):
            DataSeries.build("bad", "x", [], "y", {})

    def test_argbest(self):
        s = self.make()
        assert s.argbest("a") == (2.0, 30.0)
        assert s.argbest("b", maximize=False) == (3.0, 1.0)
        with pytest.raises(ParameterError):
            s.argbest("zz")

    def test_to_rows_round_trip(self):
        rows = self.make().to_rows()
        assert rows[0] == ["x", "a", "b"]
        assert len(rows) == 4

    def test_to_dict(self):
        d = self.make().to_dict()
        assert d["name"] == "demo"
        assert d["series"]["b"] == [3.0, 2.0, 1.0]


class TestTables:
    def test_render_alignment(self):
        text = render_table([["col", "value"], ["x", "1"], ["longer", "22"]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert len(set(len(l) for l in lines)) == 1  # aligned

    def test_ragged_rejected(self):
        with pytest.raises(ParameterError):
            render_table([["a", "b"], ["only-one"]])
        with pytest.raises(ParameterError):
            render_table([])

    def test_render_series(self):
        s = DataSeries.build("demo", "x", [1], "y", {"a": [2.0]})
        out = render_series(s)
        assert "demo" in out and "2.0000e+00" in out


class TestGridSweep:
    def test_cartesian_order(self):
        calls = []
        grid_sweep(
            {"a": [1, 2], "b": ["x", "y"]},
            lambda a, b: calls.append((a, b)) or f"{a}{b}",
        )
        assert calls == [(1, "x"), (1, "y"), (2, "x"), (2, "y")]

    def test_points_carry_values(self):
        pts = grid_sweep({"a": [3]}, lambda a: a * 2)
        assert pts[0].value == 6
        assert pts[0].assignment == {"a": 3}

    def test_validation(self):
        with pytest.raises(ParameterError):
            grid_sweep({}, lambda: None)
        with pytest.raises(ParameterError):
            grid_sweep({"a": []}, lambda a: None)

    def test_progress_callback(self):
        seen = []
        grid_sweep({"a": [1, 2]}, lambda a: a, progress=seen.append)
        assert len(seen) == 2


class TestRegistry:
    def test_all_experiments_registered(self):
        ids = {e.id for e in list_experiments()}
        assert {
            "fig2",
            "fig3",
            "fig4",
            "fig5",
            "abl-attacker",
            "abl-hostids",
            "abl-coupling",
            "abl-workload",
            "baseline-host",
            "val-sim",
            "scale",
        } <= ids

    def test_unknown_id(self):
        with pytest.raises(ExperimentError):
            get_experiment("fig99")

    def test_config_defaults(self):
        quick = ExperimentConfig(quick=True)
        full = ExperimentConfig(quick=False)
        assert quick.num_nodes == 40
        assert full.num_nodes == 100
        assert quick.tids_grid[0] == 5

    def test_run_scale_quick(self):
        result = run("scale", quick=True)
        assert result.experiment_id == "scale"
        series = result.series[0]
        assert series.series["states"][0] < series.series["states"][-1]
        assert "N=" in result.notes[0]
        assert "solver_scaling" in result.render()


class TestArtifacts:
    def test_write_series_csv(self, tmp_path):
        s = DataSeries.build("demo", "x", [1, 2], "y", {"a": [1.0, 2.0]})
        path = write_series_csv(s, tmp_path / "sub" / "demo.csv")
        text = path.read_text()
        assert text.splitlines()[0] == "x,a"

    def test_write_experiment_artifacts(self, tmp_path):
        result = run("scale", quick=True)
        paths = write_experiment_artifacts(result, tmp_path)
        names = {p.name for p in paths}
        assert "scale.json" in names
        bundle = json.loads((tmp_path / "scale.json").read_text())
        assert bundle["experiment"] == "scale"
        assert bundle["series"][0]["name"] == "solver_scaling"
