"""Golden-value regression pins for the paper-figure operating points.

``tests/golden/paper_points.json`` stores exact expectations for
representative fig2–fig5 grid points (quick ``N = 40``) plus one
survivability curve. Solver refactors — batched sweeps, fused kernels,
structure-cache changes — must reproduce these to ``rtol = 1e-9``; a
legitimate *model semantics* change must regenerate the file
deliberately (see its ``description`` field) and bump
``repro.engine.keys.SCHEMA_VERSION`` so cached results invalidate with
it. This is the tripwire that keeps future optimisation PRs from
silently drifting the reproduction.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.core.metrics import (
    evaluate,
    evaluate_batch,
    evaluate_survivability,
    evaluate_survivability_batch,
)
from repro.params import GCSParameters

GOLDEN_PATH = Path(__file__).parent / "golden" / "paper_points.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())
RTOL = float(GOLDEN["rtol"])


def _params(overrides: dict) -> GCSParameters:
    return GCSParameters.paper_defaults(**overrides)


@pytest.mark.parametrize(
    "point", GOLDEN["points"], ids=[p["id"] for p in GOLDEN["points"]]
)
def test_paper_operating_point(point):
    result = evaluate(_params(point["overrides"]))
    expected = point["expected"]
    assert result.mttsf_s == pytest.approx(expected["mttsf_s"], rel=RTOL)
    assert result.ctotal_hop_bits_s == pytest.approx(
        expected["ctotal_hop_bits_s"], rel=RTOL
    )
    assert result.channel_utilization == pytest.approx(
        expected["channel_utilization"], rel=RTOL
    )
    for name, prob in expected["failure_probabilities"].items():
        assert result.failure_probabilities[name] == pytest.approx(
            prob, rel=RTOL, abs=1e-12
        )


def test_batched_solver_hits_the_same_pins():
    """The batched path must satisfy the same golden pins (it is
    bit-identical to the per-point path, so this can only fail if both
    drift together — exactly the regression this file exists for)."""
    scenarios = [_params(p["overrides"]) for p in GOLDEN["points"]]
    for point, result in zip(GOLDEN["points"], evaluate_batch(scenarios)):
        assert result.mttsf_s == pytest.approx(
            point["expected"]["mttsf_s"], rel=RTOL
        )
        assert result.ctotal_hop_bits_s == pytest.approx(
            point["expected"]["ctotal_hop_bits_s"], rel=RTOL
        )


@pytest.mark.parametrize(
    "curve",
    GOLDEN["survivability"],
    ids=[c["id"] for c in GOLDEN["survivability"]],
)
def test_survivability_curve_pin(curve):
    params = _params(
        {"num_nodes": curve["overrides"]["num_nodes"]}
    ).replacing(
        **{k: v for k, v in curve["overrides"].items() if k != "num_nodes"}
    )
    times = tuple(curve["times_s"])
    expected = curve["expected"]

    point = evaluate_survivability(params, times=times)
    np.testing.assert_allclose(point.survival, expected["survival"], rtol=RTOL)
    np.testing.assert_allclose(
        point.failure_cdf["any"], expected["failure_cdf_any"], rtol=RTOL
    )
    np.testing.assert_allclose(
        point.time_bounded_cost, expected["time_bounded_cost"], rtol=RTOL
    )

    (batched,) = evaluate_survivability_batch([params], times=times)
    np.testing.assert_allclose(
        batched.survival, expected["survival"], rtol=RTOL
    )


def test_golden_file_shape():
    """The file itself is part of the contract — catch accidental edits."""
    assert RTOL <= 1e-8
    assert len(GOLDEN["points"]) >= 5
    ids = [p["id"] for p in GOLDEN["points"]]
    assert len(set(ids)) == len(ids)
    for point in GOLDEN["points"]:
        assert point["expected"]["mttsf_s"] > 0
        probs = point["expected"]["failure_probabilities"]
        assert sum(probs.values()) == pytest.approx(1.0, abs=1e-6)
