"""Timeout and diagnostics behaviour of the advisory FileLock.

The cache's multi-file mutations serialise on :class:`FileLock`; with
the worker-pool tier a wedged holder would otherwise hang every writer
in the fleet.  Acquisition is therefore time-bounded: it polls
non-blockingly until ``timeout`` and then raises
:class:`LockTimeoutError` naming the holder (pid stamped into the
lockfile, its liveness, the lock's age) and bumps the
``lock.wait_timeout`` counter so the stall is visible in ``/health``.
"""

import os

import pytest

from repro.engine.locks import (
    DEFAULT_TIMEOUT_S,
    FileLock,
    LockTimeoutError,
)
from repro.obs import metrics, reset_observability


@pytest.fixture(autouse=True)
def _fresh_obs():
    reset_observability()
    yield
    reset_observability()


def _lock_pair(tmp_path, timeout=0.2):
    """A held lock plus a second instance contending for the same file.

    ``flock`` is per open file description, so two instances in one
    process genuinely exclude each other — no subprocess needed.
    """
    path = tmp_path / "cache.lock"
    holder = FileLock(path)
    if not holder.advisory:  # pragma: no cover — exotic platforms
        pytest.skip("no advisory lock primitive on this platform")
    holder.acquire()
    return holder, FileLock(path, timeout=timeout)


class TestTimeout:
    def test_timeout_raises_with_holder_diagnostics(self, tmp_path):
        holder, waiter = _lock_pair(tmp_path)
        try:
            with pytest.raises(LockTimeoutError) as excinfo:
                waiter.acquire()
            message = str(excinfo.value)
            assert str(waiter.path) in message
            assert "0.2s" in message
            # The holder is this very process: pid stamped at acquire,
            # liveness probed at timeout.
            assert f"holder pid {os.getpid()} (alive)" in message
            assert "lock age" in message
            assert "REPRO_LOCK_TIMEOUT_S" in message
        finally:
            holder.release()

    def test_timeout_bumps_wait_timeout_counter(self, tmp_path):
        holder, waiter = _lock_pair(tmp_path)
        try:
            with pytest.raises(LockTimeoutError):
                waiter.acquire()
        finally:
            holder.release()
        assert metrics().snapshot()["lock.wait_timeout"]["value"] == 1

    def test_timed_out_waiter_leaves_lock_usable(self, tmp_path):
        holder, waiter = _lock_pair(tmp_path)
        with pytest.raises(LockTimeoutError):
            waiter.acquire()
        assert not waiter.held
        holder.release()
        # Once the holder lets go, the same waiter acquires cleanly.
        with waiter:
            assert waiter.held

    def test_waiter_gets_lock_when_released_within_timeout(self, tmp_path):
        path = tmp_path / "cache.lock"
        holder = FileLock(path)
        holder.acquire()
        holder.release()
        with FileLock(path, timeout=5.0) as lock:
            assert lock.held


class TestConfiguration:
    def test_default_timeout_constant(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_LOCK_TIMEOUT_S", raising=False)
        assert FileLock(tmp_path / "l").timeout == DEFAULT_TIMEOUT_S

    def test_env_var_overrides_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LOCK_TIMEOUT_S", "7.5")
        assert FileLock(tmp_path / "l").timeout == 7.5

    def test_explicit_timeout_beats_env_var(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LOCK_TIMEOUT_S", "7.5")
        assert FileLock(tmp_path / "l", timeout=0.1).timeout == 0.1

    def test_garbage_env_value_falls_back(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LOCK_TIMEOUT_S", "soon-ish")
        assert FileLock(tmp_path / "l").timeout == DEFAULT_TIMEOUT_S


class TestHolderStamp:
    def test_lockfile_records_holder_pid(self, tmp_path):
        path = tmp_path / "cache.lock"
        with FileLock(path):
            stamped = path.read_text().split()
            assert stamped[0] == str(os.getpid())

    def test_reentrant_acquire_still_works(self, tmp_path):
        lock = FileLock(tmp_path / "cache.lock", timeout=1.0)
        with lock:
            with lock:
                assert lock.held
            assert lock.held
        assert not lock.held
