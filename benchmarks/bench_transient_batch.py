"""Batched transient survivability benchmark: per-point vs batched.

Runs one survivability campaign — a hostile "contested burst" variant
of the fig2 grid (``m × TIDS``, quick ``N = 40``) whose curves decay
visibly inside the mission window — twice through the engine:

* **per-point serial** — every grid point builds its own chain and runs
  uniformization per mission time (`BatchRunner()` + serial backend
  over ``SurvivabilityRequest``s);
* **batched vector** — ``--jobs vector``: one cached lattice structure,
  rate fills stacked, one multi-point power sequence shared across the
  *whole* mission-time grid
  (:func:`repro.ctmc.transient.transient_distribution_batch`).

and asserts

* the two campaigns agree within the documented equivalence bound
  (:data:`repro.ctmc.transient.BATCH_EQUIVALENCE_RTOL`) on every
  survival value, failure CDF and time-bounded cost;
* with ``REPRO_BENCH_REQUIRE_SPEEDUP=<X>`` set (the CI multi-core job
  sets 2), the batched run is at least ``X``× faster than per-point
  serial — the win is algorithmic (shared powers across the time grid
  + vectorisation across points), so it must hold even on one core.

The report is also emitted as machine-readable JSON (``--json PATH`` or
``REPRO_BENCH_JSON=PATH``) with points/s and speedup, which CI uploads
as an artifact so the speedup trend is diffable across commits.

Runs under pytest-benchmark like the other ``bench_*`` files and as a
standalone script
(``PYTHONPATH=src python benchmarks/bench_transient_batch.py``).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.core.fastpath import clear_structure_cache
from repro.ctmc.transient import BATCH_EQUIVALENCE_RTOL
from repro.engine import BatchRunner, SurvivabilitySweep, available_cpus, make_backend
from repro.voting.majority import clear_table_cache

#: Mission-time grid (seconds). Λ for the lattice is ~1e3 (fast
#: small-group rekey states), so uniformization depth is Λ·t_max ≈ 5e3
#: — and the per-point path pays Λ·Σt ≈ 1.7e4 steps *per grid point*
#: because it restarts the power sequence at every time point.
MISSION_TIMES = (0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0)


def survivability_campaign(*, quick: bool = True) -> SurvivabilitySweep:
    """Contested-burst survivability grid (fig2 axes, hostile rates)."""
    return SurvivabilitySweep(
        name="contested-burst-survivability",
        times_s=MISSION_TIMES,
        axes={
            "num_voters": (3, 5, 7, 9),
            "detection_interval_s": (60.0, 120.0, 240.0),
        },
        base={
            "num_nodes": 40 if quick else 100,
            # Hostile overrides: fast compromise + chatty workload +
            # leaky host IDS, so S(t) decays inside the window instead
            # of sitting at 1.0.
            "base_compromise_rate_hz": 0.5,
            "data_rate_hz": 2.0,
            "host_false_negative": 0.2,
        },
    )


def _cold_caches() -> None:
    """Drop every process-wide memo a prior run could have warmed."""
    clear_structure_cache()
    clear_table_cache()


def _campaign_curves(outcome):
    return [
        (
            result.survival,
            result.failure_cdf["any"],
            result.time_bounded_cost,
        )
        for _, result in outcome.points
    ]


def _run_all():
    campaign = survivability_campaign(quick=True)

    _cold_caches()
    serial = BatchRunner()
    t0 = time.perf_counter()
    outcome_serial = campaign.run(serial)
    serial_s = time.perf_counter() - t0

    _cold_caches()
    vector = BatchRunner(backend=make_backend("vector"))
    t1 = time.perf_counter()
    outcome_vector = campaign.run(vector)
    vector_s = time.perf_counter() - t1

    n_unique = outcome_vector.report.n_unique
    return {
        "campaign": campaign.name,
        "n_points": len(campaign),
        "n_times": len(campaign.times_s),
        "n_unique": n_unique,
        "serial_s": serial_s,
        "vector_s": vector_s,
        "speedup": serial_s / vector_s,
        "points_per_s_serial": n_unique / serial_s,
        "points_per_s_vector": n_unique / vector_s,
        "cpus": available_cpus(),
        "outcome_serial": outcome_serial,
        "outcome_vector": outcome_vector,
    }


def _assert_claims(r) -> None:
    assert r["outcome_serial"].report.n_errors == 0
    assert r["outcome_vector"].report.n_errors == 0

    # Numerically equivalent within the documented bound across every
    # curve of the campaign — the solver contract.
    for serial_curves, vector_curves in zip(
        _campaign_curves(r["outcome_serial"]),
        _campaign_curves(r["outcome_vector"]),
    ):
        for serial_curve, vector_curve in zip(serial_curves, vector_curves):
            np.testing.assert_allclose(
                vector_curve,
                serial_curve,
                rtol=BATCH_EQUIVALENCE_RTOL,
                atol=1e-12,
            )

    # The curves must actually exercise the transient regime (guards
    # against a silently-benign grid where everything stays at 1.0).
    final_survival = [
        result.survival[-1] for _, result in r["outcome_vector"].points
    ]
    assert min(final_survival) < 0.9, final_survival

    required = os.environ.get("REPRO_BENCH_REQUIRE_SPEEDUP")
    if required:
        floor = float(required)
        assert r["speedup"] >= floor, (
            f"batched transient {r['speedup']:.2f}x not >= required "
            f"{floor:g}x (serial {r['serial_s']:.2f}s, vector "
            f"{r['vector_s']:.2f}s, {r['cpus']} cpus)"
        )


def _json_report(r) -> dict:
    return {
        key: r[key]
        for key in (
            "campaign",
            "n_points",
            "n_times",
            "n_unique",
            "serial_s",
            "vector_s",
            "speedup",
            "points_per_s_serial",
            "points_per_s_vector",
            "cpus",
        )
    }


def _write_json(r, path: "str | Path | None") -> None:
    path = path or os.environ.get("REPRO_BENCH_JSON")
    if not path:
        return
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(_json_report(r), indent=2) + "\n")
    print(f"json report: {path}")


def bench_transient_batch(once):
    r = once(_run_all)
    _assert_claims(r)
    _write_json(r, None)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the machine-readable report here "
        "(default: $REPRO_BENCH_JSON if set)",
    )
    args = parser.parse_args(argv)

    r = _run_all()
    _assert_claims(r)
    print(
        f"campaign: {r['campaign']} ({r['n_points']} points x "
        f"{r['n_times']} mission times; {r['cpus']} cpus)"
    )
    print(
        f"{'per-point serial':18s} {r['serial_s']:8.2f}s  "
        f"{r['points_per_s_serial']:7.2f} pts/s   1.00x"
    )
    print(
        f"{'batched (vector)':18s} {r['vector_s']:8.2f}s  "
        f"{r['points_per_s_vector']:7.2f} pts/s  {r['speedup']:5.2f}x"
    )
    print(f"batch report: {r['outcome_vector'].report.describe()}")
    print(f"equivalent within rtol={BATCH_EQUIVALENCE_RTOL:g}: yes (asserted)")
    _write_json(r, args.json)


if __name__ == "__main__":
    main()
