"""Thread pool vs process pool on the paper campaign.

Motivation: on free-threaded CPython (3.13t, ``Py_GIL_DISABLED``) the
engine's :class:`~repro.engine.executor.ThreadPoolBackend` should be
able to match or beat the process pool — same parallelism, no spawn or
pickling cost. On a GIL build, threads only win where the solver spends
its time inside GIL-releasing scipy/BLAS calls. The CI ``tests-cp313t``
leg runs this benchmark and records the verdict in its step summary so
the trajectory of "are threads competitive yet?" is visible per commit.

Reports wall-clock for both pools at the same worker count plus the
``thread_vs_process`` ratio (> 1 means threads are faster), the GIL
state, and bit-identity of the two result sets (asserted, as always).

Standalone:
``PYTHONPATH=src python benchmarks/bench_thread_vs_process.py [--workers N]``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

from repro.core.fastpath import clear_structure_cache
from repro.engine import BatchRunner, available_cpus, make_backend
from repro.engine.jobs import paper_campaign
from repro.voting.majority import clear_table_cache


def _gil_enabled() -> "bool | None":
    """``False`` on a free-threaded build running with the GIL off."""
    probe = getattr(sys, "_is_gil_enabled", None)
    return probe() if probe is not None else True


def _timed_run(campaign, jobs):
    clear_structure_cache()
    clear_table_cache()
    runner = BatchRunner(backend=make_backend(jobs))
    t0 = time.perf_counter()
    outcome = campaign.run(runner)
    return outcome, time.perf_counter() - t0


def _campaign_values(outcome):
    return [
        (
            job_outcome.job.name,
            tuple(job_outcome.values("mttsf_s")),
            tuple(job_outcome.values("ctotal_hop_bits_s")),
        )
        for job_outcome in outcome.outcomes
    ]


def _run_all(*, workers: "int | None" = None):
    campaign = paper_campaign(quick=True)
    n = workers or max(2, min(4, available_cpus()))

    outcome_threads, thread_s = _timed_run(campaign, f"thread:{n}")
    outcome_procs, process_s = _timed_run(campaign, n)

    assert outcome_threads.report.n_errors == 0
    assert outcome_procs.report.n_errors == 0
    assert _campaign_values(outcome_threads) == _campaign_values(outcome_procs)

    return {
        "campaign": campaign.name,
        "n_points": len(campaign),
        "workers": n,
        "cpus": available_cpus(),
        "python": f"{sys.version_info.major}.{sys.version_info.minor}",
        "gil_enabled": _gil_enabled(),
        "thread_s": thread_s,
        "process_s": process_s,
        "thread_vs_process": process_s / thread_s,
        "threads_win": thread_s < process_s,
    }


def _write_json(r, path) -> None:
    path = path or os.environ.get("REPRO_BENCH_JSON")
    if not path:
        return
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(r, indent=2) + "\n")
    print(f"json report: {path}")


def bench_thread_vs_process(once):
    r = once(_run_all)
    _write_json(r, None)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="pool size for both backends (default: min(4, cpus), >= 2)",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the machine-readable report here "
        "(default: $REPRO_BENCH_JSON if set)",
    )
    args = parser.parse_args(argv)

    r = _run_all(workers=args.workers)
    gil = r["gil_enabled"]
    gil_label = "on" if gil else ("off (free-threaded)" if gil is False else "?")
    print(
        f"campaign: {r['campaign']} ({r['n_points']} points, "
        f"{r['workers']} workers, {r['cpus']} cpus, "
        f"python {r['python']}, GIL {gil_label})"
    )
    print(f"{'thread pool':14s} {r['thread_s']:8.2f}s")
    print(f"{'process pool':14s} {r['process_s']:8.2f}s")
    verdict = "threads win" if r["threads_win"] else "processes win"
    print(f"ratio: {r['thread_vs_process']:.2f}x ({verdict})")
    print("bit-identical: yes (asserted)")
    _write_json(r, args.json)


if __name__ == "__main__":
    main()
