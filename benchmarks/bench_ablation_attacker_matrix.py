"""Ablation: attacker function × detection function MTTSF matrix.

Probes the paper's Section 5 claim that the detection function should be
matched to the attacker function. Finding (documented in
EXPERIMENTS.md): under the paper's literal ``mc = (Tm+UCm)/Tm``
definition with prompt eviction, ``mc`` hovers near 1 along typical
trajectories, so the attacker-function identity has only *second-order*
effect on MTTSF — the detection side (Figure 4's md ramp) is first-order.
The assertions below pin exactly that structure.
"""

from repro.analysis.experiments import run


def bench_ablation_attacker_matrix(once):
    result = once(lambda: run("abl-attacker", quick=True))
    series = result.series[0]
    forms = ("logarithmic", "linear", "polynomial")

    # 9 curves present.
    assert len(series.series) == 9

    peaks = {
        (a, d): series.argbest(f"A={a[:4]}/D={d[:4]}")[1]
        for a in forms
        for d in forms
    }

    # First-order structure: for every attacker, the detection-side
    # ordering at the peak is the same as Figure 4's (log >= lin > poly
    # at this operating point).
    for a in forms:
        assert peaks[(a, "logarithmic")] > peaks[(a, "polynomial")]
        assert peaks[(a, "linear")] > peaks[(a, "polynomial")]

    # Second-order structure: switching the attacker function moves the
    # peak far less than switching the detection function does.
    for d in forms:
        attacker_spread = max(peaks[(a, d)] for a in forms) / min(
            peaks[(a, d)] for a in forms
        )
        assert attacker_spread < 1.5, f"attacker spread too large for D={d}"
    detection_spread = max(peaks[("linear", d)] for d in forms) / min(
        peaks[("linear", d)] for d in forms
    )
    assert detection_spread > 1.2

    # A faster-escalating attacker never helps survival.
    assert peaks[("polynomial", "linear")] <= peaks[("logarithmic", "linear")] * 1.01
