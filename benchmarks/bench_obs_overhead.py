"""Observability benchmark: the obs layer must be ~free when disabled.

Three measurements:

* **disabled span ns/call** — microbenchmark of ``with span(...)`` with
  tracing off (the hot-path cost every instrumented call site pays); it
  must stay in no-op territory, asserted with a generous hard bound;
* **disabled vs traced campaign** — the quick paper-figure campaign
  run twice through fresh runners, once with tracing off and once with
  tracing on, reporting the traced wall-time delta and the span count;
* **estimated disabled overhead** — span count × disabled ns/call as a
  percentage of the campaign wall time.  This is the "<1% when off"
  claim, computed from deterministic quantities instead of differencing
  two noisy wall-clock runs.

Setting ``REPRO_BENCH_MAX_OBS_OVERHEAD_PCT=<X>`` (the CI bench job
sets 1) turns the estimated-overhead report into a hard failure gate.

Runs under pytest-benchmark like the other ``bench_*`` files, and as a
standalone script::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py \\
        --json bench-artifacts/obs_overhead.json \\
        --trace-out bench-artifacts/obs_trace.json \\
        --metrics-out bench-artifacts/obs_metrics.json
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro.engine import BatchRunner
from repro.engine.jobs import paper_campaign
from repro.obs import (
    NULL_SPAN,
    disable_tracing,
    enable_tracing,
    metrics,
    reset_observability,
    span,
    tracer,
    write_chrome_trace,
)

_MICROBENCH_ITERATIONS = 200_000


def _disabled_span_ns() -> float:
    """Per-call cost of an instrumented site while tracing is off."""
    disable_tracing()
    assert span("bench.noop") is NULL_SPAN
    t0 = time.perf_counter()
    for _ in range(_MICROBENCH_ITERATIONS):
        with span("bench.noop", i=0):
            pass
    elapsed = time.perf_counter() - t0
    return elapsed / _MICROBENCH_ITERATIONS * 1e9


def _run_all():
    campaign = paper_campaign(quick=True)

    reset_observability()
    disable_tracing()
    t0 = time.perf_counter()
    outcome_off = campaign.run(BatchRunner())
    disabled_s = time.perf_counter() - t0

    reset_observability()
    enable_tracing()
    try:
        t1 = time.perf_counter()
        outcome_on = campaign.run(BatchRunner())
        traced_s = time.perf_counter() - t1
        span_count = len(tracer().records())
        metrics_snapshot = metrics().snapshot()
    finally:
        disable_tracing()

    span_ns = _disabled_span_ns()
    overhead_pct = span_count * span_ns / 1e9 / disabled_s * 100.0
    phases = dict(outcome_on.report.phase_seconds)
    return {
        "disabled_span_ns": span_ns,
        "span_count": span_count,
        "disabled_s": disabled_s,
        "traced_s": traced_s,
        "overhead_pct": overhead_pct,
        "traced_overhead_pct": (traced_s - disabled_s) / disabled_s * 100.0,
        "phases": phases,
        "outcome_off": outcome_off,
        "outcome_on": outcome_on,
        "metrics_snapshot": metrics_snapshot,
    }


def _assert_claims(r) -> None:
    # A disabled call site is one attribute check + a shared no-op
    # context manager; thousands of ns would mean tracing snuck into
    # the hot path.  Bound is generous for slow CI machines.
    assert r["disabled_span_ns"] < 5_000, (
        f"disabled span costs {r['disabled_span_ns']:.0f}ns/call — "
        "the disabled path is no longer a no-op"
    )
    # Both runs must produce identical numbers: observability is
    # read-only with respect to results.
    vals_off = [
        (jo.job.name, tuple(jo.values("mttsf_s")))
        for jo in r["outcome_off"].outcomes
    ]
    vals_on = [
        (jo.job.name, tuple(jo.values("mttsf_s")))
        for jo in r["outcome_on"].outcomes
    ]
    assert vals_off == vals_on, "tracing changed campaign results"

    gate = os.environ.get("REPRO_BENCH_MAX_OBS_OVERHEAD_PCT")
    if gate:
        assert r["overhead_pct"] < float(gate), (
            f"estimated disabled-obs overhead {r['overhead_pct']:.3f}% "
            f"exceeds the {gate}% gate ({r['span_count']} span sites × "
            f"{r['disabled_span_ns']:.0f}ns over {r['disabled_s']:.2f}s)"
        )


def _json_report(r) -> dict:
    return {
        "disabled_span_ns": r["disabled_span_ns"],
        "span_count": r["span_count"],
        "disabled_s": r["disabled_s"],
        "traced_s": r["traced_s"],
        "overhead_pct": r["overhead_pct"],
        "traced_overhead_pct": r["traced_overhead_pct"],
        "phases": r["phases"],
    }


def bench_obs_overhead(once):
    r = once(_run_all)
    _assert_claims(r)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the machine-readable report here "
        "(default: $REPRO_BENCH_JSON if set)",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the traced campaign's Chrome trace here",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the traced campaign's metrics snapshot here",
    )
    args = parser.parse_args(argv)

    r = _run_all()
    _assert_claims(r)

    print(f"disabled span : {r['disabled_span_ns']:8.0f} ns/call "
          f"({_MICROBENCH_ITERATIONS} iterations)")
    print(f"campaign off  : {r['disabled_s']:8.2f} s")
    print(f"campaign on   : {r['traced_s']:8.2f} s "
          f"({r['traced_overhead_pct']:+.1f}% traced, "
          f"{r['span_count']} spans)")
    print(f"disabled cost : {r['overhead_pct']:8.3f} % of wall time "
          "(estimated: span sites x ns/call)")

    if args.trace_out:
        path = Path(args.trace_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        # The traced campaign's spans are still buffered (tracing was
        # disabled afterwards, not cleared).
        write_chrome_trace(path)
        print(f"trace: {path}")
    if args.metrics_out:
        path = Path(args.metrics_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(r["metrics_snapshot"], indent=2) + "\n")
        print(f"metrics: {path}")
    json_path = args.json or os.environ.get("REPRO_BENCH_JSON")
    if json_path:
        path = Path(json_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(_json_report(r), indent=2) + "\n")
        print(f"json report: {path}")


if __name__ == "__main__":
    main()
