"""Batched lattice solver benchmark: per-point vs kernel tiers.

Runs the fig2–fig5 paper campaign (quick ``N = 40`` grids by default,
``--full`` for the paper-scale ``N = 100`` campaign; 112 points, 54
unique after dedup) through the engine in up to four configurations:

* **per-point serial** — the seed path: every unique point rebuilds and
  solves its own chain (`BatchRunner()` with the serial backend;
  skipped in ``--full`` mode unless ``--serial`` is passed — the
  batched win over it is already gated on the quick campaign);
* **batched, numpy kernel** (``REPRO_KERNEL=numpy``) — the PR 4
  baseline: one cached lattice structure, stacked rate fills, the
  pre-fusion level-loop kernel;
* **batched, fused kernel** (``REPRO_KERNEL=fused``) — the fused
  gather: sentinel-slot value gather, level-ordered contiguous views,
  fast zero-pattern grouping;
* **batched, numba kernel** (``REPRO_KERNEL=numba``) — the jitted
  single-pass sweep, parallelised over points. Run only when numba
  imports; the skip is *printed*, never silent.

and asserts

* all configurations are **bit-identical** across the whole campaign
  (every MTTSF and Ĉtotal compared with ``==``, not a tolerance) —
  including the numba leg when it runs;
* with ``REPRO_BENCH_REQUIRE_SPEEDUP=<X>`` set (the CI multi-core job
  sets 3), batched-fused is at least ``X``× faster than per-point
  serial — the batched win is algorithmic, so it must hold even on one
  core;
* with ``REPRO_BENCH_REQUIRE_FUSED_SPEEDUP=<X>`` set (the CI bench job
  sets 1.5 on the ``--full`` campaign), fused is at least ``X``×
  faster than the numpy baseline;
* with ``REPRO_BENCH_REQUIRE_NUMBA_SPEEDUP=<X>`` set (the CI numba A/B
  leg sets 1.3), the numba tier is at least ``X``× faster than fused —
  and the gate **fails loudly** if numba is not importable, so a broken
  CI install can never skip-pass it.

The report is also emitted as machine-readable JSON (``--json PATH`` or
``REPRO_BENCH_JSON=PATH``) with points/s, all speedups, and the fused
leg's per-phase wall-clock breakdown (``phases.evaluate`` is the metric
the kernel tiers shift), which CI uploads as an artifact and folds into
the ``BENCH_<sha>.json`` trajectory (``benchmarks/bench_report.py``).

Runs under pytest-benchmark like the other ``bench_*`` files and as a
standalone script
(``PYTHONPATH=src python benchmarks/bench_batch_solver.py [--full]``).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro.core.fastpath import clear_structure_cache
from repro.ctmc.kernels import numba_available
from repro.engine import BatchRunner, available_cpus, make_backend
from repro.engine.jobs import paper_campaign
from repro.voting.majority import clear_table_cache


def _cold_caches() -> None:
    """Drop every process-wide memo a prior run could have warmed.

    All timed runs must start equally cold — the structure cache *and*
    the voting-table memo — or whichever pipeline runs second inherits
    the first one's tables and the comparison measures cache warming
    instead of the solver.
    """
    clear_structure_cache()
    clear_table_cache()


def _campaign_values(outcome):
    return [
        (
            job_outcome.job.name,
            tuple(job_outcome.values("mttsf_s")),
            tuple(job_outcome.values("ctotal_hop_bits_s")),
        )
        for job_outcome in outcome.outcomes
    ]


def _timed_vector_run(campaign, *, kernel: str):
    """One cold vector-backend campaign run under the given kernel tier.

    ``REPRO_KERNEL`` (which supersedes the legacy ``REPRO_FUSED_GATHER``
    toggle) pins the tier for the duration of the run, then is restored
    so the legs cannot leak into each other.
    """
    _cold_caches()
    previous = os.environ.get("REPRO_KERNEL")
    os.environ["REPRO_KERNEL"] = kernel
    try:
        runner = BatchRunner(backend=make_backend("vector"))
        t0 = time.perf_counter()
        outcome = campaign.run(runner)
        return outcome, time.perf_counter() - t0
    finally:
        if previous is None:
            os.environ.pop("REPRO_KERNEL", None)
        else:
            os.environ["REPRO_KERNEL"] = previous


def _run_all(*, full: bool = False, include_serial: bool | None = None):
    campaign = paper_campaign(quick=not full)
    if include_serial is None:
        include_serial = not full  # N=100 per-point serial takes minutes

    serial_s = None
    outcome_serial = None
    if include_serial:
        # Cold per-point serial: drop every memo so the serial run pays
        # the seed path's full cost exactly once, like a fresh process.
        _cold_caches()
        serial = BatchRunner()
        t0 = time.perf_counter()
        outcome_serial = campaign.run(serial)
        serial_s = time.perf_counter() - t0

    outcome_unfused, unfused_s = _timed_vector_run(campaign, kernel="numpy")
    outcome_vector, vector_s = _timed_vector_run(campaign, kernel="fused")

    outcome_numba = None
    numba_s = None
    if numba_available():
        outcome_numba, numba_s = _timed_vector_run(campaign, kernel="numba")

    n_unique = outcome_vector.report.n_unique
    return {
        "campaign": campaign.name,
        "mode": "full" if full else "quick",
        "n_points": len(campaign),
        "n_unique": n_unique,
        "serial_s": serial_s,
        "unfused_s": unfused_s,
        "vector_s": vector_s,
        "numba_s": numba_s,
        "numba_available": numba_available(),
        "speedup": serial_s / vector_s if serial_s is not None else None,
        "fused_speedup": unfused_s / vector_s,
        "numba_speedup": vector_s / numba_s if numba_s is not None else None,
        "points_per_s_serial": (
            n_unique / serial_s if serial_s is not None else None
        ),
        "points_per_s_unfused": n_unique / unfused_s,
        "points_per_s_vector": n_unique / vector_s,
        "points_per_s_numba": (
            n_unique / numba_s if numba_s is not None else None
        ),
        "phases": dict(outcome_vector.report.phase_seconds),
        "cpus": available_cpus(),
        "outcome_serial": outcome_serial,
        "outcome_unfused": outcome_unfused,
        "outcome_vector": outcome_vector,
        "outcome_numba": outcome_numba,
    }


def _assert_claims(r) -> None:
    assert r["outcome_unfused"].report.n_errors == 0
    assert r["outcome_vector"].report.n_errors == 0

    # Bit-identical across the whole campaign — the solver contract.
    vector_vals = _campaign_values(r["outcome_vector"])
    unfused_vals = _campaign_values(r["outcome_unfused"])
    assert unfused_vals == vector_vals, "fused kernel diverged from baseline"
    if r["outcome_serial"] is not None:
        assert r["outcome_serial"].report.n_errors == 0
        serial_vals = _campaign_values(r["outcome_serial"])
        assert serial_vals == vector_vals, "batched campaign diverged from per-point"
    if r["outcome_numba"] is not None:
        assert r["outcome_numba"].report.n_errors == 0
        numba_vals = _campaign_values(r["outcome_numba"])
        assert numba_vals == vector_vals, "numba kernel diverged from fused"

    required = os.environ.get("REPRO_BENCH_REQUIRE_SPEEDUP")
    if required:
        assert r["speedup"] is not None, (
            "REPRO_BENCH_REQUIRE_SPEEDUP is set but the per-point serial "
            "baseline was skipped (--full without --serial); pass --serial "
            "or unset the gate"
        )
        floor = float(required)
        assert r["speedup"] >= floor, (
            f"batched solver {r['speedup']:.2f}x not >= required {floor:g}x "
            f"(serial {r['serial_s']:.2f}s, vector {r['vector_s']:.2f}s, "
            f"{r['cpus']} cpus)"
        )

    required_fused = os.environ.get("REPRO_BENCH_REQUIRE_FUSED_SPEEDUP")
    if required_fused:
        floor = float(required_fused)
        assert r["fused_speedup"] >= floor, (
            f"fused gather {r['fused_speedup']:.2f}x not >= required "
            f"{floor:g}x (numpy {r['unfused_s']:.2f}s, fused "
            f"{r['vector_s']:.2f}s, {r['cpus']} cpus)"
        )

    required_numba = os.environ.get("REPRO_BENCH_REQUIRE_NUMBA_SPEEDUP")
    if required_numba:
        # The A/B gate must never skip-pass: a CI leg that sets it on a
        # host whose numba install silently broke should go red, not
        # green. The *intentional* skip happens upstream (the workflow
        # only sets the gate after probing that numba imports).
        assert r["numba_speedup"] is not None, (
            "REPRO_BENCH_REQUIRE_NUMBA_SPEEDUP is set but numba is not "
            "importable on this host — install the 'kernels' extra or "
            "unset the gate"
        )
        floor = float(required_numba)
        assert r["numba_speedup"] >= floor, (
            f"numba kernel {r['numba_speedup']:.2f}x not >= required "
            f"{floor:g}x (fused {r['vector_s']:.2f}s, numba "
            f"{r['numba_s']:.2f}s, {r['cpus']} cpus)"
        )


def _json_report(r) -> dict:
    return {
        key: r[key]
        for key in (
            "campaign",
            "mode",
            "n_points",
            "n_unique",
            "serial_s",
            "unfused_s",
            "vector_s",
            "numba_s",
            "numba_available",
            "speedup",
            "fused_speedup",
            "numba_speedup",
            "points_per_s_serial",
            "points_per_s_unfused",
            "points_per_s_vector",
            "points_per_s_numba",
            "phases",
            "cpus",
        )
    }


def _write_json(r, path: "str | Path | None") -> None:
    path = path or os.environ.get("REPRO_BENCH_JSON")
    if not path:
        return
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(_json_report(r), indent=2) + "\n")
    print(f"json report: {path}")


def bench_batch_solver(once):
    r = once(_run_all)
    _assert_claims(r)
    _write_json(r, None)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the machine-readable report here "
        "(default: $REPRO_BENCH_JSON if set)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="paper-scale N=100 campaign (per-point serial baseline "
        "skipped unless --serial is also passed)",
    )
    parser.add_argument(
        "--serial", action="store_true",
        help="force the per-point serial baseline even with --full",
    )
    args = parser.parse_args(argv)

    r = _run_all(full=args.full, include_serial=True if args.serial else None)
    _assert_claims(r)
    report = r["outcome_vector"].report
    print(
        f"campaign: {r['campaign']} [{r['mode']}] ({r['n_points']} points, "
        f"{r['n_unique']} unique after dedup; {r['cpus']} cpus)"
    )
    if r["serial_s"] is not None:
        print(f"{'per-point serial':20s} {r['serial_s']:8.2f}s  "
              f"{r['points_per_s_serial']:7.1f} pts/s   1.00x")
    print(f"{'batched, numpy':20s} {r['unfused_s']:8.2f}s  "
          f"{r['points_per_s_unfused']:7.1f} pts/s")
    speedup = f"{r['speedup']:5.2f}x vs serial" if r["speedup"] else ""
    print(f"{'batched, fused':20s} {r['vector_s']:8.2f}s  "
          f"{r['points_per_s_vector']:7.1f} pts/s  "
          f"{r['fused_speedup']:5.2f}x vs numpy  {speedup}")
    if r["numba_s"] is not None:
        print(f"{'batched, numba':20s} {r['numba_s']:8.2f}s  "
              f"{r['points_per_s_numba']:7.1f} pts/s  "
              f"{r['numba_speedup']:5.2f}x vs fused")
    else:
        print(f"{'batched, numba':20s} skipped — numba not importable "
              "(pip install repro[kernels])")
    print(f"batch report: {report.describe()}")
    print("bit-identical: yes (asserted)")
    _write_json(r, args.json)


if __name__ == "__main__":
    main()
