"""Batched lattice solver benchmark: per-point vs structure-sharing.

Runs the full fig2–fig5 paper campaign (quick N = 40 grids, 112 points,
54 unique after dedup) twice through the engine:

* **per-point serial** — the seed path: every unique point rebuilds and
  solves its own chain (`BatchRunner()` with the serial backend);
* **batched vector** — `--jobs vector`: one cached lattice structure,
  rate fills stacked, a single multi-point level-scheduled backward
  sweep for all points (`VectorBackend`).

and asserts

* the two campaigns are **bit-identical** (every MTTSF and Ĉtotal value
  compared with ``==``, not a tolerance);
* with ``REPRO_BENCH_REQUIRE_SPEEDUP=<X>`` set (the CI multi-core job
  sets 3), the batched run is at least ``X``× faster than serial —
  the batched win is algorithmic, so it must hold even on one core.

The report is also emitted as machine-readable JSON (``--json PATH`` or
``REPRO_BENCH_JSON=PATH``) with points/s and speedup, which CI uploads
as an artifact so the speedup trend is diffable across commits.

Runs under pytest-benchmark like the other ``bench_*`` files and as a
standalone script
(``PYTHONPATH=src python benchmarks/bench_batch_solver.py``).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro.core.fastpath import clear_structure_cache
from repro.engine import BatchRunner, available_cpus, make_backend
from repro.engine.jobs import paper_campaign
from repro.voting.majority import clear_table_cache


def _cold_caches() -> None:
    """Drop every process-wide memo a prior run could have warmed.

    Both timed runs must start equally cold — the structure cache *and*
    the voting-table memo — or whichever pipeline runs second inherits
    the first one's tables and the comparison measures cache warming
    instead of the solver.
    """
    clear_structure_cache()
    clear_table_cache()


def _campaign_values(outcome):
    return [
        (
            job_outcome.job.name,
            tuple(job_outcome.values("mttsf_s")),
            tuple(job_outcome.values("ctotal_hop_bits_s")),
        )
        for job_outcome in outcome.outcomes
    ]


def _run_all():
    campaign = paper_campaign(quick=True)

    # Cold per-point serial: drop every memo so the serial run pays the
    # seed path's full cost exactly once, like a fresh process.
    _cold_caches()
    serial = BatchRunner()
    t0 = time.perf_counter()
    outcome_serial = campaign.run(serial)
    serial_s = time.perf_counter() - t0

    _cold_caches()
    vector = BatchRunner(backend=make_backend("vector"))
    t1 = time.perf_counter()
    outcome_vector = campaign.run(vector)
    vector_s = time.perf_counter() - t1

    n_unique = outcome_vector.report.n_unique
    return {
        "campaign": campaign.name,
        "n_points": len(campaign),
        "n_unique": n_unique,
        "serial_s": serial_s,
        "vector_s": vector_s,
        "speedup": serial_s / vector_s,
        "points_per_s_serial": n_unique / serial_s,
        "points_per_s_vector": n_unique / vector_s,
        "cpus": available_cpus(),
        "outcome_serial": outcome_serial,
        "outcome_vector": outcome_vector,
    }


def _assert_claims(r) -> None:
    assert r["outcome_serial"].report.n_errors == 0
    assert r["outcome_vector"].report.n_errors == 0

    # Bit-identical across the whole campaign — the solver contract.
    serial_vals = _campaign_values(r["outcome_serial"])
    vector_vals = _campaign_values(r["outcome_vector"])
    assert serial_vals == vector_vals, "batched campaign diverged from per-point"

    required = os.environ.get("REPRO_BENCH_REQUIRE_SPEEDUP")
    if required:
        floor = float(required)
        assert r["speedup"] >= floor, (
            f"batched solver {r['speedup']:.2f}x not >= required {floor:g}x "
            f"(serial {r['serial_s']:.2f}s, vector {r['vector_s']:.2f}s, "
            f"{r['cpus']} cpus)"
        )


def _json_report(r) -> dict:
    return {
        key: r[key]
        for key in (
            "campaign",
            "n_points",
            "n_unique",
            "serial_s",
            "vector_s",
            "speedup",
            "points_per_s_serial",
            "points_per_s_vector",
            "cpus",
        )
    }


def _write_json(r, path: "str | Path | None") -> None:
    path = path or os.environ.get("REPRO_BENCH_JSON")
    if not path:
        return
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(_json_report(r), indent=2) + "\n")
    print(f"json report: {path}")


def bench_batch_solver(once):
    r = once(_run_all)
    _assert_claims(r)
    _write_json(r, None)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the machine-readable report here "
        "(default: $REPRO_BENCH_JSON if set)",
    )
    args = parser.parse_args(argv)

    r = _run_all()
    _assert_claims(r)
    report = r["outcome_vector"].report
    print(
        f"campaign: {r['campaign']} ({r['n_points']} points, "
        f"{r['n_unique']} unique after dedup; {r['cpus']} cpus)"
    )
    print(f"{'per-point serial':18s} {r['serial_s']:8.2f}s  "
          f"{r['points_per_s_serial']:7.1f} pts/s   1.00x")
    print(f"{'batched (vector)':18s} {r['vector_s']:8.2f}s  "
          f"{r['points_per_s_vector']:7.1f} pts/s  {r['speedup']:5.2f}x")
    print(f"batch report: {report.describe()}")
    print("bit-identical: yes (asserted)")
    _write_json(r, args.json)


if __name__ == "__main__":
    main()
