"""Figure 4: MTTSF vs TIDS per detection function (linear attacker, m=5).

Paper claims asserted:

* conservative (logarithmic) detection dominates at small ``TIDS``
  (aggressive detection over-triggers and drains the group);
* aggressive (polynomial) detection dominates at large ``TIDS``
  (something must compensate the long base interval);
* the curves cross between those regimes, and every curve has an
  interior optimum.
"""

from repro.analysis.experiments import run


def bench_fig4_mttsf_detection(once):
    result = once(lambda: run("fig4", quick=True))
    series = result.series[0]
    log_ys = series.series["logarithmic"]
    lin_ys = series.series["linear"]
    poly_ys = series.series["polynomial"]

    # Small-TIDS regime: log >= linear >= poly.
    assert log_ys[0] > lin_ys[0] > poly_ys[0]

    # Large-TIDS regime: poly wins.
    assert poly_ys[-1] > lin_ys[-1]
    assert poly_ys[-1] > log_ys[-1]

    # Crossover exists: poly is NOT uniformly worse.
    assert any(p > l for p, l in zip(poly_ys, lin_ys))

    # Interior optimum for each curve.
    for name, ys in series.series.items():
        assert max(ys) > ys[0] and max(ys) > ys[-1], f"{name} lacks interior optimum"

    # Aggressiveness delays the optimum: poly peaks at larger TIDS.
    x_log, _ = series.argbest("logarithmic")
    x_poly, _ = series.argbest("polynomial")
    assert x_poly > x_log
