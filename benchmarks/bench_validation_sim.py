"""Validation: Monte Carlo simulation vs the analytic model.

The rates-mode simulator fires the SPN's exact transition rates, so its
replication mean estimates the same MTTSF the CTMC solver computes
exactly. Asserted: the analytic value sits inside the 95% confidence
interval at (almost) every grid point — allowing one unlucky point in
four, which keeps the bench seed-robust at 150 replications.
"""

from repro.analysis.experiments import run


def bench_validation_sim(once):
    result = once(lambda: run("val-sim", quick=True))
    series = result.series[0]

    analytic = series.series["analytic"]
    lo = series.series["sim_ci_lo"]
    hi = series.series["sim_ci_hi"]
    mean = series.series["sim_mean"]

    inside = sum(1 for a, l, h in zip(analytic, lo, hi) if l <= a <= h)
    assert inside >= len(analytic) - 1, (
        f"analytic MTTSF outside the sim CI at {len(analytic) - inside} points"
    )

    # Even points outside the CI must be close (< 15% relative error).
    for a, m in zip(analytic, mean):
        assert abs(a - m) / a < 0.15
