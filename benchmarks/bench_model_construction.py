"""Micro-benchmarks: model construction and solve, fast path vs SPN.

Times the two equivalent pipelines at a size where both are practical
(N = 24) and the fast path alone at paper scale (N = 100). Asserts the
speedup that justifies the fast path's existence and the equality of the
two models' MTTSF.
"""

import pytest

from repro.core import evaluate
from repro.params import GCSParameters


def bench_fastpath_paper_scale(benchmark):
    params = GCSParameters.paper_defaults()
    result = benchmark.pedantic(
        lambda: evaluate(params, method="fast"), rounds=1, iterations=1
    )
    assert result.num_states == 101 * 102 * 103 // 6 + 1
    assert result.mttsf_s > 1e5


def bench_spn_generic_path(benchmark):
    params = GCSParameters.paper_defaults(num_nodes=24)
    result = benchmark.pedantic(
        lambda: evaluate(params, method="spn"), rounds=1, iterations=1
    )
    fast = evaluate(params, method="fast")
    assert result.mttsf_s == pytest.approx(fast.mttsf_s, rel=1e-9)
