"""Normalize benchmark JSON reports into one ``BENCH_<sha>.json``.

The CI ``bench`` job runs the solver benchmarks (each of which writes
its own machine-readable report), then calls this script to

* merge them into one normalized trajectory record
  ``BENCH_<sha>.<kernel>-py<ver>.json`` — ``{"sha", "kernel",
  "python", "benches": {name: metrics}}`` with only scalar metrics
  kept (outcome objects and None values dropped). The kernel tag and
  python version are part of the record *and* the filename so A/B legs
  (fused vs numba, 3.11 vs 3.13t) roll forward separate baselines
  instead of clobbering each other in the shared ``actions/cache``
  directory;
* compare it against the most recent cached baseline **with the same
  kernel tag and python version** and emit a markdown delta table
  (appended to the job summary);
* **hard-gate** the metrics named by ``--gate`` (repeatable): a
  regression beyond ``--gate-threshold`` percent (default 15) in any
  gated metric fails the job with exit status 1.
  ``REPRO_BENCH_ALLOW_REGRESSION=1`` (set by the workflow when the PR
  carries the ``bench-regression-ok`` label) downgrades the failure to
  a loud warning. Ungated metrics stay warn-only.

Usage::

    python benchmarks/bench_report.py --sha $GITHUB_SHA \\
        --input batch_solver=bench-artifacts/batch_solver.json \\
        --input transient_batch=bench-artifacts/transient_batch.json \\
        --out bench-artifacts \\
        --baseline-dir bench-baseline \\
        --gate phases.evaluate --gate vector_s \\
        --summary-file "$GITHUB_STEP_SUMMARY"

Exit status: 1 on a gated regression (unless overridden) or unreadable
inputs, 0 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

#: Metrics where *larger* is better; everything else numeric is assumed
#: smaller-is-better (seconds). Used for the delta arrow and the gate.
_HIGHER_IS_BETTER = ("points_per_s", "speedup")


def _is_improvement(metric: str, delta_pct: float) -> bool:
    higher = any(tag in metric for tag in _HIGHER_IS_BETTER)
    return delta_pct >= 0 if higher else delta_pct <= 0


def _is_scalar(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _scalar_metrics(payload: dict) -> dict:
    """Scalar metrics, flattening one level of nested dicts.

    ``{"phases": {"evaluate": 1.2}}`` becomes ``{"phases.evaluate": 1.2}``
    so per-phase breakdowns ride along in the trajectory table.
    """
    metrics = {}
    for key, value in payload.items():
        if _is_scalar(value):
            metrics[key] = value
        elif isinstance(value, dict):
            for sub_key, sub_value in value.items():
                if _is_scalar(sub_value):
                    metrics[f"{key}.{sub_key}"] = sub_value
    return metrics


def python_tag() -> str:
    """``major.minor`` plus a ``t`` suffix on free-threaded builds."""
    tag = f"{sys.version_info.major}.{sys.version_info.minor}"
    if sys.version_info >= (3, 13) and not sys._is_gil_enabled():  # noqa: SLF001
        tag += "t"
    return tag


def variant(record: dict) -> str:
    """Filename-safe baseline key: ``<kernel>-py<python>``."""
    return f"{record.get('kernel', 'fused')}-py{record.get('python', '?')}"


def merge(sha: str, inputs: dict[str, Path], *, kernel: str, python: str) -> dict:
    benches = {}
    for name, path in inputs.items():
        payload = json.loads(Path(path).read_text())
        benches[name] = _scalar_metrics(payload)
    return {"sha": sha, "kernel": kernel, "python": python, "benches": benches}


def _baseline_matches(current: dict, candidate: dict) -> bool:
    """Whether a cached record is comparable to the current one.

    Records written before the kernel/python keying existed carry
    neither field; treat them as the default ``fused`` tier on any
    python, so the first keyed run still gets a trajectory row instead
    of a silent fresh start.
    """
    if candidate.get("kernel", "fused") != current.get("kernel", "fused"):
        return False
    return candidate.get("python") in (None, current.get("python"))


def find_baseline(baseline_dir: Path, current: dict) -> "dict | None":
    """Newest cached ``BENCH_*.json`` with a matching kernel/python."""
    if not baseline_dir.is_dir():
        return None
    candidates = sorted(
        baseline_dir.glob("BENCH_*.json"),
        key=lambda p: p.stat().st_mtime,
        reverse=True,
    )
    for path in candidates:
        try:
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        if _baseline_matches(current, record):
            return record
    return None


def gate_violations(
    current: dict, baseline: dict, gates: list[str], threshold_pct: float
) -> list[str]:
    """Gated metrics that regressed beyond the threshold, as messages."""
    violations = []
    for bench, metrics in sorted(current.get("benches", {}).items()):
        previous_metrics = baseline.get("benches", {}).get(bench, {})
        for metric in gates:
            value = metrics.get(metric)
            previous = previous_metrics.get(metric)
            if value is None or previous is None or previous == 0:
                continue
            pct = 100.0 * (value - previous) / abs(previous)
            if _is_improvement(metric, pct):
                continue
            if abs(pct) > threshold_pct:
                violations.append(
                    f"{bench}.{metric}: {previous:.4g} → {value:.4g} "
                    f"({pct:+.1f}%, threshold ±{threshold_pct:g}%)"
                )
    return violations


def delta_report(current: dict, baseline: dict, gates: list[str]) -> str:
    gated = set(gates)
    lines = [
        "## Bench trajectory",
        "",
        f"`{baseline.get('sha', '?')[:12]}` → `{current.get('sha', '?')[:12]}`"
        f" [{variant(current)}] — gated metrics (⛔ on regression): "
        + (", ".join(f"`{g}`" for g in gates) if gates else "none"),
        "",
        "| bench | metric | previous | current | delta |",
        "|---|---|---:|---:|---:|",
    ]
    for bench, metrics in sorted(current.get("benches", {}).items()):
        previous_metrics = baseline.get("benches", {}).get(bench, {})
        for metric, value in sorted(metrics.items()):
            previous = previous_metrics.get(metric)
            name = f"{metric} ⛔" if metric in gated else metric
            if previous is None:
                lines.append(f"| {bench} | {name} | — | {value:.4g} | new |")
                continue
            if previous == 0:
                delta = "n/a"
            else:
                pct = 100.0 * (value - previous) / abs(previous)
                arrow = "✅" if _is_improvement(metric, pct) else "⚠️"
                delta = f"{pct:+.1f}% {arrow}"
            lines.append(
                f"| {bench} | {name} | {previous:.4g} | {value:.4g} | {delta} |"
            )
    return "\n".join(lines) + "\n"


def fresh_report(current: dict) -> str:
    lines = [
        "## Bench trajectory",
        "",
        f"`{current.get('sha', '?')[:12]}` [{variant(current)}] — no "
        "previous baseline for this kernel/python (first run or cache miss)",
        "",
        "| bench | metric | value |",
        "|---|---|---:|",
    ]
    for bench, metrics in sorted(current.get("benches", {}).items()):
        for metric, value in sorted(metrics.items()):
            lines.append(f"| {bench} | {metric} | {value:.4g} |")
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sha", required=True, help="commit being measured")
    parser.add_argument(
        "--input",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help="benchmark JSON report to fold in (repeatable)",
    )
    parser.add_argument(
        "--out", required=True, metavar="DIR",
        help="directory for BENCH_<sha>.<variant>.json",
    )
    parser.add_argument(
        "--baseline-dir", default=None, metavar="DIR",
        help="directory holding the previous BENCH_*.json (actions/cache)",
    )
    parser.add_argument(
        "--kernel", default=None, metavar="TIER",
        help="kernel tag for the record (default: $REPRO_KERNEL or 'fused')",
    )
    parser.add_argument(
        "--gate", action="append", default=[], metavar="METRIC",
        help="hard-gated metric, e.g. phases.evaluate or vector_s "
        "(repeatable; regression beyond --gate-threshold exits 1)",
    )
    parser.add_argument(
        "--gate-threshold", type=float, default=15.0, metavar="PCT",
        help="allowed regression for gated metrics (default: 15%%)",
    )
    parser.add_argument(
        "--summary-file", default=None, metavar="PATH",
        help="append the markdown report here (e.g. $GITHUB_STEP_SUMMARY); "
        "stdout otherwise",
    )
    args = parser.parse_args(argv)

    inputs = {}
    for spec in args.input:
        name, sep, path = spec.partition("=")
        if not sep:
            parser.error(f"--input must look like NAME=PATH, got {spec!r}")
        inputs[name] = Path(path)

    kernel = args.kernel or os.environ.get("REPRO_KERNEL") or "fused"
    current = merge(args.sha, inputs, kernel=kernel, python=python_tag())
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = out_dir / f"BENCH_{args.sha}.{variant(current)}.json"
    out_path.write_text(json.dumps(current, indent=2) + "\n")
    print(f"wrote {out_path}", file=sys.stderr)

    baseline = (
        find_baseline(Path(args.baseline_dir), current)
        if args.baseline_dir
        else None
    )
    if baseline is not None and baseline.get("sha") == current.get("sha"):
        # Workflow re-run for the same commit: the rolled-forward
        # baseline is this very record, and "current vs itself" would
        # masquerade as a flat trajectory. Report fresh values instead.
        baseline = None

    report = (
        delta_report(current, baseline, args.gate)
        if baseline is not None
        else fresh_report(current)
    )

    status = 0
    if baseline is not None and args.gate:
        violations = gate_violations(
            current, baseline, args.gate, args.gate_threshold
        )
        if violations:
            allow = os.environ.get("REPRO_BENCH_ALLOW_REGRESSION") == "1"
            verdict = (
                "overridden by REPRO_BENCH_ALLOW_REGRESSION=1"
                if allow
                else "failing the job"
            )
            report += (
                f"\n### ⛔ Gated regressions ({verdict})\n\n"
                + "\n".join(f"- {v}" for v in violations)
                + "\n"
            )
            for violation in violations:
                print(f"gated regression: {violation}", file=sys.stderr)
            if not allow:
                status = 1
            else:
                print(
                    "regressions overridden by REPRO_BENCH_ALLOW_REGRESSION=1",
                    file=sys.stderr,
                )

    if args.summary_file:
        with open(args.summary_file, "a", encoding="utf-8") as handle:
            handle.write(report)
    else:
        print(report)
    return status


if __name__ == "__main__":
    sys.exit(main())
