"""Normalize benchmark JSON reports into one ``BENCH_<sha>.json``.

The CI ``bench`` job runs the solver benchmarks (each of which writes
its own machine-readable report), then calls this script to

* merge them into one normalized trajectory record
  ``BENCH_<sha>.json`` — ``{"sha", "benches": {name: metrics}}`` with
  only scalar metrics kept (outcome objects and None values dropped);
* compare it against the previous record restored from the
  ``actions/cache`` baseline directory and emit a **warn-only**
  markdown delta table (appended to the job summary). Regressions here
  never fail the job — the hard gates are the
  ``REPRO_BENCH_REQUIRE_*`` assertions inside the benchmarks
  themselves.

Usage::

    python benchmarks/bench_report.py --sha $GITHUB_SHA \\
        --input batch_solver=bench-artifacts/batch_solver.json \\
        --input transient_batch=bench-artifacts/transient_batch.json \\
        --out bench-artifacts \\
        --baseline-dir bench-baseline \\
        --summary-file "$GITHUB_STEP_SUMMARY"

Exit status is always 0 unless the inputs themselves are unreadable.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Metrics where *larger* is better; everything else numeric is assumed
#: smaller-is-better (seconds). Used only for the delta arrow.
_HIGHER_IS_BETTER = ("points_per_s", "speedup")


def _is_improvement(metric: str, delta_pct: float) -> bool:
    higher = any(tag in metric for tag in _HIGHER_IS_BETTER)
    return delta_pct >= 0 if higher else delta_pct <= 0


def _is_scalar(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _scalar_metrics(payload: dict) -> dict:
    """Scalar metrics, flattening one level of nested dicts.

    ``{"phases": {"evaluate": 1.2}}`` becomes ``{"phases.evaluate": 1.2}``
    so per-phase breakdowns ride along in the trajectory table.
    """
    metrics = {}
    for key, value in payload.items():
        if _is_scalar(value):
            metrics[key] = value
        elif isinstance(value, dict):
            for sub_key, sub_value in value.items():
                if _is_scalar(sub_value):
                    metrics[f"{key}.{sub_key}"] = sub_value
    return metrics


def merge(sha: str, inputs: dict[str, Path]) -> dict:
    benches = {}
    for name, path in inputs.items():
        payload = json.loads(Path(path).read_text())
        benches[name] = _scalar_metrics(payload)
    return {"sha": sha, "benches": benches}


def find_baseline(baseline_dir: Path) -> "Path | None":
    if not baseline_dir.is_dir():
        return None
    candidates = sorted(
        baseline_dir.glob("BENCH_*.json"),
        key=lambda p: p.stat().st_mtime,
        reverse=True,
    )
    return candidates[0] if candidates else None


def delta_report(current: dict, baseline: dict) -> str:
    lines = [
        "## Bench trajectory",
        "",
        f"`{baseline.get('sha', '?')[:12]}` → `{current.get('sha', '?')[:12]}`"
        " (warn-only; hard gates are the REPRO_BENCH_REQUIRE_* assertions)",
        "",
        "| bench | metric | previous | current | delta |",
        "|---|---|---:|---:|---:|",
    ]
    for bench, metrics in sorted(current.get("benches", {}).items()):
        previous_metrics = baseline.get("benches", {}).get(bench, {})
        for metric, value in sorted(metrics.items()):
            previous = previous_metrics.get(metric)
            if previous is None:
                lines.append(f"| {bench} | {metric} | — | {value:.4g} | new |")
                continue
            if previous == 0:
                delta = "n/a"
            else:
                pct = 100.0 * (value - previous) / abs(previous)
                arrow = "✅" if _is_improvement(metric, pct) else "⚠️"
                delta = f"{pct:+.1f}% {arrow}"
            lines.append(
                f"| {bench} | {metric} | {previous:.4g} | {value:.4g} | {delta} |"
            )
    return "\n".join(lines) + "\n"


def fresh_report(current: dict) -> str:
    lines = [
        "## Bench trajectory",
        "",
        f"`{current.get('sha', '?')[:12]}` — no previous baseline "
        "(first run or cache miss)",
        "",
        "| bench | metric | value |",
        "|---|---|---:|",
    ]
    for bench, metrics in sorted(current.get("benches", {}).items()):
        for metric, value in sorted(metrics.items()):
            lines.append(f"| {bench} | {metric} | {value:.4g} |")
    return "\n".join(lines) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sha", required=True, help="commit being measured")
    parser.add_argument(
        "--input",
        action="append",
        default=[],
        metavar="NAME=PATH",
        help="benchmark JSON report to fold in (repeatable)",
    )
    parser.add_argument(
        "--out", required=True, metavar="DIR",
        help="directory for BENCH_<sha>.json",
    )
    parser.add_argument(
        "--baseline-dir", default=None, metavar="DIR",
        help="directory holding the previous BENCH_*.json (actions/cache)",
    )
    parser.add_argument(
        "--summary-file", default=None, metavar="PATH",
        help="append the markdown report here (e.g. $GITHUB_STEP_SUMMARY); "
        "stdout otherwise",
    )
    args = parser.parse_args(argv)

    inputs = {}
    for spec in args.input:
        name, sep, path = spec.partition("=")
        if not sep:
            parser.error(f"--input must look like NAME=PATH, got {spec!r}")
        inputs[name] = Path(path)

    current = merge(args.sha, inputs)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = out_dir / f"BENCH_{args.sha}.json"
    out_path.write_text(json.dumps(current, indent=2) + "\n")
    print(f"wrote {out_path}", file=sys.stderr)

    baseline_path = (
        find_baseline(Path(args.baseline_dir)) if args.baseline_dir else None
    )
    if baseline_path is not None:
        try:
            baseline = json.loads(baseline_path.read_text())
        except (OSError, ValueError):
            baseline = None
    else:
        baseline = None

    if baseline is not None and baseline.get("sha") == current.get("sha"):
        # Workflow re-run for the same commit: the rolled-forward
        # baseline is this very record, and "current vs itself" would
        # masquerade as a flat trajectory. Report fresh values instead.
        baseline = None
    report = (
        delta_report(current, baseline)
        if baseline is not None
        else fresh_report(current)
    )
    if args.summary_file:
        with open(args.summary_file, "a", encoding="utf-8") as handle:
            handle.write(report)
    else:
        print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
