"""Engineering: solver wall-time and state-space scaling with N.

The security chain has ``(N+1)(N+2)(N+3)/6 + 1`` states; the acyclic
sweep solver is O(states). Asserted: cubic state growth, and the quick
sweep (N <= 60, ~40k states) builds and solves well under a second per
point — the property the figure sweeps rely on.
"""

from repro.analysis.experiments import run


def bench_solver_scaling(once):
    result = once(lambda: run("scale", quick=True))
    series = result.series[0]
    sizes = series.x
    states = series.series["states"]

    # Exact state counts.
    for n, s in zip(sizes, states):
        n = int(n)
        assert s == (n + 1) * (n + 2) * (n + 3) // 6 + 1

    # Wall-time sanity at quick scale.
    assert all(b < 2.0 for b in series.series["build_s"])
    assert all(v < 2.0 for v in series.series["solve_s"])
