"""Cross-worker structure-cache benchmark: cold-start with/without sharing.

Measures what the shared ``LatticeStructure`` layer (ISSUE 5 tentpole,
second half) buys a *cold* multi-process run: the wall time of an
``N = 100`` sweep under ``--jobs vector:4`` in a fresh interpreter,
with ``REPRO_STRUCTURE_SHARE=1`` (parent builds once, workers attach
shared-memory views) versus ``=0`` (the PR 4 baseline: every worker
re-enumerates the O(N³) lattice). A second probe times the on-disk
``.npz`` layer: loading a cached structure versus building it from
scratch, again in fresh interpreters.

Each configuration runs in its own subprocess so no process-wide memo
(structure cache, voting tables) can leak between the timed runs; the
best of ``--repeats`` runs is reported to damp scheduler noise.

With ``REPRO_BENCH_REQUIRE_SHARE_SPEEDUP=<X>`` set the benchmark fails
unless sharing is at least ``X``× faster cold; the CI bench job records
the numbers warn-only (cold-start gains are machine-dependent — on a
box with many cores and a large ``N`` the rebuild tax is proportionally
larger).

Standalone:
``PYTHONPATH=src python benchmarks/bench_structure_share.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.engine import available_cpus

_SWEEP_SNIPPET = """
import time
t0 = time.perf_counter()
from repro.engine import BatchRunner, EvalRequest, make_backend
from repro.params import GCSParameters

requests = [
    EvalRequest(
        params=GCSParameters.paper_defaults(
            num_nodes={num_nodes}, detection_interval_s=t
        )
    )
    for t in (15.0, 30.0, 60.0, 120.0, 240.0, 960.0)
]
batch = BatchRunner(backend=make_backend("vector:{workers}")).run(requests)
batch.report.raise_on_error()
print(time.perf_counter() - t0)
"""

_NPZ_SNIPPET = """
import time
from repro.core.structshare import cached_structure
t0 = time.perf_counter()
cached_structure({num_nodes}, {cache_dir!r})
print(time.perf_counter() - t0)
"""

_BUILD_SNIPPET = """
import time
from repro.core.fastpath import lattice_structure
t0 = time.perf_counter()
lattice_structure({num_nodes})
print(time.perf_counter() - t0)
"""


def _run_cold(snippet: str, env_overrides: dict) -> float:
    """Run a timing snippet in a fresh interpreter; returns its seconds."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.update(env_overrides)
    out = subprocess.run(
        [sys.executable, "-c", snippet],
        env=env,
        check=True,
        capture_output=True,
        text=True,
    )
    return float(out.stdout.strip().splitlines()[-1])


def _best(snippet: str, env_overrides: dict, repeats: int) -> float:
    return min(_run_cold(snippet, env_overrides) for _ in range(repeats))


def _run_all(*, num_nodes: int = 100, workers: int = 4, repeats: int = 2):
    sweep = _SWEEP_SNIPPET.format(num_nodes=num_nodes, workers=workers)
    share_on_s = _best(sweep, {"REPRO_STRUCTURE_SHARE": "1"}, repeats)
    share_off_s = _best(sweep, {"REPRO_STRUCTURE_SHARE": "0"}, repeats)

    build_s = _best(
        _BUILD_SNIPPET.format(num_nodes=num_nodes), {}, repeats
    )
    with tempfile.TemporaryDirectory() as cache_dir:
        # First call writes the .npz; the timed fresh processes load it.
        _run_cold(
            _NPZ_SNIPPET.format(num_nodes=num_nodes, cache_dir=cache_dir), {}
        )
        npz_load_s = _best(
            _NPZ_SNIPPET.format(num_nodes=num_nodes, cache_dir=cache_dir),
            {},
            repeats,
        )

    return {
        "num_nodes": num_nodes,
        "workers": workers,
        "repeats": repeats,
        "share_on_s": share_on_s,
        "share_off_s": share_off_s,
        "cold_start_speedup": share_off_s / share_on_s,
        "structure_build_s": build_s,
        "structure_npz_load_s": npz_load_s,
        "cpus": available_cpus(),
    }


def _assert_claims(r) -> None:
    required = os.environ.get("REPRO_BENCH_REQUIRE_SHARE_SPEEDUP")
    if required:
        floor = float(required)
        assert r["cold_start_speedup"] >= floor, (
            f"shared-structure cold start {r['cold_start_speedup']:.2f}x "
            f"not >= required {floor:g}x (on {r['share_on_s']:.2f}s, "
            f"off {r['share_off_s']:.2f}s, {r['cpus']} cpus)"
        )


def _write_json(r, path: "str | Path | None") -> None:
    path = path or os.environ.get("REPRO_BENCH_JSON")
    if not path:
        return
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(r, indent=2) + "\n")
    print(f"json report: {path}")


def bench_structure_share(once):
    r = once(_run_all)
    _assert_claims(r)
    _write_json(r, None)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", default=None, metavar="PATH")
    parser.add_argument("--n", type=int, default=100, help="lattice size")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--repeats", type=int, default=2)
    args = parser.parse_args(argv)

    t0 = time.perf_counter()
    r = _run_all(num_nodes=args.n, workers=args.workers, repeats=args.repeats)
    _assert_claims(r)
    print(
        f"N={r['num_nodes']} vector:{r['workers']} cold start "
        f"({r['cpus']} cpus, best of {r['repeats']}):"
    )
    print(f"{'structure share on':22s} {r['share_on_s']:8.2f}s")
    print(
        f"{'structure share off':22s} {r['share_off_s']:8.2f}s   "
        f"-> {r['cold_start_speedup']:.2f}x"
    )
    print(
        f"structure build {r['structure_build_s']:.3f}s vs .npz load "
        f"{r['structure_npz_load_s']:.3f}s (fresh process)"
    )
    print(f"(benchmark wall time {time.perf_counter() - t0:.1f}s)")
    _write_json(r, args.json)


if __name__ == "__main__":
    main()
