"""Figure 2: MTTSF vs TIDS for m in {3, 5, 7, 9} (linear/linear).

Paper claims asserted on the regenerated data:

* every curve has an interior optimum in ``TIDS`` (rises, peaks, falls);
* a larger voter count ``m`` yields a higher peak MTTSF;
* the optimal ``TIDS`` shrinks as ``m`` grows (paper: 480/60/15/5 s).
"""

from repro.analysis.experiments import run


def bench_fig2_mttsf_vs_m(once):
    result = once(lambda: run("fig2", quick=True))
    series = result.series[0]
    grid = series.x

    peaks = {}
    optima = {}
    for m in (3, 5, 7, 9):
        ys = series.series[f"m={m}"]
        best_x, best_y = series.argbest(f"m={m}")
        peaks[m], optima[m] = best_y, best_x
        assert all(y > 0 for y in ys)

    # Interior optimum for the small-m curves (large m peaks at the grid
    # edge exactly as in the paper, where m=9 is optimal at TIDS=5).
    for m in (3, 5):
        ys = series.series[f"m={m}"]
        assert max(ys) > ys[0] and max(ys) > ys[-1], f"m={m} lacks interior optimum"

    # Peak MTTSF grows with m.
    assert peaks[3] < peaks[5] < peaks[7] <= peaks[9]

    # Optimal TIDS shrinks (weakly) with m and spans a wide range.
    assert optima[3] >= optima[5] >= optima[7] >= optima[9]
    assert optima[3] >= 240.0
    assert optima[5] <= 120.0
    assert optima[9] <= 30.0

    # All curves converge at very large TIDS (detection too rare to
    # matter, so m is irrelevant): within 10% at TIDS = 1200 s.
    tail = [series.series[f"m={m}"][-1] for m in (5, 7, 9)]
    assert max(tail) / min(tail) < 1.10
