"""Baseline: host-based IDS (m=1) vs the paper's voting-based IDS (m=5).

Asserted structure:

* the voting layer multiplies peak MTTSF severalfold — a single juror's
  false positives (``p2`` per evaluation, plus colluding jurors) drain
  the group orders of magnitude faster than a 5-voter majority;
* voting's advantage concentrates at small/moderate ``TIDS`` (frequent
  evaluation amplifies per-round false-positive exposure);
* voting costs at least as much as host-based detection in the
  mid-``TIDS`` band (more ballots, bigger surviving group).
"""

from repro.analysis.experiments import run


def bench_baseline_host_vs_voting(once):
    result = once(lambda: run("baseline-host", quick=True))
    mttsf = result.series[0]
    ctotal = result.series[1]

    host = mttsf.series["host-based (m=1)"]
    voting = mttsf.series["voting (m=5)"]

    peak_gain = max(voting) / max(host)
    assert peak_gain > 3.0, f"voting layer gain only {peak_gain:.2f}x"

    # Voting dominates point-wise at small and moderate TIDS.
    for h, v, x in zip(host, voting, mttsf.x):
        if x <= 240:
            assert v > h, f"voting loses at TIDS={x}"

    # Cost: voting is at least as expensive in the mid band.
    mid = mttsf.x.index(120.0)
    assert (
        ctotal.series["voting (m=5)"][mid]
        >= ctotal.series["host-based (m=1)"][mid]
    )
