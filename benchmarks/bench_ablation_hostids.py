"""Ablation: host-IDS quality sweep (p1 = p2 from 0.1% to 5%).

Extension beyond the paper's fixed ``p1 = p2 = 1%``: quantifies how much
survivability the voting layer buys as the underlying host IDS degrades.
Asserted structure: MTTSF decreases monotonically in the per-node error
rate at fixed ``TIDS``, and the voting layer compresses a 50× host-IDS
degradation into a ~20× MTTSF loss (majority voting absorbs most of the
per-node error inflation until colluders tip ballots).
"""

from repro.analysis.experiments import run


def bench_ablation_hostids(once):
    result = once(lambda: run("abl-hostids", quick=True))
    mttsf_series = result.series[0]
    ys = mttsf_series.series["mttsf"]

    # Monotone degradation.
    assert all(a >= b for a, b in zip(ys, ys[1:])), f"MTTSF not monotone: {ys}"

    # Voting-layer robustness: 50x worse host IDS costs < 25x MTTSF.
    assert ys[0] / ys[-1] < 25.0

    # Cost stays within a sane band across the sweep.
    cost = result.series[1].series["ctotal"]
    assert max(cost) / min(cost) < 5.0
