"""Shared benchmark fixtures.

Every benchmark regenerates one paper figure (or ablation) through the
experiment registry and asserts the paper's qualitative *shape* claims
on the result — so ``pytest benchmarks/ --benchmark-only`` is
simultaneously a performance run and a reproduction check.

Figure experiments run in quick mode (N=40) so the full suite finishes
in about a minute; DESIGN.md records that the shapes are scale-stable
(verified at N=100 in EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    The figure pipelines take seconds each; multiple rounds would add
    minutes for no statistical benefit.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """``once(fn)`` -> fn's return value, timed by pytest-benchmark."""

    def _once(fn):
        return run_once(benchmark, fn)

    return _once
