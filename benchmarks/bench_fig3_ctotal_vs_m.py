"""Figure 3: Ĉtotal vs TIDS for m in {3, 5, 7, 9}.

Paper claims asserted:

* each curve has an interior (or left-edge) cost minimum and rises
  toward large ``TIDS`` (lingering members keep the group big and
  chatty) — i.e. the minimum is never at the right edge;
* a larger ``m`` costs uniformly more in the mid-``TIDS`` band (more
  voting traffic and fewer false evictions keeping the group large).
"""

from repro.analysis.experiments import run


def bench_fig3_ctotal_vs_m(once):
    result = once(lambda: run("fig3", quick=True))
    series = result.series[0]
    grid = series.x

    for m in (3, 5, 7, 9):
        ys = series.series[f"m={m}"]
        best_x, best_y = series.argbest(f"m={m}", maximize=False)
        assert best_x < grid[-1], f"m={m}: cost minimum sits at the right edge"
        assert ys[-1] > best_y, f"m={m}: cost does not rise toward large TIDS"

    # Cost ordering with m in the mid band (paper: larger m, higher cost).
    mid = grid.index(120.0)
    costs = [series.series[f"m={m}"][mid] for m in (3, 5, 7, 9)]
    assert costs == sorted(costs), f"cost not increasing with m at TIDS=120: {costs}"
