"""Ablation: attacker tempo (λc) and traffic rate (λq) sensitivity.

Extension sweep around the paper's fixed λc = 1/12 h, λq = 1/min.
Asserted structure:

* a faster attacker (larger λc) never extends survival, point-wise;
* the optimal ``TIDS`` shifts (weakly) toward shorter intervals as the
  attacker accelerates — the tempo-matching intuition behind the
  paper's adaptive-IDS recommendation;
* a chattier workload (larger λq) shortens MTTSF at large ``TIDS``
  where the C1 leak channel dominates.
"""

from repro.analysis.experiments import run


def bench_ablation_workload(once):
    result = once(lambda: run("abl-workload", quick=True))
    by_lc = result.series[0]
    by_lq = result.series[1]

    # Point-wise: faster attacker => lower (or equal) MTTSF.
    slow = by_lc.series["lc=1/48h"]
    mid = by_lc.series["lc=1/12h"]
    fast = by_lc.series["lc=1/3h"]
    for s, m, f in zip(slow, mid, fast):
        assert s >= m * 0.999 and m >= f * 0.999

    # Optimal TIDS shifts (weakly) shorter as the attacker accelerates.
    x_slow, _ = by_lc.argbest("lc=1/48h")
    x_fast, _ = by_lc.argbest("lc=1/3h")
    assert x_fast <= x_slow

    # Chatty workload hurts most at large TIDS (C1-dominated regime).
    quiet = by_lq.series["lq=1/300s"]
    chatty = by_lq.series["lq=1/15s"]
    assert chatty[-1] < quiet[-1]
    # ... and the gap at large TIDS exceeds the gap at the optimum.
    rel_gap_tail = quiet[-1] / chatty[-1]
    assert rel_gap_tail > 1.5
