"""Ablation: decoupled vs exactly-coupled group (NG) dynamics.

Validates the DESIGN.md §4.4 substitution: the default pipeline
decouples the group-count birth–death process from the security chain.
Asserted structure: the decoupling error is negligible when partitions
are rare (the paper's dense-network default) and grows with the
partition rate — the regime where only the coupled model captures the
extra vulnerability of halved voting pools.
"""

from repro.analysis.experiments import run


def bench_ablation_ng_coupling(once):
    result = once(lambda: run("abl-coupling", quick=True))
    series = result.series[0]
    dec = series.series["decoupled"]
    cpl = series.series["coupled"]
    rates = series.x

    errors = [abs(a - b) / b for a, b in zip(dec, cpl)]

    # Rare partitions (1e-6/s ~ one per 11.6 days): error below 2%.
    assert errors[0] < 0.02, f"decoupling error {errors[0]:.1%} at rare partitions"

    # Error grows with the partition rate (weakly monotone across the
    # sweep's extremes).
    assert errors[-1] > errors[0]

    # Coupled MTTSF is never higher: partitioning can only hurt.
    assert all(c <= d * 1.02 for c, d in zip(cpl, dec))
