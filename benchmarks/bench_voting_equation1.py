"""Micro-benchmark: Equation 1 voting-probability tables.

The fast model pipeline needs a (2N+1)² table of ``Pfp``/``Pfn`` per
scenario; this bench times the vectorised construction at paper scale
(N = 100 ⇒ 201×201 grid) and pins its numerical agreement with the
scalar closed form.
"""

import numpy as np

from repro.voting import VotingErrorModel


def bench_voting_table_paper_scale(benchmark):
    model = VotingErrorModel(5, 0.01, 0.01)
    pfp, pfn = benchmark(lambda: model.table(200))
    assert pfp.shape == (201, 201)

    # Spot-check vectorised vs scalar on a diagonal of mixes.
    for g, b in ((1, 0), (10, 3), (60, 30), (150, 50)):
        assert np.isclose(pfp[g, b], model.false_positive_probability(g, b), atol=1e-12)
        if b >= 1:
            assert np.isclose(
                pfn[g, b], model.false_negative_probability(g, b), atol=1e-12
            )
