"""Engine benchmark: parallel sweep speedup and warm-cache hit rate.

Three measurements on the quick paper-figure campaign (fig2–fig5 grids,
N = 40):

* **serial cold** — the seed path's cost: every unique point evaluated
  in-process, no cache;
* **parallel cold** — the same points through a process pool; asserts a
  wall-clock win over serial when the host exposes more than one CPU
  (on a single-core host the win is physically impossible for
  CPU-bound solves, so the benchmark only bounds the pool's overhead
  there and says so);
* **warm cache** — an immediate re-run against the populated cache;
  asserts ≥ 90% cache hits and asserts all three produce identical
  numbers.

Runs under pytest-benchmark like the other `bench_*` files, and also as
a standalone script (``PYTHONPATH=src python benchmarks/bench_engine_parallel.py``)
printing a small report table.

Setting ``REPRO_BENCH_REQUIRE_MULTICORE=1`` (the CI ``engine-parallel``
job does) turns "single core, can only bound overhead" from a downgrade
into a hard failure — it catches the silent regression where CI quietly
stops testing the parallel path because the runner shrank to one core.
"""

from __future__ import annotations

import os
import time

from repro.engine import BatchRunner, ResultCache, available_cpus, make_backend
from repro.engine.jobs import paper_campaign


def _cpus() -> int:
    return available_cpus()


def _workers() -> int:
    return max(2, min(4, _cpus()))


def _outcome_values(outcome):
    return [
        (job_outcome.job.name, tuple(job_outcome.values("mttsf_s")))
        for job_outcome in outcome.outcomes
    ]


def _run_all(tmp_cache_dir=None):
    campaign = paper_campaign(quick=True)

    serial = BatchRunner()
    t0 = time.perf_counter()
    outcome_serial = campaign.run(serial)
    serial_s = time.perf_counter() - t0

    cache = ResultCache(cache_dir=tmp_cache_dir)
    parallel = BatchRunner(cache=cache, backend=make_backend(_workers()))
    t1 = time.perf_counter()
    outcome_cold = campaign.run(parallel)
    cold_s = time.perf_counter() - t1

    t2 = time.perf_counter()
    outcome_warm = campaign.run(parallel)
    warm_s = time.perf_counter() - t2

    return {
        "campaign": campaign,
        "serial_s": serial_s,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "outcome_serial": outcome_serial,
        "outcome_cold": outcome_cold,
        "outcome_warm": outcome_warm,
    }


def _assert_claims(r) -> None:
    if os.environ.get("REPRO_BENCH_REQUIRE_MULTICORE"):
        assert _cpus() > 1, (
            f"REPRO_BENCH_REQUIRE_MULTICORE is set but only {_cpus()} CPU "
            "is usable — the parallel path is not actually being tested"
        )
    serial_vals = _outcome_values(r["outcome_serial"])
    assert serial_vals == _outcome_values(r["outcome_cold"])
    assert serial_vals == _outcome_values(r["outcome_warm"])

    # The fig2 m=5 column reappears in fig4's linear curve (same
    # scenario points), so one submitted batch dedups across figures.
    report_cold = r["outcome_cold"].report
    assert report_cold.n_unique < report_cold.n_requested
    assert report_cold.n_errors == 0

    # Warm re-run: >= 90% cache hits (it is 100% here — every unique
    # point was just stored).
    report_warm = r["outcome_warm"].report
    assert report_warm.cache_hit_rate >= 0.90, report_warm.describe()
    assert report_warm.n_evaluated == 0

    # Multi-worker beats serial wall-clock on the quick grid. Only a
    # real claim when there is real parallel hardware; on one core the
    # pool can at best tie, so there we just bound its overhead.
    if _cpus() > 1:
        assert r["cold_s"] < r["serial_s"], (
            f"parallel {r['cold_s']:.2f}s not faster than serial "
            f"{r['serial_s']:.2f}s on {_cpus()} cpus"
        )
    else:
        assert r["cold_s"] < 1.6 * r["serial_s"], (
            f"pool overhead too high on a single core: parallel "
            f"{r['cold_s']:.2f}s vs serial {r['serial_s']:.2f}s"
        )
    # The warm-cache run beats everything by an order of magnitude.
    assert r["warm_s"] < r["cold_s"]
    assert r["warm_s"] < 0.5 * r["serial_s"]


def bench_engine_parallel(once, tmp_path):
    r = once(lambda: _run_all(tmp_path / "cache"))
    _assert_claims(r)


def main() -> None:
    r = _run_all()
    _assert_claims(r)
    campaign = r["campaign"]
    report = r["outcome_cold"].report
    print(f"campaign: {campaign.name} ({len(campaign)} points, "
          f"{report.n_unique} unique after dedup)")
    print(f"workers : {_workers()} (host cpus: {_cpus()})")
    if _cpus() == 1:
        print("note    : single-core host — the parallel-vs-serial "
              "comparison below measures pool overhead, not speedup")
    print(f"{'serial cold':14s} {r['serial_s']:8.2f}s  1.00x")
    print(f"{'parallel cold':14s} {r['cold_s']:8.2f}s  "
          f"{r['serial_s'] / r['cold_s']:.2f}x")
    print(f"{'warm cache':14s} {r['warm_s']:8.2f}s  "
          f"{r['serial_s'] / r['warm_s']:.2f}x "
          f"({r['outcome_warm'].report.cache_hit_rate:.0%} cache hits)")


if __name__ == "__main__":
    main()
