"""Figure 5: Ĉtotal vs TIDS per detection function (linear attacker, m=5).

Paper claims asserted:

* the cost-optimal ``TIDS`` grows with detection aggressiveness —
  "a shorter optimal TIDS is preferred with less aggressive logarithmic
  detection [...] as the detection function becomes aggressive, a longer
  optimal TIDS is favorable";
* polynomial detection at small ``TIDS`` is catastrophically expensive
  (orders of magnitude above the others — the paper plots Figure 5 on a
  log axis for this reason).
"""

from repro.analysis.experiments import run


def bench_fig5_ctotal_detection(once):
    result = once(lambda: run("fig5", quick=True))
    series = result.series[0]

    x_log, c_log = series.argbest("logarithmic", maximize=False)
    x_lin, c_lin = series.argbest("linear", maximize=False)
    x_poly, c_poly = series.argbest("polynomial", maximize=False)

    # Cost-optimal TIDS ordering by aggressiveness.
    assert x_log <= x_lin <= x_poly

    # Polynomial detection is >10x costlier than linear at the smallest
    # cost-grid TIDS (30 s).
    assert series.series["polynomial"][0] > 10 * series.series["linear"][0]

    # At the log/linear optima the two conservative schemes are close
    # (within 25%) — they only diverge through the md ramp.
    assert abs(c_log - c_lin) / c_lin < 0.25
