#!/usr/bin/env python
"""Documentation gate: docstring audit + markdown link/mermaid checks.

Three checks, run by the CI ``docs`` job (and runnable anywhere —
stdlib only, no ruff or network required):

``docstrings``
    AST audit of ``src/repro/{engine,obs,service}`` mirroring the ruff
    pydocstyle rules enabled in pyproject (D100 module, D101 public
    class, D102 public method, D103 public function, D104 package):
    every module and every public class/function/method must carry a
    docstring. Nested functions, underscore-prefixed names and dunders
    are exempt, matching the ruff configuration.
``links``
    Every relative markdown link in README.md, ROADMAP.md and
    ``docs/*.md`` must point at an existing file, and same-file
    ``#anchors`` must match a heading in the target document.
    ``http(s)`` links are not fetched (CI must not depend on the
    network) — only their syntax is accepted.
``mermaid``
    Every ```` ```mermaid ```` block must open with a known diagram
    type and have balanced brackets/quotes — the failure modes that
    silently render as an error box on GitHub.

Exit status is non-zero when any check fails; failures are printed one
per line as ``path:line: message``.
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Packages whose public surface must be documented (keep in sync with
#: the per-file-ignores in pyproject.toml).
DOCUMENTED_PACKAGES = ("src/repro/engine", "src/repro/obs", "src/repro/service")

#: Markdown documents whose links and mermaid blocks are checked.
MARKDOWN_DOCS = ("README.md", "ROADMAP.md", "CHANGES.md", "docs")

MERMAID_TYPES = (
    "flowchart",
    "graph",
    "sequenceDiagram",
    "classDiagram",
    "stateDiagram",
    "erDiagram",
    "gantt",
    "pie",
    "mindmap",
    "timeline",
)

_LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _iter_py_files() -> "list[Path]":
    files: list[Path] = []
    for package in DOCUMENTED_PACKAGES:
        files.extend(sorted((REPO / package).rglob("*.py")))
    return files


def _has_docstring(node: ast.AST) -> bool:
    return ast.get_docstring(node, clean=False) is not None


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def check_docstrings() -> "list[str]":
    """Missing-docstring findings for the documented packages."""
    findings: list[str] = []
    for path in _iter_py_files():
        rel = path.relative_to(REPO)
        tree = ast.parse(path.read_text(encoding="utf-8"))
        if not _has_docstring(tree):
            rule = "D104 package" if path.name == "__init__.py" else "D100 module"
            findings.append(f"{rel}:1: {rule} docstring missing")
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                if _is_public(node.name) and not _has_docstring(node):
                    findings.append(
                        f"{rel}:{node.lineno}: D101 class "
                        f"{node.name!r} has no docstring"
                    )
                for child in node.body:
                    if isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ) and _is_public(child.name):
                        if not _has_docstring(child):
                            findings.append(
                                f"{rel}:{child.lineno}: D102 method "
                                f"{node.name}.{child.name!r} has no docstring"
                            )
        for node in tree.body:  # module level only: nested defs exempt
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if _is_public(node.name) and not _has_docstring(node):
                    findings.append(
                        f"{rel}:{node.lineno}: D103 function "
                        f"{node.name!r} has no docstring"
                    )
    return findings


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug for a markdown heading."""
    text = re.sub(r"[`*_\[\]()!]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def _iter_markdown() -> "list[Path]":
    files: list[Path] = []
    for entry in MARKDOWN_DOCS:
        path = REPO / entry
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        elif path.exists():
            files.append(path)
    return files


def check_links() -> "list[str]":
    """Broken relative links / unknown anchors across the doc set."""
    findings: list[str] = []
    for path in _iter_markdown():
        rel = path.relative_to(REPO)
        text = path.read_text(encoding="utf-8")
        for match in _LINK_RE.finditer(text):
            target = match.group(1)
            line = text.count("\n", 0, match.start()) + 1
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            base, _, anchor = target.partition("#")
            dest = (path.parent / base).resolve() if base else path
            if not dest.exists():
                findings.append(f"{rel}:{line}: broken link -> {target}")
                continue
            if anchor and dest.suffix == ".md":
                headings = {
                    _slugify(h) for h in _HEADING_RE.findall(
                        dest.read_text(encoding="utf-8")
                    )
                }
                if _slugify(anchor) not in headings:
                    findings.append(
                        f"{rel}:{line}: unknown anchor -> {target}"
                    )
    return findings


def _balanced(block: str) -> "str | None":
    """Cheap structural validation: bracket/quote balance."""
    # Strip quoted strings first (brackets inside labels are fine).
    stripped = re.sub(r'"[^"]*"', '""', block)
    if stripped.count('"') % 2:
        return "unbalanced double quotes"
    pairs = {"]": "[", ")": "(", "}": "{"}
    stack: list[str] = []
    for ch in stripped:
        if ch in "[({":
            stack.append(ch)
        elif ch in "])}":
            if not stack or stack.pop() != pairs[ch]:
                return f"unbalanced {ch!r}"
    if stack:
        return f"unclosed {stack[-1]!r}"
    return None


def check_mermaid() -> "list[str]":
    """Structural validation of every mermaid block in the doc set."""
    findings: list[str] = []
    fence = re.compile(r"```mermaid\n(.*?)```", re.DOTALL)
    for path in _iter_markdown():
        rel = path.relative_to(REPO)
        text = path.read_text(encoding="utf-8")
        for match in fence.finditer(text):
            block = match.group(1)
            line = text.count("\n", 0, match.start()) + 1
            body = [
                ln for ln in block.splitlines()
                if ln.strip() and not ln.strip().startswith("%%")
            ]
            if not body:
                findings.append(f"{rel}:{line}: empty mermaid block")
                continue
            first = body[0].strip()
            if not first.startswith(MERMAID_TYPES):
                findings.append(
                    f"{rel}:{line}: mermaid block does not open with a "
                    f"known diagram type (got {first.split()[0]!r})"
                )
            problem = _balanced(block)
            if problem:
                findings.append(f"{rel}:{line}: mermaid block {problem}")
    return findings


def main() -> int:
    """Run all checks; print findings; non-zero exit on any failure."""
    checks = (
        ("docstrings", check_docstrings),
        ("links", check_links),
        ("mermaid", check_mermaid),
    )
    failed = False
    for name, check in checks:
        findings = check()
        if findings:
            failed = True
            print(f"-- {name}: {len(findings)} finding(s)")
            for finding in findings:
                print(finding)
        else:
            print(f"-- {name}: ok")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
