"""repro.obs — zero-dependency observability layer.

Three pieces (see each module for details):

``repro.obs.trace``
    Span tracer (``with span("solve", n=54): ...``) with Chrome-trace
    (Perfetto) and JSONL exporters.  Off by default; a disabled span is
    a shared no-op singleton.
``repro.obs.metrics``
    Counters / gauges / log-binned histograms with snapshot → diff →
    merge semantics so pool workers ship deltas to the parent.
``repro.obs.manifest``
    ``RunManifest`` — the "what produced this artifact" JSON written
    next to campaign outputs.

``repro.obs.runtime`` carries the cross-process glue (worker init,
telemetry capture, the batch-report ledger, and ``repro``-scoped
logging configuration).  Everything here is stdlib-only by design —
the engine must stay importable on a bare Python.
"""

from .manifest import (
    MANIFEST_SCHEMA_VERSION,
    RunManifest,
    git_revision,
    kernel_flags,
    params_digest,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_bin_edges,
    metrics,
    reset_metrics,
)
from .runtime import (
    ObsWorkerConfig,
    absorb_telemetry,
    batch_reports,
    clear_batch_reports,
    configure_logging,
    init_worker,
    record_batch_report,
    reset_observability,
    telemetry_capture,
    worker_config,
)
from .trace import (
    NULL_SPAN,
    SpanRecord,
    Tracer,
    disable_tracing,
    enable_tracing,
    records_from_dicts,
    span,
    to_chrome_trace,
    tracer,
    tracing_enabled,
    write_chrome_trace,
    write_jsonl,
)

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "NULL_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsWorkerConfig",
    "RunManifest",
    "SpanRecord",
    "Tracer",
    "absorb_telemetry",
    "batch_reports",
    "clear_batch_reports",
    "configure_logging",
    "default_bin_edges",
    "disable_tracing",
    "enable_tracing",
    "git_revision",
    "init_worker",
    "kernel_flags",
    "metrics",
    "params_digest",
    "record_batch_report",
    "records_from_dicts",
    "reset_metrics",
    "reset_observability",
    "span",
    "telemetry_capture",
    "to_chrome_trace",
    "tracer",
    "tracing_enabled",
    "worker_config",
    "write_chrome_trace",
    "write_jsonl",
]
