"""Process-local metrics registry with cross-process merge semantics.

Three instrument kinds, all zero-dependency:

``Counter``
    A monotonically increasing float.  Merging adds.
``Gauge``
    A last-write-wins float (e.g. cache size after a run).
``Histogram``
    Fixed log-scale bins (1-2-5 per decade) so that histograms recorded
    in *different processes* share identical bin edges and can be merged
    by summing bin counts.  Tracks count/sum/min/max alongside the bins.

The registry is deliberately tiny: worker processes snapshot it at chunk
start, run the chunk, then ship the *delta* back to the parent (a fork
start method inherits the parent's counts, so shipping totals would
double-count).  ``MetricsRegistry.diff`` produces that delta and
``MetricsRegistry.merge`` folds it back in.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_right
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_bin_edges",
    "metrics",
    "reset_metrics",
]


def default_bin_edges(
    low_decade: int = -7, high_decade: int = 3
) -> Tuple[float, ...]:
    """1-2-5 edges per decade, e.g. ... 0.1, 0.2, 0.5, 1.0, 2.0, 5.0 ...

    The default span (1e-7 .. 1e3) covers everything from a sub-µs
    kernel step to a multi-minute campaign when values are seconds.
    """
    edges: List[float] = []
    for decade in range(low_decade, high_decade + 1):
        base = 10.0**decade
        for mantissa in (1.0, 2.0, 5.0):
            edges.append(mantissa * base)
    return tuple(edges)


_DEFAULT_EDGES = default_bin_edges()


class Counter:
    """Monotonic counter; ``merge`` adds."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def add(self, amount: float = 1.0) -> None:
        """Increment by ``amount`` (default 1)."""
        self.value += amount

    def as_dict(self) -> dict:
        """Serialized form for snapshots and cross-process merge."""
        return {"kind": "counter", "value": self.value}

    def merge_dict(self, payload: Mapping) -> None:
        """Fold another counter's serialized value into this one."""
        self.value += float(payload.get("value", 0.0))

    def diff_dict(self, before: Optional[Mapping]) -> Optional[dict]:
        """Serialized delta vs an earlier snapshot (``None`` if unchanged)."""
        base = float(before.get("value", 0.0)) if before else 0.0
        delta = self.value - base
        if delta == 0.0:
            return None
        return {"kind": "counter", "value": delta}


class Gauge:
    """Last-write-wins value; ``merge`` overwrites."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def set(self, value: float) -> None:
        """Overwrite the current value."""
        self.value = value

    def as_dict(self) -> dict:
        """Serialized form for snapshots and cross-process merge."""
        return {"kind": "gauge", "value": self.value}

    def merge_dict(self, payload: Mapping) -> None:
        """Adopt another gauge's serialized value (last write wins)."""
        self.value = float(payload.get("value", 0.0))

    def diff_dict(self, before: Optional[Mapping]) -> Optional[dict]:
        """Serialized value vs an earlier snapshot (``None`` if unchanged)."""
        if before is not None and float(before.get("value", 0.0)) == self.value:
            return None
        return {"kind": "gauge", "value": self.value}


class Histogram:
    """Log-binned histogram with shared, fixed edges.

    ``counts[i]`` counts observations with ``edges[i-1] <= v < edges[i]``
    (``counts[0]`` is the underflow bin, ``counts[-1]`` the overflow bin,
    so ``len(counts) == len(edges) + 1``).
    """

    __slots__ = ("edges", "counts", "count", "total", "min", "max")
    kind = "histogram"

    def __init__(self, edges: Optional[Iterable[float]] = None) -> None:
        self.edges: Tuple[float, ...] = (
            tuple(edges) if edges is not None else _DEFAULT_EDGES
        )
        self.counts: List[int] = [0] * (len(self.edges) + 1)
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.counts[bisect_right(self.edges, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Mean of all observed samples (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        """Serialized form for snapshots and cross-process merge."""
        return {
            "kind": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "edges": list(self.edges),
            "counts": list(self.counts),
        }

    def merge_dict(self, payload: Mapping) -> None:
        """Fold a histogram with identical bin edges into this one."""
        counts = payload.get("counts") or []
        if list(payload.get("edges") or []) != list(self.edges):
            raise ValueError("histogram merge requires identical bin edges")
        for i, c in enumerate(counts):
            self.counts[i] += int(c)
        self.count += int(payload.get("count", 0))
        self.total += float(payload.get("sum", 0.0))
        other_min = payload.get("min")
        other_max = payload.get("max")
        if other_min is not None and other_min < self.min:
            self.min = float(other_min)
        if other_max is not None and other_max > self.max:
            self.max = float(other_max)

    def diff_dict(self, before: Optional[Mapping]) -> Optional[dict]:
        """Serialized delta vs an earlier snapshot (``None`` if unchanged)."""
        if before is None:
            return self.as_dict() if self.count else None
        delta_count = self.count - int(before.get("count", 0))
        if delta_count == 0:
            return None
        prior = list(before.get("counts") or [0] * len(self.counts))
        return {
            "kind": "histogram",
            "count": delta_count,
            "sum": self.total - float(before.get("sum", 0.0)),
            # min/max of the delta window are unknowable from snapshots;
            # report the running extrema, which stay correct under merge.
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "edges": list(self.edges),
            "counts": [c - int(p) for c, p in zip(self.counts, prior)],
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Thread-safe name → instrument map with snapshot/diff/merge."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the named :class:`Counter`."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """Get or create the named :class:`Gauge`."""
        return self._get(name, Gauge)

    def histogram(
        self, name: str, edges: Optional[Iterable[float]] = None
    ) -> Histogram:
        """Get or create the named :class:`Histogram`."""
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = Histogram(edges)
                self._metrics[name] = metric
            elif not isinstance(metric, Histogram):
                raise TypeError(f"metric {name!r} is a {type(metric).__name__}")
            return metric

    def _get(self, name: str, cls):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls()
                self._metrics[name] = metric
            elif not isinstance(metric, cls):
                raise TypeError(f"metric {name!r} is a {type(metric).__name__}")
            return metric

    def as_dict(self) -> Dict[str, dict]:
        """Serialized snapshot of every instrument, sorted by name."""
        with self._lock:
            return {name: m.as_dict() for name, m in sorted(self._metrics.items())}

    # ``snapshot`` is an alias that reads as intent at call sites.
    snapshot = as_dict

    def diff(self, before: Mapping[str, Mapping]) -> Dict[str, dict]:
        """Delta of the registry relative to an earlier ``snapshot()``."""
        delta: Dict[str, dict] = {}
        with self._lock:
            for name, metric in self._metrics.items():
                d = metric.diff_dict(before.get(name))
                if d is not None:
                    delta[name] = d
        return delta

    def merge(self, payload: Mapping[str, Mapping]) -> None:
        """Fold a serialized registry (or delta) into this one."""
        for name, entry in payload.items():
            kind = entry.get("kind")
            cls = _KINDS.get(kind)
            if cls is None:
                raise ValueError(f"unknown metric kind {kind!r} for {name!r}")
            if cls is Histogram:
                metric = self.histogram(name, entry.get("edges"))
            else:
                metric = self._get(name, cls)
            metric.merge_dict(entry)

    def clear(self) -> None:
        """Drop every instrument (test isolation)."""
        with self._lock:
            self._metrics.clear()


_REGISTRY = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process-global registry (workers inherit/merge via deltas)."""
    return _REGISTRY


def reset_metrics() -> None:
    """Clear the process-global registry (test isolation)."""
    _REGISTRY.clear()
