"""Process-global observability runtime.

Glue between the tracer/metrics primitives and the engine:

* ``ObsWorkerConfig`` + ``init_worker`` — a picklable snapshot of the
  parent's observability state, applied in pool initializers so spawned
  workers trace/log like the parent (fork would inherit it; spawn needs
  the explicit handoff).
* ``telemetry_capture`` — context manager used by worker-side chunk
  functions: snapshots the metrics registry and the span buffer on
  entry, and exposes the *delta* as a picklable payload on exit.  The
  parent folds it back in with ``absorb_telemetry``.
* A bounded ledger of ``BatchReport`` dicts so a multi-batch command
  (e.g. ``repro paper`` = four campaigns) can write one manifest
  covering all of them.
* ``configure_logging`` — attaches a handler to the ``"repro"`` logger
  only; library code never touches the root logger.
"""

from __future__ import annotations

import logging
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from .metrics import metrics
from .trace import records_from_dicts, tracer

__all__ = [
    "ObsWorkerConfig",
    "absorb_telemetry",
    "batch_reports",
    "clear_batch_reports",
    "configure_logging",
    "init_worker",
    "record_batch_report",
    "reset_observability",
    "telemetry_capture",
    "worker_config",
]

log = logging.getLogger(__name__)


# --------------------------------------------------------------------------
# Worker handoff
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ObsWorkerConfig:
    """Picklable observability state shipped to pool workers."""

    tracing: bool = False
    log_level: Optional[int] = None


def worker_config() -> ObsWorkerConfig:
    """Snapshot the parent's state for pool initargs."""
    return ObsWorkerConfig(
        tracing=tracer().enabled,
        log_level=_configured_level(),
    )


def init_worker(config: Optional[ObsWorkerConfig]) -> None:
    """Apply a parent snapshot inside a freshly started pool worker."""
    if config is None:
        return
    tracer().enabled = config.tracing
    if config.log_level is not None:
        configure_logging(config.log_level)


class telemetry_capture:
    """Bracket worker-side chunk execution; ``payload`` is the delta.

    ``submitted_at`` (parent wall-clock at submit time) feeds the
    ``pool.dispatch_latency_s`` histogram — the time a chunk sat in the
    executor queue before a worker picked it up.
    """

    def __init__(self, submitted_at: Optional[float] = None) -> None:
        self._submitted_at = submitted_at
        self.payload: dict = {}

    def __enter__(self) -> "telemetry_capture":
        # Snapshot first: the latency observation must land *after* the
        # baseline or it would be subtracted out of the shipped delta.
        self._before = metrics().snapshot()
        self._mark = tracer().mark()
        if self._submitted_at is not None:
            latency = time.time() - self._submitted_at
            if latency >= 0.0:
                metrics().histogram("pool.dispatch_latency_s").observe(latency)
        return self

    def __exit__(self, *exc) -> bool:
        self.payload = {
            "metrics": metrics().diff(self._before),
            "spans": [r.as_dict() for r in tracer().since(self._mark)],
        }
        return False


def absorb_telemetry(payload: Optional[dict]) -> None:
    """Fold a worker's ``telemetry_capture.payload`` into this process."""
    if not payload:
        return
    delta = payload.get("metrics")
    if delta:
        metrics().merge(delta)
    spans = payload.get("spans")
    if spans:
        tracer().add_records(records_from_dicts(spans))


# --------------------------------------------------------------------------
# Batch-report ledger
# --------------------------------------------------------------------------

_REPORTS: Deque[dict] = deque(maxlen=256)


def record_batch_report(report: dict) -> None:
    """Append a batch report to the bounded in-process ledger."""
    _REPORTS.append(report)


def batch_reports() -> List[dict]:
    """Snapshot of the recorded batch reports, oldest first."""
    return list(_REPORTS)


def clear_batch_reports() -> None:
    """Empty the batch-report ledger (test isolation)."""
    _REPORTS.clear()


# --------------------------------------------------------------------------
# Logging
# --------------------------------------------------------------------------

_HANDLER: Optional[logging.Handler] = None


def _configured_level() -> Optional[int]:
    if _HANDLER is None:
        return None
    return logging.getLogger("repro").level or None


def configure_logging(level) -> None:
    """Attach/update a stream handler on the ``repro`` logger only.

    Idempotent: repeated calls adjust the level of the one handler this
    module owns.  The root logger is never touched, so embedding
    applications keep full control of their own logging tree.
    """
    global _HANDLER
    if isinstance(level, str):
        parsed = logging.getLevelName(level.upper())
        if not isinstance(parsed, int):
            raise ValueError(f"unknown log level: {level!r}")
        level = parsed
    repro_logger = logging.getLogger("repro")
    if _HANDLER is None:
        _HANDLER = logging.StreamHandler()
        _HANDLER.setFormatter(
            logging.Formatter(
                "%(asctime)s %(levelname)s %(name)s [pid=%(process)d] %(message)s"
            )
        )
        repro_logger.addHandler(_HANDLER)
    repro_logger.setLevel(level)
    _HANDLER.setLevel(level)


def reset_observability() -> None:
    """Clear all recorded observability state (tests, fresh CLI runs)."""
    tracer().clear()
    metrics().clear()
    clear_batch_reports()
