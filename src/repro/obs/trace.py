"""Zero-dependency span tracer with Chrome-trace and JSONL exporters.

Usage::

    from repro.obs import span, enable_tracing, write_chrome_trace

    enable_tracing()
    with span("solve_dag_batch", n=54, points=6):
        ...
    write_chrome_trace("trace.json")

Design constraints, in order of importance:

1. **Disabled cost must be unmeasurable.**  When tracing is off,
   ``span()`` returns a shared no-op singleton — one attribute check,
   no allocation besides the kwargs dict, no clock reads.
2. **Cross-process coherence.**  Timestamps are wall-clock
   (``time.time()``) so spans recorded in pool workers line up with
   parent spans on a Perfetto timeline; durations come from
   ``time.perf_counter()`` so they are monotonic and high-resolution.
3. **Pool-friendly.**  Workers record into their own buffer and ship
   only the records created during a chunk (``mark()`` / ``since()``),
   which keeps fork-inherited parent records out of the payload.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

__all__ = [
    "NULL_SPAN",
    "SpanRecord",
    "Tracer",
    "disable_tracing",
    "enable_tracing",
    "records_from_dicts",
    "span",
    "to_chrome_trace",
    "tracer",
    "tracing_enabled",
    "write_chrome_trace",
    "write_jsonl",
]


@dataclass
class SpanRecord:
    """One completed span (a ``ph: "X"`` Chrome-trace complete event)."""

    name: str
    start_s: float  # wall clock, epoch seconds
    duration_s: float  # perf_counter delta
    pid: int
    tid: int
    depth: int
    attrs: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-ready record (inverse of :func:`records_from_dicts`)."""
        return {
            "name": self.name,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "pid": self.pid,
            "tid": self.tid,
            "depth": self.depth,
            "attrs": self.attrs,
        }


def records_from_dicts(payload: Iterable[Mapping]) -> List[SpanRecord]:
    """Rebuild :class:`SpanRecord` objects from their dict form."""
    return [
        SpanRecord(
            name=str(d["name"]),
            start_s=float(d["start_s"]),
            duration_s=float(d["duration_s"]),
            pid=int(d["pid"]),
            tid=int(d["tid"]),
            depth=int(d.get("depth", 0)),
            attrs=dict(d.get("attrs") or {}),
        )
        for d in payload
    ]


class _NullSpan:
    """Shared no-op context manager returned when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        """No-op attribute setter (tracing disabled)."""
        pass


NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("_tracer", "name", "attrs", "_start_wall", "_start_perf", "_depth")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs

    def set(self, **attrs) -> None:
        """Attach attributes to the span before it closes."""
        self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        local = self._tracer._local
        depth = getattr(local, "depth", 0)
        local.depth = depth + 1
        self._depth = depth
        self._start_wall = time.time()
        self._start_perf = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start_perf
        self._tracer._local.depth = self._depth
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._append(
            SpanRecord(
                name=self.name,
                start_s=self._start_wall,
                duration_s=duration,
                pid=os.getpid(),
                tid=threading.get_ident(),
                depth=self._depth,
                attrs=self.attrs,
            )
        )
        return False


class Tracer:
    """In-memory span buffer; one per process, workers ship deltas."""

    def __init__(self) -> None:
        self.enabled = False
        self._records: List[SpanRecord] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    def span(self, name: str, **attrs):
        """Context manager measuring one span (no-op when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, attrs)

    def _append(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)

    def records(self) -> List[SpanRecord]:
        """Copy of every buffered span record."""
        with self._lock:
            return list(self._records)

    def mark(self) -> int:
        """Current buffer length; pair with :meth:`since`."""
        with self._lock:
            return len(self._records)

    def since(self, mark: int) -> List[SpanRecord]:
        """Records appended after ``mark`` (worker chunk telemetry)."""
        with self._lock:
            return list(self._records[mark:])

    def add_records(self, records: Iterable[SpanRecord]) -> None:
        """Append records shipped from another process."""
        with self._lock:
            self._records.extend(records)

    def clear(self) -> None:
        """Empty the span buffer."""
        with self._lock:
            self._records.clear()


_TRACER = Tracer()


def tracer() -> Tracer:
    """The process-global tracer."""
    return _TRACER


def tracing_enabled() -> bool:
    """Whether the global tracer is recording."""
    return _TRACER.enabled


def enable_tracing() -> None:
    """Start recording spans on the global tracer."""
    _TRACER.enabled = True


def disable_tracing() -> None:
    """Stop recording spans on the global tracer."""
    _TRACER.enabled = False


def span(name: str, **attrs):
    """Start a span on the global tracer (no-op singleton when disabled)."""
    if not _TRACER.enabled:
        return NULL_SPAN
    return _Span(_TRACER, name, attrs)


# --------------------------------------------------------------------------
# Exporters
# --------------------------------------------------------------------------


def to_chrome_trace(records: Optional[Iterable[SpanRecord]] = None) -> dict:
    """Chrome trace event format (load in Perfetto / chrome://tracing).

    Every span becomes a complete event (``ph: "X"``) with microsecond
    wall-clock timestamps, so events from different processes share one
    timeline.
    """
    if records is None:
        records = _TRACER.records()
    events = [
        {
            "name": r.name,
            "ph": "X",
            "ts": r.start_s * 1e6,
            "dur": r.duration_s * 1e6,
            "pid": r.pid,
            "tid": r.tid,
            "args": r.attrs,
        }
        for r in records
    ]
    events.sort(key=lambda e: e["ts"])
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path, records: Optional[Iterable[SpanRecord]] = None
) -> None:
    """Write records as a Chrome/Perfetto ``traceEvents`` JSON file."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(to_chrome_trace(records), fh)
        fh.write("\n")


def write_jsonl(path, records: Optional[Iterable[SpanRecord]] = None) -> None:
    """One JSON object per line — easy to grep / stream-process."""
    if records is None:
        records = _TRACER.records()
    with open(path, "w", encoding="utf-8") as fh:
        for r in records:
            fh.write(json.dumps(r.as_dict()))
            fh.write("\n")
