"""Per-campaign run manifests.

A :class:`RunManifest` is a small JSON document written next to the
artifacts of a campaign that answers "what exactly produced this file?":
the params digest, git revision, backend, kernel feature flags, phase
timings, cache statistics, errors (with worker-side tracebacks), and a
metrics summary.  The schema is versioned and covered by a stability
test — downstream tooling may rely on the top-level keys.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from .metrics import metrics

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "RunManifest",
    "git_revision",
    "kernel_flags",
    "params_digest",
]

MANIFEST_SCHEMA_VERSION = 1

# Environment switches that change which kernels/paths run.  Recorded
# raw (as set) and resolved (what the code will actually do).
_KERNEL_ENV_VARS = (
    "REPRO_KERNEL",
    "REPRO_FUSED_GATHER",
    "REPRO_STRUCTURE_SHARE",
    "REPRO_TRANSIENT_BACKEND",
)


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """Best-effort commit sha: $GITHUB_SHA, then ``git rev-parse HEAD``."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd or os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def _env_flag_default_on(name: str) -> bool:
    # Mirrors ``kernels.fused_gather_enabled`` / ``structshare`` exactly
    # (obs stays import-light, so the resolution is duplicated here).
    return os.environ.get(name, "1").strip().lower() not in ("0", "off", "false")


def _resolved_kernel() -> str:
    # Mirrors ``repro.ctmc.kernels.resolve_kernel`` without importing
    # the solver stack: REPRO_KERNEL beats the legacy fused switch, and
    # a numba request degrades to fused when numba isn't installed
    # (checked via find_spec so obs never actually imports numba).
    # Best-effort: a jit *failure* at solve time isn't visible here.
    requested = os.environ.get("REPRO_KERNEL", "").strip().lower()
    if requested not in ("numba", "fused", "numpy"):
        requested = (
            "fused" if _env_flag_default_on("REPRO_FUSED_GATHER") else "numpy"
        )
    if requested == "numba":
        import importlib.util

        if importlib.util.find_spec("numba") is None:
            return "fused"
    return requested


def _resolved_transient_backend() -> str:
    # Mirrors ``repro.ctmc.transient.resolve_transient_backend``:
    # unrecognised values fall back to the default, never raise.
    raw = os.environ.get("REPRO_TRANSIENT_BACKEND", "").strip().lower()
    return raw if raw in ("uniformization", "expm") else "uniformization"


def kernel_flags() -> Dict[str, object]:
    """Raw and resolved kernel/feature switches (default: both on)."""
    return {
        "kernel": _resolved_kernel(),
        "fused_gather": _env_flag_default_on("REPRO_FUSED_GATHER"),
        "structure_share": _env_flag_default_on("REPRO_STRUCTURE_SHARE"),
        "transient_backend": _resolved_transient_backend(),
        "env": {name: os.environ.get(name) for name in _KERNEL_ENV_VARS},
    }


def params_digest(fingerprints: Iterable[str]) -> str:
    """Order-independent SHA-256 over a campaign's request fingerprints."""
    digest = hashlib.sha256()
    for fp in sorted(fingerprints):
        digest.update(fp.encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()


@dataclass
class RunManifest:
    """Everything needed to identify and audit one campaign run."""

    command: str
    backend: Optional[str] = None
    params_digest: Optional[str] = None
    git_sha: Optional[str] = None
    kernel_flags: Dict[str, object] = field(default_factory=kernel_flags)
    reports: List[dict] = field(default_factory=list)
    cache_stats: Optional[dict] = None
    errors: List[dict] = field(default_factory=list)
    metrics: Optional[Dict[str, dict]] = None
    created_at: Optional[str] = None
    python: str = field(
        default_factory=lambda: ".".join(str(v) for v in sys.version_info[:3])
    )
    schema_version: int = MANIFEST_SCHEMA_VERSION

    def finalize(self) -> "RunManifest":
        """Fill derived fields (timestamps, git sha, metrics) lazily."""
        if self.created_at is None:
            self.created_at = time.strftime(
                "%Y-%m-%dT%H:%M:%S%z", time.localtime()
            )
        if self.git_sha is None:
            self.git_sha = git_revision()
        if self.metrics is None:
            self.metrics = metrics().snapshot()
        return self

    def to_dict(self) -> dict:
        """JSON-ready manifest payload."""
        return {
            "schema_version": self.schema_version,
            "command": self.command,
            "created_at": self.created_at,
            "git_sha": self.git_sha,
            "python": self.python,
            "backend": self.backend,
            "params_digest": self.params_digest,
            "kernel_flags": self.kernel_flags,
            "reports": self.reports,
            "cache_stats": self.cache_stats,
            "errors": self.errors,
            "metrics": self.metrics,
        }

    def write(self, path) -> None:
        """Finalize and write the manifest to ``path`` as indented JSON."""
        self.finalize()
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=False)
            fh.write("\n")
