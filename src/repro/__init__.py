"""repro — reproduction of Cho & Chen (IPDPS 2009).

*Performance analysis of distributed intrusion detection protocols for
mobile group communication systems.*

Public API quick reference::

    from repro import GCSParameters, Scenario, evaluate

    params = GCSParameters.paper_defaults()      # Section 5 defaults
    result = evaluate(params)                    # MTTSF + Ctotal
    print(result.summary())

    scenario = Scenario(params)
    best = scenario.optimize([15, 30, 60, 120, 240, 480])
    print(best.summary())

Subpackages (see DESIGN.md for the full inventory):

=================  =====================================================
``repro.core``     the paper's SPN model, metrics, optimiser
``repro.ctmc``     CTMC solvers (absorbing / transient / stationary)
``repro.spn``      stochastic Petri net engine
``repro.voting``   Equation 1 voting probabilities + protocol
``repro.attackers`` / ``repro.detection``  rate-function families
``repro.manet``    mobility, connectivity, partition/merge estimation
``repro.groupkey`` GDH contributory key agreement + rekey costs
``repro.costs``    communication-cost model (Ĉtotal components)
``repro.sim``      discrete-event Monte Carlo validation
``repro.analysis`` experiment registry (figures + ablations) and CLI
``repro.engine``   batch evaluation: fingerprints, result cache, executors
=================  =====================================================
"""

from .core.metrics import evaluate
from .core.optimizer import optimize_tids, select_optimum, tradeoff_curve
from .core.results import GCSResult
from .core.scenario import Scenario
from .errors import ReproError
from .params import (
    AttackParameters,
    DetectionParameters,
    GCSParameters,
    GroupDynamicsParameters,
    NetworkParameters,
    WorkloadParameters,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "GCSParameters",
    "NetworkParameters",
    "WorkloadParameters",
    "AttackParameters",
    "DetectionParameters",
    "GroupDynamicsParameters",
    "GCSResult",
    "Scenario",
    "evaluate",
    "optimize_tids",
    "select_optimum",
    "tradeoff_curve",
]
