"""Simulator-facing attacker profiles and attacker-strength estimation.

:class:`AttackerProfile` packages an :class:`AttackerFunction` with the
behavioural flags the discrete-event simulator needs (vote collusion,
data-leak attempts). :func:`estimate_attacker_function` identifies
which of the three paper attacker forms best explains an observed
compromise history — the runtime half of the paper's "select the best
detection function in response to the attacker function detected at
runtime" adaptation loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..errors import ParameterError
from ..params import ATTACKER_FUNCTIONS
from ..validation import require_positive_int
from .functions import AttackerFunction, compromise_ratio

__all__ = ["AttackerProfile", "estimate_attacker_function"]


@dataclass(frozen=True)
class AttackerProfile:
    """Behavioural description of the inside attacker for simulation.

    ``colludes_in_votes``: compromised voters vote against good targets
    and for bad targets (the paper assumes this; turning it off gives an
    ablation where compromised voters behave honestly).
    ``leaks_data``: compromised-undetected members issue data requests
    (the C1 failure channel); turning it off isolates the C2 channel.
    """

    function: AttackerFunction
    colludes_in_votes: bool = True
    leaks_data: bool = True
    name: str = "insider"

    def compromise_rate(self, n_trusted: int, n_compromised_undetected: int) -> float:
        """Current group-level compromise rate ``A(mc)``."""
        return self.function.rate(n_trusted, n_compromised_undetected)

    def sample_compromise_delay(
        self,
        n_trusted: int,
        n_compromised_undetected: int,
        rng: np.random.Generator,
    ) -> float:
        """Exponential delay to the next compromise at the current rate.

        The simulator resamples after every state change, which is
        exactly correct for exponential (memoryless) delays with
        state-dependent rates.
        """
        if n_trusted == 0:
            return float("inf")
        rate = self.compromise_rate(n_trusted, n_compromised_undetected)
        if rate <= 0.0:
            return float("inf")
        return float(rng.exponential(1.0 / rate))


def estimate_attacker_function(
    compromise_times_s: Sequence[float],
    num_nodes: int,
    *,
    base_index_p: float = 3.0,
    shifted_log: bool = True,
    candidates: Optional[Sequence[str]] = None,
) -> tuple[str, float, dict[str, float]]:
    """Identify the attacker form from observed compromise instants.

    Parameters
    ----------
    compromise_times_s:
        Strictly increasing times of the first, second, ... compromise
        in a group that started fully trusted (as reconstructed from IDS
        detections; at least 3 events).
    num_nodes:
        Group size ``N`` at mission start. After ``k`` compromises the
        ratio is ``mc_k = N / (N - k)`` (no detections assumed inside
        the estimation window — the paper's first-order approximation of
        λc makes the same simplification).

    Returns
    -------
    ``(best_form, fitted_base_rate_hz, log_likelihood_by_form)`` — the
    candidate maximising the *profile log-likelihood* of the observed
    exponential inter-compromise gaps. For form ``f`` with unit rates
    ``u_k = A_f(mc_k)/λc``, the gap ``g_k`` is Exp(λc·u_k); profiling
    out λc gives ``λ̂c = K / Σ u_k g_k`` and
    ``ℓ_f = K log λ̂c + Σ log u_k − K``. This is the likelihood-ratio
    discriminator; note logarithmic and linear attackers are genuinely
    hard to tell apart until the compromised fraction is substantial
    (their rate curves differ by <10% near ``mc = 1``).
    """
    t = np.asarray(compromise_times_s, dtype=float)
    if t.ndim != 1 or t.size < 3:
        raise ParameterError("need at least 3 compromise times")
    if np.any(np.diff(t) <= 0) or t[0] <= 0:
        raise ParameterError("compromise times must be positive and strictly increasing")
    require_positive_int("num_nodes", num_nodes)
    if t.size >= num_nodes:
        raise ParameterError(
            f"cannot observe {t.size} compromises in a group of {num_nodes}"
        )

    candidates = tuple(candidates or ATTACKER_FUNCTIONS)
    for cand in candidates:
        if cand not in ATTACKER_FUNCTIONS:
            raise ParameterError(f"unknown attacker function {cand!r}")

    gaps = np.diff(np.concatenate([[0.0], t]))
    # mc before the (k+1)-th compromise, k = 0..K-1 compromises so far.
    mcs = np.array(
        [compromise_ratio(num_nodes - k, k) for k in range(t.size)]
    )

    scores: dict[str, float] = {}
    best_form, best_ll, best_rate = "", -np.inf, np.nan
    k_obs = t.size
    for form in candidates:
        fn = AttackerFunction(form, 1.0, base_index_p, shifted_log)
        unit_rates = np.array([fn.rate_at_ratio(mc) for mc in mcs])
        if np.any(unit_rates <= 0.0):
            # Literal log form has zero rate at mc=1: it cannot explain
            # the first compromise at all.
            scores[form] = -np.inf
            continue
        denom = float(unit_rates @ gaps)
        lam_hat = k_obs / denom
        ll = k_obs * math.log(lam_hat) + float(np.log(unit_rates).sum()) - k_obs
        scores[form] = ll
        if ll > best_ll:
            best_form, best_ll, best_rate = form, ll, lam_hat
    if not best_form:
        raise ParameterError("no candidate attacker function can explain the history")
    return best_form, float(best_rate), scores
