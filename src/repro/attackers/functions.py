"""Attacker rate functions ``A(mc)`` (paper Section 4.1).

``mc = (#Tm + #UCm) / #Tm ≥ 1`` measures the degree of compromise: 1
when nobody is compromised, growing as undetected compromised members
accumulate (and as the trusted population shrinks). The three forms:

* ``A_linear(mc) = λc · mc`` — compromise rate proportional to ``mc``;
* ``A_poly(mc)   = λc · mc^p`` — accelerating ("the attacker takes
  increasingly *shorter* time"), ``p = 3`` in the paper;
* ``A_log(mc)    = λc · log_p(mc)`` — decelerating. The literal form is
  zero at ``mc = 1`` (the attacker could never compromise the first
  node), so by default we use the *shifted* form
  ``λc · (1 + log_p(mc))`` which equals ``λc`` at ``mc = 1`` and keeps
  the ordering log ≤ linear ≤ poly for ``mc ≥ 1`` (DESIGN.md §4.3).
  Pass ``shifted=False`` for the literal paper form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ParameterError
from ..params import ATTACKER_FUNCTIONS, AttackParameters
from ..validation import require_in, require_positive

__all__ = ["AttackerFunction", "compromise_ratio"]


def compromise_ratio(n_trusted: int, n_compromised_undetected: int) -> float:
    """``mc = (#Tm + #UCm) / #Tm``.

    Undefined (raises) when no trusted member remains — the compromise
    transition is structurally disabled in that case, so model code
    never asks.
    """
    if n_trusted < 0 or n_compromised_undetected < 0:
        raise ParameterError(
            f"node counts must be >= 0, got ({n_trusted}, {n_compromised_undetected})"
        )
    if n_trusted == 0:
        raise ParameterError("mc undefined with no trusted members (#Tm = 0)")
    return (n_trusted + n_compromised_undetected) / n_trusted


@dataclass(frozen=True)
class AttackerFunction:
    """A parameterised attacker strength ``A(mc)``.

    ``base_rate_hz`` is λc — the compromise rate of an untouched group.
    """

    form: str
    base_rate_hz: float
    base_index_p: float = 3.0
    shifted_log: bool = True

    def __post_init__(self) -> None:
        require_in("form", self.form, ATTACKER_FUNCTIONS)
        require_positive("base_rate_hz", self.base_rate_hz)
        p = require_positive("base_index_p", self.base_index_p)
        if p <= 1.0:
            raise ParameterError(f"base_index_p must be > 1, got {p}")

    @classmethod
    def from_params(cls, params: AttackParameters) -> "AttackerFunction":
        """Build from an :class:`~repro.params.AttackParameters` bundle."""
        return cls(
            form=params.attacker_function,
            base_rate_hz=params.base_compromise_rate_hz,
            base_index_p=params.base_index_p,
            shifted_log=params.shifted_log,
        )

    # ------------------------------------------------------------------
    def rate_at_ratio(self, mc: float) -> float:
        """``A(mc)`` for a given compromise ratio (``mc >= 1``)."""
        if mc < 1.0:
            raise ParameterError(f"mc must be >= 1, got {mc}")
        lam, p = self.base_rate_hz, self.base_index_p
        if self.form == "linear":
            return lam * mc
        if self.form == "polynomial":
            return lam * mc**p
        # logarithmic
        log_term = math.log(mc) / math.log(p)
        if self.shifted_log:
            return lam * (1.0 + log_term)
        return lam * log_term

    def rate(self, n_trusted: int, n_compromised_undetected: int) -> float:
        """``A(mc)`` evaluated from group counts (``#Tm``, ``#UCm``)."""
        return self.rate_at_ratio(
            compromise_ratio(n_trusted, n_compromised_undetected)
        )

    def describe(self) -> str:
        """Human-readable formula string (docs, experiment logs)."""
        lam = self.base_rate_hz
        p = self.base_index_p
        if self.form == "linear":
            return f"A(mc) = {lam:.3g}·mc"
        if self.form == "polynomial":
            return f"A(mc) = {lam:.3g}·mc^{p:g}"
        if self.shifted_log:
            return f"A(mc) = {lam:.3g}·(1 + log_{p:g}(mc))"
        return f"A(mc) = {lam:.3g}·log_{p:g}(mc)"
