"""Inside-attacker behaviour models.

The paper models attacker strength as a marking-dependent node
compromise rate ``A(mc)`` where ``mc = (#Tm + #UCm) / #Tm`` reflects the
current degree of compromise. Three strengths are provided —
logarithmic (slowing), linear (proportional) and polynomial
(accelerating) — plus simulator-facing profiles with collusion and
data-leak behaviour, and an estimator that identifies the attacker
function from observed compromise counts (used by the adaptive IDS
controller).
"""

from .functions import AttackerFunction, compromise_ratio
from .profiles import AttackerProfile, estimate_attacker_function

__all__ = [
    "AttackerFunction",
    "compromise_ratio",
    "AttackerProfile",
    "estimate_attacker_function",
]
