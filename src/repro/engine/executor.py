"""Pluggable execution backends for batch evaluation.

Four backends behind one ``run(fn, items)`` contract:

* :class:`SerialBackend` — in-process loop, zero overhead, the
  reference semantics;
* :class:`ProcessPoolBackend` — ``concurrent.futures`` process pool
  with chunked dispatch (one IPC round-trip per chunk, not per point);
* :class:`ThreadPoolBackend` — ``concurrent.futures`` thread pool for
  workloads that release the GIL (the scipy sparse solves at the heart
  of an evaluation spend their time in native code); zero pickling, so
  it also accepts unpicklable callables and items.
* :class:`VectorBackend` — model-evaluation and survivability batches
  are recognised and solved *simultaneously* by the structure-sharing
  batched solvers (:func:`repro.core.metrics.evaluate_batch_outcomes`
  / :func:`repro.core.metrics.evaluate_survivability_batch_outcomes`);
  anything else falls back to an inner backend (serial by default).
  The speedup is algorithmic, so it stacks with single-core machines —
  and with ``chunk_workers`` set (``--jobs vector:N``) independent
  chunks additionally fan out over a process pool (the vector+procs
  hybrid), stacking multi-core scaling on top.

All return :class:`PointOutcome` records in **input order** regardless
of completion order, and all capture per-point exceptions into the
outcome instead of aborting the whole batch — a sweep with one
pathological grid point still yields the other N−1 results. The
backends are observationally equivalent: same inputs, same outcomes,
same ordering (asserted by the test suite; the vector backend is
additionally *bit-identical* to the others on model batches).

A fifth backend lives in :mod:`repro.service`:
:class:`~repro.service.client.RemoteBackend` (``--jobs remote[:URL]``)
submits engine batches to a sweep-service job server over HTTP and
streams the outcomes back — same contract, same ordering, evaluation
on another process or host.

:func:`make_backend` maps the CLI's ``--jobs`` grammar (``N``,
``auto``, ``thread[:N]``, ``vector[:N]``, ``remote[:URL]``) onto a
backend;
:func:`available_cpus` is the ``auto`` worker count (cgroup/affinity
aware where the platform exposes it).
"""

from __future__ import annotations

import logging
import math
import os
import pickle
import time
import traceback as traceback_module
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace
from typing import Any, Callable, Optional, Protocol, Sequence, Union

from ..errors import ParameterError
from ..obs import metrics, span
from ..obs.runtime import (
    absorb_telemetry,
    init_worker,
    telemetry_capture,
    worker_config,
)

log = logging.getLogger(__name__)

#: Optional streaming callback: invoked once per completed outcome, in
#: completion order, before the backend returns (``--progress`` uses it).
OutcomeFn = Callable[["PointOutcome"], None]

__all__ = [
    "OutcomeFn",
    "PointOutcome",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "ThreadPoolBackend",
    "VectorBackend",
    "StructureShareConfig",
    "available_cpus",
    "make_backend",
    "run_chunk",
]


@dataclass(frozen=True)
class StructureShareConfig:
    """How process-based backends share ``LatticeStructure`` with workers.

    ``use_shm`` packs the structures a batch needs into one
    :mod:`multiprocessing.shared_memory` segment that pool workers
    attach read-only views of (see :mod:`repro.core.structshare`);
    ``npz_dir`` additionally persists them as ``.npz`` files — the
    fork-unsafe/Windows fallback and a cold-start cache across runs.
    The default (shm on, no disk dir) matches ``--jobs N`` /
    ``--jobs vector:N`` with no ``--structure-cache`` flag;
    :meth:`disabled` restores the rebuild-per-worker baseline.
    """

    use_shm: bool = True
    npz_dir: Optional[str] = None

    @property
    def enabled(self) -> bool:
        """True when any sharing channel (shm or npz dir) is on."""
        return self.use_shm or self.npz_dir is not None

    @classmethod
    def disabled(cls) -> "StructureShareConfig":
        """Config with every channel off: workers rebuild skeletons."""
        return cls(use_shm=False, npz_dir=None)


def _shareable_sizes(items: Sequence[Any]) -> tuple[int, ...]:
    """Distinct lattice sizes of a homogeneous engine-request batch.

    Returns ``()`` for anything else (generic callables, SPN methods
    mixed in) — sharing is only wired for workloads known to consume a
    :class:`~repro.core.fastpath.LatticeStructure`.
    """
    from .batch import EvalRequest, SurvivabilityRequest

    sizes: set[int] = set()
    for item in items:
        if isinstance(item, EvalRequest):
            if item.method == "fast":
                sizes.add(item.params.num_nodes)
        elif isinstance(item, SurvivabilityRequest):
            sizes.add(item.params.num_nodes)
        else:
            return ()
    return tuple(sorted(sizes))


def _export_shared_structures(
    config: Optional[StructureShareConfig], items: Sequence[Any]
):
    """Parent-side export for a worker pool; ``None`` when not applicable.

    Sharing is strictly an optimisation: any failure here (no shared
    memory in the sandbox, unwritable cache dir, …) degrades to the
    rebuild-per-worker baseline instead of failing the batch.
    """
    if config is None or not config.enabled:
        return None
    sizes = _shareable_sizes(items)
    if not sizes:
        return None
    from ..core.structshare import export_structures

    try:
        return export_structures(
            sizes, npz_dir=config.npz_dir, use_shm=config.use_shm
        )
    except Exception:  # noqa: BLE001 — sharing must never break evaluation
        return None


#: Environment switches that pick solver kernels/backends. Snapshotted
#: in the parent at pool creation and re-applied in every worker, so a
#: kernel chosen programmatically (``os.environ`` mutated after other
#: modules cached state, exec'd workers with a scrubbed environment, …)
#: binds the whole pool, not just the parent — a mixed-kernel pool
#: would silently break A/B benchmarking even though results agree.
_KERNEL_ENV_VARS = (
    "REPRO_KERNEL",
    "REPRO_FUSED_GATHER",
    "REPRO_TRANSIENT_BACKEND",
)


def _kernel_env_snapshot() -> dict:
    """The parent's kernel/backend env selection, for worker handoff."""
    return {
        name: os.environ[name]
        for name in _KERNEL_ENV_VARS
        if name in os.environ
    }


def _init_pool_worker(share_spec, obs_config, kernel_env=None) -> None:
    """Composed pool initializer: obs handoff + kernel env + attach.

    Runs once per worker process.  Observability first (so the attach
    itself is traced when tracing is on), then the parent's kernel
    selection, then the structure-share attach when the parent exported
    one.
    """
    init_worker(obs_config)
    for name, value in (kernel_env or {}).items():
        os.environ[name] = value
    with span("worker.init", share=share_spec is not None):
        metrics().counter("pool.workers_initialized").add()
        if share_spec is not None:
            from ..core.structshare import pool_initializer

            pool_initializer(share_spec)


def _pool_init_kwargs(share) -> dict:
    """ProcessPoolExecutor initializer kwargs (obs + kernel env + share)."""
    share_spec = share.spec if share is not None else None
    return {
        "initializer": _init_pool_worker,
        "initargs": (share_spec, worker_config(), _kernel_env_snapshot()),
    }


def _warm_structures_from_disk(
    config: Optional[StructureShareConfig], items: Sequence[Any]
) -> None:
    """Seed this process's structure cache from the ``.npz`` layer.

    In-process backends (serial, thread, the vector backend's inline
    groups) have no pool to export to, but a configured
    ``--structure-cache`` directory still serves them: a cold process
    loads the lattice skeleton instead of enumerating it, and a first
    build is persisted for the next run. Best-effort, like all sharing.
    """
    if config is None or config.npz_dir is None:
        return
    from ..core.structshare import cached_structure, structure_share_enabled

    if not structure_share_enabled():
        return
    for n in _shareable_sizes(items):
        try:
            cached_structure(n, config.npz_dir)
        except Exception:  # noqa: BLE001 — cache warming only
            pass


@dataclass(frozen=True)
class PointOutcome:
    """Result (or captured failure) of evaluating one task.

    ``exception`` carries the original exception object when it
    survives a pickle round-trip (so callers can re-raise with the
    true type); ``error``/``error_type`` are its string form, always
    present on failure.  ``traceback`` is the formatted traceback
    *from the process that raised* — pool failures stay diagnosable
    even though the traceback object itself cannot cross the boundary.
    """

    index: int
    value: Any = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    exception: Optional[BaseException] = None
    traceback: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the point evaluated without error."""
        return self.error is None


def _evaluate_one(fn: Callable[[Any], Any], index: int, item: Any) -> PointOutcome:
    try:
        return PointOutcome(index=index, value=fn(item))
    except Exception as exc:  # noqa: BLE001 — per-point capture is the contract
        log.debug("point %d failed: %s: %s", index, type(exc).__name__, exc)
        try:
            carried = pickle.loads(pickle.dumps(exc))
        except Exception:  # noqa: BLE001 — unpicklable exception
            carried = None
        return PointOutcome(
            index=index,
            error=str(exc),
            error_type=type(exc).__name__,
            exception=carried,
            traceback=traceback_module.format_exc(),
        )


def run_chunk(
    fn: Callable[[Any], Any],
    chunk: Sequence[tuple[int, Any]],
    submitted_at: Optional[float] = None,
    *,
    backend: Optional["ExecutionBackend"] = None,
) -> tuple[list[PointOutcome], dict]:
    """Evaluate one ``(index, item)`` chunk under telemetry capture.

    This is the chunk protocol every fan-out tier shares: process-pool
    workers run it via the pickled :func:`_run_chunk` wrapper, and
    service workers (:mod:`repro.service.worker`) call it directly on
    leased chunks — same span, same telemetry-delta payload, so the
    parent/server absorbs either origin identically.

    ``backend=None`` evaluates serially in the calling thread; passing
    a backend fans the chunk's items across it, with outcomes remapped
    to the chunk's own indices.
    """
    with telemetry_capture(submitted_at) as capture:
        with span("chunk.evaluate", points=len(chunk)):
            if backend is None:
                outcomes = [_evaluate_one(fn, index, item) for index, item in chunk]
            else:
                indices = [index for index, _ in chunk]
                raw = backend.run(fn, [item for _, item in chunk])
                outcomes = [
                    replace(outcome, index=indices[local])
                    for local, outcome in enumerate(raw)
                ]
    return outcomes, capture.payload


def _run_chunk(
    fn: Callable[[Any], Any],
    chunk: Sequence[tuple[int, Any]],
    submitted_at: Optional[float] = None,
) -> tuple[list[PointOutcome], dict]:
    """Worker-side loop (module level so the pool can pickle it).

    Returns the outcomes plus a telemetry payload — the metrics delta
    and any spans recorded while the chunk ran — for the parent to
    absorb (see :mod:`repro.obs.runtime`).
    """
    return run_chunk(fn, chunk, submitted_at)


def _run_solve_chunk(
    solve: Callable[..., list[PointOutcome]],
    requests: Sequence[Any],
    max_bytes: int,
    submitted_at: Optional[float] = None,
) -> tuple[list[PointOutcome], dict]:
    """Telemetry-capturing wrapper for the vector+procs chunk fan-out."""
    with telemetry_capture(submitted_at) as capture:
        with span("chunk.solve", points=len(requests)):
            outcomes = solve(requests, max_bytes)
    return outcomes, capture.payload


class ExecutionBackend(Protocol):
    """Anything that can map a callable over tasks with error capture."""

    def run(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        *,
        on_outcome: Optional[OutcomeFn] = None,
    ) -> list[PointOutcome]:
        """Evaluate ``fn`` on every item; outcomes in input order.

        ``on_outcome`` (when given) is invoked once per outcome in
        *completion* order, before ``run`` returns — the hook behind
        streaming progress displays.
        """
        ...  # pragma: no cover

    def describe(self) -> str:
        """Short human-readable backend description."""
        ...  # pragma: no cover


def _notify(on_outcome: Optional[OutcomeFn], outcome: PointOutcome) -> None:
    if on_outcome is not None:
        on_outcome(outcome)


class SerialBackend:
    """In-process reference backend.

    ``structure_share`` only uses the disk layer here (there are no
    workers to export shared memory to): with an ``npz_dir`` configured
    the process loads cached lattice skeletons instead of enumerating.
    """

    def __init__(
        self, *, structure_share: Optional[StructureShareConfig] = None
    ) -> None:
        self.structure_share = (
            structure_share if structure_share is not None else StructureShareConfig()
        )

    def run(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        *,
        on_outcome: Optional[OutcomeFn] = None,
    ) -> list[PointOutcome]:
        """Evaluate items one by one in the calling thread."""
        _warm_structures_from_disk(self.structure_share, items)
        outcomes = []
        for i, item in enumerate(items):
            outcome = _evaluate_one(fn, i, item)
            _notify(on_outcome, outcome)
            outcomes.append(outcome)
        return outcomes

    def describe(self) -> str:
        """Short backend description (``serial``)."""
        return "serial"


class ProcessPoolBackend:
    """Chunked ``ProcessPoolExecutor`` backend.

    ``chunksize=None`` auto-sizes to about four chunks per worker — small
    enough to balance load across uneven point costs, large enough that
    pickling overhead stays negligible. ``fn`` and the items must be
    picklable (the engine's evaluation requests are).

    When a batch consists of engine evaluation requests, the lattice
    structures it needs are built once in the parent and exported to
    every worker via shared memory / the ``.npz`` cache
    (``structure_share``; :mod:`repro.core.structshare`) instead of
    being re-enumerated per process.
    """

    def __init__(
        self,
        max_workers: int,
        *,
        chunksize: Optional[int] = None,
        structure_share: Optional[StructureShareConfig] = None,
    ) -> None:
        if max_workers < 1:
            raise ParameterError(f"max_workers must be >= 1, got {max_workers}")
        if chunksize is not None and chunksize < 1:
            raise ParameterError(f"chunksize must be >= 1, got {chunksize}")
        self.max_workers = max_workers
        self.chunksize = chunksize
        self.structure_share = (
            structure_share if structure_share is not None else StructureShareConfig()
        )

    def _chunksize_for(self, n_items: int) -> int:
        if self.chunksize is not None:
            return self.chunksize
        return max(1, math.ceil(n_items / (self.max_workers * 4)))

    def run(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        *,
        on_outcome: Optional[OutcomeFn] = None,
    ) -> list[PointOutcome]:
        """Fan chunks of items over a process pool; input order preserved."""
        indexed = list(enumerate(items))
        if not indexed:
            return []
        if len(indexed) == 1:  # pool spin-up is never worth one point
            return SerialBackend().run(fn, items, on_outcome=on_outcome)
        size = self._chunksize_for(len(indexed))
        chunks = [indexed[i : i + size] for i in range(0, len(indexed), size)]
        outcomes: list[Optional[PointOutcome]] = [None] * len(indexed)
        share = _export_shared_structures(self.structure_share, items)
        workers = min(self.max_workers, len(chunks))
        try:
            with span(
                "pool.run", workers=workers, chunks=len(chunks), points=len(indexed)
            ):
                with ProcessPoolExecutor(
                    max_workers=workers,
                    **_pool_init_kwargs(share),
                ) as pool:
                    futures = [
                        pool.submit(_run_chunk, fn, chunk, time.time())
                        for chunk in chunks
                    ]
                    for future in futures:
                        # Point-level errors are already captured inside
                        # the chunk; a future-level error means the worker
                        # died (unpicklable fn, OOM kill) and should
                        # propagate.
                        chunk_outcomes, telemetry = future.result()
                        absorb_telemetry(telemetry)
                        for outcome in chunk_outcomes:
                            outcomes[outcome.index] = outcome
                            _notify(on_outcome, outcome)
        finally:
            if share is not None:
                share.close()
        assert all(o is not None for o in outcomes)
        return outcomes  # type: ignore[return-value]

    def describe(self) -> str:
        """Short backend description with worker count."""
        return f"process-pool(workers={self.max_workers})"


class ThreadPoolBackend:
    """Thread-pool backend for solver-releasing-GIL workloads.

    The heavy part of a model evaluation — the sparse linear solve —
    runs in native scipy/BLAS code that releases the GIL, so threads
    overlap it without process spin-up or pickling costs. Pure-Python
    stages still serialise on the GIL, which is why the process pool
    stays the default for ``--jobs N``; threads win when spawn cost or
    unpicklable work dominates.
    """

    def __init__(
        self,
        max_workers: int,
        *,
        structure_share: Optional[StructureShareConfig] = None,
    ) -> None:
        if max_workers < 1:
            raise ParameterError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = max_workers
        self.structure_share = (
            structure_share if structure_share is not None else StructureShareConfig()
        )

    def run(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        *,
        on_outcome: Optional[OutcomeFn] = None,
    ) -> list[PointOutcome]:
        """Evaluate items on a thread pool; input order preserved."""
        indexed = list(enumerate(items))
        if not indexed:
            return []
        # Threads share this process's structure cache; the disk layer
        # still saves the cold-start enumeration.
        _warm_structures_from_disk(self.structure_share, items)
        if len(indexed) == 1:  # pool spin-up is never worth one point
            return SerialBackend().run(fn, items, on_outcome=on_outcome)
        with span("pool.run_threads", workers=self.max_workers, points=len(indexed)):
            with ThreadPoolExecutor(
                max_workers=min(self.max_workers, len(indexed))
            ) as pool:
                futures = [
                    pool.submit(_evaluate_one, fn, index, item)
                    for index, item in indexed
                ]
                outcomes = []
                for future in futures:
                    outcome = future.result()
                    _notify(on_outcome, outcome)
                    outcomes.append(outcome)
                return outcomes

    def describe(self) -> str:
        """Short backend description with worker count."""
        return f"thread-pool(workers={self.max_workers})"


def _carry(exc: BaseException) -> Optional[BaseException]:
    """The exception object iff it survives a pickle round-trip."""
    try:
        return pickle.loads(pickle.dumps(exc))
    except Exception:  # noqa: BLE001 — unpicklable exception
        return None


def _outcomes_from_batch(
    batch: "list[tuple[Any, Optional[BaseException]]]",
    *,
    sanitize: bool,
) -> list[PointOutcome]:
    """Wrap ``(result, error)`` pairs as chunk-local :class:`PointOutcome`.

    ``sanitize`` replaces the carried exception by its pickle
    round-trip (or ``None``) — required when the outcome list itself
    must cross a process boundary.
    """
    outcomes: list[PointOutcome] = []
    for i, (result, error) in enumerate(batch):
        if error is None:
            outcomes.append(PointOutcome(index=i, value=result))
        else:
            outcomes.append(
                PointOutcome(
                    index=i,
                    error=str(error),
                    error_type=type(error).__name__,
                    exception=_carry(error) if sanitize else error,
                    traceback="".join(
                        traceback_module.format_exception(
                            type(error), error, error.__traceback__
                        )
                    ),
                )
            )
    return outcomes


def _solve_model_chunk(
    requests: Sequence[Any], max_bytes: int, *, sanitize: bool = True
) -> list[PointOutcome]:
    """Solve one homogeneous chunk of ``EvalRequest`` items (picklable:
    this is what the vector+procs hybrid ships to pool workers)."""
    from ..core.metrics import evaluate_batch_outcomes

    first = requests[0]
    batch = evaluate_batch_outcomes(
        [(r.params, r.network) for r in requests],
        method=first.method,
        include_breakdown=first.include_breakdown,
        include_variance=first.include_variance,
        max_batch_bytes=max_bytes,
    )
    return _outcomes_from_batch(batch, sanitize=sanitize)


def _solve_survivability_chunk(
    requests: Sequence[Any], max_bytes: int, *, sanitize: bool = True
) -> list[PointOutcome]:
    """Survivability counterpart of :func:`_solve_model_chunk`."""
    from ..core.metrics import evaluate_survivability_batch_outcomes

    first = requests[0]
    batch = evaluate_survivability_batch_outcomes(
        [(r.params, r.network) for r in requests],
        times=first.times_s,
        eps=first.eps,
        max_batch_bytes=max_bytes,
    )
    return _outcomes_from_batch(batch, sanitize=sanitize)


class VectorBackend:
    """Structure-sharing batched evaluation behind the backend contract.

    When ``run`` receives one of the engine's canonical batch tasks —
    :func:`repro.engine.batch.evaluate_request` over
    :class:`~repro.engine.batch.EvalRequest` items, or
    :func:`repro.engine.batch.evaluate_survivability_request` over
    :class:`~repro.engine.batch.SurvivabilityRequest` items — the whole
    batch is handed to the matching structure-sharing solver
    (:func:`repro.core.metrics.evaluate_batch_outcomes` /
    :func:`repro.core.metrics.evaluate_survivability_batch_outcomes`):
    requests are grouped by solver options, each group shares one
    cached lattice structure per ``N``, and a single multi-point sweep
    solves every grid point at once — bit-identical results, no
    processes, no pickling. ``spn``/``spn-coupled`` requests and
    arbitrary callables fall back to ``fallback`` (serial by default),
    so the backend is safe to use anywhere a backend is accepted.

    ``chunk_workers`` is the **vector+procs hybrid** (``--jobs
    vector:N``): each homogeneous group is split into independent
    chunks that are fanned out over a process pool, every worker
    running the batched solver on its chunk. Per-point arithmetic in
    the batched solvers never mixes points, so chunked results are
    byte-identical to the single-process vector path — the hybrid
    simply stacks multi-core scaling on top of the algorithmic win.
    Groups too small to fill two chunks solve in-process (pool spin-up
    is never worth it).

    Composes with the result cache exactly like every other backend:
    the :class:`~repro.engine.batch.BatchRunner` fingerprints and
    stores results *around* the backend, so batched results land under
    the same content-addressed keys as per-point runs.
    """

    def __init__(
        self,
        *,
        fallback: Optional["ExecutionBackend"] = None,
        max_batch_bytes: Optional[int] = None,
        chunk_workers: Optional[int] = None,
        chunk_size: Optional[int] = None,
        structure_share: Optional[StructureShareConfig] = None,
    ) -> None:
        if chunk_workers is not None and chunk_workers < 1:
            raise ParameterError(f"chunk_workers must be >= 1, got {chunk_workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ParameterError(f"chunk_size must be >= 1, got {chunk_size}")
        self.fallback = fallback if fallback is not None else SerialBackend()
        self.max_batch_bytes = max_batch_bytes
        self.chunk_workers = chunk_workers
        self.chunk_size = chunk_size
        self.structure_share = (
            structure_share if structure_share is not None else StructureShareConfig()
        )

    def _batch_kind(
        self, fn: Callable[[Any], Any], items: Sequence[Any]
    ) -> Optional[str]:
        """Classify a canonical engine batch; ``None`` means fall back.

        ``evaluate_auto`` (the sweep service's type-dispatching
        evaluator) is recognised too, as long as the batch is
        homogeneous — a mixed eval/survivability batch falls back to
        the inner backend, which stays correct (``evaluate_auto``
        dispatches per item) at per-point speed.
        """
        from .batch import (
            EvalRequest,
            SurvivabilityRequest,
            evaluate_auto,
            evaluate_request,
            evaluate_survivability_request,
        )

        if fn in (evaluate_request, evaluate_auto) and all(
            isinstance(item, EvalRequest) for item in items
        ):
            return "model"
        if fn in (evaluate_survivability_request, evaluate_auto) and all(
            isinstance(item, SurvivabilityRequest) for item in items
        ):
            return "survivability"
        return None

    def _group_key(self, kind: str, request: Any) -> tuple:
        if kind == "model":
            return (
                request.method,
                request.include_breakdown,
                request.include_variance,
            )
        return (request.times_s, request.eps)

    def _chunks(self, indices: list[int]) -> list[list[int]]:
        """Deterministic input-order chunking for the process fan-out."""
        assert self.chunk_workers is not None
        size = self.chunk_size
        if size is None:
            # ~2 chunks per worker: enough slack to balance uneven
            # chunk costs without shredding the batches the solver
            # amortises over.
            size = max(1, math.ceil(len(indices) / (self.chunk_workers * 2)))
        return [indices[i : i + size] for i in range(0, len(indices), size)]

    def run(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        *,
        on_outcome: Optional[OutcomeFn] = None,
    ) -> list[PointOutcome]:
        """Evaluate a batch, routing homogeneous engine requests to the
        batched solvers and everything else to the per-point fallback.
        """
        if not items:
            return []
        kind = self._batch_kind(fn, items)
        if kind is None:
            return self.fallback.run(fn, items, on_outcome=on_outcome)

        from ..core.metrics import DEFAULT_BATCH_BYTES

        solve = _solve_model_chunk if kind == "model" else _solve_survivability_chunk
        max_bytes = (
            self.max_batch_bytes
            if self.max_batch_bytes is not None
            else DEFAULT_BATCH_BYTES
        )
        # One batched solve per distinct option bundle; scatter the
        # outcomes back into input order.
        outcomes: list[Optional[PointOutcome]] = [None] * len(items)
        groups: dict[tuple, list[int]] = {}
        for i, request in enumerate(items):
            groups.setdefault(self._group_key(kind, request), []).append(i)

        inline: list[list[int]] = []
        fanned: list[list[int]] = []
        for indices in groups.values():
            chunks = self._chunks(indices) if self.chunk_workers else [indices]
            if len(chunks) > 1:
                fanned.extend(chunks)
            else:
                inline.append(indices)

        def scatter(chunk: list[int], chunk_outcomes: list[PointOutcome]) -> None:
            for local, i in zip(chunk_outcomes, chunk):
                outcome = PointOutcome(
                    index=i,
                    value=local.value,
                    error=local.error,
                    error_type=local.error_type,
                    exception=local.exception,
                    traceback=local.traceback,
                )
                outcomes[i] = outcome
                _notify(on_outcome, outcome)

        # Warm this process from the on-disk structure cache (when one
        # is configured) before any solve — a cold `--jobs vector` CLI
        # run then loads the lattice skeleton instead of enumerating it.
        _warm_structures_from_disk(self.structure_share, items)

        for indices in inline:
            with span("vector.solve", kind=kind, points=len(indices)):
                scatter(
                    indices,
                    solve([items[i] for i in indices], max_bytes, sanitize=False),
                )
        if fanned:
            assert self.chunk_workers is not None
            share = _export_shared_structures(self.structure_share, items)
            workers = min(self.chunk_workers, len(fanned))
            try:
                with span(
                    "vector.pool_run",
                    kind=kind,
                    workers=workers,
                    chunks=len(fanned),
                ):
                    with ProcessPoolExecutor(
                        max_workers=workers,
                        **_pool_init_kwargs(share),
                    ) as pool:
                        futures = [
                            pool.submit(
                                _run_solve_chunk,
                                solve,
                                [items[i] for i in chunk],
                                max_bytes,
                                time.time(),
                            )
                            for chunk in fanned
                        ]
                        # A future-level error means the worker died (OOM
                        # kill, unpicklable payload) and should propagate,
                        # exactly like ProcessPoolBackend.
                        for chunk, future in zip(fanned, futures):
                            chunk_outcomes, telemetry = future.result()
                            absorb_telemetry(telemetry)
                            scatter(chunk, chunk_outcomes)
            finally:
                if share is not None:
                    share.close()
        assert all(o is not None for o in outcomes)
        return outcomes  # type: ignore[return-value]

    def describe(self) -> str:
        """Short backend description (``vector`` or ``vector+procs``)."""
        if self.chunk_workers:
            return f"vector+procs(workers={self.chunk_workers})"
        return "vector"


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware on Linux)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover — macOS / Windows
        return os.cpu_count() or 1


def make_backend(
    jobs: Union[int, str, None],
    *,
    structure_share: Optional[StructureShareConfig] = None,
) -> ExecutionBackend:
    """Map the shared ``--jobs`` grammar onto a backend.

    * ``None`` / ``0`` / ``1`` / ``"serial"`` — :class:`SerialBackend`;
    * ``n > 1`` (int or numeric string) — process pool with ``n``
      workers;
    * ``"auto"`` — process pool sized to :func:`available_cpus`
      (serial when only one CPU is usable);
    * ``"thread"`` / ``"thread:auto"`` — thread pool sized to
      :func:`available_cpus`;
    * ``"thread:N"`` — thread pool with ``N`` workers;
    * ``"vector"`` — :class:`VectorBackend` (structure-sharing batched
      solver; no worker processes needed);
    * ``"vector:N"`` / ``"vector:auto"`` — the vector+procs hybrid:
      batched solving *and* ``N`` (or one-per-CPU) pool workers, each
      solving independent chunks of the batch;
    * ``"remote"`` / ``"remote:URL"`` — submit engine batches to a
      sweep-service job server (:mod:`repro.service`) instead of
      evaluating locally; the bare form reads the URL from
      ``$REPRO_SERVICE_URL`` (default ``http://127.0.0.1:8765``).

    ``structure_share`` configures how backends hand
    :class:`~repro.core.fastpath.LatticeStructure` to their workers
    (``None`` = the default shared-memory export; see
    :class:`StructureShareConfig`). Serial and thread backends evaluate
    in-process, where the ordinary structure cache already shares —
    for them only the on-disk ``npz_dir`` layer applies (cold-start
    loads instead of enumeration).
    """
    if isinstance(jobs, str):
        spec = jobs.strip().lower()
        if spec == "serial":
            return SerialBackend(structure_share=structure_share)
        if spec == "remote" or spec.startswith("remote:"):
            # Import lazily: the engine must not depend on the service
            # tier unless a remote backend is actually requested.
            from ..service.client import DEFAULT_SERVICE_URL, RemoteBackend

            # The URL keeps the caller's case (paths are case-sensitive).
            url = jobs.strip()[len("remote:"):] if spec != "remote" else ""
            if not url:
                url = os.environ.get("REPRO_SERVICE_URL", DEFAULT_SERVICE_URL)
            return RemoteBackend(
                url, fallback=SerialBackend(structure_share=structure_share)
            )
        if spec == "vector" or spec.startswith("vector:"):
            _, colon, count = spec.partition(":")
            if not colon:
                return VectorBackend(structure_share=structure_share)
            if count == "auto":
                n = available_cpus()
                return VectorBackend(
                    chunk_workers=n if n > 1 else None,
                    structure_share=structure_share,
                )
            try:
                workers = int(count)
            except ValueError:
                raise ParameterError(
                    "vector worker count must be an integer or 'auto', "
                    f"got {jobs!r}"
                ) from None
            return VectorBackend(
                chunk_workers=workers, structure_share=structure_share
            )
        if spec == "auto":
            n = available_cpus()
            if n <= 1:
                return SerialBackend(structure_share=structure_share)
            return ProcessPoolBackend(
                max_workers=n, structure_share=structure_share
            )
        if spec == "thread" or spec.startswith("thread:"):
            _, colon, count = spec.partition(":")
            if count == "auto" or not colon:
                return ThreadPoolBackend(
                    max_workers=available_cpus(),
                    structure_share=structure_share,
                )
            try:
                workers = int(count)
            except ValueError:
                raise ParameterError(
                    "thread worker count must be an integer or 'auto', "
                    f"got {jobs!r}"
                ) from None
            return ThreadPoolBackend(
                max_workers=workers, structure_share=structure_share
            )
        try:
            jobs = int(spec)
        except ValueError:
            raise ParameterError(
                "jobs must be N, 'auto', 'serial', 'vector[:N]', "
                f"'thread[:N]' or 'remote[:URL]', got {jobs!r}"
            ) from None
    if jobs is not None and jobs < 0:
        raise ParameterError(f"jobs must be >= 0, got {jobs}")
    if jobs is None or jobs <= 1:
        return SerialBackend(structure_share=structure_share)
    return ProcessPoolBackend(max_workers=jobs, structure_share=structure_share)
