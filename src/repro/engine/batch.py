"""Batch evaluation: dedup → cache lookup → parallel evaluate → store.

:class:`BatchRunner` is the engine's front door. It takes a list of
:class:`EvalRequest` (one per grid point), fingerprints each, collapses
duplicates, serves what it can from the :class:`ResultCache`, fans the
misses out over an :class:`ExecutionBackend`, stores fresh results, and
scatters everything back into **input order**. One runner (hence one
cache) is shared across a whole campaign, so identical scenario points
requested by different figures are evaluated exactly once.

A per-point failure becomes a :class:`PointError` in the report rather
than an exception; callers that want the seed path's abort-on-error
semantics call :meth:`BatchReport.raise_on_error`.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, Sequence

from ..core.metrics import (
    GCSEvaluation,
    evaluate_survivability,
    resolve_network,
)
from ..core.optimizer import TradeoffPoint
from ..core.results import GCSResult, SurvivabilityResult
from ..errors import ExperimentError, ParameterError
from ..manet.network import NetworkModel
from ..obs import metrics, span
from ..obs.runtime import record_batch_report
from ..params import GCSParameters
from ..validation import require_sorted_unique
from .cache import CacheableResult, ResultCache
from .executor import (
    ExecutionBackend,
    SerialBackend,
    StructureShareConfig,
    make_backend,
)
from .keys import params_from_dict, scenario_fingerprint

log = logging.getLogger(__name__)

__all__ = [
    "EvalRequest",
    "SurvivabilityRequest",
    "PointError",
    "BatchReport",
    "BatchResult",
    "BatchRunner",
    "evaluate_auto",
    "network_from_dict",
    "network_to_dict",
    "request_from_dict",
    "request_to_dict",
    "make_runner",
    "run_tids_sweep",
]


@dataclass(frozen=True)
class EvalRequest:
    """One scenario point to evaluate.

    ``network=None`` resolves the network from the parameters inside the
    worker (deterministic for analytic / explicit-rate scenarios);
    passing a resolved model shares one mobility measurement across the
    batch exactly like :class:`~repro.core.scenario.Scenario` does.
    """

    params: GCSParameters
    network: Optional[NetworkModel] = None
    method: str = "fast"
    include_breakdown: bool = False
    include_variance: bool = False

    def fingerprint(self) -> str:
        """Content-addressed cache key for this request."""
        return scenario_fingerprint(
            self.params,
            network=self.network,
            method=self.method,
            options={
                "include_breakdown": self.include_breakdown,
                "include_variance": self.include_variance,
            },
        )


def evaluate_request(request: EvalRequest) -> GCSResult:
    """Evaluate one request (module level: process pools pickle it)."""
    network = resolve_network(request.params, request.network)
    engine = GCSEvaluation(request.params, network)
    return engine.run(
        method=request.method,
        include_breakdown=request.include_breakdown,
        include_variance=request.include_variance,
    )


@dataclass(frozen=True)
class SurvivabilityRequest:
    """One scenario point's survivability curve over a mission-time grid.

    The engine's second first-class request type: evaluated by
    :func:`evaluate_survivability_request` (per-point uniformization)
    or — when a whole batch of them reaches the
    :class:`~repro.engine.executor.VectorBackend` — by one
    structure-sharing
    :func:`~repro.core.metrics.evaluate_survivability_batch_outcomes`
    sweep. The fingerprint extends the scenario key with the time grid
    and the truncation ``eps``, so curves over different grids never
    collide in the shared result cache while identical sweep requests
    dedup exactly like model evaluations.
    """

    params: GCSParameters
    times_s: tuple[float, ...]
    network: Optional[NetworkModel] = None
    eps: float = 1e-12

    def __post_init__(self) -> None:
        object.__setattr__(self, "times_s", tuple(float(t) for t in self.times_s))

    def fingerprint(self) -> str:
        """Content-addressed cache key (scenario + time grid + ``eps``)."""
        return scenario_fingerprint(
            self.params,
            network=self.network,
            method="survivability",
            options={"times_s": list(self.times_s), "eps": self.eps},
        )


def evaluate_survivability_request(
    request: SurvivabilityRequest,
) -> SurvivabilityResult:
    """Evaluate one survivability request (module level: picklable)."""
    return evaluate_survivability(
        request.params,
        request.network,
        times=request.times_s,
        eps=request.eps,
    )


def evaluate_auto(
    request: "EvalRequest | SurvivabilityRequest",
) -> CacheableResult:
    """Evaluate either request kind by dispatching on its type.

    The sweep service receives mixed-kind batches over the wire and
    hands them all to one :meth:`BatchRunner.run` call, which takes a
    single ``evaluate`` callable — this is that callable. Module-level
    (and so picklable) like the kind-specific evaluators, and
    recognised by :class:`~repro.engine.executor.VectorBackend` so
    homogeneous batches still take the structure-sharing batched
    solvers.
    """
    if isinstance(request, SurvivabilityRequest):
        return evaluate_survivability_request(request)
    return evaluate_request(request)


# ---------------------------------------------------------------------------
# Wire-format (de)serialisation — the service protocol's chunk specs
# ---------------------------------------------------------------------------

def network_to_dict(network: Optional[NetworkModel]) -> Optional[dict]:
    """JSON-ready form of an explicit network model (``None`` passes through).

    The inverse of :func:`network_from_dict`. Mirrors the fields of
    :func:`repro.engine.keys.network_signature` — everything that
    influences evaluation results crosses the wire.
    """
    if network is None:
        return None
    import dataclasses

    return {
        "params": dataclasses.asdict(network.params),
        "avg_hops": network.avg_hops,
        "partition_rate_hz": network.partition_rate_hz,
        "merge_rate_hz": network.merge_rate_hz,
        "measured": network.measured,
    }


def network_from_dict(data: Optional[Mapping[str, Any]]) -> Optional[NetworkModel]:
    """Rebuild an explicit :class:`NetworkModel` from its wire form."""
    if data is None:
        return None
    from ..params import NetworkParameters

    try:
        return NetworkModel(
            params=NetworkParameters(**data["params"]),
            avg_hops=float(data["avg_hops"]),
            partition_rate_hz=float(data["partition_rate_hz"]),
            merge_rate_hz=float(data["merge_rate_hz"]),
            measured=bool(data.get("measured", False)),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ParameterError(f"malformed network record: {exc}") from exc


def _canonical_network(
    params: GCSParameters, network: Optional[NetworkModel]
) -> Optional[NetworkModel]:
    """Collapse an explicit network equal to the params-resolved one.

    Same canonicalisation the fingerprint applies: a
    :class:`~repro.core.scenario.Scenario`'s shared analytic model *is*
    what the parameters resolve to, so it serialises as ``None`` and the
    receiving side re-resolves it — bit-identical, and the wire format
    stays small.
    """
    if network is not None and network == resolve_network(params, None):
        return None
    return network


def request_to_dict(request: "EvalRequest | SurvivabilityRequest") -> dict:
    """JSON-ready form of an engine request (the service wire format).

    Dispatches on the request type via a ``"kind"`` field
    (``"eval"`` / ``"survivability"``), exactly like cached results
    dispatch in :func:`repro.engine.cache.result_from_dict`. The
    inverse is :func:`request_from_dict`; the round-trip preserves the
    fingerprint (asserted by the protocol tests).
    """
    if isinstance(request, SurvivabilityRequest):
        return {
            "kind": "survivability",
            "params": request.params.to_dict(),
            "network": network_to_dict(
                _canonical_network(request.params, request.network)
            ),
            "times_s": list(request.times_s),
            "eps": request.eps,
        }
    return {
        "kind": "eval",
        "params": request.params.to_dict(),
        "network": network_to_dict(
            _canonical_network(request.params, request.network)
        ),
        "method": request.method,
        "include_breakdown": request.include_breakdown,
        "include_variance": request.include_variance,
    }


def request_from_dict(
    data: Mapping[str, Any],
) -> "EvalRequest | SurvivabilityRequest":
    """Rebuild an engine request from its :func:`request_to_dict` form.

    Raises :class:`~repro.errors.ParameterError` on any malformed
    payload — the service maps that onto a 400 response instead of a
    traceback.
    """
    try:
        kind = data.get("kind", "eval")
        if kind == "survivability":
            return SurvivabilityRequest(
                params=params_from_dict(data["params"]),
                times_s=tuple(float(t) for t in data["times_s"]),
                network=network_from_dict(data.get("network")),
                eps=float(data.get("eps", 1e-12)),
            )
        if kind != "eval":
            raise ParameterError(f"unknown request kind {kind!r}")
        return EvalRequest(
            params=params_from_dict(data["params"]),
            network=network_from_dict(data.get("network")),
            method=str(data.get("method", "fast")),
            include_breakdown=bool(data.get("include_breakdown", False)),
            include_variance=bool(data.get("include_variance", False)),
        )
    except ParameterError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise ParameterError(f"malformed request record: {exc}") from exc


@dataclass(frozen=True)
class PointError:
    """A captured per-point evaluation failure.

    ``traceback`` carries the formatted traceback from the process that
    raised (possibly a pool worker) so failures are diagnosable from a
    run manifest without re-running the point.
    """

    index: int
    request: "EvalRequest | SurvivabilityRequest"
    error: str
    error_type: str
    traceback: Optional[str] = None

    def __str__(self) -> str:
        return (
            f"point {self.index} ({self.request.params.describe()}): "
            f"{self.error_type}: {self.error}"
        )

    def as_dict(self) -> dict:
        """JSON-ready record for manifests and service payloads."""
        return {
            "index": self.index,
            "params": self.request.params.describe(),
            "error_type": self.error_type,
            "error": self.error,
            "traceback": self.traceback,
        }


@dataclass
class BatchReport:
    """Where each point of a batch came from, and how long it took."""

    n_requested: int = 0
    n_unique: int = 0
    n_cache_hits: int = 0
    n_evaluated: int = 0
    errors: list[PointError] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    backend: str = "serial"
    #: Wall time per pipeline phase: ``dedup``, ``cache_lookup``,
    #: ``evaluate``, ``store`` (seconds; always all four keys).
    phase_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def n_errors(self) -> int:
        """Number of points that failed."""
        return len(self.errors)

    @property
    def n_deduplicated(self) -> int:
        """Requests served by another identical request in the same batch."""
        return self.n_requested - self.n_unique

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of unique points served from the cache."""
        return self.n_cache_hits / self.n_unique if self.n_unique else 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of *requested* points that never hit the backend —
        served by the cache or by batch-level deduplication."""
        if not self.n_requested:
            return 0.0
        attempted = self.n_evaluated + self.n_errors
        return 1.0 - attempted / self.n_requested

    def raise_on_error(self) -> None:
        """Raise :class:`ExperimentError` summarising failures, if any."""
        if self.errors:
            detail = "; ".join(str(e) for e in self.errors[:3])
            more = f" (+{len(self.errors) - 3} more)" if len(self.errors) > 3 else ""
            raise ExperimentError(
                f"{len(self.errors)} of {self.n_requested} batch points "
                f"failed: {detail}{more}"
            )

    def describe(self) -> str:
        """One-line human summary of the batch run."""
        return (
            f"batch[{self.backend}]: {self.n_requested} requested, "
            f"{self.n_unique} unique, {self.n_cache_hits} cached "
            f"({self.cache_hit_rate:.0%}), {self.n_evaluated} evaluated, "
            f"{self.n_errors} errors in {self.elapsed_seconds:.2f}s"
        )

    def describe_phases(self) -> str:
        """One-line per-phase wall-time breakdown."""
        parts = " ".join(
            f"{name}={self.phase_seconds.get(name, 0.0):.3f}s"
            for name in ("dedup", "cache_lookup", "evaluate", "store")
        )
        return f"phases: {parts} (hit rate {self.hit_rate:.0%})"

    def as_dict(self) -> dict:
        """JSON-ready form (run manifests, the report ledger)."""
        return {
            "backend": self.backend,
            "n_requested": self.n_requested,
            "n_unique": self.n_unique,
            "n_cache_hits": self.n_cache_hits,
            "n_evaluated": self.n_evaluated,
            "n_errors": self.n_errors,
            "hit_rate": self.hit_rate,
            "elapsed_seconds": self.elapsed_seconds,
            "phase_seconds": dict(self.phase_seconds),
            "errors": [error.as_dict() for error in self.errors],
        }


@dataclass(frozen=True)
class BatchResult:
    """Results in input order (``None`` where the point errored)."""

    results: tuple[Optional[CacheableResult], ...]
    report: BatchReport

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)


#: Progress callback: (input index, fingerprint, source) where source is
#: ``"cache"``, ``"evaluated"`` or ``"error"``.
ProgressFn = Callable[[int, str, str], None]


class BatchRunner:
    """Composable batch evaluator sharing one cache and one backend."""

    def __init__(
        self,
        *,
        cache: Optional[ResultCache] = None,
        backend: Optional[ExecutionBackend] = None,
    ) -> None:
        self.cache = cache if cache is not None else ResultCache()
        self.backend = backend if backend is not None else SerialBackend()

    # ------------------------------------------------------------------
    def run(
        self,
        requests: "Sequence[EvalRequest | SurvivabilityRequest]",
        *,
        evaluate: Callable[[Any], Any] = evaluate_request,
        progress: Optional[ProgressFn] = None,
    ) -> BatchResult:
        """Dedup → cache → evaluate → store one batch of requests.

        ``evaluate`` is the per-point evaluation function handed to the
        backend (module-level so process pools can pickle it); the
        default handles :class:`EvalRequest`, survivability sweeps pass
        :func:`evaluate_survivability_request`. Mixing request types in
        one call works (fingerprints never collide) as long as
        ``evaluate`` accepts both.
        """
        t0 = time.perf_counter()
        report = BatchReport(
            n_requested=len(requests), backend=self.backend.describe()
        )
        phases = report.phase_seconds
        emitted = [False] * len(requests)

        def emit(i: int, key: str, source: str) -> None:
            emitted[i] = True
            progress(i, key, source)  # type: ignore[misc]

        # Dedup: map every input index onto the first request with the
        # same fingerprint; only representatives are looked up and run.
        t = time.perf_counter()
        with span("batch.dedup", requests=len(requests)):
            keys = [request.fingerprint() for request in requests]
            representative: dict[str, int] = {}
            for i, key in enumerate(keys):
                representative.setdefault(key, i)
        report.n_unique = len(representative)
        phases["dedup"] = time.perf_counter() - t

        t = time.perf_counter()
        by_key: dict[str, CacheableResult] = {}
        misses: list[tuple[str, int]] = []
        with span("batch.cache_lookup", unique=len(representative)):
            for key, i in representative.items():
                cached = self.cache.get(key)
                if cached is not None:
                    by_key[key] = cached
                    report.n_cache_hits += 1
                else:
                    misses.append((key, i))
        phases["cache_lookup"] = time.perf_counter() - t
        if progress is not None:
            # Hits (and duplicates of hits) resolve now; misses stream
            # from the backend, duplicates of misses settle at scatter.
            for i, key in enumerate(keys):
                if key in by_key:
                    emit(i, key, "cache")

        on_outcome = None
        if progress is not None:

            def on_outcome(outcome) -> None:
                key, i = misses[outcome.index]
                emit(i, key, "evaluated" if outcome.ok else "error")

        phases["evaluate"] = 0.0
        phases["store"] = 0.0
        if misses:
            t = time.perf_counter()
            with span("batch.evaluate", misses=len(misses)):
                outcomes = self.backend.run(
                    evaluate,
                    [requests[i] for _, i in misses],
                    on_outcome=on_outcome,
                )
            phases["evaluate"] = time.perf_counter() - t

            t = time.perf_counter()
            with span("batch.store", outcomes=len(outcomes)):
                for (key, i), outcome in zip(misses, outcomes):
                    if outcome.ok:
                        by_key[key] = outcome.value
                        self.cache.put(key, outcome.value)
                        report.n_evaluated += 1
                    else:
                        report.errors.append(
                            PointError(
                                index=i,
                                request=requests[i],
                                error=outcome.error,
                                error_type=outcome.error_type,
                                traceback=outcome.traceback,
                            )
                        )
            phases["store"] = time.perf_counter() - t

        results: list[Optional[CacheableResult]] = []
        for i, key in enumerate(keys):
            result = by_key.get(key)
            results.append(result)
            if progress is not None and not emitted[i]:
                # Duplicates of misses (and of errored points): settled
                # only now that the representative's outcome is known.
                emit(i, key, "error" if result is None else "cache")

        report.elapsed_seconds = time.perf_counter() - t0

        registry = metrics()
        registry.counter("engine.requests").add(report.n_requested)
        registry.counter("engine.unique").add(report.n_unique)
        registry.counter("engine.cache_hits").add(report.n_cache_hits)
        registry.counter("engine.evaluated").add(report.n_evaluated)
        registry.counter("engine.errors").add(report.n_errors)
        record_batch_report(report.as_dict())
        if report.errors:
            log.warning(
                "batch finished with %d error(s): %s",
                report.n_errors,
                report.errors[0],
            )
        log.info("%s", report.describe())
        return BatchResult(results=tuple(results), report=report)

    # ------------------------------------------------------------------
    def evaluate(self, request: EvalRequest) -> GCSResult:
        """Single-point convenience (cache-through)."""
        batch = self.run([request])
        batch.report.raise_on_error()
        result = batch.results[0]
        assert result is not None
        return result

    def describe(self) -> str:
        """One-line summary of the backend and cache configuration."""
        return f"BatchRunner({self.backend.describe()}; {self.cache.describe()})"


def make_runner(
    jobs: "int | str | None" = None,
    cache_dir: "str | Path | None" = None,
    *,
    cache_cap_mb: Optional[float] = None,
    structure_cache: "str | Path | None" = None,
) -> BatchRunner:
    """One-call runner factory shared by the CLI and the examples.

    ``jobs`` follows the :func:`~repro.engine.executor.make_backend`
    grammar (``N``, ``"auto"``, ``"thread[:N]"``; ``None`` = serial).
    ``cache_dir=None`` gives a memory-only cache; ``cache_cap_mb``
    bounds a persistent one (LRU-by-mtime disk eviction).

    ``structure_cache`` controls the cross-worker
    :class:`~repro.core.fastpath.LatticeStructure` sharing
    (``--structure-cache``): a directory enables the on-disk ``.npz``
    layer there, ``"off"`` disables sharing entirely (rebuild per
    worker), and ``None`` defaults to shared memory plus — when
    ``cache_dir`` is set — a ``structures/`` directory beneath it.
    """
    if cache_cap_mb is not None and cache_dir is None:
        raise ParameterError("cache_cap_mb requires cache_dir")
    if isinstance(structure_cache, str) and structure_cache.lower() == "off":
        share = StructureShareConfig.disabled()
    elif structure_cache is not None:
        share = StructureShareConfig(npz_dir=str(structure_cache))
    elif cache_dir is not None:
        share = StructureShareConfig(npz_dir=str(Path(cache_dir) / "structures"))
    else:
        share = StructureShareConfig()
    cache = ResultCache(
        cache_dir=Path(cache_dir) if cache_dir is not None else None,
        max_disk_bytes=int(cache_cap_mb * 1024 * 1024)
        if cache_cap_mb is not None
        else None,
    )
    return BatchRunner(
        cache=cache, backend=make_backend(jobs, structure_share=share)
    )


# ---------------------------------------------------------------------------
# Sweep adapters
# ---------------------------------------------------------------------------

def run_tids_sweep(
    runner: BatchRunner,
    params: GCSParameters,
    tids_grid_s: Sequence[float],
    *,
    network: Optional[NetworkModel] = None,
    method: str = "fast",
    overrides: Optional[Mapping[str, Any]] = None,
) -> list[TradeoffPoint]:
    """Engine-backed equivalent of :meth:`Scenario.sweep_tids`.

    Builds one :class:`EvalRequest` per grid value (applying
    ``overrides`` first, then the ``TIDS`` value, exactly like the
    serial path in :func:`repro.core.optimizer.tradeoff_curve`), runs
    them as one batch and returns :class:`TradeoffPoint` objects in
    grid order. Raises on any point failure, and applies the same
    sorted-unique grid validation, matching the serial sweep's
    semantics.
    """
    tids_grid_s = require_sorted_unique("tids_grid_s", tids_grid_s)
    base = params.replacing(**dict(overrides)) if overrides else params
    requests = [
        EvalRequest(
            params=base.replacing(detection_interval_s=float(tids)),
            network=network,
            method=method,
        )
        for tids in tids_grid_s
    ]
    batch = runner.run(requests)
    batch.report.raise_on_error()
    return [
        TradeoffPoint(tids_s=float(tids), result=result)
        for tids, result in zip(tids_grid_s, batch.results)
    ]
