"""Content-addressed scenario fingerprints.

A *fingerprint* is a stable SHA-256 digest of everything that determines
a model evaluation's output: the full :class:`GCSParameters` bundle, the
resolved network environment, the solver options, and a schema version.
Two evaluations with equal fingerprints are guaranteed to produce the
same :class:`~repro.core.results.GCSResult` (up to wall-clock timing
fields), which is what makes the result cache safe.

The digest is computed over canonical JSON — sorted keys, no whitespace
variance — so dict ordering and dataclass field order never leak into
the key. Floats serialise via :func:`repr`, which round-trips exactly
in Python 3, so ``60.0`` and ``60.00`` collide (same value) while
``60.0`` and ``60.000001`` do not.

Bump :data:`SCHEMA_VERSION` whenever the model semantics change in a way
that alters results for identical parameters (new cost term, solver
reformulation, …): every previously cached entry then misses, which is
the versioned-invalidation story for the on-disk store.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Mapping, Optional

from ..core.metrics import resolve_network
from ..errors import ParameterError
from ..manet.network import NetworkModel
from ..params import (
    AttackParameters,
    DetectionParameters,
    GCSParameters,
    GroupDynamicsParameters,
    NetworkParameters,
    WorkloadParameters,
)

__all__ = [
    "SCHEMA_VERSION",
    "canonical_json",
    "network_signature",
    "scenario_fingerprint",
    "params_from_dict",
]

#: Version of the (parameters, model, result) contract. Part of every
#: fingerprint and of the on-disk cache layout.
SCHEMA_VERSION = 1


def _normalize(obj: Any) -> Any:
    """Collapse numerically equal values onto one encoding.

    ``int`` and ``float`` of the same value (``15`` vs ``15.0``) must
    produce the same key — a CLI axis parses ``15`` as ``int`` while
    the figure grids carry ``15.0``, and both evaluate identically.
    Bools stay bools (they are ``int`` subclasses but semantically
    flags, and ``True``/``1`` never describe the same parameter).
    """
    if isinstance(obj, bool):
        return obj
    if isinstance(obj, int):
        return float(obj)
    if isinstance(obj, dict):
        return {k: _normalize(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_normalize(v) for v in obj]
    return obj


def canonical_json(obj: Any) -> str:
    """Deterministic JSON encoding (sorted keys, compact separators,
    int/float-equal values collapsed)."""
    try:
        return json.dumps(
            _normalize(obj), sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except (TypeError, ValueError) as exc:
        raise ParameterError(f"value is not canonically serialisable: {exc}") from exc


def network_signature(network: Optional[NetworkModel]) -> dict[str, Any]:
    """The network-model fields that influence evaluation results.

    ``None`` (network resolved from the parameters alone) is encoded
    distinctly from any explicit model, so a measured mobility network
    never collides with the analytic default. The model's own
    :class:`NetworkParameters` are part of the signature — the cost and
    delay equations read them (bandwidth, radio range, …), so two
    models differing only there must not share a fingerprint.
    """
    if network is None:
        return {"resolved": "from-params"}
    return {
        "resolved": "explicit",
        "params": dataclasses.asdict(network.params),
        "avg_hops": network.avg_hops,
        "partition_rate_hz": network.partition_rate_hz,
        "merge_rate_hz": network.merge_rate_hz,
        "measured": network.measured,
    }


def scenario_fingerprint(
    params: GCSParameters,
    *,
    network: Optional[NetworkModel] = None,
    method: str = "fast",
    options: Optional[Mapping[str, Any]] = None,
) -> str:
    """SHA-256 hex digest identifying one evaluation scenario.

    ``options`` carries any extra solver knobs (``include_breakdown``,
    ``include_variance``, …). Flags set to ``False`` — every option's
    default — are dropped during normalisation, so an omitted mapping,
    an empty one, and one spelling the defaults out all produce the
    same key (``EvalRequest.fingerprint()`` spells them out;
    ``scenario_fingerprint(params)`` omits them).

    An explicit ``network`` that is exactly what the parameters resolve
    to on their own (e.g. a :class:`~repro.core.scenario.Scenario`'s
    shared analytic model) is canonicalised to the ``from-params``
    form, so scenario-routed and params-only requests for the same
    point share one cache entry.
    """
    if network is not None and network == resolve_network(params, None):
        network = None
    payload = {
        "schema": SCHEMA_VERSION,
        "params": params.to_dict(),
        "network": network_signature(network),
        "method": method,
        "options": {k: v for k, v in (options or {}).items() if v is not False},
    }
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def params_from_dict(data: Mapping[str, Any]) -> GCSParameters:
    """Inverse of :meth:`GCSParameters.to_dict` (cache deserialisation)."""
    try:
        return GCSParameters(
            network=NetworkParameters(**data["network"]),
            workload=WorkloadParameters(**data["workload"]),
            attack=AttackParameters(**data["attack"]),
            detection=DetectionParameters(**data["detection"]),
            groups=GroupDynamicsParameters(**data["groups"]),
        )
    except (KeyError, TypeError) as exc:
        raise ParameterError(f"malformed parameter record: {exc}") from exc
