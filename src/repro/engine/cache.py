"""Persistent, content-addressed result store with an in-memory LRU.

Layout on disk (sharded JSON, human-inspectable, no extra deps)::

    <cache_dir>/v<SCHEMA_VERSION>/<key[:2]>/<key>.json

Each record holds the fingerprint, the schema version and the full
:meth:`GCSResult.to_dict` payload. Records written under a different
schema version live in a different ``v*`` directory and therefore never
hit — bumping :data:`~repro.engine.keys.SCHEMA_VERSION` invalidates the
whole store without deleting anything (``prune_stale_versions`` reclaims
the space on request).

The in-memory layer is a plain ordered-dict LRU in front of the disk
store; :class:`CacheStats` counts hits split by layer so the benchmark
can report warm-cache hit rates.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional

from ..core.results import GCSResult
from ..errors import ParameterError
from .keys import SCHEMA_VERSION, params_from_dict

__all__ = ["CacheStats", "ResultCache", "result_from_dict"]


def result_from_dict(data: Mapping[str, Any]) -> GCSResult:
    """Rebuild a :class:`GCSResult` from its :meth:`~GCSResult.to_dict`."""
    try:
        return GCSResult(
            params=params_from_dict(data["params"]),
            mttsf_s=float(data["mttsf_s"]),
            ctotal_hop_bits_s=float(data["ctotal_hop_bits_s"]),
            failure_probabilities=dict(data["failure_probabilities"]),
            channel_utilization=float(data["channel_utilization"]),
            num_states=int(data["num_states"]),
            solver=str(data["solver"]),
            build_seconds=float(data["build_seconds"]),
            solve_seconds=float(data["solve_seconds"]),
            cost_breakdown=dict(data["cost_breakdown"])
            if data.get("cost_breakdown") is not None
            else None,
            mttsf_std_s=float(data["mttsf_std_s"])
            if data.get("mttsf_std_s") is not None
            else None,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ParameterError(f"malformed cached result: {exc}") from exc


@dataclass
class CacheStats:
    """Hit/miss counters for one :class:`ResultCache` lifetime."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    corrupt_records: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from either layer (0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, int | float]:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "corrupt_records": self.corrupt_records,
            "hit_rate": self.hit_rate,
        }


@dataclass
class ResultCache:
    """Two-layer (memory LRU over sharded-JSON disk) result cache.

    ``cache_dir=None`` gives a memory-only cache — same API, nothing
    persisted — which is what ephemeral sweeps and most tests want.
    ``memory_capacity`` bounds the LRU layer; 0 disables it entirely
    (every hit then reads from disk, useful for testing persistence).
    """

    cache_dir: Optional[Path] = None
    memory_capacity: int = 4096
    version: int = SCHEMA_VERSION
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.memory_capacity < 0:
            raise ParameterError(
                f"memory_capacity must be >= 0, got {self.memory_capacity}"
            )
        if self.cache_dir is not None:
            self.cache_dir = Path(self.cache_dir)
        self._memory: OrderedDict[str, GCSResult] = OrderedDict()

    # ------------------------------------------------------------------
    def _record_path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"v{self.version}" / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[GCSResult]:
        """Look ``key`` up; ``None`` on miss. Promotes disk hits to the
        memory layer and silently treats corrupt records as misses."""
        if key in self._memory:
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
            return self._memory[key]
        if self.cache_dir is not None:
            path = self._record_path(key)
            if path.exists():
                try:
                    record = json.loads(path.read_text())
                    if record.get("version") != self.version:
                        raise ParameterError("schema version mismatch")
                    result = result_from_dict(record["result"])
                except (OSError, ValueError, KeyError, ParameterError):
                    self.stats.corrupt_records += 1
                else:
                    self.stats.disk_hits += 1
                    self._remember(key, result)
                    return result
        self.stats.misses += 1
        return None

    def put(self, key: str, result: GCSResult) -> None:
        """Store under ``key`` in both layers (atomic disk write)."""
        self._remember(key, result)
        self.stats.stores += 1
        if self.cache_dir is None:
            return
        path = self._record_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {"key": key, "version": self.version, "result": result.to_dict()}
        # Write-then-rename so a crashed writer never leaves a torn
        # record that a concurrent reader would see as corruption.
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(record, fh)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        return self.cache_dir is not None and self._record_path(key).exists()

    def __len__(self) -> int:
        """Number of persisted records (memory-only size when ephemeral)."""
        if self.cache_dir is None:
            return len(self._memory)
        root = self.cache_dir / f"v{self.version}"
        return sum(1 for _ in root.glob("*/*.json")) if root.exists() else 0

    # ------------------------------------------------------------------
    def _remember(self, key: str, result: GCSResult) -> None:
        if self.memory_capacity == 0:
            return
        self._memory[key] = result
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_capacity:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    # ------------------------------------------------------------------
    def clear_memory(self) -> None:
        """Drop the LRU layer (disk records survive)."""
        self._memory.clear()

    def prune_stale_versions(self) -> int:
        """Delete on-disk records written under other schema versions;
        returns the number of files removed."""
        if self.cache_dir is None or not self.cache_dir.exists():
            return 0
        removed = 0
        for vdir in self.cache_dir.glob("v*"):
            if vdir.name == f"v{self.version}" or not vdir.is_dir():
                continue
            for record in vdir.glob("*/*.json"):
                record.unlink()
                removed += 1
            for shard in sorted(vdir.glob("*"), reverse=True):
                if shard.is_dir() and not any(shard.iterdir()):
                    shard.rmdir()
            if not any(vdir.iterdir()):
                vdir.rmdir()
        return removed

    def describe(self) -> str:
        where = str(self.cache_dir) if self.cache_dir else "memory-only"
        s = self.stats
        return (
            f"ResultCache[{where}] v{self.version}: {len(self)} records, "
            f"{s.hits} hits ({s.memory_hits} mem / {s.disk_hits} disk), "
            f"{s.misses} misses, hit rate {s.hit_rate:.1%}"
        )
