"""Persistent, content-addressed result store with an in-memory LRU.

Layout on disk (sharded JSON, human-inspectable, no extra deps)::

    <cache_dir>/v<SCHEMA_VERSION>/<key[:2]>/<key>.json

Each record holds the fingerprint, the schema version and the full
:meth:`GCSResult.to_dict` payload. Records written under a different
schema version live in a different ``v*`` directory and therefore never
hit — bumping :data:`~repro.engine.keys.SCHEMA_VERSION` invalidates the
whole store atomically; stale version directories are reclaimed
automatically the next time a cache opens on the directory
(``prune_stale_on_open``, also available manually as
``prune_stale_versions``), so the size accounting — which only walks
the current version — never silently excludes dead records.

The store is safe to share between processes:

* every record write is write-to-tmp + ``os.replace``, so readers never
  observe a torn record no matter when the writer dies;
* a truncated / corrupt / mid-replace-missing record is treated as a
  miss (and counted), never an exception;
* multi-file mutations (disk eviction, version pruning) run under an
  advisory :class:`~repro.engine.locks.FileLock` on
  ``<cache_dir>/v<version>/.lock``, so concurrent writers cooperate
  instead of double-deleting.

``max_disk_bytes`` bounds the on-disk layer: when a store pushes the
current version directory over the cap, the least-recently-*used*
records (mtime order — disk hits refresh mtime) are evicted until the
directory fits again. The in-memory layer is a plain ordered-dict LRU
in front of the disk store; :class:`CacheStats` counts hits split by
layer plus evictions on both layers so the benchmark and the CLI's
``--verbose`` can report them.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional, Union

from ..core.results import GCSResult, SurvivabilityResult
from ..errors import ParameterError
from ..obs import metrics, span
from .keys import SCHEMA_VERSION, params_from_dict
from .locks import FileLock

log = logging.getLogger(__name__)

__all__ = [
    "CacheStats",
    "ResultCache",
    "result_from_dict",
    "survivability_result_from_dict",
    "CacheableResult",
]

#: Either result type the cache can hold; records are dispatched on
#: their ``"kind"`` field (absent = the historical :class:`GCSResult`
#: form, so every pre-existing on-disk record still deserialises).
CacheableResult = Union[GCSResult, SurvivabilityResult]


def survivability_result_from_dict(data: Mapping[str, Any]) -> SurvivabilityResult:
    """Rebuild a :class:`SurvivabilityResult` from its ``to_dict()``."""
    try:
        return SurvivabilityResult(
            params=params_from_dict(data["params"]),
            times_s=tuple(float(t) for t in data["times_s"]),
            survival=tuple(float(s) for s in data["survival"]),
            failure_cdf={
                str(k): tuple(float(x) for x in v)
                for k, v in data["failure_cdf"].items()
            },
            expected_cost_rate=tuple(float(c) for c in data["expected_cost_rate"]),
            time_bounded_cost=tuple(float(c) for c in data["time_bounded_cost"]),
            num_states=int(data["num_states"]),
            solver=str(data["solver"]),
            build_seconds=float(data["build_seconds"]),
            solve_seconds=float(data["solve_seconds"]),
        )
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise ParameterError(f"malformed cached result: {exc}") from exc


def result_from_dict(data: Mapping[str, Any]) -> CacheableResult:
    """Rebuild a cached result from its ``to_dict()`` form.

    Dispatches on the record's ``"kind"`` field: ``"survivability"``
    records rebuild a :class:`SurvivabilityResult`; records without a
    kind (every record written before survivability sweeps existed)
    rebuild the historical :class:`GCSResult`.
    """
    kind = data.get("kind")
    if kind == "survivability":
        return survivability_result_from_dict(data)
    if kind is not None:
        raise ParameterError(f"unknown cached result kind {kind!r}")
    try:
        return GCSResult(
            params=params_from_dict(data["params"]),
            mttsf_s=float(data["mttsf_s"]),
            ctotal_hop_bits_s=float(data["ctotal_hop_bits_s"]),
            failure_probabilities=dict(data["failure_probabilities"]),
            channel_utilization=float(data["channel_utilization"]),
            num_states=int(data["num_states"]),
            solver=str(data["solver"]),
            build_seconds=float(data["build_seconds"]),
            solve_seconds=float(data["solve_seconds"]),
            cost_breakdown=dict(data["cost_breakdown"])
            if data.get("cost_breakdown") is not None
            else None,
            mttsf_std_s=float(data["mttsf_std_s"])
            if data.get("mttsf_std_s") is not None
            else None,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ParameterError(f"malformed cached result: {exc}") from exc


@dataclass
class CacheStats:
    """Hit/miss counters for one :class:`ResultCache` lifetime."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    disk_evictions: int = 0
    disk_bytes_evicted: int = 0
    corrupt_records: int = 0

    @property
    def hits(self) -> int:
        """Total hits across the memory and disk layers."""
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        """Total lookups (hits plus misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from either layer (0 when idle)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict[str, int | float]:
        """JSON-ready counter snapshot (manifests, ``/health``)."""
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "disk_evictions": self.disk_evictions,
            "disk_bytes_evicted": self.disk_bytes_evicted,
            "corrupt_records": self.corrupt_records,
            "hit_rate": self.hit_rate,
        }


@dataclass
class ResultCache:
    """Two-layer (memory LRU over sharded-JSON disk) result cache.

    ``cache_dir=None`` gives a memory-only cache — same API, nothing
    persisted — which is what ephemeral sweeps and most tests want.
    ``memory_capacity`` bounds the LRU layer; 0 disables it entirely
    (every hit then reads from disk, useful for testing persistence).
    ``max_disk_bytes`` caps the on-disk layer (LRU-by-mtime eviction);
    ``None`` leaves it unbounded. One directory may be shared by many
    concurrent processes — see the module docstring for the guarantees.
    """

    cache_dir: Optional[Path] = None
    memory_capacity: int = 4096
    max_disk_bytes: Optional[int] = None
    version: int = SCHEMA_VERSION
    #: Reclaim other-schema-version record dirs when the cache opens.
    #: Stale records can never hit (the version is part of the layout),
    #: so they are dead weight that the size accounting — which only
    #: sees the current version directory — would otherwise never
    #: count nor evict. Disable only to inspect old records manually.
    prune_stale_on_open: bool = True
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        if self.memory_capacity < 0:
            raise ParameterError(
                f"memory_capacity must be >= 0, got {self.memory_capacity}"
            )
        if self.max_disk_bytes is not None and self.max_disk_bytes <= 0:
            raise ParameterError(
                f"max_disk_bytes must be > 0, got {self.max_disk_bytes}"
            )
        if self.cache_dir is not None:
            self.cache_dir = Path(self.cache_dir)
        self._memory: OrderedDict[str, CacheableResult] = OrderedDict()
        self._lock: Optional[FileLock] = (
            FileLock(self._version_dir() / ".lock")
            if self.cache_dir is not None
            else None
        )
        if self.prune_stale_on_open and self._has_stale_versions():
            self.prune_stale_versions()

    # ------------------------------------------------------------------
    def _version_dir(self) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"v{self.version}"

    def _record_path(self, key: str) -> Path:
        return self._version_dir() / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[CacheableResult]:
        """Look ``key`` up; ``None`` on miss. Promotes disk hits to the
        memory layer, refreshes their LRU recency (mtime), and treats
        torn / corrupt / concurrently-evicted records as misses."""
        if key in self._memory:
            self._memory.move_to_end(key)
            self.stats.memory_hits += 1
            return self._memory[key]
        if self.cache_dir is not None:
            path = self._record_path(key)
            t_read = time.perf_counter()
            try:
                record = json.loads(path.read_text())
                if record.get("version") != self.version:
                    raise ParameterError("schema version mismatch")
                result = result_from_dict(record["result"])
            except FileNotFoundError:
                pass  # plain miss (never written, or evicted under us)
            except (OSError, ValueError, KeyError, ParameterError) as exc:
                self.stats.corrupt_records += 1
                log.warning("corrupt cache record %s: %s", path.name, exc)
            else:
                metrics().histogram("cache.disk_read_s").observe(
                    time.perf_counter() - t_read
                )
                self.stats.disk_hits += 1
                try:
                    os.utime(path)  # refresh LRU recency for eviction
                except OSError:
                    pass  # concurrently evicted; the hit still counts
                self._remember(key, result)
                return result
        self.stats.misses += 1
        return None

    def put(self, key: str, result: CacheableResult) -> None:
        """Store under ``key`` in both layers.

        The disk write is write-to-tmp + atomic rename, which is safe
        against concurrent writers on its own; only when a size cap is
        configured does the write-plus-eviction pair additionally take
        the advisory file lock (eviction is a multi-file
        read-modify-write, and two unlocked evictors would
        double-delete). Uncapped writers therefore never contend.
        """
        self._remember(key, result)
        self.stats.stores += 1
        if self.cache_dir is None:
            return
        if self.max_disk_bytes is None:
            self._write_record(key, result)
            return
        assert self._lock is not None
        t_lock = time.perf_counter()
        with self._lock:
            metrics().histogram("cache.lock_wait_s").observe(
                time.perf_counter() - t_lock
            )
            self._write_record(key, result)
            self._enforce_disk_cap(protect=key)

    def _write_record(self, key: str, result: CacheableResult) -> None:
        t_write = time.perf_counter()
        path = self._record_path(key)
        record = {"key": key, "version": self.version, "result": result.to_dict()}
        # Write-then-rename so a crashed writer never leaves a torn
        # record that a concurrent reader would see as corruption. One
        # retry covers a newer-schema process pruning this (to it,
        # stale) version's shard directory between mkdir and mkstemp
        # during a rolling upgrade.
        for attempt in (0, 1):
            path.parent.mkdir(parents=True, exist_ok=True)
            try:
                fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
            except FileNotFoundError:
                if attempt:
                    raise
                continue
            try:
                with os.fdopen(fd, "w") as fh:
                    json.dump(record, fh)
                os.replace(tmp, path)
                metrics().histogram("cache.disk_write_s").observe(
                    time.perf_counter() - t_write
                )
                return
            except FileNotFoundError:
                if attempt:
                    raise
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise

    # ------------------------------------------------------------------
    def disk_usage_bytes(self) -> int:
        """Total size of the current version's records (0 when ephemeral)."""
        if self.cache_dir is None:
            return 0
        total = 0
        for record in self._version_dir().glob("*/*.json"):
            try:
                total += record.stat().st_size
            except OSError:
                pass  # evicted by another process mid-walk
        return total

    def _enforce_disk_cap(self, *, protect: str) -> None:
        """Evict least-recently-used records until the cap holds.

        Caller must hold ``self._lock``. The just-written ``protect``
        record is never the victim, so the cap can be exceeded by at
        most one record (when a single record is larger than the cap).
        """
        assert self.max_disk_bytes is not None
        entries: list[tuple[float, int, Path]] = []
        total = 0
        protect_path = self._record_path(protect)
        for record in self._version_dir().glob("*/*.json"):
            try:
                stat = record.stat()
            except OSError:
                continue
            total += stat.st_size
            if record != protect_path:
                entries.append((stat.st_mtime, stat.st_size, record))
        if total <= self.max_disk_bytes:
            return
        entries.sort()  # oldest mtime first == least recently used
        evicted = 0
        with span("cache.evict", over_bytes=total - self.max_disk_bytes):
            for _, size, record in entries:
                if total <= self.max_disk_bytes:
                    break
                try:
                    record.unlink()
                except OSError:
                    continue
                total -= size
                evicted += 1
                self.stats.disk_evictions += 1
                self.stats.disk_bytes_evicted += size
        if evicted:
            metrics().counter("cache.disk_evictions").add(evicted)
            log.debug(
                "evicted %d cache record(s) to fit %d-byte cap",
                evicted,
                self.max_disk_bytes,
            )

    # ------------------------------------------------------------------
    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        return self.cache_dir is not None and self._record_path(key).exists()

    def __len__(self) -> int:
        """Number of persisted records (memory-only size when ephemeral)."""
        if self.cache_dir is None:
            return len(self._memory)
        root = self._version_dir()
        return sum(1 for _ in root.glob("*/*.json")) if root.exists() else 0

    # ------------------------------------------------------------------
    def _remember(self, key: str, result: CacheableResult) -> None:
        if self.memory_capacity == 0:
            return
        self._memory[key] = result
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_capacity:
            self._memory.popitem(last=False)
            self.stats.evictions += 1

    # ------------------------------------------------------------------
    def clear_memory(self) -> None:
        """Drop the LRU layer (disk records survive)."""
        self._memory.clear()

    def _has_stale_versions(self) -> bool:
        """Cheap open-time probe: any other-version *records* on disk?

        Checks for record files, not bare directories: a stale version
        dir can legitimately survive pruning as an empty husk (its
        ``.lock`` file is never deleted — see :mod:`repro.engine.locks`
        on why deleting a lockfile voids exclusion), and re-locking and
        re-walking the tree on every subsequent open for a husk would
        defeat the probe's purpose.
        """
        if self.cache_dir is None or not self.cache_dir.exists():
            return False
        return any(
            vdir.is_dir()
            and vdir.name != f"v{self.version}"
            and any(vdir.glob("*/*.json"))
            for vdir in self.cache_dir.glob("v*")
        )

    def prune_stale_versions(self) -> int:
        """Delete on-disk records written under other schema versions;
        returns the number of files removed. Runs automatically when a
        cache opens (``prune_stale_on_open``) so stale version dirs
        never accumulate outside the size accounting."""
        if self.cache_dir is None or not self.cache_dir.exists():
            return 0
        removed = 0
        assert self._lock is not None
        with self._lock:
            # The held lock is the *current* version's — a still-running
            # old-version process serialises on its own ``v*/.lock`` (or
            # none), so every delete below must tolerate that process
            # recreating files and directories under us mid-walk. Worst
            # case during such a rolling upgrade: the old process's
            # freshly-written (stale-by-contract) record is deleted and
            # it re-evaluates; record writes stay atomic throughout.
            for vdir in self.cache_dir.glob("v*"):
                if vdir.name == f"v{self.version}" or not vdir.is_dir():
                    continue
                for record in vdir.glob("*/*.json"):
                    try:
                        record.unlink()
                    except OSError:
                        continue  # deleted (or locked) by someone else
                    removed += 1
                for shard in sorted(vdir.glob("*"), reverse=True):
                    if shard.is_dir():
                        try:
                            shard.rmdir()
                        except OSError:
                            pass  # non-empty again, or gone already
                try:
                    vdir.rmdir()
                except OSError:
                    pass  # .lock remains, or a writer re-appeared
        return removed

    def describe(self) -> str:
        """One-line human summary: location, record count, hit rates."""
        where = str(self.cache_dir) if self.cache_dir else "memory-only"
        s = self.stats
        line = (
            f"ResultCache[{where}] v{self.version}: {len(self)} records, "
            f"{s.hits} hits ({s.memory_hits} mem / {s.disk_hits} disk), "
            f"{s.misses} misses, hit rate {s.hit_rate:.1%}"
        )
        if self.max_disk_bytes is not None:
            line += (
                f"; disk {self.disk_usage_bytes()}/{self.max_disk_bytes} B, "
                f"{s.disk_evictions} evicted"
            )
        return line
