"""Advisory file locking behind one small seam.

The shared result cache lets N worker *processes* point at one
``--cache-dir``. Individual record writes are already safe without any
lock (write-to-tmp + ``os.replace`` is atomic on POSIX and NTFS), but
two mutations are read-modify-write over many files and would race
without mutual exclusion:

* disk eviction — two evictors both summing sizes and both deleting
  "the oldest" records can overshoot the cap's hysteresis or delete a
  record the other just promoted;
* stale-version pruning — walking and rmdir'ing shard directories while
  another process recreates them.

:class:`FileLock` wraps the platform advisory-lock primitive —
``fcntl.flock`` on POSIX, ``msvcrt.locking`` on Windows — as a
re-entrant context manager over a dedicated lockfile (never over a data
file, so locks survive ``os.replace`` of the records they guard). On
exotic platforms with neither primitive it degrades to a no-op and says
so via :attr:`FileLock.advisory`; single-process use stays correct
because every write is still atomic.

Acquisition is **time-bounded**: on filesystems where a crashed (or
wedged) holder's lock lingers — NFS lockd hiccups, a process stuck in
the kernel — a blocking ``flock`` would hang every other writer
forever.  Instead the lock polls non-blockingly until ``timeout``
(default 120 s, overridable via ``REPRO_LOCK_TIMEOUT_S`` or per
instance; ``math.inf`` restores block-forever) and then raises
:class:`LockTimeoutError` carrying *who* holds it: the holder's pid
(written into the lockfile on every acquisition), whether that pid is
still alive, and the lock's age.  Timeouts also bump the
``lock.wait_timeout`` counter so a fleet-wide stuck lock shows up in
``/health`` metrics, not just in one worker's traceback.

Advisory means *cooperating* writers: processes that mutate the cache
through :class:`~repro.engine.cache.ResultCache` exclude each other,
while readers never block (they rely on atomic replace, not the lock).
"""

from __future__ import annotations

import math
import os
import time
from pathlib import Path
from types import TracebackType
from typing import Optional

from ..errors import ReproError

__all__ = ["FileLock", "LockTimeoutError"]

#: Default acquisition timeout (seconds) when neither the constructor
#: nor ``REPRO_LOCK_TIMEOUT_S`` says otherwise.  Generous — cache
#: eviction holds the lock for milliseconds — but finite, so a dead
#: holder surfaces as a diagnosable error instead of a hang.
DEFAULT_TIMEOUT_S = 120.0

#: Poll cadence while waiting: start fast (uncontended locks clear in
#: one tick), back off to this ceiling.
_MAX_POLL_S = 0.2


class LockTimeoutError(ReproError):
    """Could not acquire a :class:`FileLock` within its timeout."""


try:  # POSIX
    import fcntl

    def _try_acquire(fd: int) -> bool:
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
            return True
        except OSError:
            return False

    def _release(fd: int) -> None:
        fcntl.flock(fd, fcntl.LOCK_UN)

    _HAVE_LOCKS = True
except ImportError:  # pragma: no cover — Windows
    try:
        import msvcrt

        def _try_acquire(fd: int) -> bool:
            # Lock one byte at offset 0; LK_NBLCK fails immediately
            # when another process holds it.
            os.lseek(fd, 0, os.SEEK_SET)
            try:
                msvcrt.locking(fd, msvcrt.LK_NBLCK, 1)
                return True
            except OSError:
                return False

        def _release(fd: int) -> None:
            os.lseek(fd, 0, os.SEEK_SET)
            msvcrt.locking(fd, msvcrt.LK_UNLCK, 1)

        _HAVE_LOCKS = True
    except ImportError:  # pragma: no cover — neither primitive

        def _try_acquire(fd: int) -> bool:
            return True

        def _release(fd: int) -> None:
            pass

        _HAVE_LOCKS = False


def _default_timeout() -> float:
    raw = os.environ.get("REPRO_LOCK_TIMEOUT_S", "").strip()
    if raw:
        try:
            return float(raw)
        except ValueError:
            pass
    return DEFAULT_TIMEOUT_S


def _pid_alive(pid: int) -> Optional[bool]:
    """Best-effort liveness of ``pid`` (None when undeterminable)."""
    if pid <= 0:
        return None
    try:
        os.kill(pid, 0)
        return True
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):  # exists but not ours / platform quirk
        return None


class FileLock:
    """Re-entrant advisory lock on a dedicated lockfile.

    ``with FileLock(path):`` blocks until the calling process holds the
    exclusive advisory lock on ``path`` (created on demand, never
    deleted — deleting a lockfile while another process holds its fd
    would split future lockers onto a fresh inode and void exclusion),
    or raises :class:`LockTimeoutError` with holder diagnostics after
    ``timeout`` seconds.

    Re-entrancy is per *instance*, which matches the cache's usage (one
    lock object per :class:`~repro.engine.cache.ResultCache`); the OS
    lock itself is per process, so nested instances in one process
    would deadlock-until-timeout on ``flock`` platforms and must share
    the instance.
    """

    def __init__(
        self, path: "str | Path", *, timeout: Optional[float] = None
    ) -> None:
        self.path = Path(path)
        self.timeout = _default_timeout() if timeout is None else float(timeout)
        self._fd: Optional[int] = None
        self._depth = 0

    @property
    def advisory(self) -> bool:
        """True when a real OS locking primitive backs this lock."""
        return _HAVE_LOCKS

    @property
    def held(self) -> bool:
        """True while this process holds the lock (reentrant depth > 0)."""
        return self._depth > 0

    def acquire(self) -> "FileLock":
        """Take (or re-enter) the lock; :class:`LockTimeoutError` on timeout."""
        if self._depth == 0:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
            try:
                self._wait_for_lock(fd)
            except BaseException:
                os.close(fd)
                raise
            self._fd = fd
            self._write_holder(fd)
        self._depth += 1
        return self

    def release(self) -> None:
        """Drop one reentrant level; the OS lock is freed at depth zero."""
        if self._depth == 0:
            raise RuntimeError(f"release of unheld lock {self.path}")
        self._depth -= 1
        if self._depth == 0 and self._fd is not None:
            try:
                _release(self._fd)
            finally:
                os.close(self._fd)
                self._fd = None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _wait_for_lock(self, fd: int) -> None:
        if _try_acquire(fd):
            return
        deadline = (
            math.inf
            if math.isinf(self.timeout)
            else time.monotonic() + max(0.0, self.timeout)
        )
        delay = 0.02
        while True:
            now = time.monotonic()
            if now >= deadline:
                self._timed_out()
            time.sleep(min(delay, _MAX_POLL_S, max(deadline - now, 0.001)))
            delay = min(delay * 1.5, _MAX_POLL_S)
            if _try_acquire(fd):
                return

    def _timed_out(self) -> None:
        # Metrics import is deferred: locks is imported early in the
        # engine package and must not pull obs in at module import.
        from ..obs import metrics

        metrics().counter("lock.wait_timeout").add()
        raise LockTimeoutError(
            f"could not acquire lock {self.path} within "
            f"{self.timeout:g}s ({self._holder_diagnostics()}); "
            f"if the holder is dead, remove the lockfile or raise "
            f"REPRO_LOCK_TIMEOUT_S"
        )

    def _holder_diagnostics(self) -> str:
        """Who holds the lock, per the pid stamped into the lockfile."""
        pid: Optional[int] = None
        try:
            head = self.path.read_text(encoding="ascii", errors="replace")
            first = head.split()[0] if head.split() else ""
            pid = int(first) if first.isdigit() else None
        except (OSError, ValueError):
            pid = None
        try:
            age = time.time() - self.path.stat().st_mtime
            age_text = f"lock age {age:.0f}s"
        except OSError:
            age_text = "lock age unknown"
        if pid is None:
            return f"holder pid unknown, {age_text}"
        alive = _pid_alive(pid)
        liveness = {True: "alive", False: "DEAD", None: "liveness unknown"}[alive]
        return f"holder pid {pid} ({liveness}), {age_text}"

    @staticmethod
    def _write_holder(fd: int) -> None:
        """Stamp pid + wallclock into the lockfile (diagnostics only)."""
        try:
            stamp = f"{os.getpid()} {time.strftime('%Y-%m-%dT%H:%M:%S%z')}\n"
            os.ftruncate(fd, 0)
            os.lseek(fd, 0, os.SEEK_SET)
            os.write(fd, stamp.encode("ascii"))
        except OSError:  # pragma: no cover — diagnostics are best-effort
            pass

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        state = "held" if self.held else "free"
        return f"FileLock({self.path}, {state}, advisory={self.advisory})"
