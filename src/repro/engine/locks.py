"""Advisory file locking behind one small seam.

The shared result cache lets N worker *processes* point at one
``--cache-dir``. Individual record writes are already safe without any
lock (write-to-tmp + ``os.replace`` is atomic on POSIX and NTFS), but
two mutations are read-modify-write over many files and would race
without mutual exclusion:

* disk eviction — two evictors both summing sizes and both deleting
  "the oldest" records can overshoot the cap's hysteresis or delete a
  record the other just promoted;
* stale-version pruning — walking and rmdir'ing shard directories while
  another process recreates them.

:class:`FileLock` wraps the platform advisory-lock primitive —
``fcntl.flock`` on POSIX, ``msvcrt.locking`` on Windows — as a
re-entrant context manager over a dedicated lockfile (never over a data
file, so locks survive ``os.replace`` of the records they guard). On
exotic platforms with neither primitive it degrades to a no-op and says
so via :attr:`FileLock.advisory`; single-process use stays correct
because every write is still atomic.

Advisory means *cooperating* writers: processes that mutate the cache
through :class:`~repro.engine.cache.ResultCache` exclude each other,
while readers never block (they rely on atomic replace, not the lock).
"""

from __future__ import annotations

import os
from pathlib import Path
from types import TracebackType
from typing import Optional

__all__ = ["FileLock"]

try:  # POSIX
    import fcntl

    def _acquire(fd: int) -> None:
        fcntl.flock(fd, fcntl.LOCK_EX)

    def _release(fd: int) -> None:
        fcntl.flock(fd, fcntl.LOCK_UN)

    _HAVE_LOCKS = True
except ImportError:  # pragma: no cover — Windows
    try:
        import msvcrt

        def _acquire(fd: int) -> None:
            # Lock one byte at offset 0. LK_LOCK is not truly blocking:
            # it retries once per second for ~10 attempts and then
            # raises OSError, so loop until the lock is actually held
            # to match the fcntl path's block-until-available contract.
            os.lseek(fd, 0, os.SEEK_SET)
            while True:
                try:
                    msvcrt.locking(fd, msvcrt.LK_LOCK, 1)
                    return
                except OSError:
                    continue

        def _release(fd: int) -> None:
            os.lseek(fd, 0, os.SEEK_SET)
            msvcrt.locking(fd, msvcrt.LK_UNLCK, 1)

        _HAVE_LOCKS = True
    except ImportError:  # pragma: no cover — neither primitive

        def _acquire(fd: int) -> None:
            pass

        def _release(fd: int) -> None:
            pass

        _HAVE_LOCKS = False


class FileLock:
    """Re-entrant advisory lock on a dedicated lockfile.

    ``with FileLock(path):`` blocks until the calling process holds the
    exclusive advisory lock on ``path`` (created on demand, never
    deleted — deleting a lockfile while another process holds its fd
    would split future lockers onto a fresh inode and void exclusion).

    Re-entrancy is per *instance*, which matches the cache's usage (one
    lock object per :class:`~repro.engine.cache.ResultCache`); the OS
    lock itself is per process, so nested instances in one process
    would deadlock on ``flock`` platforms and must share the instance.
    """

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self._fd: Optional[int] = None
        self._depth = 0

    @property
    def advisory(self) -> bool:
        """True when a real OS locking primitive backs this lock."""
        return _HAVE_LOCKS

    @property
    def held(self) -> bool:
        """True while this process holds the lock (reentrant depth > 0)."""
        return self._depth > 0

    def acquire(self) -> "FileLock":
        """Take (or re-enter) the lock, blocking until it is available."""
        if self._depth == 0:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
            try:
                _acquire(self._fd)
            except OSError:
                os.close(self._fd)
                self._fd = None
                raise
        self._depth += 1
        return self

    def release(self) -> None:
        """Drop one reentrant level; the OS lock is freed at depth zero."""
        if self._depth == 0:
            raise RuntimeError(f"release of unheld lock {self.path}")
        self._depth -= 1
        if self._depth == 0 and self._fd is not None:
            try:
                _release(self._fd)
            finally:
                os.close(self._fd)
                self._fd = None

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        state = "held" if self.held else "free"
        return f"FileLock({self.path}, {state}, advisory={self.advisory})"
