"""Parallel batch-evaluation engine with content-addressed caching.

Turns one-off sweeps into a scalable evaluation service::

    from repro.engine import BatchRunner, ResultCache, make_backend
    from repro.engine.jobs import paper_campaign

    runner = BatchRunner(
        cache=ResultCache(cache_dir="~/.cache/repro"),
        backend=make_backend(jobs=4),
    )
    outcome = paper_campaign(quick=True).run(runner)
    print(outcome.report.describe())

Modules:

=================  ====================================================
``keys``           content-addressed scenario fingerprints
``cache``          persistent disk store + in-memory LRU, hit/miss stats
``executor``       serial / process-pool backends with error capture
``batch``          dedup → cache → evaluate → store composition
``jobs``           declarative job specs and multi-figure campaigns
=================  ====================================================
"""

from .batch import (
    BatchReport,
    BatchResult,
    BatchRunner,
    EvalRequest,
    PointError,
    evaluate_request,
    run_tids_sweep,
)
from .cache import CacheStats, ResultCache, result_from_dict
from .executor import (
    ExecutionBackend,
    PointOutcome,
    ProcessPoolBackend,
    SerialBackend,
    make_backend,
)
from .jobs import Campaign, JobOutcome, SweepJob, load_campaign, paper_campaign
from .keys import SCHEMA_VERSION, params_from_dict, scenario_fingerprint

__all__ = [
    "SCHEMA_VERSION",
    "scenario_fingerprint",
    "params_from_dict",
    "CacheStats",
    "ResultCache",
    "result_from_dict",
    "ExecutionBackend",
    "PointOutcome",
    "SerialBackend",
    "ProcessPoolBackend",
    "make_backend",
    "EvalRequest",
    "PointError",
    "BatchReport",
    "BatchResult",
    "BatchRunner",
    "evaluate_request",
    "run_tids_sweep",
    "Campaign",
    "SweepJob",
    "JobOutcome",
    "load_campaign",
    "paper_campaign",
]
