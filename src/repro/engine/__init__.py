"""Parallel batch-evaluation engine with content-addressed caching.

Turns one-off sweeps into a scalable evaluation service::

    from repro.engine import BatchRunner, ResultCache, make_backend
    from repro.engine.jobs import paper_campaign

    runner = BatchRunner(
        cache=ResultCache(cache_dir="~/.cache/repro"),
        backend=make_backend(jobs=4),
    )
    outcome = paper_campaign(quick=True).run(runner)
    print(outcome.report.describe())

Modules:

=================  ====================================================
``keys``           content-addressed scenario fingerprints
``locks``          advisory file locking (fcntl/msvcrt) for shared dirs
``cache``          persistent disk store (locked writes, LRU eviction)
                   + in-memory LRU, hit/miss/eviction stats
``executor``       serial / process-pool / thread-pool / vectorised
                   backends with error capture; ``make_backend("auto")``
                   selection
``batch``          dedup → cache → evaluate → store composition
``jobs``           declarative job specs and multi-figure campaigns
=================  ====================================================

The engine is instrumented end to end by :mod:`repro.obs` — enable
tracing / read the metrics registry there; each batch records its
per-phase timings on :class:`BatchReport` (``phase_seconds``) and its
counts as ``engine.*`` counters, and pool workers ship span/metric
deltas back to the parent with every chunk.

A cache directory may be shared by many concurrent processes: record
writes are atomic (tmp + rename), multi-file mutations are serialised
by an advisory file lock, and ``max_disk_bytes`` bounds the store with
LRU-by-mtime eviction.
"""

from .batch import (
    BatchReport,
    BatchResult,
    BatchRunner,
    EvalRequest,
    PointError,
    ProgressFn,
    SurvivabilityRequest,
    evaluate_request,
    evaluate_survivability_request,
    make_runner,
    run_tids_sweep,
)
from .cache import (
    CacheableResult,
    CacheStats,
    ResultCache,
    result_from_dict,
    survivability_result_from_dict,
)
from .executor import (
    ExecutionBackend,
    OutcomeFn,
    PointOutcome,
    ProcessPoolBackend,
    SerialBackend,
    StructureShareConfig,
    ThreadPoolBackend,
    VectorBackend,
    available_cpus,
    make_backend,
)
from .jobs import (
    Campaign,
    JobOutcome,
    SurvivabilityOutcome,
    SurvivabilitySweep,
    SweepJob,
    load_campaign,
    paper_campaign,
)
from .keys import SCHEMA_VERSION, params_from_dict, scenario_fingerprint
from .locks import FileLock, LockTimeoutError

__all__ = [
    "SCHEMA_VERSION",
    "scenario_fingerprint",
    "params_from_dict",
    "CacheStats",
    "ResultCache",
    "result_from_dict",
    "FileLock",
    "LockTimeoutError",
    "ExecutionBackend",
    "OutcomeFn",
    "ProgressFn",
    "PointOutcome",
    "SerialBackend",
    "ProcessPoolBackend",
    "ThreadPoolBackend",
    "VectorBackend",
    "StructureShareConfig",
    "available_cpus",
    "make_backend",
    "EvalRequest",
    "SurvivabilityRequest",
    "PointError",
    "BatchReport",
    "BatchResult",
    "BatchRunner",
    "make_runner",
    "evaluate_request",
    "evaluate_survivability_request",
    "run_tids_sweep",
    "Campaign",
    "SweepJob",
    "JobOutcome",
    "SurvivabilitySweep",
    "SurvivabilityOutcome",
    "load_campaign",
    "paper_campaign",
    "CacheableResult",
    "survivability_result_from_dict",
]
