"""Declarative job specs: a whole campaign as one submitted batch.

A :class:`SweepJob` names a grid — base parameter overrides plus axes of
values — without running anything. A :class:`Campaign` bundles several
jobs and submits **all** of their points as a single
:class:`~repro.engine.batch.BatchRunner` batch, so scenario points
shared between jobs (e.g. the ``m=5``/linear curve that appears in both
the fig2 and fig4 grids) are fingerprint-deduplicated and evaluated
once. Jobs are plain data: they round-trip through JSON, which is what
the CLI's ``sweep --spec jobs.json`` loads.

:func:`paper_campaign` expresses the paper's four figure grids
(fig2–fig5) declaratively; running it against a warm cache is the
"every figure for free" demonstration in
``benchmarks/bench_engine_parallel.py``.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional

from .. import constants as C
from ..core.results import GCSResult, SurvivabilityResult
from ..errors import ParameterError
from ..params import GCSParameters
from ..validation import require_sorted_unique
from .batch import (
    BatchRunner,
    EvalRequest,
    PointError,
    ProgressFn,
    SurvivabilityRequest,
    evaluate_survivability_request,
)
from .executor import SerialBackend

__all__ = [
    "SweepJob",
    "JobOutcome",
    "Campaign",
    "CampaignOutcome",
    "SurvivabilitySweep",
    "SurvivabilityOutcome",
    "load_campaign",
    "paper_campaign",
]


@dataclass(frozen=True)
class SweepJob:
    """One named parameter grid over :meth:`GCSParameters.replacing` keys.

    ``base`` is applied to :meth:`GCSParameters.paper_defaults` first;
    each axis assignment is layered on top. Axis order is significant
    (the cartesian product iterates the last axis fastest), matching
    :func:`repro.analysis.sweep.grid_sweep`.
    """

    name: str
    axes: Mapping[str, tuple[Any, ...]]
    base: Mapping[str, Any] = field(default_factory=dict)
    method: str = "fast"

    def __post_init__(self) -> None:
        if not self.name:
            raise ParameterError("job name must be non-empty")
        if not self.axes:
            raise ParameterError(f"job {self.name!r} has no axes")
        object.__setattr__(
            self, "axes", {k: tuple(v) for k, v in self.axes.items()}
        )
        object.__setattr__(self, "base", dict(self.base))
        for axis, values in self.axes.items():
            if len(values) == 0:
                raise ParameterError(f"job {self.name!r} axis {axis!r} is empty")

    # ------------------------------------------------------------------
    def assignments(self) -> list[dict[str, Any]]:
        """Every axis combination in row-major grid order."""
        names = list(self.axes)
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(self.axes[n] for n in names))
        ]

    def requests(self) -> list[tuple[dict[str, Any], EvalRequest]]:
        """One ``(assignment, EvalRequest)`` pair per grid point."""
        base_params = GCSParameters.paper_defaults(**self.base)
        return [
            (
                assignment,
                EvalRequest(
                    params=base_params.replacing(**assignment), method=self.method
                ),
            )
            for assignment in self.assignments()
        ]

    def __len__(self) -> int:
        n = 1
        for values in self.axes.values():
            n *= len(values)
        return n

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-ready spec (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "axes": {k: list(v) for k, v in self.axes.items()},
            "base": dict(self.base),
            "method": self.method,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepJob":
        """Rebuild a job from :meth:`to_dict` output (raises
        :class:`ParameterError` when malformed).
        """
        try:
            return cls(
                name=data["name"],
                axes={k: tuple(v) for k, v in data["axes"].items()},
                base=dict(data.get("base", {})),
                method=data.get("method", "fast"),
            )
        except (KeyError, TypeError, AttributeError) as exc:
            raise ParameterError(f"malformed job spec: {exc}") from exc


@dataclass(frozen=True)
class JobOutcome:
    """One job's points in grid order (``None`` where a point failed)."""

    job: SweepJob
    points: tuple[tuple[Mapping[str, Any], Optional[GCSResult]], ...]

    def values(self, attr: str = "mttsf_s") -> list[Optional[float]]:
        """One result attribute per grid point (``None`` where failed)."""
        return [
            getattr(result, attr) if result is not None else None
            for _, result in self.points
        ]

    @property
    def n_failed(self) -> int:
        """Number of failed grid points."""
        return sum(1 for _, result in self.points if result is None)


@dataclass(frozen=True)
class Campaign:
    """A set of jobs submitted as one deduplicated batch."""

    name: str
    jobs: tuple[SweepJob, ...]

    def __post_init__(self) -> None:
        if not self.jobs:
            raise ParameterError(f"campaign {self.name!r} has no jobs")
        names = [job.name for job in self.jobs]
        if len(set(names)) != len(names):
            raise ParameterError(f"campaign {self.name!r} has duplicate job names")
        object.__setattr__(self, "jobs", tuple(self.jobs))

    def __len__(self) -> int:
        return sum(len(job) for job in self.jobs)

    # ------------------------------------------------------------------
    def run(
        self,
        runner: Optional[BatchRunner] = None,
        *,
        progress: Optional[ProgressFn] = None,
    ) -> "CampaignOutcome":
        """Expand every job, submit once, scatter results per job."""
        runner = runner or BatchRunner(backend=SerialBackend())
        expanded = [(job, job.requests()) for job in self.jobs]
        flat = [req for _, reqs in expanded for _, req in reqs]
        batch = runner.run(flat, progress=progress)

        outcomes: list[JobOutcome] = []
        cursor = 0
        for job, reqs in expanded:
            points = tuple(
                (assignment, batch.results[cursor + offset])
                for offset, (assignment, _) in enumerate(reqs)
            )
            outcomes.append(JobOutcome(job=job, points=points))
            cursor += len(reqs)
        return CampaignOutcome(
            campaign=self,
            outcomes=tuple(outcomes),
            report=batch.report,
            errors=tuple(batch.report.errors),
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-ready spec (inverse of :meth:`from_dict`)."""
        return {"name": self.name, "jobs": [job.to_dict() for job in self.jobs]}

    def to_json(self, path: "str | Path") -> Path:
        """Write the campaign spec to ``path`` as indented JSON."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2))
        return path

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Campaign":
        """Rebuild a campaign from :meth:`to_dict` output (raises
        :class:`ParameterError` when malformed).
        """
        try:
            return cls(
                name=data["name"],
                jobs=tuple(SweepJob.from_dict(j) for j in data["jobs"]),
            )
        except (KeyError, TypeError) as exc:
            raise ParameterError(f"malformed campaign spec: {exc}") from exc


@dataclass(frozen=True)
class CampaignOutcome:
    """All job outcomes plus the shared batch report."""

    campaign: Campaign
    outcomes: tuple[JobOutcome, ...]
    report: Any
    errors: tuple[PointError, ...]

    def outcome(self, job_name: str) -> JobOutcome:
        """The named job's outcome (raises :class:`ParameterError`
        for unknown names).
        """
        for job_outcome in self.outcomes:
            if job_outcome.job.name == job_name:
                return job_outcome
        raise ParameterError(
            f"unknown job {job_name!r}; have {[o.job.name for o in self.outcomes]}"
        )


@dataclass(frozen=True)
class SurvivabilitySweep:
    """A survivability campaign: a parameter grid × one mission-time grid.

    The transient counterpart of :class:`SweepJob`: every grid point
    becomes a :class:`~repro.engine.batch.SurvivabilityRequest` whose
    curve is evaluated over the shared, strictly increasing
    ``times_s`` grid. Unlike :class:`SweepJob`, ``axes`` may be empty —
    a single-point sweep (one curve for the base scenario) is a useful
    degenerate case. Round-trips through JSON like every other job
    spec.
    """

    name: str
    times_s: tuple[float, ...]
    axes: Mapping[str, tuple[Any, ...]] = field(default_factory=dict)
    base: Mapping[str, Any] = field(default_factory=dict)
    eps: float = 1e-12

    def __post_init__(self) -> None:
        if not self.name:
            raise ParameterError("sweep name must be non-empty")
        times = require_sorted_unique("times_s", self.times_s)
        if times[0] < 0.0:
            raise ParameterError(f"times_s must be non-negative, got {times[0]!r}")
        object.__setattr__(self, "times_s", times)
        object.__setattr__(
            self, "axes", {k: tuple(v) for k, v in self.axes.items()}
        )
        object.__setattr__(self, "base", dict(self.base))
        for axis, values in self.axes.items():
            if len(values) == 0:
                raise ParameterError(f"sweep {self.name!r} axis {axis!r} is empty")

    # ------------------------------------------------------------------
    def assignments(self) -> list[dict[str, Any]]:
        """Every axis combination in row-major grid order."""
        names = list(self.axes)
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(self.axes[n] for n in names))
        ]

    def requests(self) -> list[tuple[dict[str, Any], SurvivabilityRequest]]:
        """One ``(assignment, SurvivabilityRequest)`` pair per grid point."""
        base_params = GCSParameters.paper_defaults(**self.base)
        return [
            (
                assignment,
                SurvivabilityRequest(
                    params=base_params.replacing(**assignment),
                    times_s=self.times_s,
                    eps=self.eps,
                ),
            )
            for assignment in self.assignments()
        ]

    def __len__(self) -> int:
        n = 1
        for values in self.axes.values():
            n *= len(values)
        return n

    # ------------------------------------------------------------------
    def run(
        self,
        runner: Optional[BatchRunner] = None,
        *,
        progress: Optional[ProgressFn] = None,
    ) -> "SurvivabilityOutcome":
        """Submit every grid point as one deduplicated batch."""
        runner = runner or BatchRunner(backend=SerialBackend())
        expanded = self.requests()
        batch = runner.run(
            [req for _, req in expanded],
            evaluate=evaluate_survivability_request,
            progress=progress,
        )
        points = tuple(
            (assignment, batch.results[i])
            for i, (assignment, _) in enumerate(expanded)
        )
        return SurvivabilityOutcome(
            sweep=self,
            points=points,
            report=batch.report,
            errors=tuple(batch.report.errors),
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-ready spec (inverse of :meth:`from_dict`)."""
        return {
            "kind": "survivability",
            "name": self.name,
            "times_s": list(self.times_s),
            "axes": {k: list(v) for k, v in self.axes.items()},
            "base": dict(self.base),
            "eps": self.eps,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SurvivabilitySweep":
        """Rebuild a sweep from :meth:`to_dict` output (raises
        :class:`ParameterError` when malformed).
        """
        try:
            return cls(
                name=data["name"],
                times_s=tuple(data["times_s"]),
                axes={k: tuple(v) for k, v in data.get("axes", {}).items()},
                base=dict(data.get("base", {})),
                eps=float(data.get("eps", 1e-12)),
            )
        except (KeyError, TypeError, AttributeError) as exc:
            raise ParameterError(f"malformed survivability spec: {exc}") from exc


@dataclass(frozen=True)
class SurvivabilityOutcome:
    """One survivability sweep's curves plus the shared batch report."""

    sweep: SurvivabilitySweep
    points: tuple[tuple[Mapping[str, Any], Optional[SurvivabilityResult]], ...]
    report: Any
    errors: tuple[PointError, ...]

    @property
    def n_failed(self) -> int:
        """Number of failed grid points."""
        return sum(1 for _, result in self.points if result is None)

    def curves(self) -> list[Optional[tuple[float, ...]]]:
        """The ``S(t)`` curve per grid point (``None`` where failed)."""
        return [
            result.survival if result is not None else None
            for _, result in self.points
        ]


def load_campaign(path: "str | Path") -> Campaign:
    """Load a campaign (or a single job) from a JSON spec file."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise ParameterError(f"cannot read campaign spec {path}: {exc}") from exc
    if "jobs" in data:
        return Campaign.from_dict(data)
    job = SweepJob.from_dict(data)
    return Campaign(name=job.name, jobs=(job,))


def paper_campaign(*, quick: bool = True) -> Campaign:
    """The paper's four figure grids (fig2–fig5) as one campaign.

    fig2/fig3 sweep ``TIDS × m`` (linear attacker/detection); fig4/fig5
    sweep ``TIDS × detection function`` at ``m = 5``. The fig2 ``m=5``
    column and the fig4 ``linear`` column are the *same* scenario
    points, so the campaign's dedup stage evaluates them once.
    """
    n = 40 if quick else C.PAPER_NUM_NODES
    base = {"num_nodes": n}
    return Campaign(
        name="paper-figures",
        jobs=(
            SweepJob(
                name="fig2_mttsf_vs_m",
                base=base,
                axes={
                    "detection_interval_s": tuple(C.PAPER_TIDS_GRID_S),
                    "num_voters": tuple(C.PAPER_M_VALUES),
                },
            ),
            SweepJob(
                name="fig3_ctotal_vs_m",
                base=base,
                axes={
                    "detection_interval_s": tuple(C.PAPER_TIDS_GRID_COST_S),
                    "num_voters": tuple(C.PAPER_M_VALUES),
                },
            ),
            SweepJob(
                name="fig4_mttsf_vs_detection",
                base=base,
                axes={
                    "detection_interval_s": tuple(C.PAPER_TIDS_GRID_S),
                    "detection_function": ("logarithmic", "linear", "polynomial"),
                },
            ),
            SweepJob(
                name="fig5_ctotal_vs_detection",
                base=base,
                axes={
                    "detection_interval_s": tuple(C.PAPER_TIDS_GRID_COST_S),
                    "detection_function": ("logarithmic", "linear", "polynomial"),
                },
            ),
        ),
    )
