"""Deterministic random-number management.

Everything stochastic in the library (mobility traces, the discrete-event
simulator, Monte Carlo validation) draws from :class:`numpy.random.Generator`
instances produced here, so a single integer seed reproduces an entire
experiment, and independent components get independent streams via
``SeedSequence.spawn``.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Union

import numpy as np

from .errors import ParameterError

__all__ = ["RandomSource", "as_generator", "spawn_children"]

SeedLike = Union[None, int, np.random.Generator, np.random.SeedSequence]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer seed, a ``SeedSequence``
    or an existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, bool) or not isinstance(seed, (int, np.integer)):
        raise ParameterError(f"seed must be None, an int, a Generator or a SeedSequence; got {seed!r}")
    if seed < 0:
        raise ParameterError(f"seed must be >= 0, got {seed}")
    return np.random.default_rng(int(seed))


def spawn_children(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Produce ``n`` statistically independent child generators.

    Child streams are derived with ``SeedSequence.spawn`` when an integer
    or ``SeedSequence`` is supplied; when a ``Generator`` is supplied,
    fresh child seeds are drawn from it (still reproducible given the
    parent's state).
    """
    if n < 0:
        raise ParameterError(f"n must be >= 0, got {n}")
    if isinstance(seed, np.random.SeedSequence):
        return [np.random.default_rng(s) for s in seed.spawn(n)]
    if isinstance(seed, np.random.Generator):
        seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    if seed is None:
        return [np.random.default_rng() for _ in range(n)]
    base = np.random.SeedSequence(int(seed))
    return [np.random.default_rng(s) for s in base.spawn(n)]


class RandomSource:
    """A named hierarchy of reproducible random streams.

    ``RandomSource(seed)`` owns a root ``SeedSequence``; :meth:`stream`
    returns a dedicated generator per component name, stable across runs
    and independent across names::

        rs = RandomSource(42)
        rng_mob = rs.stream("mobility")
        rng_sim = rs.stream("simulator")
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        if seed is not None and (isinstance(seed, bool) or not isinstance(seed, (int, np.integer))):
            raise ParameterError(f"seed must be None or an int, got {seed!r}")
        self._seed = None if seed is None else int(seed)
        self._root = np.random.SeedSequence(self._seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> Optional[int]:
        """The root integer seed (``None`` when seeded from OS entropy)."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        if not isinstance(name, str) or not name:
            raise ParameterError(f"stream name must be a non-empty string, got {name!r}")
        if name not in self._streams:
            # Derive a child seed deterministically from the name so the
            # stream does not depend on creation order.
            digest = np.frombuffer(name.encode("utf-8"), dtype=np.uint8)
            entropy = [int(x) for x in digest] + ([self._seed] if self._seed is not None else [])
            self._streams[name] = np.random.default_rng(np.random.SeedSequence(entropy))
        return self._streams[name]

    def streams(self, names: Sequence[str]) -> Iterator[np.random.Generator]:
        """Yield one stream per name in ``names``."""
        for name in names:
            yield self.stream(name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomSource(seed={self._seed!r}, streams={sorted(self._streams)})"
