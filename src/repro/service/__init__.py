"""repro.service — the sweep-service tier: an HTTP job server + client.

Makes the engine *serve* traffic instead of only running CLI sweeps.
Three modules, all stdlib-only (``asyncio`` + ``urllib``; no web
framework):

``repro.service.protocol``
    The versioned JSON wire format: submit / poll / fetch payload
    dataclasses, request and outcome (de)serialisation, and the
    content-addressed job-id scheme.  Malformed payloads raise
    :class:`~repro.service.protocol.ProtocolError`, which the server
    maps onto 4xx responses.
``repro.service.server``
    :class:`~repro.service.server.SweepService` (job table + worker
    thread around one shared :class:`~repro.engine.batch.BatchRunner`)
    and :class:`~repro.service.server.ServiceServer` (the
    asyncio HTTP front end; ``serve_forever()`` for the CLI,
    ``start_in_background()`` for in-process tests).
``repro.service.client``
    :class:`~repro.service.client.ServiceClient` (thin HTTP wrapper)
    and :class:`~repro.service.client.RemoteBackend` — the
    ``--jobs remote[:URL]`` execution backend that submits engine
    batches to a server and streams :class:`~repro.engine.PointOutcome`
    records back.

The service composes with — never reimplements — the engine: every
submitted campaign runs through the server's content-addressed
:class:`~repro.engine.cache.ResultCache` (concurrent clients hit the
cache first; only misses fan out over the server's evaluation
backend), progress and ``/health`` are rendered from the merged
:mod:`repro.obs` metrics registry, and each campaign writes a
:class:`~repro.obs.RunManifest`.  See ``docs/service.md`` for the
operator guide.
"""

from .client import (
    DEFAULT_SERVICE_URL,
    RemoteBackend,
    ServiceClient,
    ServiceError,
)
from .protocol import (
    PROTOCOL_VERSION,
    FetchResponse,
    JobStatus,
    ProtocolError,
    SubmitRequest,
    SubmitResponse,
    job_id_for,
    outcome_entry_to_dict,
    result_to_dict,
)
from .server import ServiceServer, SweepService

__all__ = [
    "DEFAULT_SERVICE_URL",
    "PROTOCOL_VERSION",
    "FetchResponse",
    "JobStatus",
    "ProtocolError",
    "RemoteBackend",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "SubmitRequest",
    "SubmitResponse",
    "SweepService",
    "job_id_for",
    "outcome_entry_to_dict",
    "result_to_dict",
]
