"""repro.service — the sweep-service tier: HTTP job server, client, pool.

Makes the engine *serve* traffic instead of only running CLI sweeps.
Six modules, all stdlib-only (``asyncio`` + ``urllib``; no web
framework):

``repro.service.protocol``
    The versioned JSON wire format: submit / poll / fetch payload
    dataclasses, the worker registration / lease / heartbeat / report
    payloads, request and outcome (de)serialisation, and the
    content-addressed job-id scheme.  Malformed payloads raise
    :class:`~repro.service.protocol.ProtocolError`, which the server
    maps onto 4xx responses.
``repro.service.server``
    :class:`~repro.service.server.SweepService` (job table + worker
    thread around one shared :class:`~repro.engine.batch.BatchRunner`)
    and :class:`~repro.service.server.ServiceServer` (the
    asyncio HTTP front end; ``serve_forever()`` for the CLI,
    ``start_in_background()`` for in-process tests).
``repro.service.client``
    :class:`~repro.service.client.ServiceClient` (retrying HTTP
    wrapper) and :class:`~repro.service.client.RemoteBackend` — the
    ``--jobs remote[:URL]`` execution backend that submits engine
    batches to a server and streams :class:`~repro.engine.PointOutcome`
    records back, surviving transient failures and server restarts.
``repro.service.pool``
    The fault-tolerant multi-host fan-out:
    :class:`~repro.service.pool.WorkerPool` (time-bounded leases,
    heartbeat liveness, capped retries with backoff, poison-chunk
    detection, worker quarantine, local fallback) and
    :class:`~repro.service.pool.DistributedBackend`, the execution
    backend every service wraps its local backend in.
``repro.service.worker``
    :class:`~repro.service.worker.ServiceWorker` — the pull-side peer
    behind ``repro-experiments work --server URL``: register, lease,
    heartbeat, evaluate via the engine's shared chunk protocol,
    report.
``repro.service.chaos``
    Deterministic fault injection
    (:class:`~repro.service.chaos.ChaosConfig`): kill a worker
    mid-chunk, delay heartbeats, drop reports, corrupt chunks by
    seed — the hooks the robustness tests and the CI chaos job drive.

The service composes with — never reimplements — the engine: every
submitted campaign runs through the server's content-addressed
:class:`~repro.engine.cache.ResultCache` (concurrent clients hit the
cache first; only misses fan out over the worker pool or the server's
own backend), progress and ``/health`` are rendered from the merged
:mod:`repro.obs` metrics registry, and each campaign writes a
:class:`~repro.obs.RunManifest`.  See ``docs/service.md`` for the
operator guide.
"""

from .chaos import ChaosConfig
from .client import (
    DEFAULT_SERVICE_URL,
    RemoteBackend,
    ServiceClient,
    ServiceError,
)
from .pool import DistributedBackend, PoolConfig, WorkerPool
from .protocol import (
    PROTOCOL_VERSION,
    ChunkLease,
    ChunkReport,
    FetchResponse,
    HeartbeatAck,
    JobStatus,
    LeaseResponse,
    ProtocolError,
    SubmitRequest,
    SubmitResponse,
    WorkerRegistered,
    WorkerRegistration,
    job_id_for,
    outcome_entry_to_dict,
    result_to_dict,
)
from .server import ServiceServer, SweepService
from .worker import ServiceWorker

__all__ = [
    "DEFAULT_SERVICE_URL",
    "PROTOCOL_VERSION",
    "ChaosConfig",
    "ChunkLease",
    "ChunkReport",
    "DistributedBackend",
    "FetchResponse",
    "HeartbeatAck",
    "JobStatus",
    "LeaseResponse",
    "PoolConfig",
    "ProtocolError",
    "RemoteBackend",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ServiceWorker",
    "SubmitRequest",
    "SubmitResponse",
    "SweepService",
    "WorkerPool",
    "WorkerRegistered",
    "WorkerRegistration",
    "job_id_for",
    "outcome_entry_to_dict",
    "result_to_dict",
]
