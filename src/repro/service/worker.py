"""The pull-side worker: lease chunks, heartbeat, evaluate, report.

:class:`ServiceWorker` is the peer process behind
``repro-experiments work --server URL``.  It is deliberately
*stateless*: it registers with the sweep service, then loops —

1. ``POST /workers/<id>/lease`` — ask for a chunk of a job's cache
   misses (sleeping ``retry_after_s`` when the queue is empty);
2. evaluate the chunk through the engine's shared chunk protocol
   (:func:`repro.engine.executor.run_chunk` with ``evaluate_auto`` on
   its local backend), while a sidecar thread heartbeats so the
   server keeps the lease alive past its TTL;
3. ``POST /workers/<id>/result`` — ship the per-point outcomes plus
   the captured telemetry delta back, exactly the payload a local
   process-pool worker hands its parent.

All fault handling lives server-side (leases, retries, quarantine) —
a worker that dies mid-chunk simply stops heartbeating.  The
:class:`~repro.service.chaos.ChaosConfig` hooks let tests and the CI
chaos job inject precisely those deaths, delays, drops, and
corruptions; an inert config (the default) adds zero overhead.

The worker survives server restarts: on a 404 (the restarted server
does not know its id) it re-registers and keeps pulling.
"""

from __future__ import annotations

import logging
import os
import socket
import threading
import time
import traceback as traceback_module
from typing import Any, Optional

from ..engine.batch import evaluate_auto
from ..engine.executor import SerialBackend, run_chunk
from .chaos import ChaosConfig
from .client import ServiceClient, ServiceError
from .protocol import ChunkLease, ChunkReport, chunk_outcome_to_dict

__all__ = ["ServiceWorker"]

log = logging.getLogger(__name__)


class ServiceWorker:
    """One worker process/thread attached to a sweep service.

    Parameters
    ----------
    url:
        Base URL of the sweep service.
    backend:
        Local execution backend leased chunks are evaluated on
        (default: a fresh :class:`~repro.engine.executor.SerialBackend`).
    name:
        Roster label; defaults to ``<host>:<pid>``.
    chaos:
        Fault-injection hooks (inert by default; see
        :mod:`repro.service.chaos`).
    max_chunks:
        Stop cleanly after this many completed chunks (``None`` = run
        until :meth:`stop`).  Used by tests and bounded CI runs.
    poll_interval:
        Fallback sleep between empty lease polls when the server does
        not send a ``retry_after_s`` hint.
    """

    def __init__(
        self,
        url: str,
        *,
        backend: Optional[Any] = None,
        name: Optional[str] = None,
        chaos: Optional[ChaosConfig] = None,
        client: Optional[ServiceClient] = None,
        max_chunks: Optional[int] = None,
        poll_interval: float = 0.5,
    ) -> None:
        self.client = client if client is not None else ServiceClient(url)
        self.backend = backend if backend is not None else SerialBackend()
        self.name = name or f"{socket.gethostname()}:{os.getpid()}"
        self.chaos = chaos if chaos is not None else ChaosConfig()
        self.max_chunks = max_chunks
        self.poll_interval = poll_interval
        self.worker_id: Optional[str] = None
        self.chunks_completed = 0
        self.chunks_failed = 0
        self._stop = threading.Event()
        self._heartbeat_interval = 1.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Ask the worker loop to exit after the current chunk."""
        self._stop.set()

    def run(self) -> int:
        """Register and pull chunks until stopped; returns chunks done.

        Exits cleanly (deregistering) on :meth:`stop` or when
        ``max_chunks`` is reached; a chaos kill propagates without
        deregistering — the server must notice via the missed
        heartbeats, exactly like a SIGKILLed process.
        """
        self._register()
        log.info(
            "worker %s (%s) pulling from %s on backend %s",
            self.worker_id, self.name, self.client.url, self.backend.describe(),
        )
        while not self._stop.is_set():
            if (
                self.max_chunks is not None
                and self.chunks_completed >= self.max_chunks
            ):
                break
            try:
                lease = self.client.lease_chunk(self.worker_id)
            except ServiceError as exc:
                if exc.status == 404:
                    log.info(
                        "worker %s unknown to server (restart?) — "
                        "re-registering", self.worker_id,
                    )
                    self._register()
                    continue
                raise
            if lease.chunk is None:
                self._sleep(lease.retry_after_s or self.poll_interval)
                continue
            self._process(lease.chunk)
        # Reached only on a clean exit (stop() or max_chunks): a chaos
        # kill or crash must propagate WITHOUT deregistering, so the
        # server notices the death via missed heartbeats, not a
        # graceful handoff.
        self._deregister()
        return self.chunks_completed

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _register(self) -> None:
        from ..ctmc.kernels import resolve_kernel

        registered = self.client.register_worker(
            name=self.name,
            pid=os.getpid(),
            host=socket.gethostname(),
            backend=self.backend.describe(),
            # Resolved (not requested) tier: a numba request on a host
            # without numba advertises the fused fallback it will run.
            kernel=resolve_kernel(),
        )
        self.worker_id = registered.worker_id
        self._heartbeat_interval = registered.heartbeat_interval_s
        self.poll_interval = registered.poll_interval_s or self.poll_interval

    def _deregister(self) -> None:
        if self.worker_id is None:
            return
        try:
            self.client.deregister_worker(self.worker_id)
        except ServiceError:
            log.debug("worker %s: deregister failed (server gone?)", self.worker_id)

    def _sleep(self, seconds: float) -> None:
        self._stop.wait(timeout=seconds)

    def _process(self, chunk: ChunkLease) -> None:
        """Evaluate one leased chunk and report it (chaos hooks inline)."""
        log.debug(
            "worker %s: chunk %s (%d points, attempt %d)",
            self.worker_id, chunk.chunk_id, len(chunk.requests), chunk.attempt,
        )
        if self.chaos.should_corrupt(chunk.chunk_id):
            self.chunks_failed += 1
            self._report_corrupt(chunk)
            return

        stop_heartbeat = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(chunk.chunk_id, stop_heartbeat),
            name=f"heartbeat-{chunk.chunk_id[:8]}",
            daemon=True,
        )
        heartbeat.start()
        try:
            self.chaos.maybe_kill(self.chunks_completed)
            # The chaos slow-down sleeps inside the timed window (the
            # heartbeat sidecar keeps the lease alive), so a slowed
            # worker *measures* as slow and the server's throughput
            # EWMA shrinks its future chunks.
            started = time.perf_counter()
            self.chaos.chunk_sleep(self._stop)
            outcomes, telemetry = run_chunk(
                evaluate_auto,
                list(enumerate(chunk.requests)),
                backend=self.backend,
            )
            elapsed_s = time.perf_counter() - started
        finally:
            stop_heartbeat.set()
            heartbeat.join(timeout=5.0)

        if self.chaos.take_drop():
            log.debug(
                "worker %s: chaos dropped report for chunk %s",
                self.worker_id, chunk.chunk_id,
            )
            return
        report = ChunkReport(
            chunk_id=chunk.chunk_id,
            outcomes=tuple(chunk_outcome_to_dict(o) for o in outcomes),
            telemetry=telemetry,
            elapsed_s=elapsed_s,
        )
        if self.client.report_chunk(self.worker_id, report):
            self.chunks_completed += 1
        else:
            log.debug(
                "worker %s: report for chunk %s was stale (reassigned)",
                self.worker_id, chunk.chunk_id,
            )

    def _report_corrupt(self, chunk: ChunkLease) -> None:
        """Report the injected chunk-level failure, traceback included."""
        failed = {}
        try:
            self.chaos.corrupt(chunk.chunk_id)
        except Exception as exc:  # noqa: BLE001 — building the failure record
            failed = {
                "error": str(exc),
                "error_type": type(exc).__name__,
                "traceback": traceback_module.format_exc(),
            }
        self.client.report_chunk(
            self.worker_id,
            ChunkReport(chunk_id=chunk.chunk_id, failed=failed),
        )

    def _heartbeat_loop(self, chunk_id: str, stop: threading.Event) -> None:
        """Sidecar: re-arm the lease every interval while evaluating."""
        while not stop.wait(
            timeout=self.chaos.heartbeat_sleep_s(self._heartbeat_interval)
        ):
            try:
                ack = self.client.heartbeat(self.worker_id, [chunk_id])
            except ServiceError as exc:
                log.debug(
                    "worker %s: heartbeat failed (%s) — will retry",
                    self.worker_id, exc,
                )
                continue
            if chunk_id in ack.stale:
                log.debug(
                    "worker %s: chunk %s went stale under us",
                    self.worker_id, chunk_id,
                )
                return
