"""Fault-tolerant worker pool: leases, heartbeats, adaptive scheduling.

This is the server half of the multi-host fan-out.  The
:class:`~repro.service.server.SweepService` wraps its local execution
backend in a :class:`DistributedBackend`; when a batch's cache misses
reach the evaluate phase, the backend parks them on the
:class:`WorkerPool` queue.  Registered workers (see
:mod:`repro.service.worker`) pull chunks under **time-bounded leases**,
heartbeat while evaluating, and report outcomes back; the HTTP routes
are thin wrappers over the pool's ``register`` / ``lease`` /
``heartbeat`` / ``report`` methods, all of which are quick state
transitions under one lock — safe to call from the server's event-loop
thread while ``run_distributed`` blocks on the service worker thread.

Fault tolerance is the design constraint, in the spirit of the source
paper's premise that distributed detection must survive failed and
compromised nodes:

* **Worker death / network partition** — a missed heartbeat lets the
  lease expire; the reaper requeues the chunk for the next live worker
  (``service.leases_expired`` / ``service.chunks_reassigned``).
* **Capped retries with backoff** — each requeue waits
  ``backoff_base_s · 2^(failures−1)`` (capped, deterministically
  jittered by chunk id) so a flapping worker cannot hot-loop a chunk.
* **Poison chunks** — a chunk that fails ``max_attempts`` times stops
  retrying and resolves to per-point error outcomes carrying the last
  worker's traceback, surfacing as
  :class:`~repro.engine.batch.PointError` exactly like a local failure
  (``service.chunks_poisoned``).
* **Worker quarantine** — a worker that keeps failing chunks is
  quarantined and no longer leased to (``service.workers_quarantined``).
* **Empty / dead pool** — with no live worker the pool evaluates
  chunks on the server's local fallback backend
  (``service.chunks_local_fallback``), so ``--jobs remote`` is never
  worse than the single-host service tier.

Scheduling is *adaptive* (the load-imbalance problem the paper's own
performance analysis is about — heterogeneous nodes must not let one
straggler pin the job tail):

* **Per-lease chunk sizing** — chunks are carved from the job's
  remaining points *at lease time*, sized to the live worker count
  right now (never frozen at distribution time, so a job submitted to
  an empty pool still spreads over late-joining workers) and weighted
  by the leasing worker's measured throughput — an EWMA of points/sec
  from its chunk reports (``ChunkReport.elapsed_s``), seeded by the
  backend capability it advertised at registration (``vector`` workers
  start with proportionally larger chunks than ``serial`` ones).
* **Work stealing** — an idle worker with nothing pending splits the
  tail half off the largest straggler's leased chunk and evaluates it
  concurrently (``service.chunks_stolen``); whichever copy of a point
  reports first wins.
* **Tail speculation** — near the job tail (nothing left to carve or
  steal) an idle worker duplicate-leases an in-flight chunk outright
  (``service.leases_speculated``); the first complete report resolves
  it and the loser is dropped by the exactly-once dedup.

Results are **exactly-once per point**: the first report carrying a
point resolves it; later copies — from slow workers, stolen tails, or
speculative duplicates — are skipped, and a whole-chunk duplicate is
counted (``service.duplicate_results``) and dropped.  Byte-identity
with ``--jobs serial`` holds because every copy of a point evaluates
through the same :func:`repro.engine.executor.run_chunk` protocol on
the same deterministic solver, so it does not matter which copy wins.
"""

from __future__ import annotations

import hashlib
import logging
import math
import random
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from ..engine.cache import result_from_dict
from ..engine.executor import OutcomeFn, PointOutcome, run_chunk
from ..obs import absorb_telemetry, metrics
from .protocol import (
    ChunkLease,
    ChunkReport,
    HeartbeatAck,
    LeaseResponse,
    ProtocolError,
    WorkerRegistered,
    WorkerRegistration,
    wire_dispatchable,
)

__all__ = [
    "DistributedBackend",
    "PoolConfig",
    "WorkerInfo",
    "WorkerPool",
]

log = logging.getLogger(__name__)

#: Holder key used for leases taken by the server's own fallback loop.
_LOCAL_HOLDER = "<local>"


@dataclass(frozen=True)
class PoolConfig:
    """Tuning knobs for the worker pool (see docs/service.md for guidance).

    The defaults suit chunk evaluations of a few seconds on a LAN; the
    in-process test layer shrinks everything by ~10× to make fault
    windows cheap to hit.
    """

    #: Seconds a worker may hold a chunk without heartbeating before
    #: the lease expires and the chunk is reassigned.
    lease_ttl_s: float = 5.0
    #: Cadence the server asks workers to heartbeat at.  Each heartbeat
    #: re-arms the worker's held leases, so ``lease_ttl_s`` only needs
    #: to cover the heartbeat gap, not the whole chunk evaluation.
    heartbeat_interval_s: float = 1.0
    #: Suggested sleep between empty lease polls (returned to workers
    #: as ``retry_after_s`` — unless pending chunks are merely
    #: backoff-blocked, in which case the hint is the actual wait until
    #: the earliest one becomes eligible).
    poll_interval_s: float = 0.5
    #: Failed attempts before a chunk is declared poison.
    max_attempts: int = 3
    #: Chunk failures before a worker is quarantined.
    quarantine_after: int = 3
    #: Points per chunk; ``None`` sizes each lease adaptively —
    #: ``remaining / (chunks_per_worker · live_workers)``, weighted by
    #: the leasing worker's throughput relative to the pool mean.
    chunk_size: Optional[int] = None
    #: Target number of chunks carved per live worker when
    #: ``chunk_size`` is auto (load balancing vs. per-chunk HTTP
    #: overhead).
    chunks_per_worker: int = 4
    #: Allow idle workers to split the tail off a straggler's leased
    #: chunk when nothing is pending.
    steal: bool = True
    #: Allow idle workers to duplicate-lease in-flight chunks near the
    #: job tail (first complete report wins).
    speculate: bool = True
    #: A leased chunk must have been held at least this long before it
    #: can be stolen from or speculatively duplicated (avoids
    #: thrashing fresh leases).
    tail_min_lease_age_s: float = 1.0
    #: Smallest leased chunk stealing may split (the stolen tail is
    #: half of it).
    steal_min_points: int = 2
    #: Maximum concurrent leases per chunk (original + speculative).
    max_leases_per_chunk: int = 2
    #: EWMA smoothing factor for per-worker throughput (points/sec):
    #: ``ewma ← α·observed + (1−α)·ewma``.
    throughput_alpha: float = 0.3
    #: Capability prior for workers advertising a ``vector`` backend,
    #: used to weight their chunk sizes until real throughput arrives.
    vector_weight: float = 4.0
    #: How often the dispatching thread wakes to reap expired leases.
    reap_tick_s: float = 0.25
    #: Requeue backoff: ``backoff_base_s · 2^(failures-1)`` capped at
    #: ``backoff_cap_s``, jittered ±25% (deterministic per chunk+attempt).
    backoff_base_s: float = 0.1
    backoff_cap_s: float = 2.0

    @property
    def lost_after_s(self) -> float:
        """Heartbeat silence after which a worker no longer counts as live."""
        return max(self.lease_ttl_s, 3.0 * self.heartbeat_interval_s)

    def summary(self) -> dict:
        """The scheduling knobs surfaced under ``/health``."""
        return {
            "lease_ttl_s": self.lease_ttl_s,
            "heartbeat_interval_s": self.heartbeat_interval_s,
            "chunk_size": self.chunk_size,
            "chunks_per_worker": self.chunks_per_worker,
            "max_attempts": self.max_attempts,
            "steal": self.steal,
            "speculate": self.speculate,
        }


@dataclass
class WorkerInfo:
    """Server-side record of one registered worker."""

    worker_id: str
    name: str
    pid: int
    host: str
    backend: str
    #: Advertised solver tier (``numba``/``fused``/``numpy``) — advisory
    #: roster information; never a scheduling input (tiers agree
    #: bit-for-bit, so placement on it would buy nothing).
    kernel: str
    registered_at: float
    last_seen: float
    state: str = "idle"  # idle | busy | quarantined | lost
    leases: set = field(default_factory=set)
    chunks_completed: int = 0
    chunks_failed: int = 0
    points_completed: int = 0
    #: EWMA of reported points/sec; ``None`` until the first timed report.
    throughput_ewma: Optional[float] = None

    def live(self, now: float, lost_after_s: float) -> bool:
        """True when this worker may be leased new work."""
        return (
            self.state != "quarantined"
            and now - self.last_seen <= lost_after_s
        )

    def roster_entry(self, now: float, lost_after_s: float) -> dict:
        """The ``/health`` roster record for this worker."""
        age = now - self.last_seen
        state = self.state
        if state not in ("quarantined", "lost") and age > lost_after_s:
            state = "lost"
        return {
            "id": self.worker_id,
            "name": self.name,
            "pid": self.pid,
            "host": self.host,
            "backend": self.backend,
            "kernel": self.kernel,
            "state": state,
            "leases": sorted(self.leases),
            "last_heartbeat_age_s": round(age, 3),
            "chunks_completed": self.chunks_completed,
            "chunks_failed": self.chunks_failed,
            "points_completed": self.points_completed,
            "throughput_points_per_s": (
                round(self.throughput_ewma, 3)
                if self.throughput_ewma is not None
                else None
            ),
        }


def _chunk_id_for(seq: int, items: Sequence[Any]) -> str:
    """Content-addressed chunk id — stable across lease reassignments."""
    digest = hashlib.sha256()
    digest.update(f"{seq}\n".encode("ascii"))
    for item in items:
        digest.update(item.fingerprint().encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()[:16]


class _Lease:
    """One worker's (or the local fallback's) hold on a chunk."""

    __slots__ = ("holder", "granted_at", "expires_at", "speculative")

    def __init__(self, holder, granted_at, expires_at, speculative=False):
        self.holder = holder
        self.granted_at = granted_at
        self.expires_at = expires_at
        self.speculative = speculative


class _Chunk:
    """One unit of leasable work: a slice of a batch's cache misses.

    A chunk may hold several concurrent leases (the original plus a
    speculative duplicate); it resolves on the first complete report
    and later copies are dropped.
    """

    __slots__ = (
        "chunk_id",
        "job_id",
        "indices",
        "items",
        "run",
        "attempts",
        "state",  # pending | leased | done
        "leases",
        "not_before",
        "failures",
        "stolen",
    )

    def __init__(self, chunk_id, job_id, indices, items, run):
        self.chunk_id = chunk_id
        self.job_id = job_id
        self.indices = tuple(indices)
        self.items = tuple(items)
        self.run = run
        self.attempts = 0
        self.state = "pending"
        self.leases: dict[str, _Lease] = {}
        self.not_before = 0.0
        self.failures: list[dict] = []
        self.stolen = False

    def pairs(self) -> list[tuple[int, Any]]:
        """The ``(global_index, item)`` pairs :func:`run_chunk` expects."""
        return list(zip(self.indices, self.items))

    def oldest_lease_age(self, now: float) -> float:
        """Seconds since the longest-held live lease was granted."""
        if not self.leases:
            return 0.0
        return now - min(lease.granted_at for lease in self.leases.values())


class _RunState:
    """Book-keeping for one ``run_distributed`` call.

    Points resolve individually (``outcomes``/``resolved``): chunks may
    overlap after a steal-split or speculative duplicate, and the first
    report carrying a point wins.  ``next_index`` is the carve cursor —
    work is chunked lazily, one lease at a time, never pre-split.
    """

    __slots__ = (
        "fn",
        "items",
        "job_id",
        "outcomes",
        "resolved",
        "deliver",
        "pending",
        "chunks",
        "next_index",
        "next_seq",
    )

    def __init__(self, fn, items, job_id=""):
        self.fn = fn
        self.items = list(items)
        self.job_id = job_id
        self.outcomes: list[Optional[PointOutcome]] = [None] * len(self.items)
        self.resolved = 0
        self.deliver: deque[PointOutcome] = deque()
        self.pending: deque[_Chunk] = deque()  # requeued chunks only
        self.chunks: list[_Chunk] = []
        self.next_index = 0
        self.next_seq = 0

    @property
    def done(self) -> bool:
        """True once every point has a resolved outcome."""
        return self.resolved == len(self.items)


class WorkerPool:
    """Lease queue + worker roster with adaptive scheduling and fallback.

    All public methods are thread-safe.  The HTTP-facing ones
    (``register`` … ``report``) only flip state and notify the
    dispatcher; the blocking work happens in :meth:`run_distributed`,
    which the sweep service calls from its job thread.
    """

    def __init__(self, config: Optional[PoolConfig] = None) -> None:
        self.config = config if config is not None else PoolConfig()
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._workers: dict[str, WorkerInfo] = {}
        self._chunks: dict[str, _Chunk] = {}
        self._runs: list[_RunState] = []

    # ------------------------------------------------------------------
    # Worker-facing API (called from the HTTP routes)
    # ------------------------------------------------------------------
    def register(self, registration: WorkerRegistration) -> WorkerRegistered:
        """Add a worker to the roster and hand back its pool cadence."""
        worker_id = uuid.uuid4().hex[:12]
        now = time.monotonic()
        with self._cond:
            self._workers[worker_id] = WorkerInfo(
                worker_id=worker_id,
                name=registration.name,
                pid=registration.pid,
                host=registration.host,
                backend=registration.backend,
                kernel=registration.kernel,
                registered_at=now,
                last_seen=now,
            )
            self._cond.notify_all()
        metrics().counter("service.workers_registered").add()
        log.info(
            "worker %s registered: %s (pid %d on %s, backend %s)",
            worker_id, registration.name, registration.pid,
            registration.host or "?", registration.backend,
        )
        return WorkerRegistered(
            worker_id=worker_id,
            lease_ttl_s=self.config.lease_ttl_s,
            heartbeat_interval_s=self.config.heartbeat_interval_s,
            poll_interval_s=self.config.poll_interval_s,
        )

    def deregister(self, worker_id: str) -> None:
        """Remove a worker; its held leases requeue immediately."""
        now = time.monotonic()
        with self._cond:
            worker = self._require_worker(worker_id)
            for chunk_id in sorted(worker.leases):
                chunk = self._chunks.get(chunk_id)
                if chunk is None or chunk.state != "leased":
                    continue
                chunk.leases.pop(worker_id, None)
                if not chunk.leases:
                    self._requeue_or_poison_locked(
                        chunk,
                        now,
                        failure={
                            "error": (
                                f"worker {worker.name} deregistered mid-chunk"
                            ),
                            "error_type": "WorkerGone",
                            "traceback": None,
                        },
                    )
            del self._workers[worker_id]
            self._cond.notify_all()
        log.info("worker %s deregistered", worker_id)

    def lease(self, worker_id: str) -> LeaseResponse:
        """Hand ``worker_id`` a chunk — carved, requeued, stolen, or
        speculated, in that order of preference."""
        now = time.monotonic()
        with self._cond:
            worker = self._require_worker(worker_id)
            self._touch_worker_locked(worker, now)
            if worker.state == "quarantined":
                return LeaseResponse(retry_after_s=self.config.poll_interval_s)
            picked = self._next_chunk_locked(worker, now)
            if picked is None:
                if not worker.leases:
                    worker.state = "idle"
                return LeaseResponse(retry_after_s=self._retry_hint_locked(now))
            chunk, speculative = picked
            chunk.state = "leased"
            chunk.attempts += 1
            chunk.leases[worker_id] = _Lease(
                worker_id, now, now + self.config.lease_ttl_s, speculative
            )
            worker.leases.add(chunk.chunk_id)
            worker.state = "busy"
            metrics().counter("service.chunks_dispatched").add()
            log.debug(
                "chunk %s leased to worker %s (attempt %d, %d points%s)",
                chunk.chunk_id, worker_id, chunk.attempts, len(chunk.items),
                ", speculative" if speculative else "",
            )
            return LeaseResponse(
                chunk=ChunkLease(
                    chunk_id=chunk.chunk_id,
                    job_id=chunk.job_id,
                    attempt=chunk.attempts,
                    requests=chunk.items,
                    lease_ttl_s=self.config.lease_ttl_s,
                    speculative=speculative,
                )
            )

    def heartbeat(
        self, worker_id: str, chunk_ids: Sequence[str] = ()
    ) -> HeartbeatAck:
        """Record liveness, extend held leases, flag + drop stale ids.

        A heartbeat also recovers a worker the reaper marked ``lost``
        and sheds leases the pool no longer tracks, so the roster never
        shows a heartbeating worker as lost or busy-on-nothing.
        """
        now = time.monotonic()
        with self._cond:
            worker = self._require_worker(worker_id)
            self._touch_worker_locked(worker, now)
            stale = []
            for chunk_id in chunk_ids:
                chunk = self._chunks.get(chunk_id)
                lease = (
                    chunk.leases.get(worker_id)
                    if chunk is not None and chunk.state == "leased"
                    else None
                )
                if lease is not None:
                    lease.expires_at = now + self.config.lease_ttl_s
                else:
                    stale.append(chunk_id)
                    worker.leases.discard(chunk_id)
            if not worker.leases and worker.state == "busy":
                worker.state = "idle"
            return HeartbeatAck(ok=True, stale=tuple(stale))

    def report(self, worker_id: str, report: ChunkReport) -> bool:
        """Resolve a chunk from a worker's report; False for duplicates."""
        now = time.monotonic()
        accepted_outcomes: Optional[list[PointOutcome]] = None
        with self._cond:
            worker = self._require_worker(worker_id)
            self._touch_worker_locked(worker, now)
            worker.leases.discard(report.chunk_id)
            if not worker.leases and worker.state == "busy":
                worker.state = "idle"
            chunk = self._chunks.get(report.chunk_id)
            if chunk is None or chunk.state == "done":
                metrics().counter("service.duplicate_results").add()
                log.debug(
                    "worker %s reported stale chunk %s — dropped",
                    worker_id, report.chunk_id,
                )
                return False
            chunk.leases.pop(worker_id, None)
            if report.failed is not None:
                self._record_worker_failure_locked(worker)
                self._fail_chunk_locked(
                    chunk, now, failure=dict(report.failed)
                )
                return True
            try:
                accepted_outcomes = self._rebuild_outcomes(chunk, report)
            except ProtocolError as exc:
                self._record_worker_failure_locked(worker)
                self._fail_chunk_locked(
                    chunk,
                    now,
                    failure={
                        "error": str(exc),
                        "error_type": "ProtocolError",
                        "traceback": None,
                    },
                )
                return True
            worker.chunks_completed += 1
            worker.points_completed += len(accepted_outcomes)
            self._observe_throughput_locked(
                worker, len(accepted_outcomes), report.elapsed_s
            )
            self._resolve_locked(chunk, accepted_outcomes)
            metrics().counter("service.chunks_completed").add()
        absorb_telemetry(report.telemetry)
        return True

    # ------------------------------------------------------------------
    # Dispatcher API (called from the sweep service's job thread)
    # ------------------------------------------------------------------
    def run_distributed(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        *,
        fallback: Any,
        on_outcome: Optional[OutcomeFn] = None,
        job_id: str = "",
    ) -> list[PointOutcome]:
        """Fan ``items`` over the pool; block until every point resolves.

        Outcomes are delivered to ``on_outcome`` in resolution order
        and returned in input order — the standard
        :class:`~repro.engine.executor.ExecutionBackend` contract.
        Work is chunked lazily at lease time (per-worker adaptive
        sizing); chunks no live worker picks up run on ``fallback`` in
        this thread, so the call always terminates.
        """
        if not items:
            return []
        run = _RunState(fn, items, job_id)
        log.debug(
            "distributing %d points (adaptive chunking)", len(run.items)
        )
        with self._cond:
            self._runs.append(run)
            self._cond.notify_all()
        try:
            self._drive(run, fallback, on_outcome)
        finally:
            with self._cond:
                self._runs.remove(run)
                for chunk in run.chunks:
                    self._chunks.pop(chunk.chunk_id, None)
                    for holder in list(chunk.leases):
                        holder_worker = self._workers.get(holder)
                        if holder_worker is not None:
                            holder_worker.leases.discard(chunk.chunk_id)
                            if (
                                not holder_worker.leases
                                and holder_worker.state == "busy"
                            ):
                                holder_worker.state = "idle"
                    chunk.leases.clear()

        assert all(outcome is not None for outcome in run.outcomes)
        return run.outcomes  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Introspection (health endpoint)
    # ------------------------------------------------------------------
    def live_worker_count(self) -> int:
        """Workers currently eligible for leases."""
        now = time.monotonic()
        with self._lock:
            return sum(
                1
                for w in self._workers.values()
                if w.live(now, self.config.lost_after_s)
            )

    def roster(self) -> dict:
        """The ``/health`` ``workers`` section."""
        now = time.monotonic()
        with self._lock:
            entries = [
                w.roster_entry(now, self.config.lost_after_s)
                for w in sorted(self._workers.values(), key=lambda w: w.registered_at)
            ]
        by_state: dict[str, int] = {
            "idle": 0, "busy": 0, "quarantined": 0, "lost": 0
        }
        for entry in entries:
            by_state[entry["state"]] = by_state.get(entry["state"], 0) + 1
        return {
            "total": len(entries),
            "idle": by_state["idle"],
            "busy": by_state["busy"],
            "quarantined": by_state["quarantined"],
            "lost": by_state["lost"],
            "roster": entries,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _drive(
        self,
        run: _RunState,
        fallback: Any,
        on_outcome: Optional[OutcomeFn],
    ) -> None:
        while True:
            local_chunk: Optional[_Chunk] = None
            deliver: list[PointOutcome] = []
            with self._cond:
                now = time.monotonic()
                self._reap_locked(now)
                while run.deliver:
                    deliver.append(run.deliver.popleft())
                if not deliver:
                    if run.done:
                        return
                    if not self._live_workers_locked(now):
                        local_chunk = self._local_chunk_locked(run, now)
                    if local_chunk is None:
                        self._cond.wait(timeout=self.config.reap_tick_s)
            if on_outcome is not None:
                for outcome in deliver:
                    on_outcome(outcome)
            if local_chunk is not None:
                self._run_local(run, local_chunk, fallback)

    def _local_chunk_locked(
        self, run: _RunState, now: float
    ) -> Optional[_Chunk]:
        """Claim one chunk for the local fallback (pool empty/dead).

        Requeued chunks are taken backoff-and-all — with no live worker
        there is nobody to wait for — then fresh work is carved with a
        neutral (unweighted) size.
        """
        if run.pending:
            chunk = run.pending.popleft()
        elif run.next_index < len(run.items):
            chunk = self._carve_locked(run, None, now)
        else:
            return None
        chunk.state = "leased"
        chunk.attempts += 1
        chunk.leases[_LOCAL_HOLDER] = _Lease(_LOCAL_HOLDER, now, math.inf)
        return chunk

    def _run_local(self, run: _RunState, chunk: _Chunk, fallback: Any) -> None:
        """Evaluate a chunk on the server's own backend (pool empty/dead)."""
        log.debug(
            "chunk %s: no live workers, evaluating on local %s",
            chunk.chunk_id, fallback.describe(),
        )
        # The captured telemetry delta is discarded, not absorbed: the
        # fallback runs in *this* process, so its counters already
        # landed in the global registry (absorbing would double-count —
        # unlike worker reports, which arrive from other processes).
        outcomes, _telemetry = run_chunk(run.fn, chunk.pairs(), backend=fallback)
        metrics().counter("service.chunks_local_fallback").add()
        with self._cond:
            chunk.leases.pop(_LOCAL_HOLDER, None)
            if chunk.state != "done":
                self._resolve_locked(chunk, outcomes)

    def _next_chunk_locked(
        self, worker: WorkerInfo, now: float
    ) -> Optional[tuple[_Chunk, bool]]:
        """Pick the chunk for a lease request, in preference order:
        requeued work whose backoff elapsed, freshly carved work, a
        stolen straggler tail, a speculative duplicate."""
        for run in self._runs:
            for _ in range(len(run.pending)):
                chunk = run.pending.popleft()
                if chunk.not_before <= now:
                    return chunk, False
                run.pending.append(chunk)
        for run in self._runs:
            if run.next_index < len(run.items):
                return self._carve_locked(run, worker, now), False
        if self.config.steal:
            victim = self._steal_victim_locked(worker, now)
            if victim is not None:
                return self._split_locked(victim), False
        if self.config.speculate:
            target = self._speculation_target_locked(worker, now)
            if target is not None:
                metrics().counter("service.leases_speculated").add()
                log.debug(
                    "chunk %s: speculative duplicate lease for worker %s",
                    target.chunk_id, worker.worker_id,
                )
                return target, True
        return None

    def _carve_locked(
        self, run: _RunState, worker: Optional[WorkerInfo], now: float
    ) -> _Chunk:
        """Cut the next chunk off the run's carve cursor, sized for
        ``worker`` right now (``None`` = the local fallback)."""
        remaining = len(run.items) - run.next_index
        size = self._lease_size_locked(worker, remaining, now)
        indices = range(run.next_index, run.next_index + size)
        items = run.items[run.next_index : run.next_index + size]
        run.next_index += size
        chunk = _Chunk(
            chunk_id=_chunk_id_for(run.next_seq, items),
            job_id=run.job_id,
            indices=indices,
            items=items,
            run=run,
        )
        run.next_seq += 1
        run.chunks.append(chunk)
        self._chunks[chunk.chunk_id] = chunk
        return chunk

    def _lease_size_locked(
        self, worker: Optional[WorkerInfo], remaining: int, now: float
    ) -> int:
        """Points for the next lease: live-count base × throughput share."""
        if self.config.chunk_size is not None:
            return min(remaining, max(1, self.config.chunk_size))
        live = [
            w
            for w in self._workers.values()
            if w.live(now, self.config.lost_after_s)
        ]
        denom = max(1, len(live)) * max(1, self.config.chunks_per_worker)
        base = remaining / denom
        share = 1.0
        if worker is not None and live:
            weights = [self._worker_weight(w) for w in live]
            mean = sum(weights) / len(weights)
            if mean > 0:
                share = self._worker_weight(worker) / mean
        return max(1, min(remaining, math.ceil(base * min(share, 8.0))))

    def _worker_weight(self, worker: WorkerInfo) -> float:
        """Relative chunk-size weight: measured EWMA, else capability prior."""
        if worker.throughput_ewma is not None and worker.throughput_ewma > 0:
            return worker.throughput_ewma
        if worker.backend.startswith("vector"):
            return self.config.vector_weight
        return 1.0

    def _observe_throughput_locked(
        self, worker: WorkerInfo, points: int, elapsed_s: Optional[float]
    ) -> None:
        if elapsed_s is None or elapsed_s <= 0.0 or points <= 0:
            return
        observed = points / elapsed_s
        alpha = self.config.throughput_alpha
        if worker.throughput_ewma is None:
            worker.throughput_ewma = observed
        else:
            worker.throughput_ewma = (
                alpha * observed + (1.0 - alpha) * worker.throughput_ewma
            )

    def _steal_victim_locked(
        self, worker: WorkerInfo, now: float
    ) -> Optional[_Chunk]:
        """The leased chunk whose tail ``worker`` should steal, if any."""
        best: Optional[_Chunk] = None
        min_points = max(2, self.config.steal_min_points)
        for run in self._runs:
            for chunk in run.chunks:
                if chunk.state != "leased" or chunk.stolen:
                    continue
                if len(chunk.items) < min_points:
                    continue
                if worker.worker_id in chunk.leases:
                    continue
                if chunk.oldest_lease_age(now) < self.config.tail_min_lease_age_s:
                    continue
                keep = len(chunk.items) - len(chunk.items) // 2
                if all(
                    run.outcomes[i] is not None for i in chunk.indices[keep:]
                ):
                    continue
                if best is None or len(chunk.items) > len(best.items):
                    best = chunk
        return best

    def _split_locked(self, victim: _Chunk) -> _Chunk:
        """Steal-split: duplicate the tail half of ``victim`` as a new
        chunk (the straggler keeps evaluating the whole thing; the
        first report carrying each point wins)."""
        run = victim.run
        keep = len(victim.items) - len(victim.items) // 2
        tail_items = victim.items[keep:]
        child = _Chunk(
            chunk_id=_chunk_id_for(run.next_seq, tail_items),
            job_id=victim.job_id,
            indices=victim.indices[keep:],
            items=tail_items,
            run=run,
        )
        run.next_seq += 1
        victim.stolen = True
        run.chunks.append(child)
        self._chunks[child.chunk_id] = child
        metrics().counter("service.chunks_stolen").add()
        log.debug(
            "chunk %s: stole %d-point tail as chunk %s",
            victim.chunk_id, len(tail_items), child.chunk_id,
        )
        return child

    def _speculation_target_locked(
        self, worker: WorkerInfo, now: float
    ) -> Optional[_Chunk]:
        """The in-flight chunk ``worker`` should duplicate, if any —
        the longest-held lease with unresolved points and spare lease
        capacity (the job-tail straggler)."""
        best: Optional[_Chunk] = None
        best_age = -1.0
        for run in self._runs:
            for chunk in run.chunks:
                if chunk.state != "leased":
                    continue
                if worker.worker_id in chunk.leases:
                    continue
                if len(chunk.leases) >= max(1, self.config.max_leases_per_chunk):
                    continue
                age = chunk.oldest_lease_age(now)
                if age < self.config.tail_min_lease_age_s:
                    continue
                if all(run.outcomes[i] is not None for i in chunk.indices):
                    continue
                if age > best_age:
                    best, best_age = chunk, age
        return best

    def _touch_worker_locked(self, worker: WorkerInfo, now: float) -> None:
        """Record contact; a ``lost`` worker that reaches us is back."""
        worker.last_seen = now
        if worker.state == "lost":
            worker.state = "busy" if worker.leases else "idle"

    def _retry_hint_locked(self, now: float) -> float:
        """How long an empty-handed worker should sleep before repolling.

        When pending chunks exist but are all backoff-blocked, the hint
        is the actual wait until the earliest becomes eligible — not
        the generic poll interval, which would make workers sleep past
        (or hammer before) chunk eligibility.
        """
        earliest: Optional[float] = None
        for run in self._runs:
            for chunk in run.pending:
                if earliest is None or chunk.not_before < earliest:
                    earliest = chunk.not_before
        if earliest is None:
            return self.config.poll_interval_s
        return max(0.01, earliest - now)

    def _require_worker(self, worker_id: str) -> WorkerInfo:
        worker = self._workers.get(worker_id)
        if worker is None:
            raise ProtocolError(
                f"unknown worker id {worker_id!r} (re-register)", status=404
            )
        return worker

    def _live_workers_locked(self, now: float) -> bool:
        return any(
            w.live(now, self.config.lost_after_s)
            for w in self._workers.values()
        )

    def _reap_locked(self, now: float) -> None:
        for run in self._runs:
            for chunk in run.chunks:
                if chunk.state != "leased":
                    continue
                expired = [
                    (holder, lease)
                    for holder, lease in chunk.leases.items()
                    if lease.expires_at < now
                ]
                for holder, _lease in expired:
                    chunk.leases.pop(holder, None)
                    worker = self._workers.get(holder)
                    name = worker.name if worker is not None else "<gone>"
                    metrics().counter("service.leases_expired").add()
                    log.warning(
                        "lease on chunk %s expired (worker %s, attempt %d)",
                        chunk.chunk_id, name, chunk.attempts,
                    )
                    if worker is not None:
                        worker.leases.discard(chunk.chunk_id)
                        if not worker.leases and worker.state == "busy":
                            worker.state = "idle"
                        self._record_worker_failure_locked(worker)
                if expired and not chunk.leases:
                    holder_names = ", ".join(
                        (
                            self._workers[h].name
                            if h in self._workers
                            else "<gone>"
                        )
                        for h, _ in expired
                    )
                    self._fail_chunk_locked(
                        chunk,
                        now,
                        failure={
                            "error": (
                                f"lease expired after "
                                f"{self.config.lease_ttl_s:g}s on worker "
                                f"{holder_names} (attempt {chunk.attempts})"
                            ),
                            "error_type": "LeaseExpired",
                            "traceback": None,
                        },
                    )
        # Mark silent workers lost so the roster tells the truth even
        # before their leases expire; any later contact (heartbeat /
        # lease / report) recovers them via _touch_worker_locked.
        for worker in self._workers.values():
            if (
                worker.state in ("idle", "busy")
                and now - worker.last_seen > self.config.lost_after_s
            ):
                worker.state = "lost"

    def _record_worker_failure_locked(self, worker: WorkerInfo) -> None:
        worker.chunks_failed += 1
        if (
            worker.state != "quarantined"
            and worker.chunks_failed >= self.config.quarantine_after
        ):
            worker.state = "quarantined"
            worker.leases.clear()
            metrics().counter("service.workers_quarantined").add()
            log.warning(
                "worker %s quarantined after %d chunk failures",
                worker.worker_id, worker.chunks_failed,
            )

    def _fail_chunk_locked(
        self,
        chunk: _Chunk,
        now: float,
        *,
        failure: dict,
    ) -> None:
        """Record a failed attempt; requeue, poison, or — when another
        lease is still in flight (a speculative copy) — let it ride."""
        chunk.failures.append(failure)
        metrics().counter("service.chunks_failed").add()
        if chunk.leases:
            # A surviving (speculative or original) holder is still
            # evaluating this chunk — no requeue needed yet.
            return
        self._requeue_or_poison_locked(chunk, now)

    def _requeue_or_poison_locked(
        self,
        chunk: _Chunk,
        now: float,
        *,
        failure: Optional[dict] = None,
    ) -> None:
        if failure is not None:
            chunk.failures.append(failure)
            metrics().counter("service.chunks_failed").add()
        if len(chunk.failures) >= self.config.max_attempts:
            last = chunk.failures[-1]
            outcomes = [
                PointOutcome(
                    index=index,
                    error=(
                        f"poison chunk {chunk.chunk_id}: failed "
                        f"{len(chunk.failures)} attempts; last: "
                        f"{last.get('error')}"
                    ),
                    error_type=last.get("error_type") or "PoisonChunk",
                    traceback=last.get("traceback"),
                )
                for index in chunk.indices
            ]
            metrics().counter("service.chunks_poisoned").add()
            log.error(
                "chunk %s poisoned after %d attempts: %s",
                chunk.chunk_id, len(chunk.failures), last.get("error"),
            )
            self._resolve_locked(chunk, outcomes)
            return
        backoff = min(
            self.config.backoff_cap_s,
            self.config.backoff_base_s * (2 ** (len(chunk.failures) - 1)),
        )
        jitter = random.Random(f"{chunk.chunk_id}:{len(chunk.failures)}")
        chunk.not_before = now + backoff * (0.75 + 0.5 * jitter.random())
        chunk.state = "pending"
        chunk.run.pending.append(chunk)
        metrics().counter("service.chunks_reassigned").add()
        self._cond.notify_all()

    def _resolve_locked(
        self, chunk: _Chunk, outcomes: list[PointOutcome]
    ) -> None:
        """First report per point wins; stolen/speculative losers skip."""
        run = chunk.run
        for outcome in outcomes:
            if run.outcomes[outcome.index] is None:
                run.outcomes[outcome.index] = outcome
                run.resolved += 1
                run.deliver.append(outcome)
        chunk.state = "done"
        for holder in list(chunk.leases):
            holder_worker = self._workers.get(holder)
            if holder_worker is not None:
                holder_worker.leases.discard(chunk.chunk_id)
                if not holder_worker.leases and holder_worker.state == "busy":
                    holder_worker.state = "idle"
        chunk.leases.clear()
        self._cond.notify_all()

    @staticmethod
    def _rebuild_outcomes(
        chunk: _Chunk, report: ChunkReport
    ) -> list[PointOutcome]:
        """Turn wire records back into outcomes with the chunk's indices."""
        if len(report.outcomes) != len(chunk.items):
            raise ProtocolError(
                f"chunk {chunk.chunk_id} report has {len(report.outcomes)} "
                f"outcomes, expected {len(chunk.items)}"
            )
        outcomes: list[Optional[PointOutcome]] = [None] * len(chunk.items)
        for record in report.outcomes:
            local = record["index"]
            if not 0 <= local < len(chunk.items) or outcomes[local] is not None:
                raise ProtocolError(
                    f"chunk {chunk.chunk_id} report has bad/duplicate "
                    f"local index {local}"
                )
            global_index = chunk.indices[local]
            if "result" in record:
                try:
                    value = result_from_dict(record["result"])
                except Exception as exc:  # noqa: BLE001 — wire payload is untrusted
                    raise ProtocolError(
                        f"chunk {chunk.chunk_id} outcome {local} does not "
                        f"deserialize: {exc}"
                    ) from exc
                outcomes[local] = PointOutcome(index=global_index, value=value)
            else:
                outcomes[local] = PointOutcome(
                    index=global_index,
                    error=record.get("error", "remote point failed"),
                    error_type=record.get("error_type", "Exception"),
                    traceback=record.get("traceback"),
                )
        return outcomes  # type: ignore[return-value]


class DistributedBackend:
    """Execution backend fronting the pool, with a guaranteed fallback.

    Wraps the sweep service's local backend: batches the wire format
    can carry go through :meth:`WorkerPool.run_distributed` (which
    itself falls back chunk-by-chunk when the pool is empty); anything
    else runs directly on the local backend.  ``describe()`` reports
    the plain fallback label while no worker is live, so single-host
    deployments keep their exact PR 7 reports/manifests.
    """

    def __init__(self, pool: WorkerPool, fallback: Any) -> None:
        self.pool = pool
        self.fallback = fallback
        #: Job id stamped onto chunks (set by the sweep service before
        #: each job runs; purely informational for workers/logs).
        self.job_id = ""

    def run(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        *,
        on_outcome: Optional[OutcomeFn] = None,
    ) -> list[PointOutcome]:
        """Fan a batch over the pool, or run locally when it can't ship."""
        if not items:
            return []
        if not wire_dispatchable(fn, items):
            log.debug(
                "distributed backend: batch not wire-serializable, "
                "running on local %s", self.fallback.describe(),
            )
            return self.fallback.run(fn, items, on_outcome=on_outcome)
        return self.pool.run_distributed(
            fn,
            items,
            fallback=self.fallback,
            on_outcome=on_outcome,
            job_id=self.job_id,
        )

    def describe(self) -> str:
        """Pool-aware backend label (plain fallback label when empty)."""
        live = self.pool.live_worker_count()
        if live == 0:
            return self.fallback.describe()
        return f"pool(workers={live})+{self.fallback.describe()}"
