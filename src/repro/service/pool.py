"""Fault-tolerant worker pool: leases, heartbeats, reassignment, fallback.

This is the server half of the multi-host fan-out.  The
:class:`~repro.service.server.SweepService` wraps its local execution
backend in a :class:`DistributedBackend`; when a batch's cache misses
reach the evaluate phase, the backend splits them into content-addressed
chunks and parks them on the :class:`WorkerPool` queue.  Registered
workers (see :mod:`repro.service.worker`) pull chunks under
**time-bounded leases**, heartbeat while evaluating, and report outcomes
back; the HTTP routes are thin wrappers over the pool's
``register`` / ``lease`` / ``heartbeat`` / ``report`` methods, all of
which are quick state transitions under one lock — safe to call from
the server's event-loop thread while ``run_distributed`` blocks on the
service worker thread.

Fault tolerance is the design constraint, in the spirit of the source
paper's premise that distributed detection must survive failed and
compromised nodes:

* **Worker death / network partition** — a missed heartbeat lets the
  lease expire; the reaper requeues the chunk for the next live worker
  (``service.leases_expired`` / ``service.chunks_reassigned``).
* **Capped retries with backoff** — each requeue waits
  ``backoff_base_s · 2^(attempt−1)`` (capped, deterministically
  jittered by chunk id) so a flapping worker cannot hot-loop a chunk.
* **Poison chunks** — a chunk that fails ``max_attempts`` times stops
  retrying and resolves to per-point error outcomes carrying the last
  worker's traceback, surfacing as
  :class:`~repro.engine.batch.PointError` exactly like a local failure
  (``service.chunks_poisoned``).
* **Worker quarantine** — a worker that keeps failing chunks is
  quarantined and no longer leased to (``service.workers_quarantined``).
* **Empty / dead pool** — with no live worker the pool evaluates
  chunks on the server's local fallback backend
  (``service.chunks_local_fallback``), so ``--jobs remote`` is never
  worse than the single-host service tier.

Results are **exactly-once**: a chunk is resolved the first time a
complete report lands; late duplicates from slow workers are counted
(``service.duplicate_results``) and dropped.  Byte-identity with
``--jobs serial`` holds because workers evaluate through the same
:func:`repro.engine.executor.run_chunk` protocol and results round-trip
through the same ``to_dict``/``result_from_dict`` records the disk
cache uses.
"""

from __future__ import annotations

import hashlib
import logging
import math
import random
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from ..engine.cache import result_from_dict
from ..engine.executor import OutcomeFn, PointOutcome, run_chunk
from ..obs import absorb_telemetry, metrics
from .protocol import (
    ChunkLease,
    ChunkReport,
    HeartbeatAck,
    LeaseResponse,
    ProtocolError,
    WorkerRegistered,
    WorkerRegistration,
    wire_dispatchable,
)

__all__ = [
    "DistributedBackend",
    "PoolConfig",
    "WorkerInfo",
    "WorkerPool",
]

log = logging.getLogger(__name__)


@dataclass(frozen=True)
class PoolConfig:
    """Tuning knobs for the worker pool (see docs/service.md for guidance).

    The defaults suit chunk evaluations of a few seconds on a LAN; the
    in-process test layer shrinks everything by ~10× to make fault
    windows cheap to hit.
    """

    #: Seconds a worker may hold a chunk without heartbeating before
    #: the lease expires and the chunk is reassigned.
    lease_ttl_s: float = 5.0
    #: Cadence the server asks workers to heartbeat at.  Each heartbeat
    #: re-arms the worker's held leases, so ``lease_ttl_s`` only needs
    #: to cover the heartbeat gap, not the whole chunk evaluation.
    heartbeat_interval_s: float = 1.0
    #: Suggested sleep between empty lease polls (returned to workers
    #: as ``retry_after_s``).
    poll_interval_s: float = 0.5
    #: Attempts (first try included) before a chunk is declared poison.
    max_attempts: int = 3
    #: Chunk failures before a worker is quarantined.
    quarantine_after: int = 3
    #: Points per chunk; ``None`` auto-sizes to ~4 chunks per live
    #: worker (load balancing vs. per-chunk HTTP overhead).
    chunk_size: Optional[int] = None
    #: How often the dispatching thread wakes to reap expired leases.
    reap_tick_s: float = 0.25
    #: Requeue backoff: ``backoff_base_s · 2^(attempt-1)`` capped at
    #: ``backoff_cap_s``, jittered ±25% (deterministic per chunk+attempt).
    backoff_base_s: float = 0.1
    backoff_cap_s: float = 2.0

    @property
    def lost_after_s(self) -> float:
        """Heartbeat silence after which a worker no longer counts as live."""
        return max(self.lease_ttl_s, 3.0 * self.heartbeat_interval_s)


@dataclass
class WorkerInfo:
    """Server-side record of one registered worker."""

    worker_id: str
    name: str
    pid: int
    host: str
    backend: str
    registered_at: float
    last_seen: float
    state: str = "idle"  # idle | busy | quarantined
    leases: set = field(default_factory=set)
    chunks_completed: int = 0
    chunks_failed: int = 0

    def live(self, now: float, lost_after_s: float) -> bool:
        """True when this worker may be leased new work."""
        return (
            self.state != "quarantined"
            and now - self.last_seen <= lost_after_s
        )

    def roster_entry(self, now: float, lost_after_s: float) -> dict:
        """The ``/health`` roster record for this worker."""
        age = now - self.last_seen
        state = self.state
        if state != "quarantined" and age > lost_after_s:
            state = "lost"
        return {
            "id": self.worker_id,
            "name": self.name,
            "pid": self.pid,
            "host": self.host,
            "backend": self.backend,
            "state": state,
            "leases": sorted(self.leases),
            "last_heartbeat_age_s": round(age, 3),
            "chunks_completed": self.chunks_completed,
            "chunks_failed": self.chunks_failed,
        }


def _chunk_id_for(seq: int, items: Sequence[Any]) -> str:
    """Content-addressed chunk id — stable across lease reassignments."""
    digest = hashlib.sha256()
    digest.update(f"{seq}\n".encode("ascii"))
    for item in items:
        digest.update(item.fingerprint().encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()[:16]


class _Chunk:
    """One unit of leasable work: a slice of a batch's cache misses."""

    __slots__ = (
        "chunk_id",
        "job_id",
        "fn",
        "indices",
        "items",
        "run",
        "attempts",
        "state",  # pending | leased | done
        "worker_id",
        "expires_at",
        "not_before",
        "failures",
        "outcomes",
    )

    def __init__(self, chunk_id, job_id, fn, indices, items, run):
        self.chunk_id = chunk_id
        self.job_id = job_id
        self.fn = fn
        self.indices = tuple(indices)
        self.items = tuple(items)
        self.run = run
        self.attempts = 0
        self.state = "pending"
        self.worker_id: Optional[str] = None
        self.expires_at = math.inf
        self.not_before = 0.0
        self.failures: list[dict] = []
        self.outcomes: Optional[list[PointOutcome]] = None

    def pairs(self) -> list[tuple[int, Any]]:
        """The ``(global_index, item)`` pairs :func:`run_chunk` expects."""
        return list(zip(self.indices, self.items))


class _RunState:
    """Book-keeping for one ``run_distributed`` call."""

    __slots__ = ("chunks", "pending", "completed", "done_count")

    def __init__(self, chunks: "list[_Chunk]") -> None:
        self.chunks = chunks
        self.pending: deque[_Chunk] = deque(chunks)
        self.completed: deque[_Chunk] = deque()
        self.done_count = 0


class WorkerPool:
    """Lease queue + worker roster with reassignment and local fallback.

    All public methods are thread-safe.  The HTTP-facing ones
    (``register`` … ``report``) only flip state and notify the
    dispatcher; the blocking work happens in :meth:`run_distributed`,
    which the sweep service calls from its job thread.
    """

    def __init__(self, config: Optional[PoolConfig] = None) -> None:
        self.config = config if config is not None else PoolConfig()
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._workers: dict[str, WorkerInfo] = {}
        self._chunks: dict[str, _Chunk] = {}
        self._runs: list[_RunState] = []

    # ------------------------------------------------------------------
    # Worker-facing API (called from the HTTP routes)
    # ------------------------------------------------------------------
    def register(self, registration: WorkerRegistration) -> WorkerRegistered:
        """Add a worker to the roster and hand back its pool cadence."""
        worker_id = uuid.uuid4().hex[:12]
        now = time.monotonic()
        with self._cond:
            self._workers[worker_id] = WorkerInfo(
                worker_id=worker_id,
                name=registration.name,
                pid=registration.pid,
                host=registration.host,
                backend=registration.backend,
                registered_at=now,
                last_seen=now,
            )
            self._cond.notify_all()
        metrics().counter("service.workers_registered").add()
        log.info(
            "worker %s registered: %s (pid %d on %s)",
            worker_id, registration.name, registration.pid,
            registration.host or "?",
        )
        return WorkerRegistered(
            worker_id=worker_id,
            lease_ttl_s=self.config.lease_ttl_s,
            heartbeat_interval_s=self.config.heartbeat_interval_s,
            poll_interval_s=self.config.poll_interval_s,
        )

    def deregister(self, worker_id: str) -> None:
        """Remove a worker; its held leases requeue immediately."""
        now = time.monotonic()
        with self._cond:
            worker = self._require_worker(worker_id)
            for chunk_id in sorted(worker.leases):
                chunk = self._chunks.get(chunk_id)
                if chunk is not None and chunk.state == "leased":
                    self._requeue_or_poison_locked(
                        chunk,
                        now,
                        failure={
                            "error": f"worker {worker.name} deregistered mid-chunk",
                            "error_type": "WorkerGone",
                            "traceback": None,
                        },
                    )
            del self._workers[worker_id]
            self._cond.notify_all()
        log.info("worker %s deregistered", worker_id)

    def lease(self, worker_id: str) -> LeaseResponse:
        """Hand the first eligible pending chunk to ``worker_id``."""
        now = time.monotonic()
        with self._cond:
            worker = self._require_worker(worker_id)
            worker.last_seen = now
            if worker.state == "quarantined":
                return LeaseResponse(retry_after_s=self.config.poll_interval_s)
            chunk = self._pop_pending_locked(now)
            if chunk is None:
                if worker.state != "quarantined" and not worker.leases:
                    worker.state = "idle"
                return LeaseResponse(retry_after_s=self.config.poll_interval_s)
            chunk.state = "leased"
            chunk.worker_id = worker_id
            chunk.attempts += 1
            chunk.expires_at = now + self.config.lease_ttl_s
            worker.leases.add(chunk.chunk_id)
            worker.state = "busy"
            metrics().counter("service.chunks_dispatched").add()
            log.debug(
                "chunk %s leased to worker %s (attempt %d, %d points)",
                chunk.chunk_id, worker_id, chunk.attempts, len(chunk.items),
            )
            return LeaseResponse(
                chunk=ChunkLease(
                    chunk_id=chunk.chunk_id,
                    job_id=chunk.job_id,
                    attempt=chunk.attempts,
                    requests=chunk.items,
                    lease_ttl_s=self.config.lease_ttl_s,
                )
            )

    def heartbeat(
        self, worker_id: str, chunk_ids: Sequence[str] = ()
    ) -> HeartbeatAck:
        """Record liveness, extend held leases, flag stale chunk ids."""
        now = time.monotonic()
        with self._cond:
            worker = self._require_worker(worker_id)
            worker.last_seen = now
            stale = []
            for chunk_id in chunk_ids:
                chunk = self._chunks.get(chunk_id)
                if (
                    chunk is not None
                    and chunk.state == "leased"
                    and chunk.worker_id == worker_id
                ):
                    chunk.expires_at = now + self.config.lease_ttl_s
                else:
                    stale.append(chunk_id)
            return HeartbeatAck(ok=True, stale=tuple(stale))

    def report(self, worker_id: str, report: ChunkReport) -> bool:
        """Resolve a chunk from a worker's report; False for duplicates."""
        now = time.monotonic()
        accepted_outcomes: Optional[list[PointOutcome]] = None
        with self._cond:
            worker = self._require_worker(worker_id)
            worker.last_seen = now
            worker.leases.discard(report.chunk_id)
            if not worker.leases and worker.state == "busy":
                worker.state = "idle"
            chunk = self._chunks.get(report.chunk_id)
            if chunk is None or chunk.state == "done":
                metrics().counter("service.duplicate_results").add()
                log.debug(
                    "worker %s reported stale chunk %s — dropped",
                    worker_id, report.chunk_id,
                )
                return False
            if report.failed is not None:
                self._record_worker_failure_locked(worker)
                self._requeue_or_poison_locked(
                    chunk, now, failure=dict(report.failed)
                )
                return True
            try:
                accepted_outcomes = self._rebuild_outcomes(chunk, report)
            except ProtocolError as exc:
                self._record_worker_failure_locked(worker)
                self._requeue_or_poison_locked(
                    chunk,
                    now,
                    failure={
                        "error": str(exc),
                        "error_type": "ProtocolError",
                        "traceback": None,
                    },
                )
                return True
            worker.chunks_completed += 1
            self._resolve_locked(chunk, accepted_outcomes)
            metrics().counter("service.chunks_completed").add()
        absorb_telemetry(report.telemetry)
        return True

    # ------------------------------------------------------------------
    # Dispatcher API (called from the sweep service's job thread)
    # ------------------------------------------------------------------
    def run_distributed(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        *,
        fallback: Any,
        on_outcome: Optional[OutcomeFn] = None,
        job_id: str = "",
    ) -> list[PointOutcome]:
        """Fan ``items`` over the pool; block until every chunk resolves.

        Outcomes are delivered to ``on_outcome`` in chunk-completion
        order and returned in input order — the standard
        :class:`~repro.engine.executor.ExecutionBackend` contract.
        Chunks that no live worker picks up run on ``fallback`` in this
        thread, so the call always terminates.
        """
        if not items:
            return []
        chunk_size = self._effective_chunk_size(len(items))
        chunks: list[_Chunk] = []
        run = _RunState([])
        for seq, start in enumerate(range(0, len(items), chunk_size)):
            indices = range(start, min(start + chunk_size, len(items)))
            chunk_items = [items[i] for i in indices]
            chunks.append(
                _Chunk(
                    chunk_id=_chunk_id_for(seq, chunk_items),
                    job_id=job_id,
                    fn=fn,
                    indices=indices,
                    items=chunk_items,
                    run=run,
                )
            )
        run.chunks = chunks
        run.pending = deque(chunks)
        log.debug(
            "distributing %d points as %d chunks (chunk_size=%d)",
            len(items), len(chunks), chunk_size,
        )

        with self._cond:
            self._runs.append(run)
            for chunk in chunks:
                self._chunks[chunk.chunk_id] = chunk
            self._cond.notify_all()
        try:
            self._drive(run, fallback, on_outcome)
        finally:
            with self._cond:
                self._runs.remove(run)
                for chunk in chunks:
                    self._chunks.pop(chunk.chunk_id, None)

        outcomes: list[Optional[PointOutcome]] = [None] * len(items)
        for chunk in chunks:
            assert chunk.outcomes is not None
            for outcome in chunk.outcomes:
                outcomes[outcome.index] = outcome
        return outcomes  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Introspection (health endpoint)
    # ------------------------------------------------------------------
    def live_worker_count(self) -> int:
        """Workers currently eligible for leases."""
        now = time.monotonic()
        with self._lock:
            return sum(
                1
                for w in self._workers.values()
                if w.live(now, self.config.lost_after_s)
            )

    def roster(self) -> dict:
        """The ``/health`` ``workers`` section."""
        now = time.monotonic()
        with self._lock:
            entries = [
                w.roster_entry(now, self.config.lost_after_s)
                for w in sorted(self._workers.values(), key=lambda w: w.registered_at)
            ]
        by_state: dict[str, int] = {
            "idle": 0, "busy": 0, "quarantined": 0, "lost": 0
        }
        for entry in entries:
            by_state[entry["state"]] = by_state.get(entry["state"], 0) + 1
        return {
            "total": len(entries),
            "idle": by_state["idle"],
            "busy": by_state["busy"],
            "quarantined": by_state["quarantined"],
            "lost": by_state["lost"],
            "roster": entries,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _drive(
        self,
        run: _RunState,
        fallback: Any,
        on_outcome: Optional[OutcomeFn],
    ) -> None:
        while True:
            local_chunk: Optional[_Chunk] = None
            deliver: list[_Chunk] = []
            with self._cond:
                now = time.monotonic()
                self._reap_locked(now)
                while run.completed:
                    deliver.append(run.completed.popleft())
                if not deliver:
                    if run.done_count == len(run.chunks):
                        return
                    if run.pending and not self._live_workers_locked(now):
                        local_chunk = run.pending.popleft()
                        local_chunk.state = "leased"
                        local_chunk.worker_id = None
                        local_chunk.attempts += 1
                        local_chunk.expires_at = math.inf
                    else:
                        self._cond.wait(timeout=self.config.reap_tick_s)
            for chunk in deliver:
                if on_outcome is not None:
                    assert chunk.outcomes is not None
                    for outcome in chunk.outcomes:
                        on_outcome(outcome)
            if local_chunk is not None:
                self._run_local(local_chunk, fallback)

    def _run_local(self, chunk: _Chunk, fallback: Any) -> None:
        """Evaluate a chunk on the server's own backend (pool empty/dead)."""
        log.debug(
            "chunk %s: no live workers, evaluating on local %s",
            chunk.chunk_id, fallback.describe(),
        )
        # The captured telemetry delta is discarded, not absorbed: the
        # fallback runs in *this* process, so its counters already
        # landed in the global registry (absorbing would double-count —
        # unlike worker reports, which arrive from other processes).
        outcomes, _telemetry = run_chunk(chunk.fn, chunk.pairs(), backend=fallback)
        metrics().counter("service.chunks_local_fallback").add()
        with self._cond:
            if chunk.state != "done":
                self._resolve_locked(chunk, outcomes)

    def _effective_chunk_size(self, total: int) -> int:
        if self.config.chunk_size is not None:
            return max(1, self.config.chunk_size)
        live = max(1, self.live_worker_count())
        return max(1, math.ceil(total / (4 * live)))

    def _require_worker(self, worker_id: str) -> WorkerInfo:
        worker = self._workers.get(worker_id)
        if worker is None:
            raise ProtocolError(
                f"unknown worker id {worker_id!r} (re-register)", status=404
            )
        return worker

    def _live_workers_locked(self, now: float) -> bool:
        return any(
            w.live(now, self.config.lost_after_s)
            for w in self._workers.values()
        )

    def _pop_pending_locked(self, now: float) -> Optional[_Chunk]:
        for run in self._runs:
            for _ in range(len(run.pending)):
                chunk = run.pending.popleft()
                if chunk.not_before <= now:
                    return chunk
                run.pending.append(chunk)
        return None

    def _reap_locked(self, now: float) -> None:
        for run in self._runs:
            for chunk in run.chunks:
                if chunk.state == "leased" and chunk.expires_at < now:
                    worker = self._workers.get(chunk.worker_id or "")
                    holder = worker.name if worker is not None else "<gone>"
                    metrics().counter("service.leases_expired").add()
                    log.warning(
                        "lease on chunk %s expired (worker %s, attempt %d)",
                        chunk.chunk_id, holder, chunk.attempts,
                    )
                    if worker is not None:
                        worker.leases.discard(chunk.chunk_id)
                        if not worker.leases and worker.state == "busy":
                            worker.state = "idle"
                        self._record_worker_failure_locked(worker)
                    self._requeue_or_poison_locked(
                        chunk,
                        now,
                        failure={
                            "error": (
                                f"lease expired after {self.config.lease_ttl_s:g}s "
                                f"on worker {holder} (attempt {chunk.attempts})"
                            ),
                            "error_type": "LeaseExpired",
                            "traceback": None,
                        },
                    )

    def _record_worker_failure_locked(self, worker: WorkerInfo) -> None:
        worker.chunks_failed += 1
        if (
            worker.state != "quarantined"
            and worker.chunks_failed >= self.config.quarantine_after
        ):
            worker.state = "quarantined"
            worker.leases.clear()
            metrics().counter("service.workers_quarantined").add()
            log.warning(
                "worker %s quarantined after %d chunk failures",
                worker.worker_id, worker.chunks_failed,
            )

    def _requeue_or_poison_locked(
        self,
        chunk: _Chunk,
        now: float,
        *,
        failure: dict,
    ) -> None:
        chunk.failures.append(failure)
        chunk.worker_id = None
        chunk.expires_at = math.inf
        metrics().counter("service.chunks_failed").add()
        if chunk.attempts >= self.config.max_attempts:
            last = chunk.failures[-1]
            outcomes = [
                PointOutcome(
                    index=index,
                    error=(
                        f"poison chunk {chunk.chunk_id}: failed "
                        f"{chunk.attempts} attempts; last: {last.get('error')}"
                    ),
                    error_type=last.get("error_type") or "PoisonChunk",
                    traceback=last.get("traceback"),
                )
                for index in chunk.indices
            ]
            metrics().counter("service.chunks_poisoned").add()
            log.error(
                "chunk %s poisoned after %d attempts: %s",
                chunk.chunk_id, chunk.attempts, last.get("error"),
            )
            self._resolve_locked(chunk, outcomes)
            return
        backoff = min(
            self.config.backoff_cap_s,
            self.config.backoff_base_s * (2 ** (chunk.attempts - 1)),
        )
        jitter = random.Random(f"{chunk.chunk_id}:{chunk.attempts}")
        chunk.not_before = now + backoff * (0.75 + 0.5 * jitter.random())
        chunk.state = "pending"
        chunk.run.pending.append(chunk)
        metrics().counter("service.chunks_reassigned").add()
        self._cond.notify_all()

    def _resolve_locked(
        self, chunk: _Chunk, outcomes: list[PointOutcome]
    ) -> None:
        chunk.outcomes = outcomes
        chunk.state = "done"
        chunk.run.completed.append(chunk)
        chunk.run.done_count += 1
        self._cond.notify_all()

    @staticmethod
    def _rebuild_outcomes(
        chunk: _Chunk, report: ChunkReport
    ) -> list[PointOutcome]:
        """Turn wire records back into outcomes with the chunk's indices."""
        if len(report.outcomes) != len(chunk.items):
            raise ProtocolError(
                f"chunk {chunk.chunk_id} report has {len(report.outcomes)} "
                f"outcomes, expected {len(chunk.items)}"
            )
        outcomes: list[Optional[PointOutcome]] = [None] * len(chunk.items)
        for record in report.outcomes:
            local = record["index"]
            if not 0 <= local < len(chunk.items) or outcomes[local] is not None:
                raise ProtocolError(
                    f"chunk {chunk.chunk_id} report has bad/duplicate "
                    f"local index {local}"
                )
            global_index = chunk.indices[local]
            if "result" in record:
                try:
                    value = result_from_dict(record["result"])
                except Exception as exc:  # noqa: BLE001 — wire payload is untrusted
                    raise ProtocolError(
                        f"chunk {chunk.chunk_id} outcome {local} does not "
                        f"deserialize: {exc}"
                    ) from exc
                outcomes[local] = PointOutcome(index=global_index, value=value)
            else:
                outcomes[local] = PointOutcome(
                    index=global_index,
                    error=record.get("error", "remote point failed"),
                    error_type=record.get("error_type", "Exception"),
                    traceback=record.get("traceback"),
                )
        return outcomes  # type: ignore[return-value]


class DistributedBackend:
    """Execution backend fronting the pool, with a guaranteed fallback.

    Wraps the sweep service's local backend: batches the wire format
    can carry go through :meth:`WorkerPool.run_distributed` (which
    itself falls back chunk-by-chunk when the pool is empty); anything
    else runs directly on the local backend.  ``describe()`` reports
    the plain fallback label while no worker is live, so single-host
    deployments keep their exact PR 7 reports/manifests.
    """

    def __init__(self, pool: WorkerPool, fallback: Any) -> None:
        self.pool = pool
        self.fallback = fallback
        #: Job id stamped onto chunks (set by the sweep service before
        #: each job runs; purely informational for workers/logs).
        self.job_id = ""

    def run(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        *,
        on_outcome: Optional[OutcomeFn] = None,
    ) -> list[PointOutcome]:
        """Fan a batch over the pool, or run locally when it can't ship."""
        if not items:
            return []
        if not wire_dispatchable(fn, items):
            log.debug(
                "distributed backend: batch not wire-serializable, "
                "running on local %s", self.fallback.describe(),
            )
            return self.fallback.run(fn, items, on_outcome=on_outcome)
        return self.pool.run_distributed(
            fn,
            items,
            fallback=self.fallback,
            on_outcome=on_outcome,
            job_id=self.job_id,
        )

    def describe(self) -> str:
        """Pool-aware backend label (plain fallback label when empty)."""
        live = self.pool.live_worker_count()
        if live == 0:
            return self.fallback.describe()
        return f"pool(workers={live})+{self.fallback.describe()}"
