"""The sweep-service job server: an asyncio HTTP front end over one engine.

Two layers, deliberately separable:

:class:`SweepService`
    The HTTP-free core: a content-addressed job table plus a single
    worker thread draining a queue into one shared
    :class:`~repro.engine.batch.BatchRunner`.  Every campaign runs
    dedup → cache → evaluate → store against the *same*
    :class:`~repro.engine.cache.ResultCache`, so concurrent clients
    submitting overlapping grids share work automatically, and a
    resubmission of a finished campaign is 100% cache hits.  Jobs run
    one at a time on purpose — the evaluation backend underneath
    (vector / process pool) already owns the machine's parallelism, and
    serial job execution keeps each job's metrics delta clean.
:class:`ServiceServer`
    A minimal ``asyncio`` HTTP/1.1 front end (stdlib only, no web
    framework) routing five endpoints onto the service.  Use
    :meth:`ServiceServer.serve_forever` from the CLI and
    :meth:`ServiceServer.start_in_background` from tests — the latter
    boots the event loop on a daemon thread, binds (port ``0`` picks a
    free one) and returns the resolved base URL.

Routes (all JSON; see ``docs/service.md`` for the operator guide)::

    POST /api/v1/campaigns                    submit (idempotent by content)
    GET  /api/v1/jobs                         list jobs
    GET  /api/v1/jobs/<id>                    poll one job's progress
    GET  /api/v1/jobs/<id>/results            fetch outcomes (?offset=K)
    GET  /health                              liveness + metrics + worker roster
    POST /api/v1/workers                      register a pool worker
    POST /api/v1/workers/<id>/lease           pull a chunk under a lease
    POST /api/v1/workers/<id>/heartbeat       re-arm held leases
    POST /api/v1/workers/<id>/result          report a chunk's outcomes
    POST /api/v1/workers/<id>/deregister      leave the pool cleanly

The worker routes front the fault-tolerant
:class:`~repro.service.pool.WorkerPool`: every service wraps its local
backend in a :class:`~repro.service.pool.DistributedBackend`, so
registered workers share each job's evaluation, dead workers' chunks
are reassigned, and an empty pool falls back to local evaluation —
single-host behaviour is unchanged.

Failure behaviour is part of the contract: malformed payloads are 400s
with a JSON error body, unknown jobs/routes are 404s, and an unexpected
server-side exception is a 500 whose body carries only the exception
message — never a traceback page.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import queue
import threading
import time
from collections import OrderedDict
from typing import Any, Optional
from urllib.parse import parse_qs, urlsplit

from ..engine.batch import BatchRunner, evaluate_auto
from ..engine.cache import ResultCache
from ..engine.executor import ExecutionBackend
from ..errors import ReproError
from ..obs import (
    RunManifest,
    metrics,
    span,
    telemetry_capture,
)
from .pool import DistributedBackend, PoolConfig, WorkerPool
from .protocol import (
    MAX_BODY_BYTES,
    PROTOCOL_VERSION,
    ChunkReport,
    FetchResponse,
    JobStatus,
    ProtocolError,
    SubmitRequest,
    SubmitResponse,
    WorkerRegistration,
    outcome_entry_to_dict,
)

__all__ = ["ServiceServer", "SweepService"]

log = logging.getLogger(__name__)

_TERMINAL_STATES = ("done", "failed")


class _Job:
    """Mutable server-side record of one submitted campaign.

    ``stream`` grows in completion order — one ``(index, fingerprint,
    source)`` triple per point, appended by the engine's progress hook —
    and is what fetch responses are sliced from.  All mutation happens
    either under ``service._lock`` or on the single worker thread, so a
    reader holding the lock always sees a consistent prefix.
    """

    def __init__(self, submit: SubmitRequest) -> None:
        self.job_id = submit.job_id
        self.submit = submit
        self.state = "queued"
        self.created_at = time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime())
        self.started: Optional[float] = None
        self.elapsed_seconds = 0.0
        self.resubmitted = False
        self.stream: list[tuple[int, str, str]] = []
        self.cache_hits = 0
        self.evaluated = 0
        self.errors = 0
        self.report: Optional[dict] = None
        self.results: Optional[list] = None
        self.telemetry: Optional[dict] = None
        self.metrics_before: Optional[dict] = None
        self.metrics_delta: dict = {}
        self.manifest_path: Optional[str] = None
        self.detail: Optional[str] = None

    @property
    def total(self) -> int:
        """Number of requests in the campaign."""
        return len(self.submit.requests)

    def status(self) -> JobStatus:
        """Render the poll payload for this job's current state."""
        elapsed = self.elapsed_seconds
        if self.started is not None and self.state == "running":
            elapsed = time.perf_counter() - self.started
        delta = self.metrics_delta
        if self.state == "running" and self.metrics_before is not None:
            delta = metrics().diff(self.metrics_before)
        return JobStatus(
            job_id=self.job_id,
            name=self.submit.name,
            state=self.state,
            total=self.total,
            done=len(self.stream),
            cache_hits=self.cache_hits,
            evaluated=self.evaluated,
            errors=self.errors,
            created_at=self.created_at,
            elapsed_seconds=elapsed,
            resubmitted=self.resubmitted,
            report=self.report,
            metrics_delta=delta,
            manifest_path=self.manifest_path,
            detail=self.detail,
        )


class SweepService:
    """Content-addressed job table + worker thread over one shared engine.

    Parameters
    ----------
    runner:
        The :class:`~repro.engine.batch.BatchRunner` every job executes
        through.  Built from ``cache``/``backend`` when omitted.
    cache, backend:
        Convenience constructors for ``runner`` (ignored when ``runner``
        is given): the shared :class:`~repro.engine.cache.ResultCache`
        and evaluation :class:`~repro.engine.executor.ExecutionBackend`.
    manifest_dir:
        When set, every finished campaign writes a
        :class:`~repro.obs.RunManifest` to
        ``<manifest_dir>/manifest-<job_id[:12]>.json``.
    max_jobs:
        Bound on the job table; the oldest *terminal* jobs are evicted
        first (running/queued jobs are never dropped).
    pool, pool_config:
        The fault-tolerant :class:`~repro.service.pool.WorkerPool`
        jobs fan out over once workers register (built from
        ``pool_config`` when not given).  The runner's backend is
        wrapped in a :class:`~repro.service.pool.DistributedBackend`
        whose fallback is the original backend — with no registered
        worker, execution (and the reported backend label) is exactly
        the single-host service tier.
    """

    def __init__(
        self,
        runner: Optional[BatchRunner] = None,
        *,
        cache: Optional[ResultCache] = None,
        backend: Optional[ExecutionBackend] = None,
        manifest_dir: Optional[str] = None,
        max_jobs: int = 64,
        pool: Optional[WorkerPool] = None,
        pool_config: Optional[PoolConfig] = None,
    ) -> None:
        if runner is None:
            runner = BatchRunner(cache=cache, backend=backend)
        self.runner = runner
        self.pool = pool if pool is not None else WorkerPool(pool_config)
        self._distributed = DistributedBackend(self.pool, runner.backend)
        runner.backend = self._distributed
        self.manifest_dir = manifest_dir
        self.max_jobs = max(1, int(max_jobs))
        self.started_at = time.strftime("%Y-%m-%dT%H:%M:%S%z", time.localtime())
        self._jobs: "OrderedDict[str, _Job]" = OrderedDict()
        self._lock = threading.Lock()
        self._queue: "queue.Queue[Optional[_Job]]" = queue.Queue()
        self._worker = threading.Thread(
            target=self._worker_loop, name="sweep-service-worker", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    # Public operations (one per endpoint)
    # ------------------------------------------------------------------
    def submit(self, submit: SubmitRequest) -> SubmitResponse:
        """Register a campaign; idempotent by content-addressed job id.

        Submitting a campaign whose request set matches an existing job
        (queued, running, or finished) returns that job with
        ``resubmitted=True`` instead of enqueuing a duplicate.
        """
        job_id = submit.job_id
        with self._lock:
            existing = self._jobs.get(job_id)
            if existing is not None:
                existing.resubmitted = True
                return SubmitResponse(
                    job_id=job_id,
                    total=existing.total,
                    state=existing.state,
                    resubmitted=True,
                )
            job = _Job(submit)
            self._jobs[job_id] = job
            self._evict_terminal_locked()
        self._queue.put(job)
        log.info(
            "job %s submitted: %r, %d points", job_id[:12], submit.name, job.total
        )
        return SubmitResponse(
            job_id=job_id, total=job.total, state=job.state, resubmitted=False
        )

    def status(self, job_id: str) -> JobStatus:
        """Poll one job (:class:`ProtocolError` 404 when unknown)."""
        with self._lock:
            job = self._require_job(job_id)
            return job.status()

    def jobs(self) -> list[JobStatus]:
        """All known jobs, oldest first."""
        with self._lock:
            return [job.status() for job in self._jobs.values()]

    def fetch(self, job_id: str, offset: int = 0) -> FetchResponse:
        """Stream outcome records starting at ``offset`` (completion order).

        Entries are only emitted once their payload is materialisable —
        a result record from the shared cache (or the finished batch),
        an error record from the finished report.  Mid-run, the slice
        stops early at the first entry that is not ready yet; the
        client resumes from ``next_offset`` on its next poll, so the
        stream stays contiguous and nothing is emitted twice.
        """
        if offset < 0:
            raise ProtocolError("offset must be >= 0")
        with self._lock:
            job = self._require_job(job_id)
            full_stream = list(job.stream)
            state = job.state
            done = state in _TERMINAL_STATES
            results = job.results
            report = job.report
            telemetry = job.telemetry
        stream_len = len(full_stream)
        if offset > stream_len:
            raise ProtocolError(
                f"offset {offset} beyond stream length {stream_len}"
            )
        stream = full_stream[offset:]

        error_by_fp: dict[str, dict] = {}
        if done and report:
            index_to_fp = {i: fp for i, fp, _ in full_stream}
            for err in report.get("errors", ()):
                fp = index_to_fp.get(err.get("index"))
                if fp is not None:
                    error_by_fp[fp] = {
                        k: err.get(k) for k in ("error_type", "error", "traceback")
                    }

        entries: list[dict] = []
        cursor = offset
        for index, fingerprint, source in stream:
            entry = self._materialize(
                index, fingerprint, source, done, results, error_by_fp
            )
            if entry is None:
                break
            entries.append(entry)
            cursor += 1

        complete = done and cursor >= stream_len
        return FetchResponse(
            job_id=job_id,
            state=state,
            entries=tuple(entries),
            next_offset=cursor,
            complete=complete,
            telemetry=telemetry if complete else None,
            # Nothing new this time: hint how long the client should
            # back off before the next fetch (queued jobs move slower
            # than a mid-run stream pause).
            retry_after_s=(
                (0.25 if state == "queued" else 0.05)
                if not complete and not entries
                else None
            ),
        )

    def health(self) -> dict:
        """Liveness payload rendered from the merged metrics registry.

        The counters here include worker-shipped deltas (pool workers
        and remote jobs both ride the same ``telemetry_capture``
        channel), so an operator sees engine/cache/solver totals for
        everything this server has executed.
        """
        with self._lock:
            states = [job.state for job in self._jobs.values()]
        cache = self.runner.cache
        return {
            "status": "ok",
            "protocol_version": PROTOCOL_VERSION,
            "started_at": self.started_at,
            "backend": self.runner.backend.describe(),
            "jobs": {
                "total": len(states),
                "queued": states.count("queued"),
                "running": states.count("running"),
                "done": states.count("done"),
                "failed": states.count("failed"),
            },
            "cache": cache.stats.as_dict(),
            "workers": self.pool.roster(),
            "scheduling": self.pool.config.summary(),
            "metrics": metrics().snapshot(),
        }

    def shutdown(self) -> None:
        """Stop the worker thread (lets in-flight work finish)."""
        self._queue.put(None)
        self._worker.join(timeout=30.0)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require_job(self, job_id: str) -> _Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise ProtocolError(f"unknown job {job_id!r}", status=404)
        return job

    def _evict_terminal_locked(self) -> None:
        while len(self._jobs) > self.max_jobs:
            victim = next(
                (
                    jid
                    for jid, job in self._jobs.items()
                    if job.state in _TERMINAL_STATES
                ),
                None,
            )
            if victim is None:
                break
            del self._jobs[victim]

    def _materialize(
        self,
        index: int,
        fingerprint: str,
        source: str,
        done: bool,
        results: Optional[list],
        error_by_fp: dict,
    ) -> Optional[dict]:
        """Build one fetch entry, or ``None`` if its payload isn't ready."""
        if source == "error":
            if not done:
                return None
            error = error_by_fp.get(
                fingerprint,
                {"error_type": "PointError", "error": "point failed"},
            )
            return outcome_entry_to_dict(index, source, error=error)
        if done and results is not None:
            result = results[index]
            if result is not None:
                return outcome_entry_to_dict(
                    index, source, result=result.to_dict()
                )
        # Mid-run: the shared cache is the source of truth.  A freshly
        # evaluated point lands there in the store phase, which runs
        # after the progress hook fired — so "not there yet" is normal
        # and simply pauses the stream at this entry.
        cached = self.runner.cache.get(fingerprint)
        if cached is None:
            return None
        return outcome_entry_to_dict(index, source, result=cached.to_dict())

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            try:
                self._execute(job)
            except Exception as exc:  # noqa: BLE001 — job must terminate
                log.exception("job %s failed", job.job_id[:12])
                with self._lock:
                    job.state = "failed"
                    job.detail = f"{type(exc).__name__}: {exc}"

    def _execute(self, job: _Job) -> None:
        with self._lock:
            job.state = "running"
            job.started = time.perf_counter()
            job.metrics_before = metrics().snapshot()

        def progress(index: int, fingerprint: str, source: str) -> None:
            with self._lock:
                job.stream.append((index, fingerprint, source))
                if source == "cache":
                    job.cache_hits += 1
                elif source == "evaluated":
                    job.evaluated += 1
                else:
                    job.errors += 1

        self._distributed.job_id = job.job_id
        try:
            with telemetry_capture() as capture:
                with span("service.job", job_id=job.job_id[:12], points=job.total):
                    batch = self.runner.run(
                        list(job.submit.requests),
                        evaluate=evaluate_auto,
                        progress=progress,
                    )
        finally:
            self._distributed.job_id = ""
        manifest_path = self._write_manifest(job, batch)

        with self._lock:
            job.results = list(batch.results)
            job.report = batch.report.as_dict()
            job.telemetry = capture.payload
            job.metrics_delta = capture.payload.get("metrics", {})
            job.elapsed_seconds = time.perf_counter() - (job.started or 0.0)
            job.manifest_path = manifest_path
            job.state = "done"
        log.info(
            "job %s done: %s", job.job_id[:12], batch.report.describe()
        )

    def _write_manifest(self, job: _Job, batch) -> Optional[str]:
        if not self.manifest_dir:
            return None
        os.makedirs(self.manifest_dir, exist_ok=True)
        path = os.path.join(
            self.manifest_dir, f"manifest-{job.job_id[:12]}.json"
        )
        manifest = RunManifest(
            command=f"service:{job.submit.name}",
            backend=self.runner.backend.describe(),
            params_digest=job.job_id,
            reports=[batch.report.as_dict()],
            cache_stats=self.runner.cache.stats.as_dict(),
            errors=[error.as_dict() for error in batch.report.errors],
        )
        try:
            manifest.write(path)
        except OSError as exc:
            log.warning("manifest write failed for %s: %s", path, exc)
            return None
        return path


class ServiceServer:
    """Stdlib asyncio HTTP front end for a :class:`SweepService`."""

    def __init__(
        self,
        service: SweepService,
        *,
        host: str = "127.0.0.1",
        port: int = 8765,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._url: Optional[str] = None

    @property
    def url(self) -> Optional[str]:
        """The bound base URL (set once the listening socket exists)."""
        return self._url

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Run the server on the calling thread until interrupted."""
        asyncio.run(self._serve())

    def start_in_background(self, timeout: float = 10.0) -> str:
        """Boot the event loop on a daemon thread; return the base URL.

        Pass ``port=0`` at construction to bind an ephemeral port —
        the returned URL carries whatever the OS picked.  Designed for
        in-process tests and the CI service smoke.
        """
        self._thread = threading.Thread(
            target=self.serve_forever, name="sweep-service-http", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("service did not start listening in time")
        assert self._url is not None
        return self._url

    def join(self, timeout: Optional[float] = None) -> bool:
        """Block on the background server thread; True once it exited."""
        if self._thread is None:
            return True
        self._thread.join(timeout)
        return not self._thread.is_alive()

    def stop(self) -> None:
        """Stop listening and shut the job worker down."""
        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self._request_stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.service.shutdown()

    def _request_stop(self) -> None:
        if self._server is not None:
            self._server.close()
        for task in asyncio.all_tasks(self._loop):
            task.cancel()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            bound_host, bound_port = sockets[0].getsockname()[:2]
            self._url = f"http://{bound_host}:{bound_port}"
        self._ready.set()
        log.info("sweep service listening on %s", self._url)
        try:
            async with self._server:
                await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, body = await self._handle_request(reader)
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        except Exception as exc:  # noqa: BLE001 — must answer, never hang
            log.exception("unhandled service error")
            status, body = 500, {"error": f"{type(exc).__name__}: {exc}"}
        payload = json.dumps(body).encode("utf-8")
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  405: "Method Not Allowed", 413: "Payload Too Large",
                  500: "Internal Server Error"}.get(status, "Error")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n"
            f"\r\n"
        ).encode("ascii")
        try:
            writer.write(head + payload)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()

    async def _handle_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, dict]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise ConnectionError("empty request")
        parts = request_line.split()
        if len(parts) != 3:
            return 400, {"error": f"malformed request line {request_line!r}"}
        method, target, _version = parts

        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, {"error": "bad Content-Length header"}
        if content_length > MAX_BODY_BYTES:
            return 413, {"error": f"body exceeds {MAX_BODY_BYTES} bytes"}
        body = b""
        if content_length:
            body = await reader.readexactly(content_length)

        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = parse_qs(split.query)
        try:
            return self._route(method.upper(), path, query, body)
        except ProtocolError as exc:
            return exc.status, {"error": str(exc)}
        except ReproError as exc:
            return 400, {"error": str(exc)}

    def _route(
        self, method: str, path: str, query: dict, body: bytes
    ) -> tuple[int, dict]:
        service = self.service
        if path == "/health":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, service.health()
        if path == "/api/v1/campaigns":
            if method != "POST":
                return 405, {"error": "use POST"}
            submit = SubmitRequest.from_dict(self._json_body(body))
            return 200, service.submit(submit).to_dict()
        if path == "/api/v1/workers":
            if method != "POST":
                return 405, {"error": "use POST"}
            registration = WorkerRegistration.from_dict(self._json_body(body))
            return 200, service.pool.register(registration).to_dict()
        if path.startswith("/api/v1/workers/"):
            rest = path[len("/api/v1/workers/"):]
            worker_id, _, action = rest.partition("/")
            if not worker_id or "/" in action:
                return 404, {"error": f"no route for {method} {path}"}
            if method != "POST":
                return 405, {"error": "use POST"}
            if action == "lease":
                return 200, service.pool.lease(worker_id).to_dict()
            if action == "heartbeat":
                data = self._json_body(body) if body else {}
                chunks = data.get("chunks", [])
                if not isinstance(chunks, list):
                    raise ProtocolError("'chunks' must be a list")
                ack = service.pool.heartbeat(
                    worker_id, [str(c) for c in chunks]
                )
                return 200, ack.to_dict()
            if action == "result":
                report = ChunkReport.from_dict(self._json_body(body))
                accepted = service.pool.report(worker_id, report)
                return 200, {
                    "protocol_version": PROTOCOL_VERSION,
                    "accepted": accepted,
                }
            if action == "deregister":
                service.pool.deregister(worker_id)
                return 200, {"protocol_version": PROTOCOL_VERSION, "ok": True}
            return 404, {"error": f"no route for {method} {path}"}
        if path == "/api/v1/jobs":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, {
                "protocol_version": PROTOCOL_VERSION,
                "jobs": [status.to_dict() for status in service.jobs()],
            }
        if path.startswith("/api/v1/jobs/"):
            rest = path[len("/api/v1/jobs/"):]
            if rest.endswith("/results"):
                job_id = rest[: -len("/results")]
                if method != "GET":
                    return 405, {"error": "use GET"}
                offset = self._int_param(query, "offset", 0)
                return 200, service.fetch(job_id, offset).to_dict()
            if "/" not in rest:
                if method != "GET":
                    return 405, {"error": "use GET"}
                return 200, service.status(rest).to_dict()
        return 404, {"error": f"no route for {method} {path}"}

    @staticmethod
    def _json_body(body: bytes) -> dict:
        try:
            data = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ProtocolError(f"body is not valid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ProtocolError("body must be a JSON object")
        return data

    @staticmethod
    def _int_param(query: dict, name: str, default: int) -> int:
        values = query.get(name)
        if not values:
            return default
        try:
            return int(values[0])
        except ValueError as exc:
            raise ProtocolError(f"query param {name!r} must be an integer") from exc
