"""Fault injection for the worker pool: deterministic, opt-in chaos.

The fault-tolerance machinery in :mod:`repro.service.pool` is only
trustworthy if it is exercised — this module provides the injected
faults. A :class:`ChaosConfig` rides inside a
:class:`~repro.service.worker.ServiceWorker` and fires at well-defined
hook points in the chunk lifecycle:

* **kill** — terminate the worker *mid-chunk* (after the lease is
  granted, before the result is reported), either by raising
  :class:`ChaosKill` (in-process test workers) or via ``os._exit``
  (real CLI worker processes). The server sees a vanished worker: the
  lease expires and the chunk is reassigned.
* **heartbeat delay** — stretch the gap between heartbeats past the
  lease TTL so the server reassigns a chunk the worker is still
  evaluating (exercises the duplicate-result path).
* **drop result** — evaluate a chunk but never report it (a lost
  response on the wire); the lease expires and the chunk is
  reassigned.
* **slow worker** — sleep a fixed delay inside every chunk evaluation
  (while the heartbeat sidecar keeps the lease alive). The worker is a
  *straggler*, not a corpse: the scheduler must route around it with
  throughput-aware sizing, work stealing, and tail speculation rather
  than lease expiry.
* **corrupt chunk** — deterministically fail the evaluation of
  selected chunks, reported as a chunk-level failure with a traceback.
  Selection is seeded by ``(seed, chunk_id)`` — chunk ids are
  content-addressed, so the *same* chunk fails on every worker and on
  every retry, which is exactly the poison-chunk scenario the server
  must cap with a :class:`~repro.engine.batch.PointError` instead of
  retrying forever.

Everything is off unless explicitly enabled — the default
:class:`ChaosConfig` is inert, and :meth:`ChaosConfig.from_env` only
arms hooks for which a ``REPRO_CHAOS_*`` variable is set:

========================================  =====================================
``REPRO_CHAOS_KILL_AFTER_CHUNKS=N``       die mid-chunk after N completed chunks
``REPRO_CHAOS_HEARTBEAT_DELAY_S=X``       add X seconds before every heartbeat
``REPRO_CHAOS_CHUNK_DELAY_S=X``           add X seconds inside every evaluation
``REPRO_CHAOS_DROP_RESULTS=N``            swallow the first N chunk reports
``REPRO_CHAOS_CORRUPT_SEED=S``            arm seeded chunk corruption
``REPRO_CHAOS_CORRUPT_ONE_IN=K``          corrupt ~1/K of chunks (default 1)
========================================  =====================================
"""

from __future__ import annotations

import os
import random
import threading
import time
from typing import Mapping, Optional

__all__ = ["ChaosConfig", "ChaosCorruption", "ChaosKill"]


class ChaosKill(BaseException):
    """Raised to simulate sudden worker death in in-process workers.

    Derives from :class:`BaseException` so it cannot be swallowed by
    the per-point ``except Exception`` capture — a killed worker must
    not produce outcomes, exactly like a SIGKILLed process.
    """


class ChaosCorruption(RuntimeError):
    """The injected evaluation failure reported for a corrupted chunk."""


class ChaosConfig:
    """Armed fault hooks for one worker; inert by default.

    Thread-safe: the drop counter is consumed under a lock (the worker
    loop and its heartbeat thread never share hooks, but two in-process
    workers must not share one config's mutable state — give each its
    own instance).
    """

    def __init__(
        self,
        *,
        kill_after_chunks: Optional[int] = None,
        heartbeat_delay_s: float = 0.0,
        chunk_delay_s: float = 0.0,
        drop_results: int = 0,
        corrupt_seed: Optional[int] = None,
        corrupt_one_in: int = 1,
        kill_mode: str = "raise",
    ) -> None:
        if kill_mode not in ("raise", "exit"):
            raise ValueError(f"kill_mode must be 'raise' or 'exit', got {kill_mode!r}")
        if corrupt_one_in < 1:
            raise ValueError(f"corrupt_one_in must be >= 1, got {corrupt_one_in}")
        self.kill_after_chunks = kill_after_chunks
        self.heartbeat_delay_s = float(heartbeat_delay_s)
        self.chunk_delay_s = float(chunk_delay_s)
        self.corrupt_seed = corrupt_seed
        self.corrupt_one_in = int(corrupt_one_in)
        self.kill_mode = kill_mode
        self._drops_left = int(drop_results)
        self._lock = threading.Lock()

    @classmethod
    def from_env(
        cls, environ: Optional[Mapping[str, str]] = None, *, kill_mode: str = "exit"
    ) -> "ChaosConfig":
        """Build a config from ``REPRO_CHAOS_*`` variables (inert if unset)."""
        env = os.environ if environ is None else environ

        def _get(name: str) -> Optional[str]:
            value = env.get(name, "").strip()
            return value or None

        kill = _get("REPRO_CHAOS_KILL_AFTER_CHUNKS")
        seed = _get("REPRO_CHAOS_CORRUPT_SEED")
        return cls(
            kill_after_chunks=int(kill) if kill is not None else None,
            heartbeat_delay_s=float(_get("REPRO_CHAOS_HEARTBEAT_DELAY_S") or 0.0),
            chunk_delay_s=float(_get("REPRO_CHAOS_CHUNK_DELAY_S") or 0.0),
            drop_results=int(_get("REPRO_CHAOS_DROP_RESULTS") or 0),
            corrupt_seed=int(seed) if seed is not None else None,
            corrupt_one_in=int(_get("REPRO_CHAOS_CORRUPT_ONE_IN") or 1),
            kill_mode=kill_mode,
        )

    @property
    def armed(self) -> bool:
        """True when any hook can fire."""
        return (
            self.kill_after_chunks is not None
            or self.heartbeat_delay_s > 0.0
            or self.chunk_delay_s > 0.0
            or self._drops_left > 0
            or self.corrupt_seed is not None
        )

    # ------------------------------------------------------------------
    # Hook points (called by ServiceWorker)
    # ------------------------------------------------------------------
    def maybe_kill(self, chunks_completed: int) -> None:
        """Die mid-chunk once ``chunks_completed`` reaches the threshold.

        ``kill_after_chunks=0`` dies during the very first chunk.
        """
        if self.kill_after_chunks is None:
            return
        if chunks_completed < self.kill_after_chunks:
            return
        if self.kill_mode == "exit":  # pragma: no cover — kills the test runner
            os._exit(137)
        raise ChaosKill(
            f"chaos: worker killed mid-chunk after {chunks_completed} chunks"
        )

    def should_corrupt(self, chunk_id: str) -> bool:
        """Seeded, chunk-id-keyed corruption — stable across retries/workers."""
        if self.corrupt_seed is None:
            return False
        rng = random.Random(f"{self.corrupt_seed}:{chunk_id}")
        return rng.randrange(self.corrupt_one_in) == 0

    def corrupt(self, chunk_id: str) -> None:
        """Raise the deterministic injected failure for ``chunk_id``."""
        raise ChaosCorruption(
            f"chaos: chunk {chunk_id[:12]} corrupted "
            f"(seed={self.corrupt_seed}, one_in={self.corrupt_one_in})"
        )

    def take_drop(self) -> bool:
        """Consume one drop token; True means swallow this chunk report."""
        with self._lock:
            if self._drops_left <= 0:
                return False
            self._drops_left -= 1
            return True

    def heartbeat_sleep_s(self, interval_s: float) -> float:
        """The (possibly stretched) gap before the next heartbeat."""
        return interval_s + self.heartbeat_delay_s

    def chunk_sleep(self, stop: Optional[threading.Event] = None) -> None:
        """Straggle: sleep the configured delay inside a chunk evaluation.

        Interruptible via ``stop`` so a slowed worker still exits
        promptly when asked.
        """
        if self.chunk_delay_s <= 0.0:
            return
        if stop is not None:
            stop.wait(timeout=self.chunk_delay_s)
        else:
            time.sleep(self.chunk_delay_s)
