"""The sweep-service wire format: versioned JSON payload dataclasses.

Everything that crosses the HTTP boundary is defined here, in plain
dataclasses with ``to_dict``/``from_dict`` pairs, so the protocol can be
tested without a socket and the server/client can never drift apart on
field names.  The format is deliberately dumb JSON — no pickling, no
framing — because the payloads are already JSON-shaped: engine requests
serialise through :func:`repro.engine.batch.request_to_dict` (the same
parameter dictionaries the content-addressed cache keys hash) and
results through their ``to_dict()`` records (the same form the cache
persists).

Job identity is **content-addressed**: :func:`job_id_for` digests the
batch's request fingerprints, so submitting the same campaign twice —
from one client or many — names the same job.  Submission is therefore
idempotent, concurrent clients share one evaluation, and a client can
recover a finished campaign from a *restarted* server by simply
resubmitting: the fresh job re-runs against the shared result cache and
completes with 100% hits.

Malformed payloads raise :class:`ProtocolError` (a
:class:`~repro.errors.ReproError`), which the server maps onto a 400
response — a bad request must never produce a traceback page.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from ..engine.batch import (
    EvalRequest,
    SurvivabilityRequest,
    request_from_dict,
    request_to_dict,
)
from ..errors import ReproError

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SubmitRequest",
    "SubmitResponse",
    "JobStatus",
    "FetchResponse",
    "job_id_for",
    "result_to_dict",
    "outcome_entry_to_dict",
]

#: Version of the HTTP wire format.  Carried in every response (and
#: checked on submit payloads that declare one) so mixed-version fleets
#: fail loudly instead of misparsing each other.
PROTOCOL_VERSION = 1

#: Maximum request-body size the server accepts (16 MiB — a full
#: N=100 paper campaign serialises to well under 1 MiB).
MAX_BODY_BYTES = 16 * 1024 * 1024


class ProtocolError(ReproError):
    """A malformed or unserviceable wire payload (maps onto HTTP 4xx)."""

    def __init__(self, message: str, *, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def job_id_for(requests: Sequence["EvalRequest | SurvivabilityRequest"]) -> str:
    """Content-addressed job id: SHA-256 over the sorted fingerprints.

    The same scheme as :func:`repro.obs.manifest.params_digest` — order
    independent, so two clients enumerating the same grid in different
    orders still share one job.
    """
    digest = hashlib.sha256()
    for fingerprint in sorted(request.fingerprint() for request in requests):
        digest.update(fingerprint.encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()


def result_to_dict(result: Any) -> dict:
    """A cacheable result's wire form (its own ``to_dict`` record)."""
    return result.to_dict()


def outcome_entry_to_dict(
    index: int,
    source: str,
    *,
    result: Optional[dict] = None,
    error: Optional[dict] = None,
) -> dict:
    """One streamed outcome entry of a fetch response.

    ``index`` is the position in the *submitted* request list;
    ``source`` is ``"cache"`` / ``"evaluated"`` / ``"error"`` exactly as
    the engine's progress callback reports it.
    """
    entry: dict[str, Any] = {"index": index, "source": source}
    if result is not None:
        entry["result"] = result
    if error is not None:
        entry["error"] = error
    return entry


def _require(data: Mapping[str, Any], key: str) -> Any:
    try:
        return data[key]
    except (KeyError, TypeError) as exc:
        raise ProtocolError(f"payload missing required field {key!r}") from exc


@dataclass(frozen=True)
class SubmitRequest:
    """Body of ``POST /api/v1/campaigns``: a named list of requests."""

    requests: tuple
    name: str = "campaign"

    def __post_init__(self) -> None:
        object.__setattr__(self, "requests", tuple(self.requests))
        if not self.requests:
            raise ProtocolError("campaign has no requests")
        for request in self.requests:
            if not isinstance(request, (EvalRequest, SurvivabilityRequest)):
                raise ProtocolError(
                    f"unsupported request type {type(request).__name__!r}"
                )

    @property
    def job_id(self) -> str:
        """The content-addressed id this submission resolves to."""
        return job_id_for(self.requests)

    def to_dict(self) -> dict:
        """JSON-ready submit body."""
        return {
            "protocol_version": PROTOCOL_VERSION,
            "name": self.name,
            "requests": [request_to_dict(r) for r in self.requests],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SubmitRequest":
        """Parse and validate a submit body (:class:`ProtocolError` on junk)."""
        if not isinstance(data, Mapping):
            raise ProtocolError("submit body must be a JSON object")
        declared = data.get("protocol_version", PROTOCOL_VERSION)
        if declared != PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol version mismatch: client sent {declared!r}, "
                f"server speaks {PROTOCOL_VERSION}"
            )
        raw = _require(data, "requests")
        if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
            raise ProtocolError("'requests' must be a list")
        try:
            requests = tuple(request_from_dict(r) for r in raw)
        except ReproError as exc:
            raise ProtocolError(f"bad request record: {exc}") from exc
        name = data.get("name", "campaign")
        if not isinstance(name, str) or not name:
            raise ProtocolError("'name' must be a non-empty string")
        return cls(requests=requests, name=name)


@dataclass(frozen=True)
class SubmitResponse:
    """Body of a successful submit: where to poll, and what was reused.

    ``resubmitted`` is true when the content-addressed job already
    existed (another client — or an earlier run of this one — submitted
    the identical campaign), in which case the server did not enqueue
    anything new.
    """

    job_id: str
    total: int
    state: str
    resubmitted: bool = False

    def to_dict(self) -> dict:
        """JSON-ready submit response."""
        return {
            "protocol_version": PROTOCOL_VERSION,
            "job_id": self.job_id,
            "total": self.total,
            "state": self.state,
            "resubmitted": self.resubmitted,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SubmitResponse":
        """Parse a submit response."""
        return cls(
            job_id=str(_require(data, "job_id")),
            total=int(_require(data, "total")),
            state=str(_require(data, "state")),
            resubmitted=bool(data.get("resubmitted", False)),
        )


@dataclass(frozen=True)
class JobStatus:
    """Body of ``GET /api/v1/jobs/<id>``: progress and provenance.

    The progress counters (``done``/``cache_hits``/``evaluated``/
    ``errors``) stream from the engine's per-outcome progress hook
    while the job runs; ``report`` is the full
    :meth:`~repro.engine.batch.BatchReport.as_dict` record once the job
    finished, and ``metrics_delta`` is the slice of the server's merged
    metrics registry (engine/cache/solver counters, pool-worker deltas
    folded in) recorded since the job started.
    """

    job_id: str
    name: str
    state: str
    total: int
    done: int = 0
    cache_hits: int = 0
    evaluated: int = 0
    errors: int = 0
    created_at: Optional[str] = None
    elapsed_seconds: float = 0.0
    resubmitted: bool = False
    report: Optional[dict] = None
    metrics_delta: dict = field(default_factory=dict)
    manifest_path: Optional[str] = None
    detail: Optional[str] = None

    def to_dict(self) -> dict:
        """JSON-ready poll response."""
        return {
            "protocol_version": PROTOCOL_VERSION,
            "job_id": self.job_id,
            "name": self.name,
            "state": self.state,
            "total": self.total,
            "done": self.done,
            "cache_hits": self.cache_hits,
            "evaluated": self.evaluated,
            "errors": self.errors,
            "created_at": self.created_at,
            "elapsed_seconds": self.elapsed_seconds,
            "resubmitted": self.resubmitted,
            "report": self.report,
            "metrics_delta": self.metrics_delta,
            "manifest_path": self.manifest_path,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobStatus":
        """Parse a poll response."""
        return cls(
            job_id=str(_require(data, "job_id")),
            name=str(data.get("name", "campaign")),
            state=str(_require(data, "state")),
            total=int(_require(data, "total")),
            done=int(data.get("done", 0)),
            cache_hits=int(data.get("cache_hits", 0)),
            evaluated=int(data.get("evaluated", 0)),
            errors=int(data.get("errors", 0)),
            created_at=data.get("created_at"),
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
            resubmitted=bool(data.get("resubmitted", False)),
            report=data.get("report"),
            metrics_delta=dict(data.get("metrics_delta") or {}),
            manifest_path=data.get("manifest_path"),
            detail=data.get("detail"),
        )


@dataclass(frozen=True)
class FetchResponse:
    """Body of ``GET /api/v1/jobs/<id>/results?offset=K``.

    ``entries`` are outcome records in **completion order** starting at
    ``offset`` (see :func:`outcome_entry_to_dict`); ``next_offset`` is
    what the client passes to resume the stream.  ``complete`` flips
    once the job finished *and* this response reaches the end of the
    stream; only then is ``telemetry`` attached — the
    :func:`repro.obs.telemetry_capture` payload (metric deltas + spans,
    pool-worker contributions already folded in) recorded around the
    job's batch, which the client absorbs into its own registry exactly
    like a pool parent absorbs a worker's.
    """

    job_id: str
    state: str
    entries: tuple = ()
    next_offset: int = 0
    complete: bool = False
    telemetry: Optional[dict] = None

    def to_dict(self) -> dict:
        """JSON-ready fetch response."""
        return {
            "protocol_version": PROTOCOL_VERSION,
            "job_id": self.job_id,
            "state": self.state,
            "entries": list(self.entries),
            "next_offset": self.next_offset,
            "complete": self.complete,
            "telemetry": self.telemetry,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FetchResponse":
        """Parse a fetch response."""
        entries = data.get("entries", [])
        if not isinstance(entries, Sequence) or isinstance(entries, (str, bytes)):
            raise ProtocolError("'entries' must be a list")
        return cls(
            job_id=str(_require(data, "job_id")),
            state=str(_require(data, "state")),
            entries=tuple(entries),
            next_offset=int(data.get("next_offset", 0)),
            complete=bool(data.get("complete", False)),
            telemetry=data.get("telemetry"),
        )
