"""The sweep-service wire format: versioned JSON payload dataclasses.

Everything that crosses the HTTP boundary is defined here, in plain
dataclasses with ``to_dict``/``from_dict`` pairs, so the protocol can be
tested without a socket and the server/client can never drift apart on
field names.  The format is deliberately dumb JSON — no pickling, no
framing — because the payloads are already JSON-shaped: engine requests
serialise through :func:`repro.engine.batch.request_to_dict` (the same
parameter dictionaries the content-addressed cache keys hash) and
results through their ``to_dict()`` records (the same form the cache
persists).

Job identity is **content-addressed**: :func:`job_id_for` digests the
batch's request fingerprints, so submitting the same campaign twice —
from one client or many — names the same job.  Submission is therefore
idempotent, concurrent clients share one evaluation, and a client can
recover a finished campaign from a *restarted* server by simply
resubmitting: the fresh job re-runs against the shared result cache and
completes with 100% hits.

Malformed payloads raise :class:`ProtocolError` (a
:class:`~repro.errors.ReproError`), which the server maps onto a 400
response — a bad request must never produce a traceback page.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence

from ..engine.batch import (
    EvalRequest,
    SurvivabilityRequest,
    evaluate_auto,
    evaluate_request,
    evaluate_survivability_request,
    request_from_dict,
    request_to_dict,
)
from ..errors import ReproError

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SubmitRequest",
    "SubmitResponse",
    "JobStatus",
    "FetchResponse",
    "WorkerRegistration",
    "WorkerRegistered",
    "ChunkLease",
    "LeaseResponse",
    "HeartbeatAck",
    "ChunkReport",
    "job_id_for",
    "chunk_outcome_to_dict",
    "chunk_outcome_from_dict",
    "result_to_dict",
    "outcome_entry_to_dict",
    "wire_dispatchable",
]

#: Version of the HTTP wire format.  Carried in every response (and
#: checked on submit payloads that declare one) so mixed-version fleets
#: fail loudly instead of misparsing each other.  v2 added the
#: scheduling fields: ``ChunkLease.speculative`` and
#: ``ChunkReport.elapsed_s``.  v3 added the
#: ``WorkerRegistration.kernel`` capability echo (advisory — absent
#: values parse as ``fused``).
PROTOCOL_VERSION = 3

#: Maximum request-body size the server accepts (16 MiB — a full
#: N=100 paper campaign serialises to well under 1 MiB).
MAX_BODY_BYTES = 16 * 1024 * 1024


class ProtocolError(ReproError):
    """A malformed or unserviceable wire payload (maps onto HTTP 4xx)."""

    def __init__(self, message: str, *, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


def job_id_for(requests: Sequence["EvalRequest | SurvivabilityRequest"]) -> str:
    """Content-addressed job id: SHA-256 over the sorted fingerprints.

    The same scheme as :func:`repro.obs.manifest.params_digest` — order
    independent, so two clients enumerating the same grid in different
    orders still share one job.
    """
    digest = hashlib.sha256()
    for fingerprint in sorted(request.fingerprint() for request in requests):
        digest.update(fingerprint.encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()


#: Evaluation callables the wire format can carry — the receiving end
#: always re-dispatches by request type (``evaluate_auto``), so only
#: batches using the engine's own evaluators may cross the boundary.
_WIRE_SAFE_EVALUATORS = (
    evaluate_request,
    evaluate_survivability_request,
    evaluate_auto,
)


def wire_dispatchable(fn: Any, items: Sequence[Any]) -> bool:
    """True when ``(fn, items)`` can be shipped over the service wire.

    Shared by :class:`~repro.service.client.RemoteBackend` (client →
    server) and :class:`~repro.service.pool.DistributedBackend`
    (server → workers): both sides serialise requests with
    :func:`~repro.engine.batch.request_to_dict` and re-dispatch with
    ``evaluate_auto``, so arbitrary callables or item types must stay
    on a local backend.
    """
    return fn in _WIRE_SAFE_EVALUATORS and all(
        isinstance(item, (EvalRequest, SurvivabilityRequest)) for item in items
    )


def result_to_dict(result: Any) -> dict:
    """A cacheable result's wire form (its own ``to_dict`` record)."""
    return result.to_dict()


def chunk_outcome_to_dict(outcome: Any) -> dict:
    """One evaluated point of a chunk report, keyed by chunk-local index.

    ``outcome`` is a :class:`~repro.engine.executor.PointOutcome`; the
    wire form carries either the result record (the same ``to_dict``
    form the disk cache persists) or the captured failure triple.
    """
    if outcome.ok:
        return {"index": int(outcome.index), "result": outcome.value.to_dict()}
    return {
        "index": int(outcome.index),
        "error": outcome.error or "point evaluation failed",
        "error_type": outcome.error_type or "Exception",
        "traceback": outcome.traceback,
    }


def chunk_outcome_from_dict(data: Mapping[str, Any]) -> dict:
    """Validate one chunk-report outcome record (still a plain dict).

    The server keeps the record in wire form until it rebuilds a
    :class:`~repro.engine.executor.PointOutcome` with the cache's
    ``result_from_dict`` — this hook only rejects junk early with a
    :class:`ProtocolError` carrying a useful message.
    """
    if not isinstance(data, Mapping):
        raise ProtocolError("chunk outcome must be a JSON object")
    index = _require(data, "index")
    try:
        index = int(index)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"chunk outcome index {index!r} is not an int") from exc
    if "result" not in data and "error" not in data:
        raise ProtocolError(f"chunk outcome {index} has neither result nor error")
    record = dict(data)
    record["index"] = index
    return record


def outcome_entry_to_dict(
    index: int,
    source: str,
    *,
    result: Optional[dict] = None,
    error: Optional[dict] = None,
) -> dict:
    """One streamed outcome entry of a fetch response.

    ``index`` is the position in the *submitted* request list;
    ``source`` is ``"cache"`` / ``"evaluated"`` / ``"error"`` exactly as
    the engine's progress callback reports it.
    """
    entry: dict[str, Any] = {"index": index, "source": source}
    if result is not None:
        entry["result"] = result
    if error is not None:
        entry["error"] = error
    return entry


def _require(data: Mapping[str, Any], key: str) -> Any:
    try:
        return data[key]
    except (KeyError, TypeError) as exc:
        raise ProtocolError(f"payload missing required field {key!r}") from exc


@dataclass(frozen=True)
class SubmitRequest:
    """Body of ``POST /api/v1/campaigns``: a named list of requests."""

    requests: tuple
    name: str = "campaign"

    def __post_init__(self) -> None:
        object.__setattr__(self, "requests", tuple(self.requests))
        if not self.requests:
            raise ProtocolError("campaign has no requests")
        for request in self.requests:
            if not isinstance(request, (EvalRequest, SurvivabilityRequest)):
                raise ProtocolError(
                    f"unsupported request type {type(request).__name__!r}"
                )

    @property
    def job_id(self) -> str:
        """The content-addressed id this submission resolves to."""
        return job_id_for(self.requests)

    def to_dict(self) -> dict:
        """JSON-ready submit body."""
        return {
            "protocol_version": PROTOCOL_VERSION,
            "name": self.name,
            "requests": [request_to_dict(r) for r in self.requests],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SubmitRequest":
        """Parse and validate a submit body (:class:`ProtocolError` on junk)."""
        if not isinstance(data, Mapping):
            raise ProtocolError("submit body must be a JSON object")
        declared = data.get("protocol_version", PROTOCOL_VERSION)
        if declared != PROTOCOL_VERSION:
            raise ProtocolError(
                f"protocol version mismatch: client sent {declared!r}, "
                f"server speaks {PROTOCOL_VERSION}"
            )
        raw = _require(data, "requests")
        if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
            raise ProtocolError("'requests' must be a list")
        try:
            requests = tuple(request_from_dict(r) for r in raw)
        except ReproError as exc:
            raise ProtocolError(f"bad request record: {exc}") from exc
        name = data.get("name", "campaign")
        if not isinstance(name, str) or not name:
            raise ProtocolError("'name' must be a non-empty string")
        return cls(requests=requests, name=name)


@dataclass(frozen=True)
class SubmitResponse:
    """Body of a successful submit: where to poll, and what was reused.

    ``resubmitted`` is true when the content-addressed job already
    existed (another client — or an earlier run of this one — submitted
    the identical campaign), in which case the server did not enqueue
    anything new.
    """

    job_id: str
    total: int
    state: str
    resubmitted: bool = False

    def to_dict(self) -> dict:
        """JSON-ready submit response."""
        return {
            "protocol_version": PROTOCOL_VERSION,
            "job_id": self.job_id,
            "total": self.total,
            "state": self.state,
            "resubmitted": self.resubmitted,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SubmitResponse":
        """Parse a submit response."""
        return cls(
            job_id=str(_require(data, "job_id")),
            total=int(_require(data, "total")),
            state=str(_require(data, "state")),
            resubmitted=bool(data.get("resubmitted", False)),
        )


@dataclass(frozen=True)
class JobStatus:
    """Body of ``GET /api/v1/jobs/<id>``: progress and provenance.

    The progress counters (``done``/``cache_hits``/``evaluated``/
    ``errors``) stream from the engine's per-outcome progress hook
    while the job runs; ``report`` is the full
    :meth:`~repro.engine.batch.BatchReport.as_dict` record once the job
    finished, and ``metrics_delta`` is the slice of the server's merged
    metrics registry (engine/cache/solver counters, pool-worker deltas
    folded in) recorded since the job started.
    """

    job_id: str
    name: str
    state: str
    total: int
    done: int = 0
    cache_hits: int = 0
    evaluated: int = 0
    errors: int = 0
    created_at: Optional[str] = None
    elapsed_seconds: float = 0.0
    resubmitted: bool = False
    report: Optional[dict] = None
    metrics_delta: dict = field(default_factory=dict)
    manifest_path: Optional[str] = None
    detail: Optional[str] = None

    def to_dict(self) -> dict:
        """JSON-ready poll response."""
        return {
            "protocol_version": PROTOCOL_VERSION,
            "job_id": self.job_id,
            "name": self.name,
            "state": self.state,
            "total": self.total,
            "done": self.done,
            "cache_hits": self.cache_hits,
            "evaluated": self.evaluated,
            "errors": self.errors,
            "created_at": self.created_at,
            "elapsed_seconds": self.elapsed_seconds,
            "resubmitted": self.resubmitted,
            "report": self.report,
            "metrics_delta": self.metrics_delta,
            "manifest_path": self.manifest_path,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobStatus":
        """Parse a poll response."""
        return cls(
            job_id=str(_require(data, "job_id")),
            name=str(data.get("name", "campaign")),
            state=str(_require(data, "state")),
            total=int(_require(data, "total")),
            done=int(data.get("done", 0)),
            cache_hits=int(data.get("cache_hits", 0)),
            evaluated=int(data.get("evaluated", 0)),
            errors=int(data.get("errors", 0)),
            created_at=data.get("created_at"),
            elapsed_seconds=float(data.get("elapsed_seconds", 0.0)),
            resubmitted=bool(data.get("resubmitted", False)),
            report=data.get("report"),
            metrics_delta=dict(data.get("metrics_delta") or {}),
            manifest_path=data.get("manifest_path"),
            detail=data.get("detail"),
        )


@dataclass(frozen=True)
class FetchResponse:
    """Body of ``GET /api/v1/jobs/<id>/results?offset=K``.

    ``entries`` are outcome records in **completion order** starting at
    ``offset`` (see :func:`outcome_entry_to_dict`); ``next_offset`` is
    what the client passes to resume the stream.  ``complete`` flips
    once the job finished *and* this response reaches the end of the
    stream; only then is ``telemetry`` attached — the
    :func:`repro.obs.telemetry_capture` payload (metric deltas + spans,
    pool-worker contributions already folded in) recorded around the
    job's batch, which the client absorbs into its own registry exactly
    like a pool parent absorbs a worker's.
    """

    job_id: str
    state: str
    entries: tuple = ()
    next_offset: int = 0
    complete: bool = False
    telemetry: Optional[dict] = None
    retry_after_s: Optional[float] = None

    def to_dict(self) -> dict:
        """JSON-ready fetch response."""
        payload = {
            "protocol_version": PROTOCOL_VERSION,
            "job_id": self.job_id,
            "state": self.state,
            "entries": list(self.entries),
            "next_offset": self.next_offset,
            "complete": self.complete,
            "telemetry": self.telemetry,
        }
        if self.retry_after_s is not None:
            payload["retry_after_s"] = self.retry_after_s
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FetchResponse":
        """Parse a fetch response."""
        entries = data.get("entries", [])
        if not isinstance(entries, Sequence) or isinstance(entries, (str, bytes)):
            raise ProtocolError("'entries' must be a list")
        retry_after = data.get("retry_after_s")
        return cls(
            job_id=str(_require(data, "job_id")),
            state=str(_require(data, "state")),
            entries=tuple(entries),
            next_offset=int(data.get("next_offset", 0)),
            complete=bool(data.get("complete", False)),
            telemetry=data.get("telemetry"),
            retry_after_s=float(retry_after) if retry_after is not None else None,
        )


@dataclass(frozen=True)
class WorkerRegistration:
    """Body of ``POST /api/v1/workers``: who is offering to evaluate.

    ``backend`` is the worker's *local* backend label (what it will run
    leased chunks on) and ``kernel`` its resolved solver tier
    (``numba``/``fused``/``numpy``); both are recorded in the
    ``/health`` roster so an operator can see the pool's composition —
    and a mixed pool's kernel capabilities — at a glance. ``kernel``
    is advisory (every tier is bit-identical, so the scheduler never
    routes on it) and tolerated absent for pre-v3 workers.
    """

    name: str
    pid: int
    host: str
    backend: str = "serial"
    kernel: str = "fused"

    def to_dict(self) -> dict:
        """JSON-ready registration body."""
        return {
            "protocol_version": PROTOCOL_VERSION,
            "name": self.name,
            "pid": self.pid,
            "host": self.host,
            "backend": self.backend,
            "kernel": self.kernel,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkerRegistration":
        """Parse and validate a registration body."""
        if not isinstance(data, Mapping):
            raise ProtocolError("registration body must be a JSON object")
        name = _require(data, "name")
        if not isinstance(name, str) or not name:
            raise ProtocolError("'name' must be a non-empty string")
        try:
            pid = int(_require(data, "pid"))
        except (TypeError, ValueError) as exc:
            raise ProtocolError("'pid' must be an int") from exc
        return cls(
            name=name,
            pid=pid,
            host=str(data.get("host", "")),
            backend=str(data.get("backend", "serial")),
            kernel=str(data.get("kernel", "fused")),
        )


@dataclass(frozen=True)
class WorkerRegistered:
    """Server's answer to a registration: identity plus pool cadence.

    The worker must heartbeat at ``heartbeat_interval_s`` and finish
    each chunk inside ``lease_ttl_s`` (heartbeats extend the lease);
    ``poll_interval_s`` is the suggested sleep between empty lease
    polls.
    """

    worker_id: str
    lease_ttl_s: float
    heartbeat_interval_s: float
    poll_interval_s: float

    def to_dict(self) -> dict:
        """JSON-ready registration response."""
        return {
            "protocol_version": PROTOCOL_VERSION,
            "worker_id": self.worker_id,
            "lease_ttl_s": self.lease_ttl_s,
            "heartbeat_interval_s": self.heartbeat_interval_s,
            "poll_interval_s": self.poll_interval_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "WorkerRegistered":
        """Parse a registration response."""
        return cls(
            worker_id=str(_require(data, "worker_id")),
            lease_ttl_s=float(_require(data, "lease_ttl_s")),
            heartbeat_interval_s=float(_require(data, "heartbeat_interval_s")),
            poll_interval_s=float(_require(data, "poll_interval_s")),
        )


@dataclass(frozen=True)
class ChunkLease:
    """One leased chunk of work: requests to evaluate under a deadline.

    ``chunk_id`` is content-addressed over the chunk's request
    fingerprints (stable across reassignments — the retry of a chunk is
    *the same chunk*, which is what makes poison-chunk detection and
    seeded fault injection deterministic); ``attempt`` counts from 1.
    ``speculative`` marks a duplicate lease on a chunk another worker
    is still evaluating (tail speculation) — informational: the worker
    evaluates it identically, and the server's first-report-wins dedup
    resolves the race.
    """

    chunk_id: str
    job_id: str
    attempt: int
    requests: tuple
    lease_ttl_s: float
    speculative: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "requests", tuple(self.requests))

    def to_dict(self) -> dict:
        """JSON-ready lease payload."""
        return {
            "chunk_id": self.chunk_id,
            "job_id": self.job_id,
            "attempt": self.attempt,
            "requests": [request_to_dict(r) for r in self.requests],
            "lease_ttl_s": self.lease_ttl_s,
            "speculative": self.speculative,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChunkLease":
        """Parse a lease payload (:class:`ProtocolError` on junk)."""
        raw = _require(data, "requests")
        if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
            raise ProtocolError("'requests' must be a list")
        try:
            requests = tuple(request_from_dict(r) for r in raw)
        except ReproError as exc:
            raise ProtocolError(f"bad leased request record: {exc}") from exc
        return cls(
            chunk_id=str(_require(data, "chunk_id")),
            job_id=str(_require(data, "job_id")),
            attempt=int(_require(data, "attempt")),
            requests=requests,
            lease_ttl_s=float(_require(data, "lease_ttl_s")),
            speculative=bool(data.get("speculative", False)),
        )


@dataclass(frozen=True)
class LeaseResponse:
    """Body of ``POST /api/v1/workers/<id>/lease``.

    ``chunk`` is ``None`` when no work is pending, in which case
    ``retry_after_s`` tells the worker how long to sleep before asking
    again.
    """

    chunk: Optional[ChunkLease] = None
    retry_after_s: Optional[float] = None

    def to_dict(self) -> dict:
        """JSON-ready lease response."""
        return {
            "protocol_version": PROTOCOL_VERSION,
            "chunk": self.chunk.to_dict() if self.chunk is not None else None,
            "retry_after_s": self.retry_after_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LeaseResponse":
        """Parse a lease response."""
        raw = data.get("chunk")
        retry_after = data.get("retry_after_s")
        return cls(
            chunk=ChunkLease.from_dict(raw) if raw is not None else None,
            retry_after_s=float(retry_after) if retry_after is not None else None,
        )


@dataclass(frozen=True)
class HeartbeatAck:
    """Server's answer to a heartbeat: which held leases are now stale.

    A chunk id in ``stale`` means the server already reassigned (or
    finished) it — the worker should abandon the evaluation and must
    not expect its eventual report to count.
    """

    ok: bool = True
    stale: tuple = ()

    def to_dict(self) -> dict:
        """JSON-ready heartbeat response."""
        return {
            "protocol_version": PROTOCOL_VERSION,
            "ok": self.ok,
            "stale": list(self.stale),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "HeartbeatAck":
        """Parse a heartbeat response."""
        return cls(
            ok=bool(data.get("ok", True)),
            stale=tuple(str(c) for c in data.get("stale", [])),
        )


@dataclass(frozen=True)
class ChunkReport:
    """Body of ``POST /api/v1/workers/<id>/result``: one chunk's outcome.

    Either ``outcomes`` (per-point wire records, chunk-local indices)
    with an optional ``telemetry`` payload to fold into the server's
    registry, or ``failed`` — a chunk-level failure triple
    (``error``/``error_type``/``traceback``) when the worker could not
    evaluate the chunk at all.  ``elapsed_s`` is the worker's wall-clock
    evaluation time for the chunk — the observation behind the server's
    per-worker throughput EWMA that drives adaptive chunk sizing.
    """

    chunk_id: str
    outcomes: tuple = ()
    telemetry: Optional[dict] = None
    failed: Optional[dict] = None
    elapsed_s: Optional[float] = None

    def to_dict(self) -> dict:
        """JSON-ready chunk report."""
        return {
            "protocol_version": PROTOCOL_VERSION,
            "chunk_id": self.chunk_id,
            "outcomes": list(self.outcomes),
            "telemetry": self.telemetry,
            "failed": self.failed,
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ChunkReport":
        """Parse and validate a chunk report."""
        if not isinstance(data, Mapping):
            raise ProtocolError("chunk report must be a JSON object")
        raw = data.get("outcomes", [])
        if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
            raise ProtocolError("'outcomes' must be a list")
        failed = data.get("failed")
        if failed is not None and not isinstance(failed, Mapping):
            raise ProtocolError("'failed' must be a JSON object")
        elapsed = data.get("elapsed_s")
        if elapsed is not None:
            try:
                elapsed = float(elapsed)
            except (TypeError, ValueError) as exc:
                raise ProtocolError("'elapsed_s' must be a number") from exc
        return cls(
            chunk_id=str(_require(data, "chunk_id")),
            outcomes=tuple(chunk_outcome_from_dict(o) for o in raw),
            telemetry=data.get("telemetry"),
            failed=dict(failed) if failed is not None else None,
            elapsed_s=elapsed,
        )
