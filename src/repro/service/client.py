"""Sweep-service HTTP client and the ``--jobs remote[:URL]`` backend.

:class:`ServiceClient` is a thin stdlib (``urllib``) wrapper over the
five endpoints — submit / poll / fetch / jobs / health — returning the
:mod:`repro.service.protocol` dataclasses.  Transport and server-side
failures surface as :class:`ServiceError` (a
:class:`~repro.errors.ReproError`) carrying the server's JSON error
message, never a raw traceback.

:class:`RemoteBackend` plugs that client into the engine's
:class:`~repro.engine.executor.ExecutionBackend` seam: the client-side
:class:`~repro.engine.batch.BatchRunner` still does its own dedup and
local cache lookup, and only the *misses* are submitted as a campaign.
Outcomes stream back in completion order (driving ``--progress``
exactly like a local pool would), results rebuild through the same
``to_dict``/``result_from_dict`` round-trip the disk cache uses — which
is why remote results are byte-identical to local ones — and the job's
telemetry payload (metric deltas + spans, including the server's own
pool workers) is absorbed into the local registry on completion, the
same way a process-pool parent absorbs a worker's.
"""

from __future__ import annotations

import json
import logging
import random
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Optional, Sequence

from ..engine.batch import EvalRequest, SurvivabilityRequest
from ..engine.cache import result_from_dict
from ..engine.executor import PointOutcome, SerialBackend
from ..errors import ReproError
from ..obs import absorb_telemetry
from .protocol import (
    ChunkReport,
    FetchResponse,
    HeartbeatAck,
    JobStatus,
    LeaseResponse,
    ProtocolError,
    SubmitRequest,
    SubmitResponse,
    WorkerRegistered,
    WorkerRegistration,
    wire_dispatchable,
)

__all__ = [
    "DEFAULT_SERVICE_URL",
    "RemoteBackend",
    "ServiceClient",
    "ServiceError",
]

log = logging.getLogger(__name__)

#: Where ``--jobs remote`` points when no URL is given (overridable via
#: ``REPRO_SERVICE_URL``; see :func:`repro.engine.executor.make_backend`).
DEFAULT_SERVICE_URL = "http://127.0.0.1:8765"


class ServiceError(ReproError):
    """Transport failure or an error response from the sweep service."""

    def __init__(self, message: str, *, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Synchronous HTTP client for one sweep-service base URL.

    Transient transport failures — connection errors and HTTP 5xx —
    are retried ``retries`` times with exponential backoff and jitter
    before a :class:`ServiceError` surfaces.  Every endpoint here is
    idempotent (submission is content-addressed, worker reports are
    exactly-once server-side), so blind retries are safe.  4xx
    responses are never retried: they mean the *request* is wrong.
    """

    def __init__(
        self,
        url: str = DEFAULT_SERVICE_URL,
        *,
        timeout: float = 30.0,
        retries: int = 3,
        retry_backoff_s: float = 0.2,
    ) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.retries = max(1, int(retries))
        self.retry_backoff_s = retry_backoff_s

    # ------------------------------------------------------------------
    # Endpoint wrappers
    # ------------------------------------------------------------------
    def submit(
        self,
        requests: "Sequence[EvalRequest | SurvivabilityRequest]",
        *,
        name: str = "campaign",
    ) -> SubmitResponse:
        """Submit a campaign (idempotent: same requests → same job)."""
        body = SubmitRequest(requests=tuple(requests), name=name).to_dict()
        return SubmitResponse.from_dict(
            self._post("/api/v1/campaigns", body)
        )

    def poll(self, job_id: str) -> JobStatus:
        """One job's progress, counts, and (when done) its report."""
        return JobStatus.from_dict(self._get(f"/api/v1/jobs/{job_id}"))

    def fetch(self, job_id: str, offset: int = 0) -> FetchResponse:
        """Outcome records from ``offset`` on, in completion order."""
        return FetchResponse.from_dict(
            self._get(f"/api/v1/jobs/{job_id}/results?offset={int(offset)}")
        )

    def jobs(self) -> list[JobStatus]:
        """All jobs the server currently remembers."""
        payload = self._get("/api/v1/jobs")
        return [JobStatus.from_dict(item) for item in payload.get("jobs", [])]

    def health(self) -> dict:
        """The server's ``/health`` payload (merged obs metrics et al.)."""
        return self._get("/health")

    # ------------------------------------------------------------------
    # Worker endpoints (used by repro.service.worker)
    # ------------------------------------------------------------------
    def register_worker(
        self,
        *,
        name: str,
        pid: int,
        host: str = "",
        backend: str = "serial",
        kernel: str = "fused",
    ) -> WorkerRegistered:
        """Join the server's worker pool; returns id + pool cadence."""
        body = WorkerRegistration(
            name=name, pid=pid, host=host, backend=backend, kernel=kernel
        ).to_dict()
        return WorkerRegistered.from_dict(self._post("/api/v1/workers", body))

    def lease_chunk(self, worker_id: str) -> LeaseResponse:
        """Ask for a chunk of work (``chunk=None`` when queue is empty)."""
        return LeaseResponse.from_dict(
            self._post(f"/api/v1/workers/{worker_id}/lease", {})
        )

    def heartbeat(
        self, worker_id: str, chunk_ids: Sequence[str] = ()
    ) -> HeartbeatAck:
        """Report liveness; re-arms the leases on ``chunk_ids``."""
        return HeartbeatAck.from_dict(
            self._post(
                f"/api/v1/workers/{worker_id}/heartbeat",
                {"chunks": list(chunk_ids)},
            )
        )

    def report_chunk(self, worker_id: str, report: ChunkReport) -> bool:
        """Ship a chunk's outcomes back; False when the report was stale."""
        payload = self._post(
            f"/api/v1/workers/{worker_id}/result", report.to_dict()
        )
        return bool(payload.get("accepted", False))

    def deregister_worker(self, worker_id: str) -> None:
        """Leave the pool cleanly (held leases requeue immediately)."""
        self._post(f"/api/v1/workers/{worker_id}/deregister", {})

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _get(self, path: str) -> dict:
        return self._request(urllib.request.Request(self.url + path))

    def _post(self, path: str, payload: dict) -> dict:
        request = urllib.request.Request(
            self.url + path,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        return self._request(request)

    def _request(self, request: urllib.request.Request) -> dict:
        for attempt in range(self.retries):
            final = attempt + 1 >= self.retries
            try:
                with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                    raw = resp.read()
            except urllib.error.HTTPError as exc:
                detail = ""
                try:
                    detail = json.loads(exc.read().decode("utf-8")).get("error", "")
                except Exception:  # noqa: BLE001 — error body is best-effort
                    pass
                if exc.code >= 500 and not final:
                    self._retry_sleep(attempt, f"HTTP {exc.code}")
                    continue
                message = detail or f"HTTP {exc.code}"
                raise ServiceError(
                    f"service at {self.url} rejected request: {message}",
                    status=exc.code,
                ) from exc
            except (urllib.error.URLError, OSError) as exc:
                if not final:
                    self._retry_sleep(attempt, str(exc))
                    continue
                raise ServiceError(
                    f"cannot reach sweep service at {self.url} "
                    f"(after {self.retries} attempts): {exc}"
                ) from exc
            try:
                return json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                raise ServiceError(
                    f"service at {self.url} returned non-JSON payload"
                ) from exc
        raise AssertionError("unreachable")  # pragma: no cover

    def _retry_sleep(self, attempt: int, reason: str) -> None:
        delay = self.retry_backoff_s * (2**attempt) * random.uniform(0.75, 1.25)
        log.debug(
            "transient failure talking to %s (%s) — retry %d in %.2fs",
            self.url, reason, attempt + 1, delay,
        )
        time.sleep(delay)


class RemoteBackend:
    """Execution backend that ships batches to a sweep service.

    Parameters
    ----------
    url:
        Base URL of the service (``http://host:port``).
    fallback:
        Local backend used for work the wire format cannot carry —
        batches whose items are not engine requests, or whose evaluator
        is not one of the engine's own (the server always dispatches by
        request type).  Defaults to a fresh
        :class:`~repro.engine.executor.SerialBackend`.
    poll_interval:
        Base sleep between fetches while the stream has no new
        entries; consecutive empty fetches back off exponentially
        (jittered) up to ``poll_max_interval``, and a server
        ``retry_after_s`` hint overrides the computed delay.
    poll_timeout:
        Overall deadline (seconds) for one batch; ``None`` waits
        forever.  On expiry a :class:`ServiceError` naming the job id
        is raised.
    name:
        Campaign name attached to submissions (shows up in the
        server's job list and manifest filenames).

    A server restart mid-stream is survived transparently: the fetch
    404s (the restarted server has no such job), the backend resubmits
    the identical campaign — content-addressing yields the *same* job
    id, re-run against the shared result cache — and restarts the
    stream from offset 0, dropping entries for points it already has,
    so every outcome is delivered exactly once.
    """

    def __init__(
        self,
        url: str = DEFAULT_SERVICE_URL,
        *,
        fallback: Optional[Any] = None,
        client: Optional[ServiceClient] = None,
        poll_interval: float = 0.05,
        poll_max_interval: float = 2.0,
        poll_timeout: Optional[float] = None,
        max_resubmits: int = 5,
        name: str = "remote-batch",
    ) -> None:
        self.client = client if client is not None else ServiceClient(url)
        self.fallback = fallback if fallback is not None else SerialBackend()
        self.poll_interval = poll_interval
        self.poll_max_interval = poll_max_interval
        self.poll_timeout = poll_timeout
        self.max_resubmits = max(0, int(max_resubmits))
        self.name = name

    def run(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        *,
        on_outcome: Optional[Callable[[PointOutcome], None]] = None,
    ) -> list[PointOutcome]:
        """Submit ``items`` as a campaign and stream outcomes back.

        Outcomes are delivered to ``on_outcome`` in the server's
        completion order and returned in input order, exactly matching
        the local backends' contract.
        """
        if not items:
            return []
        if not self._dispatchable(fn, items):
            log.debug(
                "remote backend: batch not wire-serializable, "
                "running on fallback %s", self.fallback.describe(),
            )
            return self.fallback.run(fn, items, on_outcome=on_outcome)

        submitted = self.client.submit(tuple(items), name=self.name)
        job_id = submitted.job_id
        log.debug(
            "remote batch %s: %d points (resubmitted=%s)",
            job_id[:12], len(items), submitted.resubmitted,
        )

        deadline = (
            time.monotonic() + self.poll_timeout
            if self.poll_timeout is not None
            else None
        )
        outcomes: list[Optional[PointOutcome]] = [None] * len(items)
        received: set[int] = set()
        offset = 0
        resubmits = 0
        empty_fetches = 0
        while True:
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out after {self.poll_timeout:g}s waiting for "
                    f"remote job {job_id} ({len(received)}/{len(items)} "
                    f"outcomes received)"
                )
            try:
                fetched = self.client.fetch(job_id, offset)
            except ServiceError as exc:
                if exc.status == 404 and resubmits < self.max_resubmits:
                    # Server restarted and forgot the job: resubmit (same
                    # content-addressed id, re-runs against the shared
                    # cache) and resume the stream from the start —
                    # `received` filters out what we already have.
                    resubmits += 1
                    log.info(
                        "remote job %s unknown to server (restart?) — "
                        "resubmitting (%d/%d)",
                        job_id[:12], resubmits, self.max_resubmits,
                    )
                    self.client.submit(tuple(items), name=self.name)
                    offset = 0
                    empty_fetches = 0
                    continue
                raise
            for entry in fetched.entries:
                outcome = self._outcome_from_entry(entry)
                if outcome.index in received:
                    continue
                received.add(outcome.index)
                outcomes[outcome.index] = outcome
                if on_outcome is not None:
                    on_outcome(outcome)
            offset = fetched.next_offset
            if fetched.complete:
                absorb_telemetry(fetched.telemetry)
                break
            if fetched.state == "failed":
                status = self.client.poll(job_id)
                raise ServiceError(
                    f"remote job {job_id[:12]} failed server-side: "
                    f"{status.detail or 'unknown error'}"
                )
            if not fetched.entries:
                empty_fetches += 1
                time.sleep(self._poll_delay(empty_fetches, fetched.retry_after_s))
            else:
                empty_fetches = 0

        missing = [i for i, outcome in enumerate(outcomes) if outcome is None]
        if missing:
            raise ServiceError(
                f"remote job {job_id[:12]} completed but left "
                f"{len(missing)} points unaccounted for"
            )
        return outcomes  # type: ignore[return-value]

    def describe(self) -> str:
        """Backend label recorded in batch reports and manifests."""
        return f"remote:{self.client.url}"

    # ------------------------------------------------------------------
    def _poll_delay(
        self, empty_fetches: int, retry_after_s: Optional[float]
    ) -> float:
        """Backed-off sleep before the next fetch of an idle stream."""
        if retry_after_s is not None:
            return max(0.0, retry_after_s)
        delay = min(
            self.poll_max_interval,
            self.poll_interval * (2 ** max(0, empty_fetches - 1)),
        )
        return delay * random.uniform(0.75, 1.25)

    @staticmethod
    def _dispatchable(fn: Callable[[Any], Any], items: Sequence[Any]) -> bool:
        return wire_dispatchable(fn, items)

    @staticmethod
    def _outcome_from_entry(entry: dict) -> PointOutcome:
        try:
            index = int(entry["index"])
            source = entry["source"]
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed outcome entry: {entry!r}") from exc
        if source == "error":
            error = entry.get("error") or {}
            return PointOutcome(
                index=index,
                error=error.get("error", "remote point failed"),
                error_type=error.get("error_type", "PointError"),
                traceback=error.get("traceback"),
            )
        record = entry.get("result")
        if record is None:
            raise ProtocolError(
                f"outcome entry {index} has source {source!r} but no result"
            )
        return PointOutcome(index=index, value=result_from_dict(record))
