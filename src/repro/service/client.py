"""Sweep-service HTTP client and the ``--jobs remote[:URL]`` backend.

:class:`ServiceClient` is a thin stdlib (``urllib``) wrapper over the
five endpoints — submit / poll / fetch / jobs / health — returning the
:mod:`repro.service.protocol` dataclasses.  Transport and server-side
failures surface as :class:`ServiceError` (a
:class:`~repro.errors.ReproError`) carrying the server's JSON error
message, never a raw traceback.

:class:`RemoteBackend` plugs that client into the engine's
:class:`~repro.engine.executor.ExecutionBackend` seam: the client-side
:class:`~repro.engine.batch.BatchRunner` still does its own dedup and
local cache lookup, and only the *misses* are submitted as a campaign.
Outcomes stream back in completion order (driving ``--progress``
exactly like a local pool would), results rebuild through the same
``to_dict``/``result_from_dict`` round-trip the disk cache uses — which
is why remote results are byte-identical to local ones — and the job's
telemetry payload (metric deltas + spans, including the server's own
pool workers) is absorbed into the local registry on completion, the
same way a process-pool parent absorbs a worker's.
"""

from __future__ import annotations

import json
import logging
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Optional, Sequence

from ..engine.batch import (
    EvalRequest,
    SurvivabilityRequest,
    evaluate_auto,
    evaluate_request,
    evaluate_survivability_request,
)
from ..engine.cache import result_from_dict
from ..engine.executor import PointOutcome, SerialBackend
from ..errors import ReproError
from ..obs import absorb_telemetry
from .protocol import (
    FetchResponse,
    JobStatus,
    ProtocolError,
    SubmitRequest,
    SubmitResponse,
)

__all__ = [
    "DEFAULT_SERVICE_URL",
    "RemoteBackend",
    "ServiceClient",
    "ServiceError",
]

log = logging.getLogger(__name__)

#: Where ``--jobs remote`` points when no URL is given (overridable via
#: ``REPRO_SERVICE_URL``; see :func:`repro.engine.executor.make_backend`).
DEFAULT_SERVICE_URL = "http://127.0.0.1:8765"

#: Evaluation callables the remote backend knows how to dispatch — the
#: server always re-dispatches by request type (``evaluate_auto``), so
#: only batches using the engine's own evaluators may go remote.
_REMOTE_SAFE_EVALUATORS = (
    evaluate_request,
    evaluate_survivability_request,
    evaluate_auto,
)


class ServiceError(ReproError):
    """Transport failure or an error response from the sweep service."""

    def __init__(self, message: str, *, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Synchronous HTTP client for one sweep-service base URL."""

    def __init__(
        self,
        url: str = DEFAULT_SERVICE_URL,
        *,
        timeout: float = 30.0,
    ) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Endpoint wrappers
    # ------------------------------------------------------------------
    def submit(
        self,
        requests: "Sequence[EvalRequest | SurvivabilityRequest]",
        *,
        name: str = "campaign",
    ) -> SubmitResponse:
        """Submit a campaign (idempotent: same requests → same job)."""
        body = SubmitRequest(requests=tuple(requests), name=name).to_dict()
        return SubmitResponse.from_dict(
            self._post("/api/v1/campaigns", body)
        )

    def poll(self, job_id: str) -> JobStatus:
        """One job's progress, counts, and (when done) its report."""
        return JobStatus.from_dict(self._get(f"/api/v1/jobs/{job_id}"))

    def fetch(self, job_id: str, offset: int = 0) -> FetchResponse:
        """Outcome records from ``offset`` on, in completion order."""
        return FetchResponse.from_dict(
            self._get(f"/api/v1/jobs/{job_id}/results?offset={int(offset)}")
        )

    def jobs(self) -> list[JobStatus]:
        """All jobs the server currently remembers."""
        payload = self._get("/api/v1/jobs")
        return [JobStatus.from_dict(item) for item in payload.get("jobs", [])]

    def health(self) -> dict:
        """The server's ``/health`` payload (merged obs metrics et al.)."""
        return self._get("/health")

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _get(self, path: str) -> dict:
        return self._request(urllib.request.Request(self.url + path))

    def _post(self, path: str, payload: dict) -> dict:
        request = urllib.request.Request(
            self.url + path,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        return self._request(request)

    def _request(self, request: urllib.request.Request) -> dict:
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as resp:
                raw = resp.read()
        except urllib.error.HTTPError as exc:
            detail = ""
            try:
                detail = json.loads(exc.read().decode("utf-8")).get("error", "")
            except Exception:  # noqa: BLE001 — error body is best-effort
                pass
            message = detail or f"HTTP {exc.code}"
            raise ServiceError(
                f"service at {self.url} rejected request: {message}",
                status=exc.code,
            ) from exc
        except (urllib.error.URLError, OSError) as exc:
            raise ServiceError(
                f"cannot reach sweep service at {self.url}: {exc}"
            ) from exc
        try:
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise ServiceError(
                f"service at {self.url} returned non-JSON payload"
            ) from exc


class RemoteBackend:
    """Execution backend that ships batches to a sweep service.

    Parameters
    ----------
    url:
        Base URL of the service (``http://host:port``).
    fallback:
        Local backend used for work the wire format cannot carry —
        batches whose items are not engine requests, or whose evaluator
        is not one of the engine's own (the server always dispatches by
        request type).  Defaults to a fresh
        :class:`~repro.engine.executor.SerialBackend`.
    poll_interval:
        Sleep between fetches while the stream has no new entries.
    name:
        Campaign name attached to submissions (shows up in the
        server's job list and manifest filenames).
    """

    def __init__(
        self,
        url: str = DEFAULT_SERVICE_URL,
        *,
        fallback: Optional[Any] = None,
        client: Optional[ServiceClient] = None,
        poll_interval: float = 0.05,
        name: str = "remote-batch",
    ) -> None:
        self.client = client if client is not None else ServiceClient(url)
        self.fallback = fallback if fallback is not None else SerialBackend()
        self.poll_interval = poll_interval
        self.name = name

    def run(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        *,
        on_outcome: Optional[Callable[[PointOutcome], None]] = None,
    ) -> list[PointOutcome]:
        """Submit ``items`` as a campaign and stream outcomes back.

        Outcomes are delivered to ``on_outcome`` in the server's
        completion order and returned in input order, exactly matching
        the local backends' contract.
        """
        if not items:
            return []
        if not self._dispatchable(fn, items):
            log.debug(
                "remote backend: batch not wire-serializable, "
                "running on fallback %s", self.fallback.describe(),
            )
            return self.fallback.run(fn, items, on_outcome=on_outcome)

        submitted = self.client.submit(tuple(items), name=self.name)
        job_id = submitted.job_id
        log.debug(
            "remote batch %s: %d points (resubmitted=%s)",
            job_id[:12], len(items), submitted.resubmitted,
        )

        outcomes: list[Optional[PointOutcome]] = [None] * len(items)
        offset = 0
        while True:
            fetched = self.client.fetch(job_id, offset)
            for entry in fetched.entries:
                outcome = self._outcome_from_entry(entry)
                outcomes[outcome.index] = outcome
                if on_outcome is not None:
                    on_outcome(outcome)
            offset = fetched.next_offset
            if fetched.complete:
                absorb_telemetry(fetched.telemetry)
                break
            if fetched.state == "failed":
                status = self.client.poll(job_id)
                raise ServiceError(
                    f"remote job {job_id[:12]} failed server-side: "
                    f"{status.detail or 'unknown error'}"
                )
            if not fetched.entries:
                time.sleep(self.poll_interval)

        missing = [i for i, outcome in enumerate(outcomes) if outcome is None]
        if missing:
            raise ServiceError(
                f"remote job {job_id[:12]} completed but left "
                f"{len(missing)} points unaccounted for"
            )
        return outcomes  # type: ignore[return-value]

    def describe(self) -> str:
        """Backend label recorded in batch reports and manifests."""
        return f"remote:{self.client.url}"

    # ------------------------------------------------------------------
    @staticmethod
    def _dispatchable(fn: Callable[[Any], Any], items: Sequence[Any]) -> bool:
        return fn in _REMOTE_SAFE_EVALUATORS and all(
            isinstance(item, (EvalRequest, SurvivabilityRequest))
            for item in items
        )

    @staticmethod
    def _outcome_from_entry(entry: dict) -> PointOutcome:
        try:
            index = int(entry["index"])
            source = entry["source"]
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"malformed outcome entry: {entry!r}") from exc
        if source == "error":
            error = entry.get("error") or {}
            return PointOutcome(
                index=index,
                error=error.get("error", "remote point failed"),
                error_type=error.get("error_type", "PointError"),
                traceback=error.get("traceback"),
            )
        record = entry.get("result")
        if record is None:
            raise ProtocolError(
                f"outcome entry {index} has source {source!r} but no result"
            )
        return PointOutcome(index=index, value=result_from_dict(record))
