"""Per-state communication cost component equations.

All components are *rates* in hop-bits/second, evaluated for a system
state ``(t, u, d)`` = (trusted, compromised-undetected, detected-
pending-eviction) **given** the system currently runs as ``ng`` groups
of ``n_g = (t + u) / ng`` live members each. The aggregate model
(:mod:`repro.costs.aggregate`) weights these by the stationary ``NG``
distribution, mirroring the paper's "Ĉ_{x,i} given that the number of
groups in the system is i" construction.

Reconstructed equations (DESIGN.md §4.2); ``E`` = key element bits,
``H̄`` = mean hops, ``S_x`` = message sizes, ``λ, μ, λq`` = per-node
join/leave/data rates, ``D`` = detection rate, ``m`` = voters:

========== =====================================================================
component  hop-bits/s (per system, summed over ``ng`` groups)
========== =====================================================================
GC         ``(t+u) · λq · S_data · n_g``              (flooded data packets)
status     ``(t+u) · (1/T_status) · S_status · n_g``  (flooded status records)
beacon     ``(t+u) · (1/T_beacon) · S_beacon``        (single-hop)
rekey      ``(t+u)·λ·join(n_g) + (t+u)·μ·leave(n_g)`` (membership rekeys)
IDS        ``(t+u) · D(md) · m · (S_vote + S_status) · H̄``  (voting rounds)
eviction   ``[u·D·(1-Pfn) + t·D·Pfp] · evict(n_g)``   (IDS-triggered rekeys)
mp         ``ng·ν_p · part(n_g) + (ng-1)·ν_m · merge(n_g)``
========== =====================================================================

with the GDH rekey operation costs (flood = payload × members):

* ``join(n) = n·E·H̄ + n·E·n``
* ``leave(n) = evict(n) = (n-1)·E·n``
* ``part(n)``: the splitting group rekeys both halves:
  ``2 · (n/2 - 1)·E·(n/2)``
* ``merge(n)``: two groups of ``n`` form one of ``2n``:
  ``2n·E·H̄ + 2n·E·2n``

Group sizes enter as real numbers (state counts divided by ``ng``); at
integer sizes the rekey expressions coincide exactly with the
message-ledger accounting of :class:`repro.groupkey.rekey.RekeyCostModel`
(verified by test).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..detection.functions import DetectionFunction
from ..errors import ParameterError
from ..manet.network import NetworkModel
from ..params import GCSParameters
from ..voting.majority import VotingErrorModel
from .sizes import MessageSizes

__all__ = ["CostContext", "ComponentRates"]

COMPONENT_NAMES = (
    "group_communication",
    "status_exchange",
    "beacon",
    "rekey_membership",
    "ids_voting",
    "eviction_rekey",
    "partition_merge",
)


@dataclass(frozen=True)
class ComponentRates:
    """Cost component rates (hop-bits/s) for one state and one ``ng``."""

    group_communication: float
    status_exchange: float
    beacon: float
    rekey_membership: float
    ids_voting: float
    eviction_rekey: float
    partition_merge: float

    @property
    def total(self) -> float:
        return (
            self.group_communication
            + self.status_exchange
            + self.beacon
            + self.rekey_membership
            + self.ids_voting
            + self.eviction_rekey
            + self.partition_merge
        )

    def as_dict(self) -> dict[str, float]:
        return {name: getattr(self, name) for name in COMPONENT_NAMES}


@dataclass(frozen=True)
class CostContext:
    """Everything the component equations need, bundled once per scenario."""

    params: GCSParameters
    network: NetworkModel
    sizes: MessageSizes = field(default_factory=MessageSizes)

    def __post_init__(self) -> None:
        if self.network.params.num_nodes != self.params.num_nodes:
            raise ParameterError(
                "network model and GCS parameters disagree on num_nodes "
                f"({self.network.params.num_nodes} vs {self.params.num_nodes})"
            )

    # -- GDH rekey operation costs (continuous group size) --------------
    def rekey_join_hop_bits(self, n: float) -> float:
        if n <= 1.0:
            return 0.0
        e = self.sizes.key_element_bits
        return n * e * self.network.avg_hops + n * e * n

    def rekey_leave_hop_bits(self, n: float) -> float:
        if n <= 1.0:
            return 0.0
        e = self.sizes.key_element_bits
        return (n - 1.0) * e * n

    def rekey_partition_hop_bits(self, n: float) -> float:
        """The group of size ``n`` splits; both halves re-establish keys."""
        half = n / 2.0
        if half <= 1.0:
            return 0.0
        e = self.sizes.key_element_bits
        return 2.0 * (half - 1.0) * e * half

    def rekey_merge_hop_bits(self, n: float) -> float:
        """Two groups of size ``n`` merge into one of ``2n``."""
        if n <= 0.5:
            return 0.0
        e = self.sizes.key_element_bits
        return 2.0 * n * e * self.network.avg_hops + 2.0 * n * e * 2.0 * n

    # ------------------------------------------------------------------
    def component_rates(
        self,
        n_trusted: int,
        n_undetected: int,
        n_detected: int,
        ng: int,
        *,
        detection: DetectionFunction,
        voting: VotingErrorModel,
    ) -> ComponentRates:
        """Evaluate all component equations for one state and ``ng``."""
        if ng < 1:
            raise ParameterError(f"ng must be >= 1, got {ng}")
        t, u = int(n_trusted), int(n_undetected)
        if t < 0 or u < 0 or n_detected < 0:
            raise ParameterError("state counts must be >= 0")
        live = t + u
        if live == 0:
            # Depleted group: only partition/merge control traffic is
            # conceivable and there are no members to send it.
            return ComponentRates(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

        p = self.params
        s = self.sizes
        net = self.network
        n_g = live / ng  # per-group live membership

        # -- group communication (flooded data packets) -----------------
        gc = live * p.workload.data_rate_hz * s.data_packet_bits * n_g

        # -- status exchange (flooded status records) --------------------
        status = (
            live
            * (1.0 / p.network.status_interval_s)
            * s.status_bits
            * n_g
        )

        # -- beacons (single hop) ----------------------------------------
        beacon = live * (1.0 / p.network.beacon_interval_s) * s.beacon_bits

        # -- membership rekeys -------------------------------------------
        rekey = live * (
            p.workload.join_rate_hz * self.rekey_join_hop_bits(n_g)
            + p.workload.leave_rate_hz * self.rekey_leave_hop_bits(n_g)
        )

        # -- IDS voting traffic ------------------------------------------
        d_rate = detection.rate(p.num_nodes, live)
        m = voting.num_voters
        ids = live * d_rate * m * (s.vote_bits + s.status_bits) * net.avg_hops

        # -- IDS-triggered eviction rekeys --------------------------------
        pfp, pfn = voting.probabilities(t, u)
        eviction_event_rate = u * d_rate * (1.0 - pfn) + t * d_rate * pfp
        eviction = eviction_event_rate * self.rekey_leave_hop_bits(n_g)

        # -- partition / merge --------------------------------------------
        mp = ng * net.partition_rate_hz * self.rekey_partition_hop_bits(n_g)
        if ng > 1:
            mp += (ng - 1) * net.merge_rate_hz * self.rekey_merge_hop_bits(n_g)

        return ComponentRates(
            group_communication=gc,
            status_exchange=status,
            beacon=beacon,
            rekey_membership=rekey,
            ids_voting=ids,
            eviction_rekey=eviction,
            partition_merge=mp,
        )
