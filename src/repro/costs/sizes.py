"""Message size catalog (bits).

Sizes follow common MANET-era protocol payloads; they are deliberate
modelling choices (the paper does not state its own), chosen so the
default scenario's Ĉtotal lands in the 1e5–1e6 hop-bits/s range of the
paper's Figures 3 and 5. Every size is overridable.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..validation import require_positive

__all__ = ["MessageSizes"]


@dataclass(frozen=True)
class MessageSizes:
    """Serialized payload sizes in bits."""

    #: Group-communication data packet (512 bytes).
    data_packet_bits: float = 4096.0
    #: Per-node status-exchange record (64 bytes).
    status_bits: float = 512.0
    #: A single IDS ballot (64 bytes: target id, verdict, signature).
    vote_bits: float = 512.0
    #: Neighbourhood beacon (32 bytes).
    beacon_bits: float = 256.0
    #: One GDH public value (the rekey element; 1024-bit field).
    key_element_bits: float = 1024.0

    def __post_init__(self) -> None:
        require_positive("data_packet_bits", self.data_packet_bits)
        require_positive("status_bits", self.status_bits)
        require_positive("vote_bits", self.vote_bits)
        require_positive("beacon_bits", self.beacon_bits)
        require_positive("key_element_bits", self.key_element_bits)
