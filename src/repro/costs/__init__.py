"""Communication-cost model (Ĉtotal and its components).

The paper reports a single performance metric — the total communication
traffic Ĉtotal in **hop-bits per second**, a lifetime average over the
system's time to security failure — decomposed into group communication,
status exchange, rekeying, intrusion detection (voting), beacons, and
group partition/merge traffic. The component equations are omitted from
the paper ("due to space limitation"); this package is the documented
reconstruction (DESIGN.md §4.2):

* :mod:`repro.costs.sizes` — message size catalog;
* :mod:`repro.costs.components` — per-state component rate equations;
* :mod:`repro.costs.aggregate` — the state-dependent total used as the
  accumulated-reward function over the security SPN, weighted by the
  group-count (``NG``) distribution.
"""

from .aggregate import GCSCostModel
from .components import ComponentRates, CostContext
from .delay import DelayModel
from .energy import EnergyModel
from .sizes import MessageSizes

__all__ = [
    "MessageSizes",
    "CostContext",
    "ComponentRates",
    "GCSCostModel",
    "DelayModel",
    "EnergyModel",
]
