"""Per-node energy accounting (extension).

The paper's introduction motivates "maximum system lifetime while
minimizing bandwidth consumed" and its related-work section faults
prior IDS designs for ignoring energy, but its own evaluation stops at
hop-bits. This module closes that loop with the standard first-order
radio energy model (Heinzelman-style): transmitting costs
``e_tx`` J/bit, receiving ``e_rx`` J/bit, and every hop-bit of traffic
is one transmission plus (on average) one reception — so a traffic
level in hop-bits/s converts directly into watts drawn from the group's
batteries.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParameterError
from ..validation import require_non_negative, require_positive, require_positive_int

__all__ = ["EnergyModel"]


@dataclass(frozen=True)
class EnergyModel:
    """First-order radio energy model.

    Defaults are the classic 50 nJ/bit electronics figures used across
    the WSN/MANET literature, plus a small idle draw per node.
    """

    tx_j_per_bit: float = 50e-9
    rx_j_per_bit: float = 50e-9
    idle_w_per_node: float = 0.01
    battery_j_per_node: float = 5000.0  # ~ two AA cells of usable energy

    def __post_init__(self) -> None:
        require_non_negative("tx_j_per_bit", self.tx_j_per_bit)
        require_non_negative("rx_j_per_bit", self.rx_j_per_bit)
        require_non_negative("idle_w_per_node", self.idle_w_per_node)
        require_positive("battery_j_per_node", self.battery_j_per_node)

    # ------------------------------------------------------------------
    def group_power_w(self, cost_rate_hop_bits_s: float, num_nodes: int) -> float:
        """Total group power draw at a given traffic level (W).

        Each hop-bit is one transmission and one reception; idle draw
        accrues per live node regardless of traffic.
        """
        if cost_rate_hop_bits_s < 0:
            raise ParameterError("cost_rate_hop_bits_s must be >= 0")
        require_positive_int("num_nodes", num_nodes)
        radio = cost_rate_hop_bits_s * (self.tx_j_per_bit + self.rx_j_per_bit)
        return radio + num_nodes * self.idle_w_per_node

    def mission_energy_j(
        self, cost_rate_hop_bits_s: float, duration_s: float, num_nodes: int
    ) -> float:
        """Energy consumed by the whole group over a mission (J)."""
        require_non_negative("duration_s", duration_s)
        return self.group_power_w(cost_rate_hop_bits_s, num_nodes) * duration_s

    def battery_lifetime_s(
        self, cost_rate_hop_bits_s: float, num_nodes: int
    ) -> float:
        """Time until the group's aggregate battery budget is exhausted.

        A deliberately coarse bound (perfect load sharing); it answers
        the design question "does the energy budget outlast the security
        lifetime?" when compared against MTTSF.
        """
        power = self.group_power_w(cost_rate_hop_bits_s, num_nodes)
        if power <= 0.0:
            return float("inf")
        return num_nodes * self.battery_j_per_node / power

    def energy_outlasts_security(
        self, cost_rate_hop_bits_s: float, num_nodes: int, mttsf_s: float
    ) -> bool:
        """True when batteries outlive the expected security failure —
        i.e. security, not energy, is the binding lifetime constraint
        (the premise of the paper's MTTSF-centric design)."""
        require_positive("mttsf_s", mttsf_s)
        return self.battery_lifetime_s(cost_rate_hop_bits_s, num_nodes) >= mttsf_s
