"""Aggregate state-cost model: ``c(state)`` for the Ĉtotal reward.

``GCSCostModel`` closes over the scenario (parameters, network, message
sizes, detection function, voting model, ``NG`` distribution) and maps a
security-SPN state ``(t, u, d)`` to its total communication cost rate:

.. math::
   c(t, u, d) = \\sum_{i} P(NG = i)\\; Ĉ_{total}(t, u, d \\mid ng = i)

which is exactly the probability-weighted per-``i`` construction the
paper describes for Ĉtotal. The lifetime average Ĉtotal is then the
expected accumulated ``c`` until absorption divided by MTTSF, computed
by :func:`repro.ctmc.absorbing.analyze_absorbing`.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from ..ctmc.birth_death import BirthDeathProcess
from ..detection.functions import DetectionFunction, vector_shape_factor
from ..errors import ParameterError
from ..manet.network import NetworkModel
from ..params import GCSParameters
from ..voting.majority import VotingErrorModel
from .components import COMPONENT_NAMES, CostContext
from .sizes import MessageSizes

__all__ = ["GCSCostModel"]


class GCSCostModel:
    """State-dependent communication cost for one GCS scenario."""

    def __init__(
        self,
        params: GCSParameters,
        network: NetworkModel,
        *,
        sizes: Optional[MessageSizes] = None,
        ng_distribution: Optional[Mapping[int, float]] = None,
    ) -> None:
        self.params = params
        self.network = network
        self.context = CostContext(params, network, sizes or MessageSizes())
        self.detection = DetectionFunction.from_params(params.detection)
        self.voting = VotingErrorModel(
            num_voters=params.detection.num_voters,
            host_false_negative=params.detection.host_false_negative,
            host_false_positive=params.detection.host_false_positive,
        )
        if ng_distribution is None:
            bd = BirthDeathProcess.for_group_count(
                network.partition_rate_hz,
                network.merge_rate_hz,
                params.groups.max_groups,
            )
            ng_distribution = bd.level_distribution()
        total = sum(ng_distribution.values())
        if not ng_distribution or abs(total - 1.0) > 1e-6:
            raise ParameterError(
                f"ng_distribution must sum to 1, got {total!r}"
            )
        for ng in ng_distribution:
            if ng < 1:
                raise ParameterError(f"group counts must be >= 1, got {ng}")
        self.ng_distribution: dict[int, float] = {
            int(k): float(v) for k, v in sorted(ng_distribution.items())
        }
        self._cache: dict[tuple[int, int, int], float] = {}

    # ------------------------------------------------------------------
    def state_cost_rate(self, t: int, u: int, d: int) -> float:
        """Total cost rate ``c(t, u, d)`` in hop-bits/s (NG-weighted).

        Cached per instance: the SPN reward sweep evaluates every
        reachable marking once; the cache dies with the model so
        parameter sweeps do not accumulate stale entries.
        """
        key = (int(t), int(u), int(d))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        total = 0.0
        for ng, prob in self.ng_distribution.items():
            if prob == 0.0:
                continue
            rates = self.context.component_rates(
                t, u, d, ng, detection=self.detection, voting=self.voting
            )
            total += prob * rates.total
        self._cache[key] = total
        return total

    def breakdown(self, t: int, u: int, d: int) -> dict[str, float]:
        """NG-weighted per-component rates for one state (reporting)."""
        acc: dict[str, float] = {}
        for ng, prob in self.ng_distribution.items():
            rates = self.context.component_rates(
                t, u, d, ng, detection=self.detection, voting=self.voting
            )
            for name, value in rates.as_dict().items():
                acc[name] = acc.get(name, 0.0) + prob * value
        acc["total"] = sum(acc.values())
        return acc

    def cost_vector(
        self,
        t: np.ndarray,
        u: np.ndarray,
        d: np.ndarray,
        *,
        per_component: bool = False,
    ) -> "np.ndarray | dict[str, np.ndarray]":
        """Vectorised ``c(t, u, d)`` over whole state arrays.

        Semantics identical to :meth:`state_cost_rate` element-wise
        (verified by test); used by the fast lattice pipeline where
        ~2·10⁵ scalar evaluations per model would dominate the solve.
        With ``per_component=True`` returns one array per component
        (for lifetime-averaged cost breakdowns).
        """
        t = np.asarray(t, dtype=np.int64)
        u = np.asarray(u, dtype=np.int64)
        d = np.asarray(d, dtype=np.int64)
        if not (t.shape == u.shape == d.shape):
            raise ParameterError("t, u, d arrays must share a shape")
        p = self.params
        s = self.context.sizes
        net = self.network
        n_nodes = p.num_nodes
        live = t + u
        alive = live > 0

        # Detection rate (vectorised); md pinned to 1 where dead.
        md = np.where(alive, n_nodes / np.maximum(live, 1), 1.0)
        det = self.detection
        d_rate = (
            vector_shape_factor(det.form, md, det.base_index_p, det.shifted_log)
            / det.base_interval_s
        )

        # Voting probabilities at system counts (as in state_cost_rate).
        pfp_tab, pfn_tab = self._voting_tables()
        pfp = pfp_tab[t, u]
        pfn = pfn_tab[t, u]

        e_bits = s.key_element_bits
        hops = net.avg_hops

        def join_cost(n_g: np.ndarray) -> np.ndarray:
            return np.where(n_g > 1.0, n_g * e_bits * hops + n_g * e_bits * n_g, 0.0)

        def leave_cost(n_g: np.ndarray) -> np.ndarray:
            return np.where(n_g > 1.0, (n_g - 1.0) * e_bits * n_g, 0.0)

        def part_cost(n_g: np.ndarray) -> np.ndarray:
            half = n_g / 2.0
            return np.where(half > 1.0, 2.0 * (half - 1.0) * e_bits * half, 0.0)

        def merge_cost(n_g: np.ndarray) -> np.ndarray:
            return np.where(
                n_g > 0.5,
                2.0 * n_g * e_bits * hops + 2.0 * n_g * e_bits * 2.0 * n_g,
                0.0,
            )

        acc = {name: np.zeros(t.shape, dtype=float) for name in COMPONENT_NAMES}
        for ng, prob in self.ng_distribution.items():
            if prob == 0.0:
                continue
            n_g = live / ng
            acc["group_communication"] += prob * (
                live * p.workload.data_rate_hz * s.data_packet_bits * n_g
            )
            acc["status_exchange"] += prob * (
                live * (1.0 / p.network.status_interval_s) * s.status_bits * n_g
            )
            acc["beacon"] += prob * (
                live * (1.0 / p.network.beacon_interval_s) * s.beacon_bits
            )
            acc["rekey_membership"] += prob * live * (
                p.workload.join_rate_hz * join_cost(n_g)
                + p.workload.leave_rate_hz * leave_cost(n_g)
            )
            acc["ids_voting"] += prob * (
                live
                * d_rate
                * self.voting.num_voters
                * (s.vote_bits + s.status_bits)
                * hops
            )
            ev_rate = u * d_rate * (1.0 - pfn) + t * d_rate * pfp
            acc["eviction_rekey"] += prob * ev_rate * leave_cost(n_g)
            mp = ng * net.partition_rate_hz * part_cost(n_g)
            if ng > 1:
                mp = mp + (ng - 1) * net.merge_rate_hz * merge_cost(n_g)
            acc["partition_merge"] += prob * mp

        for name in acc:
            acc[name] = np.where(alive, acc[name], 0.0)
        if per_component:
            return acc
        return sum(acc.values())

    def _voting_tables(self) -> tuple[np.ndarray, np.ndarray]:
        """Cached ``(Pfp, Pfn)`` tables over system counts."""
        tables = getattr(self, "_tables", None)
        if tables is None:
            tables = self.voting.table(self.params.num_nodes)
            self._tables = tables
        return tables

    def channel_utilization(self, cost_rate_hop_bits_s: float) -> float:
        """Fraction of the shared channel consumed by ``cost_rate``.

        hop-bits/s divided by the channel bit rate — the paper's
        "maximum network traffic rate which bounds the delay" check.
        Values above ~0.7 mean the delay requirement cannot hold.
        """
        if cost_rate_hop_bits_s < 0:
            raise ParameterError("cost rate must be >= 0")
        return cost_rate_hop_bits_s / self.params.network.bandwidth_bps

    def expected_group_count(self) -> float:
        """Mean of the ``NG`` distribution in use."""
        return sum(ng * p for ng, p in self.ng_distribution.items())
