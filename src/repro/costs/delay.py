"""Packet-delay model: the paper's timeliness requirement.

"The timeliness requirement is the delay requirement per packet. This
translates into a maximum network traffic rate which bounds the delay
or response time per packet." (paper, Section 2.1)

We make that translation explicit with the standard M/M/1
shared-channel approximation: per-hop transmission takes
``S̄/BW`` seconds and the channel is utilised at
``ρ = Ĉtotal / BW`` (hop-bits/s over bits/s), so

.. math::
   E[delay] \\approx H̄ · \\frac{S̄/BW}{1 - ρ}

Inverting gives the **maximum admissible Ĉtotal** for a per-packet
delay budget — the cost ceiling fed into
:func:`repro.core.optimizer.optimize_tids`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParameterError
from ..manet.network import NetworkModel
from ..validation import require_positive
from .sizes import MessageSizes

__all__ = ["DelayModel"]


@dataclass(frozen=True)
class DelayModel:
    """M/M/1-style shared-channel delay estimates."""

    network: NetworkModel
    sizes: MessageSizes

    # ------------------------------------------------------------------
    @property
    def per_hop_service_time_s(self) -> float:
        """Mean transmission time of one data packet over one hop."""
        return self.sizes.data_packet_bits / self.network.params.bandwidth_bps

    def utilization(self, ctotal_hop_bits_s: float) -> float:
        """Channel utilisation ``ρ`` induced by a traffic level."""
        if ctotal_hop_bits_s < 0:
            raise ParameterError("ctotal_hop_bits_s must be >= 0")
        return ctotal_hop_bits_s / self.network.params.bandwidth_bps

    def mean_packet_delay_s(self, ctotal_hop_bits_s: float) -> float:
        """Expected end-to-end delay of a data packet at this load.

        ``H̄`` hops, each an M/M/1 queue at utilisation ``ρ``; returns
        ``inf`` at or beyond saturation.
        """
        rho = self.utilization(ctotal_hop_bits_s)
        if rho >= 1.0:
            return float("inf")
        return self.network.avg_hops * self.per_hop_service_time_s / (1.0 - rho)

    def max_traffic_for_delay(self, delay_budget_s: float) -> float:
        """Largest Ĉtotal (hop-bits/s) meeting a delay budget.

        Inverts :meth:`mean_packet_delay_s`:
        ``ρ_max = 1 - H̄·S̄/(BW·D)``. Raises if the budget is below the
        unloaded (zero-queueing) delay — no traffic level can meet it.
        """
        require_positive("delay_budget_s", delay_budget_s)
        base = self.network.avg_hops * self.per_hop_service_time_s
        if delay_budget_s <= base:
            raise ParameterError(
                f"delay budget {delay_budget_s}s is below the unloaded "
                f"end-to-end delay {base:.3g}s; unachievable at any load"
            )
        rho_max = 1.0 - base / delay_budget_s
        return rho_max * self.network.params.bandwidth_bps

    def meets_delay_requirement(
        self, ctotal_hop_bits_s: float, delay_budget_s: float
    ) -> bool:
        """Does this traffic level satisfy the per-packet delay budget?"""
        return self.mean_packet_delay_s(ctotal_hop_bits_s) <= delay_budget_s
