"""Validated parameter bundles for the GCS intrusion-detection model.

The top-level object is :class:`GCSParameters`, a frozen dataclass
aggregating five orthogonal groups:

* :class:`NetworkParameters`     — arena geometry, radios, mobility;
* :class:`WorkloadParameters`    — join/leave/data-request rates;
* :class:`AttackParameters`      — attacker function and base rate;
* :class:`DetectionParameters`   — voting IDS configuration (``TIDS``,
  ``m``, host-IDS error rates, detection function);
* :class:`GroupDynamicsParameters` — group partition/merge (``NG``)
  treatment.

All fields are in SI units (seconds, meters, bits, Hz). Construction
validates every field, so downstream code never re-checks domains.
:meth:`GCSParameters.paper_defaults` reproduces the operating point of
the paper's Section 5; ``dataclasses.replace``-style updates are exposed
through :meth:`GCSParameters.replacing` for ergonomic sweeps::

    base = GCSParameters.paper_defaults()
    fast_ids = base.replacing(detection_interval_s=15.0, num_voters=7)
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Optional

from . import constants as C
from .errors import ParameterError
from .validation import (
    require_in,
    require_non_negative,
    require_odd,
    require_positive,
    require_positive_int,
    require_probability,
)

__all__ = [
    "ATTACKER_FUNCTIONS",
    "DETECTION_FUNCTIONS",
    "NetworkParameters",
    "WorkloadParameters",
    "AttackParameters",
    "DetectionParameters",
    "GroupDynamicsParameters",
    "GCSParameters",
]

#: Names accepted for the attacker rate function A(mc).
ATTACKER_FUNCTIONS: tuple[str, ...] = ("logarithmic", "linear", "polynomial")
#: Names accepted for the detection rate function D(md).
DETECTION_FUNCTIONS: tuple[str, ...] = ("logarithmic", "linear", "polynomial")


@dataclass(frozen=True)
class NetworkParameters:
    """MANET arena, radio and mobility parameters.

    The operational area is a disk of radius :attr:`radius_m`; nodes move
    by the random waypoint model with speeds uniform in
    [:attr:`speed_min_mps`, :attr:`speed_max_mps`] and pause time
    :attr:`pause_s`. Connectivity is unit-disk with range
    :attr:`wireless_range_m`.
    """

    num_nodes: int = C.PAPER_NUM_NODES
    radius_m: float = C.PAPER_RADIUS_M
    wireless_range_m: float = C.PAPER_WIRELESS_RANGE_M
    bandwidth_bps: float = C.PAPER_BANDWIDTH_BPS
    speed_min_mps: float = 1.0
    speed_max_mps: float = 10.0
    pause_s: float = 30.0
    beacon_interval_s: float = 1.0
    status_interval_s: float = 60.0

    def __post_init__(self) -> None:
        require_positive_int("num_nodes", self.num_nodes)
        require_positive("radius_m", self.radius_m)
        require_positive("wireless_range_m", self.wireless_range_m)
        require_positive("bandwidth_bps", self.bandwidth_bps)
        require_positive("speed_min_mps", self.speed_min_mps)
        require_positive("speed_max_mps", self.speed_max_mps)
        require_non_negative("pause_s", self.pause_s)
        require_positive("beacon_interval_s", self.beacon_interval_s)
        require_positive("status_interval_s", self.status_interval_s)
        if self.speed_max_mps < self.speed_min_mps:
            raise ParameterError(
                f"speed_max_mps ({self.speed_max_mps}) must be >= speed_min_mps ({self.speed_min_mps})"
            )

    @property
    def area_m2(self) -> float:
        """Area of the circular arena in m^2."""
        import math

        return math.pi * self.radius_m**2

    @property
    def node_density_per_m2(self) -> float:
        """Average node density (nodes per m^2)."""
        return self.num_nodes / self.area_m2


@dataclass(frozen=True)
class WorkloadParameters:
    """Group membership and traffic workload (all per-node rates, Hz)."""

    join_rate_hz: float = C.PAPER_JOIN_RATE_HZ
    leave_rate_hz: float = C.PAPER_LEAVE_RATE_HZ
    data_rate_hz: float = C.PAPER_DATA_RATE_HZ

    def __post_init__(self) -> None:
        require_non_negative("join_rate_hz", self.join_rate_hz)
        require_non_negative("leave_rate_hz", self.leave_rate_hz)
        require_positive("data_rate_hz", self.data_rate_hz)


@dataclass(frozen=True)
class AttackParameters:
    """Inside-attacker behaviour.

    ``attacker_function`` selects between the paper's logarithmic, linear
    and polynomial attacker strengths; ``base_compromise_rate_hz`` is λc,
    the compromise rate when no node is yet compromised;
    ``base_index_p`` is the paper's base/exponent parameter ``p`` (= 3).

    ``shifted_log`` selects the shifted form ``λc·(1+log_p(mc))`` of the
    logarithmic attacker, which equals λc at the uncompromised state
    instead of the literal paper form's zero (see DESIGN.md §4.3).
    """

    base_compromise_rate_hz: float = C.PAPER_BASE_COMPROMISE_RATE_HZ
    attacker_function: str = "linear"
    base_index_p: float = C.PAPER_BASE_INDEX_P
    shifted_log: bool = True

    def __post_init__(self) -> None:
        require_positive("base_compromise_rate_hz", self.base_compromise_rate_hz)
        require_in("attacker_function", self.attacker_function, ATTACKER_FUNCTIONS)
        p = require_positive("base_index_p", self.base_index_p)
        if p <= 1.0:
            raise ParameterError(f"base_index_p must be > 1 (log base / exponent), got {p}")


@dataclass(frozen=True)
class DetectionParameters:
    """Voting-based IDS configuration.

    ``detection_interval_s`` is the paper's base detection interval
    ``TIDS`` — the primary design knob whose optimum the evaluation
    sweeps. ``num_voters`` is ``m`` (odd, so majority is unambiguous).
    ``host_false_negative`` / ``host_false_positive`` are the per-node
    host-IDS error probabilities ``p1`` / ``p2``.
    """

    detection_interval_s: float = 60.0
    detection_function: str = "linear"
    num_voters: int = C.PAPER_NUM_VOTERS
    host_false_negative: float = C.PAPER_HOST_FALSE_NEGATIVE
    host_false_positive: float = C.PAPER_HOST_FALSE_POSITIVE
    base_index_p: float = C.PAPER_BASE_INDEX_P
    shifted_log: bool = True

    def __post_init__(self) -> None:
        require_positive("detection_interval_s", self.detection_interval_s)
        require_in("detection_function", self.detection_function, DETECTION_FUNCTIONS)
        require_odd("num_voters", self.num_voters)
        require_probability("host_false_negative", self.host_false_negative)
        require_probability("host_false_positive", self.host_false_positive)
        p = require_positive("base_index_p", self.base_index_p)
        if p <= 1.0:
            raise ParameterError(f"base_index_p must be > 1 (log base / exponent), got {p}")

    @property
    def majority(self) -> int:
        """Votes needed to evict a target: ⌈m/2⌉ (paper's N_majority)."""
        return (self.num_voters + 1) // 2


@dataclass(frozen=True)
class GroupDynamicsParameters:
    """Treatment of group partition/merge dynamics (place ``NG``).

    When the rates are ``None`` they are estimated from a random-waypoint
    mobility simulation (:mod:`repro.manet.partition`); explicit values
    short-circuit the simulation (useful for tests and fast sweeps).

    ``coupled`` embeds ``NG`` in the security chain's state (cyclic CTMC,
    linear solver); the default decoupled treatment keeps the security
    chain acyclic and weights costs by the stationary ``NG`` distribution
    exactly as the paper's per-``i`` cost formulation does.
    """

    partition_rate_hz: Optional[float] = None
    merge_rate_hz: Optional[float] = None
    max_groups: int = 4
    coupled: bool = False

    def __post_init__(self) -> None:
        if self.partition_rate_hz is not None:
            require_non_negative("partition_rate_hz", self.partition_rate_hz)
        if self.merge_rate_hz is not None:
            require_positive("merge_rate_hz", self.merge_rate_hz)
        require_positive_int("max_groups", self.max_groups)

    @property
    def has_explicit_rates(self) -> bool:
        """True when both rates are pinned and no mobility sim is needed."""
        return self.partition_rate_hz is not None and self.merge_rate_hz is not None


@dataclass(frozen=True)
class GCSParameters:
    """Top-level parameter bundle for one GCS scenario."""

    network: NetworkParameters = field(default_factory=NetworkParameters)
    workload: WorkloadParameters = field(default_factory=WorkloadParameters)
    attack: AttackParameters = field(default_factory=AttackParameters)
    detection: DetectionParameters = field(default_factory=DetectionParameters)
    groups: GroupDynamicsParameters = field(default_factory=GroupDynamicsParameters)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def paper_defaults(cls, **overrides: Any) -> "GCSParameters":
        """The Section 5 operating point; ``overrides`` follow
        :meth:`replacing` semantics."""
        base = cls()
        return base.replacing(**overrides) if overrides else base

    @classmethod
    def small_test(cls, **overrides: Any) -> "GCSParameters":
        """A scaled-down scenario (N=12) for fast tests and examples."""
        base = cls(
            network=NetworkParameters(num_nodes=12, radius_m=250.0),
            groups=GroupDynamicsParameters(partition_rate_hz=1.0 / C.HOUR, merge_rate_hz=4.0 / C.HOUR),
        )
        return base.replacing(**overrides) if overrides else base

    # ------------------------------------------------------------------
    # Ergonomic updates
    # ------------------------------------------------------------------
    def replacing(self, **overrides: Any) -> "GCSParameters":
        """Return a copy with leaf fields replaced.

        Accepts either sub-bundle replacements (``network=...``) or any
        leaf field name of any sub-bundle (``num_nodes=50``,
        ``detection_interval_s=120``); leaf names are unique across
        bundles by construction.
        """
        homes: dict[str, str] = {}
        for bundle_name in ("network", "workload", "attack", "detection", "groups"):
            bundle = getattr(self, bundle_name)
            for f in dataclasses.fields(bundle):
                # base_index_p and shifted_log exist on both attack and
                # detection; route them via explicit prefixes only.
                if f.name in ("base_index_p", "shifted_log"):
                    continue
                homes[f.name] = bundle_name

        updates: dict[str, dict[str, Any]] = {}
        direct: dict[str, Any] = {}
        for key, value in overrides.items():
            if key in ("network", "workload", "attack", "detection", "groups"):
                direct[key] = value
            elif key in ("attack_base_index_p", "attack_shifted_log"):
                updates.setdefault("attack", {})[key.removeprefix("attack_")] = value
            elif key in ("detection_base_index_p", "detection_shifted_log"):
                updates.setdefault("detection", {})[key.removeprefix("detection_")] = value
            elif key in ("base_index_p", "shifted_log"):
                # Convenience: apply to both function families.
                updates.setdefault("attack", {})[key] = value
                updates.setdefault("detection", {})[key] = value
            elif key == "num_voters_m":  # paper-style alias
                updates.setdefault("detection", {})["num_voters"] = value
            elif key in homes:
                updates.setdefault(homes[key], {})[key] = value
            else:
                raise ParameterError(f"unknown parameter {key!r}")

        kwargs: dict[str, Any] = {}
        for bundle_name in ("network", "workload", "attack", "detection", "groups"):
            if bundle_name in direct:
                kwargs[bundle_name] = direct[bundle_name]
            elif bundle_name in updates:
                kwargs[bundle_name] = dataclasses.replace(getattr(self, bundle_name), **updates[bundle_name])
        return dataclasses.replace(self, **kwargs) if kwargs else self

    # ------------------------------------------------------------------
    # Convenience accessors used across the model code
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Initial member count N."""
        return self.network.num_nodes

    @property
    def tids_s(self) -> float:
        """Base intrusion detection interval TIDS (s)."""
        return self.detection.detection_interval_s

    @property
    def num_voters(self) -> int:
        """Number of vote-participants m."""
        return self.detection.num_voters

    def to_dict(self) -> dict[str, Any]:
        """Flatten to a JSON-serialisable nested dict (for artifacts)."""
        return dataclasses.asdict(self)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"GCS(N={self.num_nodes}, m={self.num_voters}, "
            f"TIDS={self.tids_s:g}s, attack={self.attack.attacker_function}, "
            f"detect={self.detection.detection_function})"
        )
