"""Detection rate functions ``D(md)`` (paper Section 4.1).

``md = N_init / (#Tm + #UCm) ≥ 1`` grows as members are evicted (each
eviction reflects a detected intrusion or false accusation), so all
three schemes intensify detection as evidence of intrusion accumulates;
they differ in how aggressively:

* ``D_log(md)    = log_p(md) / TIDS`` — conservative;
* ``D_linear(md) = md / TIDS`` — proportional;
* ``D_poly(md)   = md^p / TIDS`` — aggressive.

As with the attacker's log form, the literal ``log_p(1) = 0`` would
disable logarithmic detection entirely at mission start, contradicting
the paper's Figures 4–5 where logarithmic detection operates everywhere;
the default is the shifted form ``(1 + log_p(md)) / TIDS`` (DESIGN.md
§4.3), with ``shifted=False`` available for the literal form.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ParameterError
from ..params import DETECTION_FUNCTIONS, DetectionParameters
from ..validation import require_in, require_positive, require_positive_int

__all__ = ["DetectionFunction", "detection_ratio", "vector_shape_factor"]


def vector_shape_factor(
    form: str, ratio: np.ndarray, base_index_p: float, shifted_log: bool
) -> np.ndarray:
    """Vectorised log/linear/poly shape factor over an array of ratios.

    The scalar equivalents live in
    :meth:`DetectionFunction.rate_at_ratio` and
    :meth:`repro.attackers.functions.AttackerFunction.rate_at_ratio`;
    this helper lets the fast lattice builder and the vectorised cost
    model evaluate whole state spaces at once.
    """
    require_in("form", form, DETECTION_FUNCTIONS)
    ratio = np.asarray(ratio, dtype=float)
    if form == "linear":
        return ratio.copy()
    if form == "polynomial":
        return ratio**base_index_p
    log_term = np.log(ratio) / math.log(base_index_p)
    return 1.0 + log_term if shifted_log else log_term


def detection_ratio(n_initial: int, n_live: int) -> float:
    """``md = N_init / (#Tm + #UCm)``.

    ``n_live`` is the current live membership (trusted + undetected
    compromised). Undefined for an empty group — detection has nothing
    to scan, and model code guards that case structurally.
    """
    require_positive_int("n_initial", n_initial)
    if n_live <= 0:
        raise ParameterError("md undefined for an empty group (#Tm + #UCm = 0)")
    return n_initial / n_live


@dataclass(frozen=True)
class DetectionFunction:
    """A parameterised periodic detection scheme ``D(md)``.

    ``base_interval_s`` is the paper's ``TIDS``; the detection *rate* at
    mission start is ``1 / TIDS`` for every form (with the shifted log).
    """

    form: str
    base_interval_s: float
    base_index_p: float = 3.0
    shifted_log: bool = True

    def __post_init__(self) -> None:
        require_in("form", self.form, DETECTION_FUNCTIONS)
        require_positive("base_interval_s", self.base_interval_s)
        p = require_positive("base_index_p", self.base_index_p)
        if p <= 1.0:
            raise ParameterError(f"base_index_p must be > 1, got {p}")

    @classmethod
    def from_params(cls, params: DetectionParameters) -> "DetectionFunction":
        """Build from a :class:`~repro.params.DetectionParameters` bundle."""
        return cls(
            form=params.detection_function,
            base_interval_s=params.detection_interval_s,
            base_index_p=params.base_index_p,
            shifted_log=params.shifted_log,
        )

    # ------------------------------------------------------------------
    def rate_at_ratio(self, md: float) -> float:
        """``D(md)`` for a given detection ratio (``md >= 1``)."""
        if md < 1.0:
            raise ParameterError(f"md must be >= 1, got {md}")
        p = self.base_index_p
        if self.form == "linear":
            factor = md
        elif self.form == "polynomial":
            factor = md**p
        else:  # logarithmic
            log_term = math.log(md) / math.log(p)
            factor = (1.0 + log_term) if self.shifted_log else log_term
        return factor / self.base_interval_s

    def rate(self, n_initial: int, n_live: int) -> float:
        """``D(md)`` evaluated from the initial and live member counts."""
        return self.rate_at_ratio(detection_ratio(n_initial, n_live))

    def interval(self, n_initial: int, n_live: int) -> float:
        """Current detection interval ``1 / D(md)`` in seconds."""
        rate = self.rate(n_initial, n_live)
        return float("inf") if rate <= 0.0 else 1.0 / rate

    def describe(self) -> str:
        """Human-readable formula string (docs, experiment logs)."""
        T = self.base_interval_s
        p = self.base_index_p
        if self.form == "linear":
            return f"D(md) = md/{T:g}s"
        if self.form == "polynomial":
            return f"D(md) = md^{p:g}/{T:g}s"
        if self.shifted_log:
            return f"D(md) = (1 + log_{p:g}(md))/{T:g}s"
        return f"D(md) = log_{p:g}(md)/{T:g}s"
