"""Adaptive IDS control: match detection strength to attacker strength.

The paper's Section 5 concludes that the system should "adjust the IDS
detection strength in response to the attacker strength detected at
runtime": a linear attacker is best countered by linear detection, a
polynomial attacker by polynomial detection, and so on — because a
detection curve steeper than the attack curve over-triggers (false
positives shrink the group via C2) while a shallower one under-triggers
(compromised nodes linger and leak via C1).

:func:`recommend_detection_function` encodes that matched-strength rule;
:class:`AdaptiveIDSController` closes the loop: ingest compromise
observations, re-estimate the attacker form
(:func:`repro.attackers.profiles.estimate_attacker_function`), and emit
the recommended detection configuration, optionally re-optimising
``TIDS`` through a caller-supplied evaluator (the model pipeline in
:mod:`repro.core.optimizer`, kept injectable to avoid an import cycle
and to allow simulation-based evaluation).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional, Sequence

from ..attackers.profiles import estimate_attacker_function
from ..errors import ParameterError
from ..params import ATTACKER_FUNCTIONS, DETECTION_FUNCTIONS, DetectionParameters
from ..validation import require_positive_int
from .functions import DetectionFunction

__all__ = ["recommend_detection_function", "AdaptiveIDSController"]

#: The matched-strength map the paper's evaluation supports.
_MATCHED: dict[str, str] = {
    "logarithmic": "logarithmic",
    "linear": "linear",
    "polynomial": "polynomial",
}


def recommend_detection_function(attacker_function: str) -> str:
    """Detection function matched to an identified attacker function."""
    if attacker_function not in ATTACKER_FUNCTIONS:
        raise ParameterError(
            f"unknown attacker function {attacker_function!r}; "
            f"expected one of {ATTACKER_FUNCTIONS}"
        )
    return _MATCHED[attacker_function]


#: Evaluator signature: params -> figure of merit (higher is better).
Evaluator = Callable[[DetectionParameters], float]


@dataclass
class AdaptiveIDSController:
    """Runtime adaptation loop for the voting IDS.

    Parameters
    ----------
    detection:
        Current detection configuration (mutable state of the loop).
    num_nodes:
        Group size at mission start (for attacker estimation).
    min_observations:
        Compromise events required before re-identification (below
        this, the controller keeps its current configuration).
    """

    detection: DetectionParameters
    num_nodes: int
    min_observations: int = 3

    def __post_init__(self) -> None:
        require_positive_int("num_nodes", self.num_nodes)
        require_positive_int("min_observations", self.min_observations)
        if self.min_observations < 3:
            raise ParameterError("min_observations must be >= 3 (estimator requirement)")
        self._compromise_times: list[float] = []
        self.last_estimate: Optional[str] = None

    # ------------------------------------------------------------------
    def observe_compromise(self, time_s: float) -> None:
        """Record a compromise instant (from an IDS detection event)."""
        if self._compromise_times and time_s <= self._compromise_times[-1]:
            raise ParameterError("compromise times must be strictly increasing")
        self._compromise_times.append(float(time_s))

    @property
    def observations(self) -> Sequence[float]:
        return tuple(self._compromise_times)

    # ------------------------------------------------------------------
    def adapt(
        self,
        *,
        evaluator: Optional[Evaluator] = None,
        tids_grid_s: Optional[Sequence[float]] = None,
    ) -> DetectionParameters:
        """Re-identify the attacker and update the detection config.

        Without an ``evaluator`` only the detection *function* is
        switched, by the paper's matched-strength heuristic. With an
        ``evaluator`` and a ``tids_grid_s``, the controller performs a
        full model-driven search over detection function × interval
        (maximising the evaluator, e.g. model-predicted MTTSF given the
        identified attacker) — strictly stronger than the heuristic, and
        necessary because under the paper's literal ``mc`` definition
        the attacker-function identity has only second-order effect on
        MTTSF (see EXPERIMENTS.md, abl-attacker).
        """
        if len(self._compromise_times) >= self.min_observations:
            form, _rate, _res = estimate_attacker_function(
                self._compromise_times, self.num_nodes
            )
            self.last_estimate = form
            matched = recommend_detection_function(form)
            if matched != self.detection.detection_function:
                self.detection = replace(self.detection, detection_function=matched)

        if evaluator is not None and tids_grid_s:
            best_cfg, best_score = None, -float("inf")
            for fn in DETECTION_FUNCTIONS:
                for tids in tids_grid_s:
                    candidate = replace(
                        self.detection,
                        detection_function=fn,
                        detection_interval_s=float(tids),
                    )
                    score = evaluator(candidate)
                    if score > best_score:
                        best_cfg, best_score = candidate, score
            if best_cfg is not None:
                self.detection = best_cfg
        return self.detection

    def current_function(self) -> DetectionFunction:
        """The active detection function object."""
        return DetectionFunction.from_params(self.detection)
