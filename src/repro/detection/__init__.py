"""Intrusion-detection scheduling and host IDS abstraction.

* :mod:`repro.detection.functions` — the paper's three periodic
  detection rate functions ``D(md)`` driven by the base interval
  ``TIDS``;
* :mod:`repro.detection.hostids` — per-node host-based IDS characterised
  by its false negative/positive probabilities (``p1``, ``p2``), with
  misuse- and anomaly-detection presets;
* :mod:`repro.detection.adaptive` — the adaptive controller that matches
  the detection function to the attacker strength observed at runtime
  (the paper's closing recommendation).
"""

from .adaptive import AdaptiveIDSController, recommend_detection_function
from .audit import AnomalyDetector, AuditFeatureModel, MisuseDetector
from .functions import DetectionFunction, detection_ratio, vector_shape_factor
from .hostids import HostIDS

__all__ = [
    "DetectionFunction",
    "detection_ratio",
    "vector_shape_factor",
    "HostIDS",
    "AuditFeatureModel",
    "AnomalyDetector",
    "MisuseDetector",
    "AdaptiveIDSController",
    "recommend_detection_function",
]
