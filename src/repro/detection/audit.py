"""Audit-feature host IDS: deriving ``(p1, p2)`` from real detectors.

The paper treats each node's host IDS as a black box with false
negative/positive probabilities ``p1``/``p2`` ("each node may evaluate
its neighbors based on information collected, mostly route-related and
traffic-related information"). This module builds that box, in the
style of the cooperative-IDS literature the paper cites (Huang & Lee
2003): a neighbour is observed over a monitoring window through a small
vector of behavioural **audit features** (packet-forwarding ratio,
route-control traffic, data-request rate); compromised nodes shift the
feature distribution; a detector turns an observed vector into a
flagged/clean verdict.

Two detector families mirror the paper's Section 2.2 dichotomy:

* :class:`AnomalyDetector` — flags when the Mahalanobis distance from
  the *normal* profile exceeds a threshold. With Gaussian features the
  error rates are exact: the score is χ²(k) under normal behaviour and
  noncentral χ²(k, λ) under compromise, so ``p2 = 1 - F_χ²(θ)`` and
  ``p1 = F_ncχ²(θ)`` — thresholds calibrate in closed form, and the
  anomaly preset's "fewer misses, more false alarms" emerges naturally.
* :class:`MisuseDetector` — matches attack signatures: a compromised
  node exhibits a recognisable signature with probability ``coverage``;
  matching is near-perfect but blind to uncovered behaviour, giving the
  misuse preset's "more misses, fewer false alarms".

Both produce a calibrated :class:`~repro.detection.hostids.HostIDS`
via :meth:`to_host_ids`, closing the loop: the ``(p1, p2)`` numbers the
voting model consumes become *derived* quantities, and the Monte Carlo
tests verify the realised rates match the closed forms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np
from scipy import stats

from ..errors import ParameterError
from ..rng import as_generator
from ..validation import require_positive, require_probability
from .hostids import HostIDS

__all__ = ["AuditFeatureModel", "AnomalyDetector", "MisuseDetector"]


@dataclass(frozen=True)
class AuditFeatureModel:
    """Gaussian behavioural-feature model for normal vs compromised nodes.

    ``normal_mean``/``normal_std`` describe a healthy neighbour's
    feature vector over one monitoring window; ``compromised_shift``
    is the mean shift (in the same units) a compromised node exhibits.
    The shared per-feature noise keeps the detection statistics exact
    (χ² / noncentral χ²).
    """

    feature_names: tuple[str, ...] = (
        "packet_forward_ratio",
        "route_request_rate",
        "data_request_rate",
    )
    normal_mean: tuple[float, ...] = (0.95, 2.0, 1.0)
    normal_std: tuple[float, ...] = (0.03, 0.5, 0.4)
    compromised_shift: tuple[float, ...] = (-0.09, 1.2, 0.9)

    def __post_init__(self) -> None:
        k = len(self.feature_names)
        for name, vec in (
            ("normal_mean", self.normal_mean),
            ("normal_std", self.normal_std),
            ("compromised_shift", self.compromised_shift),
        ):
            if len(vec) != k:
                raise ParameterError(
                    f"{name} has {len(vec)} entries, expected {k} (one per feature)"
                )
        if any(s <= 0 for s in self.normal_std):
            raise ParameterError("normal_std entries must be > 0")

    @property
    def num_features(self) -> int:
        return len(self.feature_names)

    @property
    def noncentrality(self) -> float:
        """λ = Σ (shift_i / σ_i)² — separation of the two populations."""
        return float(
            sum((d / s) ** 2 for d, s in zip(self.compromised_shift, self.normal_std))
        )

    def sample(
        self,
        compromised: bool,
        rng: Optional[np.random.Generator] = None,
        size: int = 1,
    ) -> np.ndarray:
        """Draw ``size`` feature vectors (shape ``(size, k)``)."""
        rng = as_generator(rng)
        mean = np.asarray(self.normal_mean, dtype=float)
        if compromised:
            mean = mean + np.asarray(self.compromised_shift, dtype=float)
        std = np.asarray(self.normal_std, dtype=float)
        return rng.normal(mean, std, size=(size, self.num_features))


@dataclass(frozen=True)
class AnomalyDetector:
    """Mahalanobis-threshold anomaly detection on audit features."""

    model: AuditFeatureModel = field(default_factory=AuditFeatureModel)
    threshold: float = 11.34  # chi2.ppf(0.99, df=3): 1% false positives

    def __post_init__(self) -> None:
        require_positive("threshold", self.threshold)

    # ------------------------------------------------------------------
    @classmethod
    def calibrated(
        cls,
        target_false_positive: float,
        model: Optional[AuditFeatureModel] = None,
    ) -> "AnomalyDetector":
        """Calibrate the threshold for a target per-window ``p2``.

        ``θ = F_χ²(k)^{-1}(1 - p2)`` — exact under the Gaussian model.
        """
        require_probability("target_false_positive", target_false_positive)
        if not 0.0 < target_false_positive < 1.0:
            raise ParameterError("target_false_positive must be in (0, 1)")
        model = model or AuditFeatureModel()
        theta = float(stats.chi2.ppf(1.0 - target_false_positive, df=model.num_features))
        return cls(model=model, threshold=theta)

    # ------------------------------------------------------------------
    def score(self, features: np.ndarray) -> np.ndarray:
        """Squared Mahalanobis distance from the normal profile."""
        x = np.atleast_2d(np.asarray(features, dtype=float))
        if x.shape[1] != self.model.num_features:
            raise ParameterError(
                f"features have {x.shape[1]} columns, expected {self.model.num_features}"
            )
        z = (x - np.asarray(self.model.normal_mean)) / np.asarray(self.model.normal_std)
        return np.einsum("ij,ij->i", z, z)

    def flag(self, features: np.ndarray) -> np.ndarray:
        """Boolean verdicts (True = flagged as compromised)."""
        return self.score(features) > self.threshold

    # ------------------------------------------------------------------
    @property
    def false_positive_probability(self) -> float:
        """Exact ``p2``: a normal node's score is χ²(k)."""
        return float(stats.chi2.sf(self.threshold, df=self.model.num_features))

    @property
    def false_negative_probability(self) -> float:
        """Exact ``p1``: a compromised node's score is ncχ²(k, λ)."""
        return float(
            stats.ncx2.cdf(
                self.threshold,
                df=self.model.num_features,
                nc=self.model.noncentrality,
            )
        )

    def realized_error_rates(
        self, trials: int = 20_000, rng: Optional[np.random.Generator] = None
    ) -> tuple[float, float]:
        """Monte Carlo ``(p1, p2)`` — validates the closed forms."""
        rng = as_generator(rng)
        normal = self.flag(self.model.sample(False, rng, trials))
        bad = self.flag(self.model.sample(True, rng, trials))
        return float(1.0 - bad.mean()), float(normal.mean())

    def to_host_ids(self) -> HostIDS:
        """The ``(p1, p2)`` abstraction the voting model consumes."""
        return HostIDS(
            false_negative=self.false_negative_probability,
            false_positive=self.false_positive_probability,
            technique="anomaly-audit",
        )


@dataclass(frozen=True)
class MisuseDetector:
    """Signature-based (misuse) detection on audit windows.

    A compromised node manifests a *known* attack signature in a
    monitoring window with probability ``coverage``; the matcher fires
    on a manifest signature with probability ``match_rate`` and on
    normal traffic with the tiny ``collision_rate`` (signature
    collisions with legitimate behaviour).
    """

    coverage: float = 0.985
    match_rate: float = 0.999
    collision_rate: float = 0.005

    def __post_init__(self) -> None:
        for name in ("coverage", "match_rate", "collision_rate"):
            require_probability(name, getattr(self, name))

    @property
    def false_negative_probability(self) -> float:
        """``p1 = 1 - coverage · match_rate``."""
        return 1.0 - self.coverage * self.match_rate

    @property
    def false_positive_probability(self) -> float:
        """``p2 = collision_rate``."""
        return self.collision_rate

    def verdict(
        self, compromised: bool, rng: Optional[np.random.Generator] = None
    ) -> bool:
        rng = as_generator(rng)
        if compromised:
            return bool(rng.random() < self.coverage * self.match_rate)
        return bool(rng.random() < self.collision_rate)

    def realized_error_rates(
        self, trials: int = 20_000, rng: Optional[np.random.Generator] = None
    ) -> tuple[float, float]:
        rng = as_generator(rng)
        misses = sum(not self.verdict(True, rng) for _ in range(trials)) / trials
        fps = sum(self.verdict(False, rng) for _ in range(trials)) / trials
        return float(misses), float(fps)

    def to_host_ids(self) -> HostIDS:
        return HostIDS(
            false_negative=self.false_negative_probability,
            false_positive=self.false_positive_probability,
            technique="misuse-audit",
        )
