"""Host-based IDS abstraction.

As in the paper, a node's host IDS is characterised entirely by two
probabilities: ``p1`` (false negative — misses a compromised neighbour)
and ``p2`` (false positive — flags a healthy neighbour). The presets
encode the paper's Section 2.2 observation: misuse (signature) detection
tends to higher ``p1`` / lower ``p2``; anomaly detection the reverse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..rng import as_generator
from ..validation import require_probability

__all__ = ["HostIDS"]


@dataclass(frozen=True)
class HostIDS:
    """Per-node intrusion detection characterised by ``(p1, p2)``."""

    false_negative: float = 0.01
    false_positive: float = 0.01
    technique: str = "generic"

    def __post_init__(self) -> None:
        require_probability("false_negative", self.false_negative)
        require_probability("false_positive", self.false_positive)

    # ------------------------------------------------------------------
    # Presets (paper Section 2.2)
    # ------------------------------------------------------------------
    @classmethod
    def misuse_detection(cls, scale: float = 1.0) -> "HostIDS":
        """Signature-based: more false negatives, fewer false positives."""
        return cls(
            false_negative=min(0.02 * scale, 1.0),
            false_positive=min(0.005 * scale, 1.0),
            technique="misuse",
        )

    @classmethod
    def anomaly_detection(cls, scale: float = 1.0) -> "HostIDS":
        """Anomaly-based: fewer false negatives, more false positives."""
        return cls(
            false_negative=min(0.005 * scale, 1.0),
            false_positive=min(0.02 * scale, 1.0),
            technique="anomaly",
        )

    @classmethod
    def paper_default(cls) -> "HostIDS":
        """The paper's ``p1 = p2 = 1%`` operating point."""
        return cls(0.01, 0.01, technique="paper-default")

    # ------------------------------------------------------------------
    def verdict(
        self,
        target_compromised: bool,
        rng: Optional[np.random.Generator] = None,
    ) -> bool:
        """One observation: does this node flag the target as compromised?

        A compromised target is flagged with probability ``1 - p1``; a
        healthy target with probability ``p2``.
        """
        rng = as_generator(rng)
        if target_compromised:
            return rng.random() >= self.false_negative
        return rng.random() < self.false_positive

    def describe(self) -> str:
        return (
            f"HostIDS[{self.technique}](p1={self.false_negative:g}, "
            f"p2={self.false_positive:g})"
        )
