"""Vectorised direct construction of the GCS security CTMC.

The Figure 1 SPN's reachable markings form the lattice
``{(t, u, d) : t + u + d ≤ N}`` plus one shared C1 (data-leak) absorbing
state — the marking details beyond C1 are irrelevant because every
transition is guard-disabled after failure. This module enumerates that
lattice with NumPy and emits the identical CTMC the generic SPN
reachability produces (equality is a test), ~50× faster for ``N = 100``
(pure array arithmetic instead of per-marking Python closures; the HPC
guide's vectorise-the-bottleneck idiom).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..ctmc.chain import CTMC
from ..detection.functions import vector_shape_factor
from ..errors import ParameterError
from ..manet.network import NetworkModel
from ..params import GCSParameters
from .rates import GCSRates

__all__ = ["LatticeChain", "build_lattice_chain"]


@dataclass(frozen=True)
class LatticeChain:
    """The lattice CTMC plus state metadata for rewards/classes."""

    chain: CTMC
    #: Per-lattice-state token counts (C1 state excluded; it is last).
    t: np.ndarray
    u: np.ndarray
    d: np.ndarray
    initial_state: int
    c1_state: int
    c2_states: np.ndarray
    depletion_states: np.ndarray
    #: 3-D lookup ``state_id[t, u, d]`` (−1 where t+u+d > N).
    state_id: np.ndarray

    @property
    def num_states(self) -> int:
        return self.chain.num_states

    def state_of(self, t: int, u: int, d: int) -> int:
        """Lattice state index of marking ``(t, u, d)``."""
        n = self.state_id.shape[0] - 1
        if not (0 <= t <= n and 0 <= u <= n and 0 <= d <= n) or t + u + d > n:
            raise ParameterError(f"({t}, {u}, {d}) outside the lattice")
        return int(self.state_id[t, u, d])

    def absorbing_classes(self) -> dict[str, list[int]]:
        """Failure classes keyed as the metrics pipeline expects."""
        return {
            "c1_data_leak": [self.c1_state],
            "c2_byzantine": self.c2_states.tolist(),
            "depletion": self.depletion_states.tolist(),
        }


def build_lattice_chain(
    params: GCSParameters,
    network: NetworkModel,
    *,
    rates: Optional[GCSRates] = None,
    expected_groups: float = 1.0,
) -> LatticeChain:
    """Build the (decoupled-``NG``) security CTMC for the scenario.

    Semantics identical to ``build_gcs_spn(...)`` + reachability + CTMC
    compilation, restricted to the default decoupled-group variant.
    """
    rates = rates or GCSRates.from_scenario(
        params, network, expected_groups=expected_groups
    )
    n = params.num_nodes
    scale = rates.group_scale

    # ---- lattice enumeration ------------------------------------------
    grid = np.indices((n + 1, n + 1, n + 1), dtype=np.int32)
    mask = grid.sum(axis=0) <= n
    t_all, u_all, d_all = (g[mask].astype(np.int64) for g in grid)
    n_lattice = t_all.size
    state_id = np.full((n + 1, n + 1, n + 1), -1, dtype=np.int64)
    state_id[t_all, u_all, d_all] = np.arange(n_lattice)
    c1_state = n_lattice  # shared absorbing data-leak state
    num_states = n_lattice + 1

    # ---- per-state quantities ------------------------------------------
    live = t_all + u_all
    failed_c2 = (u_all > 0) & (2 * u_all > t_all)
    active = ~failed_c2

    att = rates.attacker
    det = rates.detection
    with np.errstate(divide="ignore", invalid="ignore"):
        mc = np.where(t_all > 0, live / np.maximum(t_all, 1), 1.0)
        md = np.where(live > 0, n / np.maximum(live, 1), 1.0)
    a_rate = att.base_rate_hz * vector_shape_factor(
        att.form, mc, att.base_index_p, att.shifted_log
    )
    d_rate = (
        vector_shape_factor(det.form, md, det.base_index_p, det.shifted_log)
        / det.base_interval_s
    )

    # Voting probabilities at per-group counts (matching GCSRates). The
    # table spans 2n so the boundary max(·, 1) adjustments below never
    # leave its simplex (g + b <= 2n always holds for g, b <= n).
    pfp_table, pfn_table = rates.voting.table(2 * n)
    tg = np.clip(np.rint(t_all * scale).astype(np.int64), 0, n)
    ug = np.clip(np.rint(u_all * scale).astype(np.int64), 0, n)
    tg_fa = np.maximum(tg, 1)
    ug_ids = np.maximum(ug, 1)
    pfn = pfn_table[tg, ug_ids]
    pfp = pfp_table[tg_fa, ug]

    # Rekey rate via a precomputed Tcm lookup.
    tcm = np.array([rates.rekey.tcm_s(max(k, 2)) for k in range(n + 2)])
    members = np.clip(np.rint((t_all + u_all + d_all) * scale).astype(np.int64), 0, n + 1)
    rk_rate = 1.0 / tcm[members]

    # ---- transitions -----------------------------------------------------
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    vals: list[np.ndarray] = []
    src_ids = state_id[t_all, u_all, d_all]

    def add_edges(mask: np.ndarray, dst: np.ndarray, rate: np.ndarray) -> None:
        keep = mask & (rate > 0.0)
        rows.append(src_ids[keep])
        cols.append(dst[keep])
        vals.append(rate[keep])

    # T_CP: (t, u, d) -> (t-1, u+1, d)
    m_cp = active & (t_all > 0)
    dst_cp = np.where(m_cp, state_id[t_all - 1, np.minimum(u_all + 1, n), d_all], 0)
    add_edges(m_cp, dst_cp, np.where(m_cp, a_rate, 0.0))

    # T_DRQ: (t, u, d) -> C1
    m_drq = active & (u_all > 0)
    leak_rate = (
        rates.params.detection.host_false_negative
        * rates.params.workload.data_rate_hz
        * u_all
    )
    add_edges(m_drq, np.full(n_lattice, c1_state), np.where(m_drq, leak_rate, 0.0))

    # T_IDS: (t, u, d) -> (t, u-1, d+1)
    m_ids = active & (u_all > 0)
    dst_ids = np.where(
        m_ids, state_id[t_all, np.maximum(u_all - 1, 0), np.minimum(d_all + 1, n)], 0
    )
    add_edges(m_ids, dst_ids, np.where(m_ids, u_all * d_rate * (1.0 - pfn), 0.0))

    # T_FA: (t, u, d) -> (t-1, u, d+1)
    m_fa = active & (t_all > 0)
    dst_fa = np.where(
        m_fa, state_id[np.maximum(t_all - 1, 0), u_all, np.minimum(d_all + 1, n)], 0
    )
    add_edges(m_fa, dst_fa, np.where(m_fa, t_all * d_rate * pfp, 0.0))

    # T_RK: (t, u, d) -> (t, u, d-1)
    m_rk = active & (d_all > 0)
    dst_rk = np.where(m_rk, state_id[t_all, u_all, np.maximum(d_all - 1, 0)], 0)
    add_edges(m_rk, dst_rk, np.where(m_rk, rk_rate, 0.0))

    import scipy.sparse as sp

    R = sp.coo_matrix(
        (
            np.concatenate(vals),
            (np.concatenate(rows), np.concatenate(cols)),
        ),
        shape=(num_states, num_states),
    ).tocsr()
    chain = CTMC(R)

    # ---- absorbing classes ----------------------------------------------
    depletion = np.flatnonzero((t_all == 0) & (u_all == 0) & (d_all == 0))
    c2_states = np.flatnonzero(failed_c2)

    return LatticeChain(
        chain=chain,
        t=t_all,
        u=u_all,
        d=d_all,
        initial_state=int(state_id[n, 0, 0]),
        c1_state=c1_state,
        c2_states=c2_states,
        depletion_states=depletion,
        state_id=state_id,
    )
