"""Vectorised direct construction of the GCS security CTMC.

The Figure 1 SPN's reachable markings form the lattice
``{(t, u, d) : t + u + d ≤ N}`` plus one shared C1 (data-leak) absorbing
state — the marking details beyond C1 are irrelevant because every
transition is guard-disabled after failure. This module enumerates that
lattice with NumPy and emits the identical CTMC the generic SPN
reachability produces (equality is a test), ~50× faster for ``N = 100``
(pure array arithmetic instead of per-marking Python closures; the HPC
guide's vectorise-the-bottleneck idiom).

The construction is split structure-from-rates so that *sweeps* — many
scenarios differing only in rates, never in topology — amortise every
rate-free quantity:

* :class:`LatticeStructure` — the rate-free skeleton keyed by ``N``
  alone: state enumeration, ``state_id`` lookup, per-transition-kind
  guard masks and destination index arrays, the canonical CSR sparsity
  pattern, and the topological level schedule
  (:class:`repro.ctmc.acyclic.BatchDagStructure`). Cached per process
  via :func:`lattice_structure`.
* :func:`fill_transition_rates` — the cheap per-point stage: evaluate
  the five transition-rate formulas on the cached state arrays and
  scatter them into the shared sparsity pattern.

:func:`build_lattice_chain` composes the two back into the historical
one-call API (and is itself faster on repeated calls, since the
skeleton is cached), while the batched sweep path in
:func:`repro.core.metrics.evaluate_batch` feeds many fills to one
:func:`repro.ctmc.acyclic.solve_dag_batch` call.
"""

from __future__ import annotations

import logging
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..ctmc.acyclic import BatchDagStructure, batch_dag_structure
from ..ctmc.chain import CTMC
from ..detection.functions import vector_shape_factor
from ..errors import ModelError, ParameterError
from ..manet.network import NetworkModel
from ..obs import metrics, span
from ..params import GCSParameters
from .rates import GCSRates

log = logging.getLogger(__name__)

__all__ = [
    "LatticeChain",
    "LatticeStructure",
    "TransitionRateFill",
    "lattice_structure",
    "peek_structure_cache",
    "seed_structure_cache",
    "clear_structure_cache",
    "fill_transition_rates",
    "build_lattice_chain",
]

#: Transition kinds in the order the historical builder emitted them.
_KINDS = ("cp", "drq", "ids", "fa", "rk")


@dataclass(frozen=True)
class LatticeChain:
    """The lattice CTMC plus state metadata for rewards/classes."""

    chain: CTMC
    #: Per-lattice-state token counts (C1 state excluded; it is last).
    t: np.ndarray
    u: np.ndarray
    d: np.ndarray
    initial_state: int
    c1_state: int
    c2_states: np.ndarray
    depletion_states: np.ndarray
    #: 3-D lookup ``state_id[t, u, d]`` (−1 where t+u+d > N).
    state_id: np.ndarray

    @property
    def num_states(self) -> int:
        return self.chain.num_states

    def state_of(self, t: int, u: int, d: int) -> int:
        """Lattice state index of marking ``(t, u, d)``."""
        n = self.state_id.shape[0] - 1
        if not (0 <= t <= n and 0 <= u <= n and 0 <= d <= n) or t + u + d > n:
            raise ParameterError(f"({t}, {u}, {d}) outside the lattice")
        return int(self.state_id[t, u, d])

    def absorbing_classes(self) -> dict[str, list[int]]:
        """Failure classes keyed as the metrics pipeline expects."""
        return _absorbing_class_map(
            self.c1_state, self.c2_states, self.depletion_states
        )


@dataclass(frozen=True)
class LatticeStructure:
    """Rate-free skeleton of the ``N``-node security lattice.

    Everything here is a pure function of ``num_nodes``: which markings
    exist, which transitions are guard-enabled between them, where each
    transition lands in the canonical (column-sorted CSR) sparsity
    pattern, and the topological level schedule of the structural DAG.
    One instance is shared by every scenario of the same ``N`` — the
    whole point of the split.
    """

    num_nodes: int
    #: Per-lattice-state token counts (C1 excluded; it is state ``n_lattice``).
    t: np.ndarray
    u: np.ndarray
    d: np.ndarray
    state_id: np.ndarray
    initial_state: int
    c1_state: int
    c2_states: np.ndarray
    depletion_states: np.ndarray
    #: Guard masks over lattice states, keyed by transition kind.
    masks: dict[str, np.ndarray]
    #: Source / destination state indices per kind (one entry per
    #: guard-enabled transition, aligned with ``masks[kind]``'s support).
    src: dict[str, np.ndarray]
    dst: dict[str, np.ndarray]
    #: Position of each kind's transitions in the canonical CSR value
    #: array (``values[slots[kind]] = rate_of_kind``).
    slots: dict[str, np.ndarray]
    #: Shared CSR sparsity pattern (column-sorted within rows).
    indptr: np.ndarray
    indices: np.ndarray
    #: Level schedule + padded gather plan of the structural DAG.
    dag: BatchDagStructure

    @property
    def n_lattice(self) -> int:
        return self.t.size

    @property
    def num_states(self) -> int:
        return self.t.size + 1  # + shared C1 state

    @property
    def nnz(self) -> int:
        return self.indices.size

    def absorbing_classes(self) -> dict[str, list[int]]:
        """Failure classes keyed as the metrics pipeline expects."""
        return _absorbing_class_map(
            self.c1_state, self.c2_states, self.depletion_states
        )


def _absorbing_class_map(
    c1_state: int, c2_states: np.ndarray, depletion_states: np.ndarray
) -> dict[str, list[int]]:
    """The one definition of the failure-class → state mapping.

    Shared by :class:`LatticeChain` and :class:`LatticeStructure` so
    the per-point and batched pipelines can never disagree on class
    names or membership.
    """
    return {
        "c1_data_leak": [c1_state],
        "c2_byzantine": c2_states.tolist(),
        "depletion": depletion_states.tolist(),
    }


@dataclass(frozen=True)
class TransitionRateFill:
    """One scenario's transition rates scattered into the shared pattern.

    ``values[k]`` is the rate of the ``k``-th slot of the structure's
    CSR pattern; guard-enabled transitions whose formula evaluates to
    zero keep an explicit ``0.0`` (the batched solver tolerates them
    exactly; the per-point :class:`~repro.ctmc.chain.CTMC` prunes them).
    """

    structure: LatticeStructure
    values: np.ndarray


def _build_structure(n: int) -> LatticeStructure:
    # ---- lattice enumeration ------------------------------------------
    grid = np.indices((n + 1, n + 1, n + 1), dtype=np.int32)
    mask = grid.sum(axis=0) <= n
    t_all, u_all, d_all = (g[mask].astype(np.int64) for g in grid)
    n_lattice = t_all.size
    state_id = np.full((n + 1, n + 1, n + 1), -1, dtype=np.int64)
    state_id[t_all, u_all, d_all] = np.arange(n_lattice)
    c1_state = n_lattice  # shared absorbing data-leak state
    num_states = n_lattice + 1

    failed_c2 = (u_all > 0) & (2 * u_all > t_all)
    active = ~failed_c2
    src_ids = state_id[t_all, u_all, d_all]

    # ---- guard-enabled transitions per kind ---------------------------
    masks = {
        "cp": active & (t_all > 0),
        "drq": active & (u_all > 0),
        "ids": active & (u_all > 0),
        "fa": active & (t_all > 0),
        "rk": active & (d_all > 0),
    }
    dst_full = {
        "cp": state_id[t_all - 1, np.minimum(u_all + 1, n), d_all],
        "drq": np.full(n_lattice, c1_state, dtype=np.int64),
        "ids": state_id[
            t_all, np.maximum(u_all - 1, 0), np.minimum(d_all + 1, n)
        ],
        "fa": state_id[
            np.maximum(t_all - 1, 0), u_all, np.minimum(d_all + 1, n)
        ],
        "rk": state_id[t_all, u_all, np.maximum(d_all - 1, 0)],
    }
    src = {kind: src_ids[masks[kind]] for kind in _KINDS}
    dst = {kind: dst_full[kind][masks[kind]] for kind in _KINDS}

    # ---- canonical CSR pattern over all guard-enabled edges -----------
    # Distinct (src, dst) per kind by construction (each kind moves the
    # marking by a different delta), so no duplicate coordinates exist
    # and the lexsort below is exactly scipy's canonical CSR ordering.
    rows_all = np.concatenate([src[kind] for kind in _KINDS])
    cols_all = np.concatenate([dst[kind] for kind in _KINDS])
    order = np.lexsort((cols_all, rows_all))
    indices = cols_all[order]
    counts = np.bincount(rows_all, minlength=num_states)
    indptr = np.zeros(num_states + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    slot_for = np.empty(order.size, dtype=np.int64)
    slot_for[order] = np.arange(order.size)
    slots: dict[str, np.ndarray] = {}
    offset = 0
    for kind in _KINDS:
        size = src[kind].size
        slots[kind] = slot_for[offset : offset + size]
        offset += size

    dag = batch_dag_structure(indptr, indices)

    depletion = np.flatnonzero((t_all == 0) & (u_all == 0) & (d_all == 0))
    c2_states = np.flatnonzero(failed_c2)

    # The structure is shared process-wide (and its arrays are handed
    # out on every LatticeChain); freeze them so a mutating caller
    # fails loudly instead of silently poisoning every later
    # evaluation of this N — same hazard/fix as the voting-table memo.
    for arr in (
        t_all,
        u_all,
        d_all,
        state_id,
        c2_states,
        depletion,
        indptr,
        indices,
        *masks.values(),
        *src.values(),
        *dst.values(),
        *slots.values(),
        dag.slot_rows,
        dag.ell_cols,
        dag.ell_slots,
        dag.ell_pad,
        dag.lvl_rows,
        dag.lvl_row_bounds,
        dag.lvl_ell_slots,
        dag.lvl_ell_cols,
        dag.structure.levels,
        *dag.structure.level_states,
    ):
        arr.setflags(write=False)

    return LatticeStructure(
        num_nodes=n,
        t=t_all,
        u=u_all,
        d=d_all,
        state_id=state_id,
        initial_state=int(state_id[n, 0, 0]),
        c1_state=c1_state,
        c2_states=c2_states,
        depletion_states=depletion,
        masks=masks,
        src=src,
        dst=dst,
        slots=slots,
        indptr=indptr,
        indices=indices,
        dag=dag,
    )


#: Process-wide structure cache: small (a handful of ``N`` values per
#: run) but each entry holds O(N³) arrays, so keep an LRU cap.
_STRUCTURE_CACHE: OrderedDict[int, LatticeStructure] = OrderedDict()
_STRUCTURE_CACHE_CAP = 4
_STRUCTURE_LOCK = threading.Lock()


def lattice_structure(num_nodes: int) -> LatticeStructure:
    """The cached rate-free lattice skeleton for ``num_nodes``."""
    n = int(num_nodes)
    if n < 1:
        raise ParameterError(f"num_nodes must be >= 1, got {num_nodes}")
    with _STRUCTURE_LOCK:
        cached = _STRUCTURE_CACHE.get(n)
        if cached is not None:
            _STRUCTURE_CACHE.move_to_end(n)
            metrics().counter("fastpath.structure_cache_hits").add()
            return cached
    t_build = time.perf_counter()
    with span("fastpath.build_structure", n=n):
        structure = _build_structure(n)
    metrics().counter("fastpath.structure_builds").add()
    metrics().histogram("fastpath.structure_build_s").observe(
        time.perf_counter() - t_build
    )
    log.debug(
        "built lattice structure n=%d (%d states) in %.3fs",
        n,
        structure.num_states,
        time.perf_counter() - t_build,
    )
    with _STRUCTURE_LOCK:
        _STRUCTURE_CACHE[n] = structure
        _STRUCTURE_CACHE.move_to_end(n)
        while len(_STRUCTURE_CACHE) > _STRUCTURE_CACHE_CAP:
            _STRUCTURE_CACHE.popitem(last=False)
    return structure


def peek_structure_cache(num_nodes: int) -> Optional[LatticeStructure]:
    """The cached structure for ``num_nodes``, or ``None`` (no build)."""
    with _STRUCTURE_LOCK:
        cached = _STRUCTURE_CACHE.get(int(num_nodes))
        if cached is not None:
            _STRUCTURE_CACHE.move_to_end(int(num_nodes))
        return cached


def seed_structure_cache(structure: LatticeStructure) -> None:
    """Insert a pre-built structure into the process-wide cache.

    Used by :mod:`repro.core.structshare` to hand pool workers a
    structure attached from shared memory (or loaded from the on-disk
    cache) instead of re-enumerating the lattice per process. A
    structure already cached for the same ``N`` is left in place — the
    arrays are immutable and equal, and the incumbent may already be
    referenced by in-flight fills.
    """
    with _STRUCTURE_LOCK:
        if structure.num_nodes in _STRUCTURE_CACHE:
            _STRUCTURE_CACHE.move_to_end(structure.num_nodes)
            return
        _STRUCTURE_CACHE[structure.num_nodes] = structure
        _STRUCTURE_CACHE.move_to_end(structure.num_nodes)
        while len(_STRUCTURE_CACHE) > _STRUCTURE_CACHE_CAP:
            _STRUCTURE_CACHE.popitem(last=False)


def clear_structure_cache() -> None:
    """Drop every cached :class:`LatticeStructure` (tests, memory)."""
    with _STRUCTURE_LOCK:
        _STRUCTURE_CACHE.clear()


def fill_transition_rates(
    structure: LatticeStructure, rates: GCSRates
) -> TransitionRateFill:
    """Evaluate one scenario's rates on the shared lattice skeleton.

    The formulas are the historical ``build_lattice_chain`` arithmetic
    verbatim (bit-identical values; the per-point/batched equality tests
    depend on that), only evaluated against cached state arrays.
    """
    t_fill = time.perf_counter()
    n = structure.num_nodes
    t_all, u_all, d_all = structure.t, structure.u, structure.d
    scale = rates.group_scale

    att = rates.attacker
    det = rates.detection
    live = t_all + u_all
    with np.errstate(divide="ignore", invalid="ignore"):
        mc = np.where(t_all > 0, live / np.maximum(t_all, 1), 1.0)
        md = np.where(live > 0, n / np.maximum(live, 1), 1.0)
    a_rate = att.base_rate_hz * vector_shape_factor(
        att.form, mc, att.base_index_p, att.shifted_log
    )
    d_rate = (
        vector_shape_factor(det.form, md, det.base_index_p, det.shifted_log)
        / det.base_interval_s
    )

    # Voting probabilities at per-group counts (matching GCSRates). The
    # table spans 2n so the boundary max(·, 1) adjustments below never
    # leave its simplex (g + b <= 2n always holds for g, b <= n).
    pfp_table, pfn_table = rates.voting.table(2 * n)
    tg = np.clip(np.rint(t_all * scale).astype(np.int64), 0, n)
    ug = np.clip(np.rint(u_all * scale).astype(np.int64), 0, n)
    tg_fa = np.maximum(tg, 1)
    ug_ids = np.maximum(ug, 1)
    pfn = pfn_table[tg, ug_ids]
    pfp = pfp_table[tg_fa, ug]

    # Rekey rate via a precomputed Tcm lookup.
    tcm = np.array([rates.rekey.tcm_s(max(k, 2)) for k in range(n + 2)])
    members = np.clip(
        np.rint((t_all + u_all + d_all) * scale).astype(np.int64), 0, n + 1
    )
    rk_rate = 1.0 / tcm[members]

    leak_rate = (
        rates.params.detection.host_false_negative
        * rates.params.workload.data_rate_hz
        * u_all
    )

    per_state = {
        "cp": a_rate,
        "drq": leak_rate,
        "ids": u_all * d_rate * (1.0 - pfn),
        "fa": t_all * d_rate * pfp,
        "rk": rk_rate,
    }
    values = np.zeros(structure.nnz, dtype=float)
    for kind in _KINDS:
        values[structure.slots[kind]] = per_state[kind][structure.masks[kind]]

    if not np.all(np.isfinite(values)):
        raise ModelError("transition rates must be finite")
    if values.size and float(values.min()) < 0.0:
        raise ModelError("transition rates must be non-negative")
    metrics().counter("fastpath.rate_fills").add()
    metrics().histogram("fastpath.rate_fill_s").observe(
        time.perf_counter() - t_fill
    )
    return TransitionRateFill(structure=structure, values=values)


def build_lattice_chain(
    params: GCSParameters,
    network: NetworkModel,
    *,
    rates: Optional[GCSRates] = None,
    expected_groups: float = 1.0,
) -> LatticeChain:
    """Build the (decoupled-``NG``) security CTMC for the scenario.

    Semantics identical to ``build_gcs_spn(...)`` + reachability + CTMC
    compilation, restricted to the default decoupled-group variant.
    """
    rates = rates or GCSRates.from_scenario(
        params, network, expected_groups=expected_groups
    )
    structure = lattice_structure(params.num_nodes)
    fill = fill_transition_rates(structure, rates)

    import scipy.sparse as sp

    R = sp.csr_matrix(
        (fill.values, structure.indices.copy(), structure.indptr.copy()),
        shape=(structure.num_states, structure.num_states),
    )
    chain = CTMC(R)

    return LatticeChain(
        chain=chain,
        t=structure.t,
        u=structure.u,
        d=structure.d,
        initial_state=structure.initial_state,
        c1_state=structure.c1_state,
        c2_states=structure.c2_states,
        depletion_states=structure.depletion_states,
        state_id=structure.state_id,
    )
