"""Scenario facade: one place to hold the expensive shared stages.

A :class:`Scenario` binds parameters to a network model (analytic,
explicit-rate or mobility-measured — measured once, reused across every
sweep point) and exposes the evaluation, sweep and optimisation APIs
with that caching behaviour. The examples and the experiment harness
build everything through this class.
"""

from __future__ import annotations

from typing import Optional, Sequence


from ..manet.network import NetworkModel
from ..params import GCSParameters
from .metrics import GCSEvaluation, resolve_network
from .optimizer import OptimizationResult, TradeoffPoint, optimize_tids, tradeoff_curve
from .results import GCSResult

__all__ = ["Scenario"]


class Scenario:
    """A GCS deployment scenario with a fixed network environment."""

    def __init__(
        self,
        params: GCSParameters,
        *,
        network: Optional[NetworkModel] = None,
        use_mobility: bool = False,
        mobility_duration_s: float = 1800.0,
        seed: Optional[int] = None,
    ) -> None:
        self.params = params
        self.seed = seed
        self.network = resolve_network(
            params,
            network,
            use_mobility=use_mobility,
            mobility_duration_s=mobility_duration_s,
            seed=seed,
        )

    # ------------------------------------------------------------------
    def evaluate(
        self,
        *,
        method: str = "fast",
        include_breakdown: bool = False,
        include_variance: bool = False,
        **overrides,
    ) -> GCSResult:
        """Evaluate the scenario, optionally with parameter overrides
        (same keywords as :meth:`GCSParameters.replacing`)."""
        params = self.params.replacing(**overrides) if overrides else self.params
        engine = GCSEvaluation(params, self.network)
        return engine.run(
            method=method,
            include_breakdown=include_breakdown,
            include_variance=include_variance,
        )

    def sweep_tids(
        self, tids_grid_s: Sequence[float], *, method: str = "fast", **overrides
    ) -> list[TradeoffPoint]:
        """MTTSF/Ĉtotal across a ``TIDS`` grid (Figures 2–5 backbone)."""
        params = self.params.replacing(**overrides) if overrides else self.params
        return tradeoff_curve(
            params, tids_grid_s, network=self.network, method=method
        )

    def optimize(
        self,
        tids_grid_s: Sequence[float],
        *,
        objective: str = "max-mttsf",
        cost_ceiling_hop_bits_s: Optional[float] = None,
        method: str = "fast",
        **overrides,
    ) -> OptimizationResult:
        """Optimal-``TIDS`` search (see :func:`repro.core.optimizer.optimize_tids`)."""
        params = self.params.replacing(**overrides) if overrides else self.params
        return optimize_tids(
            params,
            tids_grid_s,
            objective=objective,
            cost_ceiling_hop_bits_s=cost_ceiling_hop_bits_s,
            network=self.network,
            method=method,
        )

    def with_params(self, **overrides) -> "Scenario":
        """A sibling scenario sharing this network environment."""
        clone = object.__new__(Scenario)
        clone.params = self.params.replacing(**overrides)
        clone.seed = self.seed
        clone.network = self.network
        return clone

    def describe(self) -> str:
        return f"Scenario({self.params.describe()}; {self.network.describe()})"
